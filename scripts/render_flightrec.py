#!/usr/bin/env python3
"""Render a flight-recorder dump (flightrec-*.bin) as a chronological timeline.

The dump is the FlightRecorder binary snapshot (magic "MMFR", version 1):
per-thread rings of compact structured events stamped on the pipeline
handoffs. This script merges the rings into one timeline — the "what was the
node doing right before it stalled" view — with per-thread labels and
decoded payloads:

    $ scripts/render_flightrec.py flightrec-v0-1.bin
    # flightrec-v0-1.bin: 3 rings, 1287 events, 1.92 s span
          TIME(us)     +DELTA  THREAD        EVENT           DETAIL
         123456789          0  loop          frame_rx        peer=2 bytes=4096
         123456801        +12  worker        block_admit     author=2 round=17
    ...

Exit code 0 on a well-formed dump, 1 on a malformed or truncated one (CI
treats a dump that fails to render as a failed stall-dump smoke test).
"""

import argparse
import struct
import sys

MAGIC = b"MMFR"
VERSION = 1

EVENT_NAMES = {
    0: "none",
    1: "frame_rx",
    2: "frame_tx",
    3: "block_admit",
    4: "block_insert",
    5: "commit",
    6: "wal_flush",
    7: "checkpoint_cut",
    8: "stall",
    9: "snapshot",
}

BROADCAST = (1 << 64) - 1
SNAPSHOT_REASONS = {0: "on-demand", 1: "stall", 2: "signal"}


def detail(event_type, a, b):
    """Decode the (a, b) payload per the conventions in flight_recorder.h."""
    if event_type == 1:
        return f"peer={a} bytes={b}"
    if event_type == 2:
        peer = "broadcast" if a == BROADCAST else str(a)
        return f"peer={peer} bytes={b}"
    if event_type in (3, 4):
        return f"author={a} round={b}"
    if event_type == 5:
        return f"leader={a} round={b}"
    if event_type == 6:
        return f"records={a}" + (f" bytes={b}" if b else "")
    if event_type == 7:
        return f"round={a} cut={b}"
    if event_type == 8:
        return f"busy={a}us budget={b}us"
    if event_type == 9:
        return f"reason={SNAPSHOT_REASONS.get(a, a)}"
    return f"a={a} b={b}"


class MalformedDump(Exception):
    pass


class Reader:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def take(self, n):
        if len(self.data) - self.pos < n:
            raise MalformedDump("truncated dump")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]


def parse(data):
    """Returns (rings, events); events are (time, seq, label, type, a, b)."""
    reader = Reader(data)
    if reader.take(4) != MAGIC:
        raise MalformedDump("bad magic (not a flightrec dump)")
    if reader.u32() != VERSION:
        raise MalformedDump("unknown dump version")
    ring_count = reader.u32()
    rings = []
    events = []
    for _ in range(ring_count):
        ring_index = reader.u32()
        thread_tag = reader.u64()
        raw_label = reader.take(16).split(b"\0", 1)[0].decode("ascii", "replace")
        label = raw_label or f"tid:{thread_tag}"
        count = reader.u32()
        rings.append((ring_index, thread_tag, label, count))
        for seq in range(count):
            at = reader.u64()
            event_type = reader.u64() & 0xFF
            a = reader.u64()
            b = reader.u64()
            if event_type == 0:
                continue  # kNone padding from the signal-safe writer
            # (at, ring_index, seq) keys a stable chronological sort: same-
            # stamp events keep per-ring claim order.
            events.append((at, ring_index, seq, label, event_type, a, b))
    if reader.pos != len(data):
        raise MalformedDump("trailing bytes after last ring")
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return rings, events


def render(rings, events, out, limit=0):
    if limit and len(events) > limit:
        out.write(f"# (showing last {limit} of {len(events)} events)\n")
        events = events[-limit:]
    out.write(f"{'TIME(us)':>14} {'+DELTA':>10}  {'THREAD':<14}{'EVENT':<16}DETAIL\n")
    prev = None
    for at, _ring, _seq, label, event_type, a, b in events:
        delta = "" if prev is None else f"+{at - prev}"
        name = EVENT_NAMES.get(event_type, f"type{event_type}")
        out.write(f"{at:>14} {delta:>10}  {label:<14}{name:<16}{detail(event_type, a, b)}\n")
        prev = at
    return len(events)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump", help="flightrec-*.bin file to render")
    parser.add_argument("--limit", type=int, default=0,
                        help="show only the last N events (default: all)")
    args = parser.parse_args()

    try:
        with open(args.dump, "rb") as f:
            data = f.read()
        rings, events = parse(data)
    except (OSError, MalformedDump) as error:
        print(f"error: {args.dump}: {error}", file=sys.stderr)
        return 1

    span_s = (events[-1][0] - events[0][0]) / 1e6 if len(events) > 1 else 0.0
    print(f"# {args.dump}: {len(rings)} rings, {len(events)} events, "
          f"{span_s:.2f} s span")
    render(rings, events, sys.stdout, limit=args.limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
