#!/usr/bin/env python3
"""Smoke gate for google-benchmark JSON output.

CI pipes each bench binary's --benchmark_format=json output into a file and
runs this gate on it before uploading the file as a workflow artifact. The
gate fails (exit 1) on:

  * unreadable or malformed JSON,
  * an empty or missing "benchmarks" list,
  * entries that reported an error (error_occurred / error_message),
  * entries with a missing, non-finite or negative real_time,
  * (with --expect NAME) no benchmark whose name contains NAME,
  * (with --compare COUNTER BASE TEST) a TEST-matching entry whose COUNTER
    mean exceeds the BASE-matching entries' mean,
  * (with --max-ns NAME NANOS) NAME-matching entries whose mean real_time
    exceeds NANOS nanoseconds — the absolute hot-path overhead gate
    (bench_obs: a metrics-registry record must stay under 50 ns).

So a bench that bit-rots into producing garbage — or a CI step whose filter
matches nothing — fails the push instead of silently uploading junk.

--compare is the I/O-plane regression gate: bench_io_plane reports
SyscallsPerBlock for an epoll and (where the kernel allows) an io_uring run
of the same cluster, and

    check_bench.py bench_io_plane.json --compare SyscallsPerBlock Epoll Uring

fails the push if the uring plane ever costs more syscalls per committed
block than epoll. When no benchmark matches TEST, the comparison is skipped
with a note — an epoll-only build (MAHIMAHI_IOURING=OFF, or a kernel that
refuses rings) is not a regression.

Usage: check_bench.py FILE.json [--expect NAME_SUBSTRING]...
                      [--compare COUNTER BASE_SUBSTRING TEST_SUBSTRING]...
                      [--max-ns NAME_SUBSTRING NANOS]...
"""

import argparse
import json
import math
import sys


def fail(message: str) -> None:
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="google-benchmark JSON output file")
    parser.add_argument(
        "--expect",
        action="append",
        default=[],
        metavar="NAME_SUBSTRING",
        help="require at least one benchmark whose name contains this "
        "substring (repeatable)",
    )
    parser.add_argument(
        "--compare",
        action="append",
        default=[],
        nargs=3,
        metavar=("COUNTER", "BASE_SUBSTRING", "TEST_SUBSTRING"),
        help="fail when the mean of COUNTER over benchmarks matching "
        "TEST_SUBSTRING exceeds the mean over those matching BASE_SUBSTRING; "
        "skipped with a note when nothing matches TEST_SUBSTRING (repeatable)",
    )
    parser.add_argument(
        "--max-ns",
        action="append",
        default=[],
        nargs=2,
        metavar=("NAME_SUBSTRING", "NANOS"),
        help="fail when the mean real_time (converted to ns) over benchmarks "
        "matching NAME_SUBSTRING exceeds NANOS, or when nothing matches "
        "(repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{args.file}: {error}")

    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(f"{args.file}: empty or missing 'benchmarks' list")

    names = []
    for entry in benchmarks:
        name = entry.get("name")
        if not name:
            fail(f"{args.file}: benchmark entry without a name: {entry!r}")
        if entry.get("error_occurred"):
            fail(f"{name}: {entry.get('error_message', 'error_occurred')}")
        names.append(name)
        if entry.get("run_type") == "aggregate":
            continue  # aggregates (mean/median/stddev) carry derived timings
        real_time = entry.get("real_time")
        if (
            not isinstance(real_time, (int, float))
            or isinstance(real_time, bool)
            or not math.isfinite(real_time)
            or real_time < 0
        ):
            fail(f"{name}: bad real_time {real_time!r}")

    for expect in args.expect:
        if not any(expect in name for name in names):
            shown = ", ".join(names[:10])
            fail(f"{args.file}: no benchmark matching '{expect}' (have: {shown})")

    for counter, base_substr, test_substr in args.compare:
        def counter_values(substring: str) -> list:
            values = []
            for entry in benchmarks:
                if entry.get("run_type") == "aggregate":
                    continue
                if substring not in entry.get("name", ""):
                    continue
                value = entry.get(counter)
                if (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or not math.isfinite(value)
                ):
                    fail(f"{entry['name']}: bad {counter} {value!r}")
                values.append(value)
            return values

        test_values = counter_values(test_substr)
        if not test_values:
            print(
                f"check_bench: note: no benchmark matching '{test_substr}' "
                f"carries {counter}; comparison skipped"
            )
            continue
        base_values = counter_values(base_substr)
        if not base_values:
            fail(
                f"{args.file}: --compare {counter}: nothing matching "
                f"'{base_substr}' carries the counter"
            )
        base_mean = sum(base_values) / len(base_values)
        test_mean = sum(test_values) / len(test_values)
        if test_mean > base_mean:
            fail(
                f"{counter}: '{test_substr}' mean {test_mean:.3f} exceeds "
                f"'{base_substr}' mean {base_mean:.3f}"
            )
        print(
            f"check_bench: OK: {counter}: '{test_substr}' {test_mean:.3f} <= "
            f"'{base_substr}' {base_mean:.3f}"
        )

    # google-benchmark reports real_time in the entry's time_unit (ns unless a
    # bench opted into Unit(kMicrosecond) etc.); normalize before gating.
    to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

    for name_substr, nanos_text in args.max_ns:
        try:
            limit_ns = float(nanos_text)
        except ValueError:
            fail(f"--max-ns {name_substr}: bad nanosecond limit {nanos_text!r}")
        times = []
        for entry in benchmarks:
            if entry.get("run_type") == "aggregate":
                continue
            if name_substr not in entry.get("name", ""):
                continue
            unit = entry.get("time_unit", "ns")
            if unit not in to_ns:
                fail(f"{entry['name']}: unknown time_unit {unit!r}")
            times.append(entry["real_time"] * to_ns[unit])
        if not times:
            fail(f"{args.file}: --max-ns: no benchmark matching '{name_substr}'")
        mean_ns = sum(times) / len(times)
        if mean_ns > limit_ns:
            fail(
                f"--max-ns: '{name_substr}' mean {mean_ns:.1f} ns exceeds "
                f"limit {limit_ns:.1f} ns"
            )
        print(
            f"check_bench: OK: '{name_substr}' mean {mean_ns:.1f} ns <= "
            f"{limit_ns:.1f} ns"
        )

    print(f"check_bench: OK: {args.file}: {len(names)} benchmark entries")


if __name__ == "__main__":
    main()
