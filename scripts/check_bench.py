#!/usr/bin/env python3
"""Smoke gate for google-benchmark JSON output.

CI pipes each bench binary's --benchmark_format=json output into a file and
runs this gate on it before uploading the file as a workflow artifact. The
gate fails (exit 1) on:

  * unreadable or malformed JSON,
  * an empty or missing "benchmarks" list,
  * entries that reported an error (error_occurred / error_message),
  * entries with a missing, non-finite or negative real_time,
  * (with --expect NAME) no benchmark whose name contains NAME.

So a bench that bit-rots into producing garbage — or a CI step whose filter
matches nothing — fails the push instead of silently uploading junk.

Usage: check_bench.py FILE.json [--expect NAME_SUBSTRING]...
"""

import argparse
import json
import math
import sys


def fail(message: str) -> None:
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="google-benchmark JSON output file")
    parser.add_argument(
        "--expect",
        action="append",
        default=[],
        metavar="NAME_SUBSTRING",
        help="require at least one benchmark whose name contains this "
        "substring (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{args.file}: {error}")

    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(f"{args.file}: empty or missing 'benchmarks' list")

    names = []
    for entry in benchmarks:
        name = entry.get("name")
        if not name:
            fail(f"{args.file}: benchmark entry without a name: {entry!r}")
        if entry.get("error_occurred"):
            fail(f"{name}: {entry.get('error_message', 'error_occurred')}")
        names.append(name)
        if entry.get("run_type") == "aggregate":
            continue  # aggregates (mean/median/stddev) carry derived timings
        real_time = entry.get("real_time")
        if (
            not isinstance(real_time, (int, float))
            or isinstance(real_time, bool)
            or not math.isfinite(real_time)
            or real_time < 0
        ):
            fail(f"{name}: bad real_time {real_time!r}")

    for expect in args.expect:
        if not any(expect in name for name in names):
            shown = ", ".join(names[:10])
            fail(f"{args.file}: no benchmark matching '{expect}' (have: {shown})")

    print(f"check_bench: OK: {args.file}: {len(names)} benchmark entries")


if __name__ == "__main__":
    main()
