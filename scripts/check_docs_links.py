#!/usr/bin/env python3
"""Dead-link gate for the repo's markdown docs.

Scans the given markdown files (and any directly given directories for
*.md) for inline links/images `[text](target)` and checks that every
relative target resolves to a real file, and that every `#fragment` on a
markdown target matches a heading in that file (GitHub slug rules:
lowercase, punctuation stripped, spaces to dashes).

External targets (http/https/mailto) are not fetched — CI must not depend
on the network. Exit 1 on any dead link, so a doc rename or a stale anchor
fails the push instead of shipping a 404.

Usage: check_docs_links.py README.md docs [more files or dirs...]
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)  # '# comment' in a fence is not a heading
    slugs = set()
    for match in HEADING_RE.finditer(text):
        slug = github_slug(match.group(1))
        n = 1
        unique = slug
        while unique in slugs:  # GitHub de-dupes repeated headings with -1, -2...
            unique = f"{slug}-{n}"
            n += 1
        slugs.add(unique)
    return slugs


def collect_files(arguments) -> list:
    files = []
    for argument in arguments:
        path = pathlib.Path(argument)
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        else:
            files.append(path)
    return files


def main() -> None:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    errors = []
    checked = 0
    for md in collect_files(sys.argv[1:]):
        if not md.is_file():
            errors.append(f"{md}: file not found")
            continue
        text = CODE_FENCE_RE.sub("", md.read_text(encoding="utf-8"))
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL):
                continue
            checked += 1
            path_part, _, fragment = target.partition("#")
            resolved = (md.parent / path_part).resolve() if path_part else md.resolve()
            if not resolved.exists():
                errors.append(f"{md}: dead link '{target}' ({resolved} missing)")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in anchors_of(resolved):
                    errors.append(f"{md}: dead anchor '{target}' (no heading '#{fragment}')")

    for error in errors:
        print(f"check_docs_links: FAIL: {error}", file=sys.stderr)
    if errors:
        sys.exit(1)
    print(f"check_docs_links: OK: {checked} relative links checked")


if __name__ == "__main__":
    main()
