#!/usr/bin/env python3
"""Validates a Prometheus text-format scrape of the admin endpoint.

CI's cluster smoke step runs examples/observability_demo, curls one of the
ADMIN_PORT=N endpoints it prints, and feeds the scrape to this gate. The gate
fails (exit 1) on:

  * an empty scrape,
  * lines that are neither comments nor `name{labels} value` samples,
  * a sample line whose value does not parse as a finite number,
  * a histogram whose cumulative `le` buckets decrease or whose +Inf bucket
    disagrees with its _count sample,
  * (with --require NAME) no sample whose metric name is exactly NAME or
    NAME plus a histogram suffix (_bucket/_sum/_count) — the "one scrape
    covers the whole pipeline" acceptance check names the stage histograms
    and the finality histogram here.

So an exporter change that emits lines Prometheus would reject — or drops a
pipeline stage from the scrape — fails the push, not the dashboard.

Usage: check_metrics.py FILE [--require NAME]...
       curl -s http://127.0.0.1:$PORT/metrics | check_metrics.py - --require ...
"""

import argparse
import math
import re
import sys

# `name{labels} value` or `name value`; names per Prometheus data model.
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$"
)
LE = re.compile(r'le="(?P<le>[^"]+)"')
HIST_SUFFIX = ("_bucket", "_sum", "_count")


def fail(message: str) -> None:
    print(f"check_metrics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_value(text: str):
    if text == "+Inf":
        return math.inf
    try:
        value = float(text)
    except ValueError:
        return None
    return value if math.isfinite(value) else None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="scrape file, or - for stdin")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="require a sample named NAME, or NAME plus a histogram suffix "
        "(repeatable)",
    )
    args = parser.parse_args()

    if args.file == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.file, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            fail(str(error))

    names = set()
    # name -> list of (le_bound, cumulative_count) in emission order.
    buckets = {}
    counts = {}
    samples = 0
    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = SAMPLE.match(line)
        if not match:
            fail(f"line {line_number}: not a valid sample line: {line!r}")
        name = match.group("name")
        value = parse_value(match.group("value"))
        if value is None:
            fail(f"line {line_number}: bad sample value in: {line!r}")
        names.add(name)
        samples += 1
        if name.endswith("_bucket"):
            le_match = LE.search(match.group("labels") or "")
            if not le_match:
                fail(f"line {line_number}: _bucket sample without an le label")
            bound = parse_value(le_match.group("le"))
            if bound is None:
                fail(f"line {line_number}: bad le bound in: {line!r}")
            buckets.setdefault(name[: -len("_bucket")], []).append((bound, value))
        elif name.endswith("_count"):
            counts[name[: -len("_count")]] = value

    if samples == 0:
        fail("scrape holds no samples")

    for hist, series in sorted(buckets.items()):
        cumulative = -1.0
        for bound, count in series:
            if count < cumulative:
                fail(f"{hist}: le={bound} bucket {count} decreases (cumulative)")
            cumulative = count
        if series[-1][0] != math.inf:
            fail(f"{hist}: bucket series does not end at le=+Inf")
        if hist in counts and series[-1][1] != counts[hist]:
            fail(
                f"{hist}: +Inf bucket {series[-1][1]} != _count {counts[hist]}"
            )

    for required in args.require:
        if required in names:
            continue
        if any(required + suffix in names for suffix in HIST_SUFFIX):
            continue
        shown = ", ".join(sorted(names)[:10])
        fail(f"no sample named '{required}' (have: {shown}, ...)")

    print(
        f"check_metrics: OK: {samples} samples, {len(names)} series, "
        f"{len(buckets)} histograms"
    )


if __name__ == "__main__":
    main()
