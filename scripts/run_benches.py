#!/usr/bin/env python3
"""Declarative CI bench runner: the table below IS the bench matrix.

Each row names a bench binary, the --benchmark_filter/--benchmark_min_time
shape of its CI smoke run, and the scripts/check_bench.py gate arguments for
its JSON output. The workflow calls

    python3 scripts/run_benches.py --build-dir build

once instead of carrying one copy-pasted "Smoke-run X bench (JSON)" step per
binary — adding a bench to CI is adding a row here (and its .json name to
the artifact upload list), not editing workflow YAML.

Per row the runner:

  * fails if the binary is missing (a bench that stops being configured must
    fail the push, not silently vanish from coverage),
  * runs it with the row's filter/min_time, teeing JSON output (when the row
    wants it) to --out-dir/<artifact>,
  * pipes that JSON through check_bench.py with the row's gate arguments, so
    a bench that bit-rots into garbage — or a filter that stops matching —
    fails the push before the artifact uploads.

Rows run in table order and the first failure stops the run (same semantics
as the former one-step-per-bench workflow). --only NAME (repeatable)
restricts the run; --list prints the table and exits.
"""

import argparse
import dataclasses
import pathlib
import subprocess
import sys
from typing import List, Optional


@dataclasses.dataclass(frozen=True)
class Bench:
    name: str            # row name for --only / logs
    binary: str          # executable under --build-dir
    filter: Optional[str] = None    # --benchmark_filter regex (None = all)
    min_time: Optional[str] = None  # --benchmark_min_time (None = default)
    json: bool = True    # False = plain smoke run, no artifact, no gate
    gate: tuple = ()     # extra check_bench.py args after the json path


# The CI bench matrix. Filters and gates are the load-bearing part: each
# --expect pins a series that must exist (renames fail loudly), each
# --compare is a regression gate between two series of one run, --max-ns is
# the absolute hot-path budget (see check_bench.py for semantics, including
# which comparisons self-skip on hosts that cannot run the TEST series).
BENCHES: List[Bench] = [
    # No JSON: a pure does-it-still-run smoke of the signature hot loop.
    Bench(name="micro_crypto", binary="bench_micro_crypto",
          filter="Ed25519VerifyBatch|Ed25519VerifySingleLoop",
          min_time="0.05", json=False),

    Bench(name="mempool", binary="bench_mempool",
          filter="BM_MempoolSubmit/shards:(1|8).*threads:8", min_time="0.05",
          gate=("--expect", "BM_MempoolSubmit")),

    # Serial vs off-loop loop-thread time per commit batch: both modes must
    # be present and well-formed.
    Bench(name="committer", binary="bench_committer",
          filter="BM_CommitBatch", min_time="0.05",
          gate=("--expect", "BM_CommitBatchSerial",
                "--expect", "BM_CommitBatchOffloop")),

    # Inline-sync vs group-commit append cost; the ring-backed flush must
    # never pay more syscalls per record than the classic writer (skipped
    # where the kernel refuses rings).
    Bench(name="wal", binary="bench_wal",
          filter="BM_Wal", min_time="0.05",
          gate=("--expect", "BM_WalAppendInlineSync",
                "--expect", "BM_WalAppendGroupCommit",
                "--expect", "BM_WalGroupDurableLatency",
                "--expect", "BM_WalGroupDurableFsync",
                "--compare", "SyscallsPerRecord", "BM_WalGroupDurableFsync/",
                "BM_WalGroupDurableFsyncUring")),

    # Monolithic replay vs checkpoint + segment-suffix, plus catch-up
    # transfer (full-cut re-send vs delta-chain links). The benches fail
    # themselves on superlinear per-record replay time and on delta
    # catch-up bytes that grow with history length (error_occurred entries
    # fail the gate); the compare additionally pins the delta chain's mean
    # CatchupBytes under the monolithic re-send's.
    Bench(name="recovery", binary="bench_recovery",
          filter="BM_Recovery", min_time="0.05",
          gate=("--expect", "BM_RecoveryReplayMonolithic",
                "--expect", "BM_RecoveryReplayCheckpointSuffix",
                "--expect", "BM_RecoveryCatchupMonolithic",
                "--expect", "BM_RecoveryCatchupDeltaChain",
                "--compare", "CatchupBytes",
                "BM_RecoveryCatchupMonolithic",
                "BM_RecoveryCatchupDeltaChain")),

    # Syscalls per committed block on a real 11-validator committee
    # (Iterations(1): one cluster run per backend — no min_time). The uring
    # plane must never cost more syscalls per block than epoll; the compare
    # self-skips on epoll-only kernels.
    Bench(name="io_plane", binary="bench_io_plane",
          gate=("--expect", "BM_IoPlaneClusterEpoll",
                "--compare", "SyscallsPerBlock", "Epoll", "Uring")),

    # The registry's contract with the pipeline: every record primitive one
    # relaxed atomic add, held under 50 ns single-threaded. (The 8-thread
    # counter series runs for the scaling signal but is not gated: CI
    # runners oversubscribe.)
    Bench(name="obs", binary="bench_obs", min_time="0.05",
          gate=("--expect", "BM_ObsRegistryDump",
                "--max-ns", "BM_ObsCounterAdd/real_time/threads:1", "50",
                "--max-ns", "BM_ObsHistogramRecord", "50",
                "--max-ns", "BM_ObsSpanStamp", "50",
                "--max-ns", "BM_FlightRecorderEvent/real_time/threads:1", "50")),

    # Serial vs conflict-aware parallel apply across the conflict-rate
    # sweep. Parallel must beat serial on the fully disjoint workload; the
    # parallel series only registers on hosts with >= 2 hardware threads,
    # and the compare self-skips (with a note) where it is absent.
    Bench(name="execution", binary="bench_execution", min_time="0.05",
          gate=("--expect", "BM_ExecApplySerial",
                "--compare", "MicrosPerBatch",
                "BM_ExecApplySerial/conflict:0",
                "BM_ExecApplyParallel/conflict:0")),
]


def fail(message: str) -> None:
    print(f"run_benches: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_bench(bench: Bench, build_dir: pathlib.Path, out_dir: pathlib.Path,
              check_bench: pathlib.Path) -> None:
    binary = build_dir / bench.binary
    if not binary.is_file():
        fail(f"{bench.name}: missing binary {binary} (target not built?)")

    command = [str(binary)]
    if bench.filter is not None:
        command.append(f"--benchmark_filter={bench.filter}")
    if bench.min_time is not None:
        command.append(f"--benchmark_min_time={bench.min_time}")
    if bench.json:
        command.append("--benchmark_format=json")

    print(f"run_benches: [{bench.name}] {' '.join(command)}", flush=True)
    result = subprocess.run(command, stdout=subprocess.PIPE if bench.json else None)
    if result.returncode != 0:
        fail(f"{bench.name}: {bench.binary} exited {result.returncode}")
    if not bench.json:
        return

    artifact = out_dir / f"bench_{bench.name}.json"
    artifact.write_bytes(result.stdout)
    gate = [sys.executable, str(check_bench), str(artifact), *bench.gate]
    print(f"run_benches: [{bench.name}] {' '.join(gate[1:])}", flush=True)
    if subprocess.run(gate).returncode != 0:
        fail(f"{bench.name}: check_bench gate failed on {artifact}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build", type=pathlib.Path,
                        help="directory holding the bench binaries")
    parser.add_argument("--out-dir", default=".", type=pathlib.Path,
                        help="where bench_<name>.json artifacts are written")
    parser.add_argument("--only", action="append", default=[], metavar="NAME",
                        help="run only the named row(s); repeatable")
    parser.add_argument("--list", action="store_true",
                        help="print the bench table and exit")
    args = parser.parse_args()

    if args.list:
        for bench in BENCHES:
            shape = "json" if bench.json else "smoke"
            print(f"{bench.name:12} {bench.binary:22} {shape}")
        return

    names = {bench.name for bench in BENCHES}
    unknown = [only for only in args.only if only not in names]
    if unknown:
        fail(f"unknown --only rows {unknown}; have {sorted(names)}")

    selected = [b for b in BENCHES if not args.only or b.name in args.only]
    check_bench = pathlib.Path(__file__).resolve().parent / "check_bench.py"
    args.out_dir.mkdir(parents=True, exist_ok=True)
    for bench in selected:
        run_bench(bench, args.build_dir, args.out_dir, check_bench)
    print(f"run_benches: OK: {len(selected)} bench rows passed")


if __name__ == "__main__":
    main()
