// Crash recovery: a validator dies mid-run and rejoins from its WAL (§4).
//
// Ten geo-replicated validators process 10k tx/s. At t=8s validator 4
// crashes, losing all in-memory state; at t=12s it restarts, replays its
// write-ahead log to rebuild its DAG and proposer round, pulls what it
// missed through the synchronizer, and resumes committing. The run shows:
//
//   * the cluster never stops committing (n=10 tolerates f=3);
//   * the WAL replay count and the absence of equivocations — the log
//     restored the proposer round, so the rejoining validator never
//     double-proposes a round it had already used;
//   * agreement holds across the outage (checked via recorded sequences).
//
// Build & run:  ./build/examples/recovery
#include <cstdio>
#include <filesystem>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

int main() {
  const auto wal_dir = std::filesystem::temp_directory_path() / "mahi_recovery_example";
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);

  SimConfig config;
  config.protocol = Protocol::kMahiMahi5;
  config.n = 10;
  config.wan = true;
  config.load_tps = 10'000;
  config.duration = seconds(25);
  config.warmup = seconds(3);
  config.record_sequences = true;
  config.wal_dir = wal_dir.string();
  config.restarts.push_back({.id = 4, .crash_at = seconds(8), .restart_at = seconds(12)});

  std::printf("10 validators (WAN), 10k tx/s; validator 4 crashes at 8s, "
              "restarts from its WAL at 12s\n\n");
  const SimResult result = run_simulation(config);

  std::printf("committed            %10.0f tx/s\n", result.committed_tps);
  std::printf("avg / p95 latency    %10.3f / %.3f s\n", result.avg_latency_s,
              result.p95_latency_s);
  std::printf("WAL blocks replayed  %10llu\n",
              static_cast<unsigned long long>(result.wal_replayed_blocks));
  std::printf("equivocation cells   %10llu  (0 = recovery restored the proposer round)\n",
              static_cast<unsigned long long>(result.equivocation_cells));

  // Agreement across the restart: every pair of delivered sequences is
  // prefix-consistent, including validator 4's rebuilt one.
  bool consistent = true;
  for (std::size_t i = 0; i < result.sequences.size() && consistent; ++i) {
    for (std::size_t j = i + 1; j < result.sequences.size() && consistent; ++j) {
      const auto& a = result.sequences[i];
      const auto& b = result.sequences[j];
      for (std::size_t k = 0; k < std::min(a.size(), b.size()); ++k) {
        if (a[k] != b[k]) {
          consistent = false;
          break;
        }
      }
    }
  }
  std::printf("agreement            %10s\n", consistent ? "ok" : "VIOLATED");
  std::printf("\nWAL files: %s (one per validator; the restarted validator replayed\n"
              "its own log and re-fetched the outage gap through the synchronizer)\n",
              wal_dir.string().c_str());
  return consistent ? 0 : 1;
}
