// Adversarial schedules: asynchrony attacks against a running cluster.
//
// The defining property of Mahi-Mahi is liveness under an asynchronous
// adversary (§1, §2.1): delays may be arbitrary, but nothing the scheduler
// does can break safety, and commits resume whenever delivery allows. This
// example runs three attacks from sim/adversary.h against a 10-validator
// WAN deployment and prints what each one costs:
//
//   * a 3-second network partition (no quorum on either side -> commits
//     stall, then the backlog drains after the heal);
//   * sustained delay bursts on every link (the "continuously active"
//     asynchronous adversary the 5-round wave is parameterized for);
//   * a targeted DoS that delays one validator's blocks by ~1s (its leader
//     slots get directly skipped; everyone else proceeds).
//
// Build & run:  ./build/examples/adversarial_network
#include <cstdio>
#include <memory>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

namespace {

SimResult run_attack(const char* name, std::shared_ptr<Adversary> adversary) {
  SimConfig config;
  config.protocol = Protocol::kMahiMahi5;
  config.n = 10;
  config.wan = true;
  config.load_tps = 10'000;
  config.duration = seconds(22);
  config.warmup = seconds(2);
  config.record_sequences = true;
  config.adversary = std::move(adversary);

  const SimResult result = run_simulation(config);

  bool agreement = true;
  for (std::size_t i = 0; i < result.sequences.size() && agreement; ++i) {
    for (std::size_t j = i + 1; j < result.sequences.size() && agreement; ++j) {
      const auto& a = result.sequences[i];
      const auto& b = result.sequences[j];
      for (std::size_t k = 0; k < std::min(a.size(), b.size()); ++k) {
        if (a[k] != b[k]) {
          agreement = false;
          break;
        }
      }
    }
  }

  std::printf("%-22s %9.0f %8.3fs %8.3fs %8.3fs %6llu %10s\n", name,
              result.committed_tps, result.avg_latency_s, result.p50_latency_s,
              result.p95_latency_s,
              static_cast<unsigned long long>(result.commit_stats.skipped_slots()),
              agreement ? "ok" : "VIOLATED");
  return result;
}

}  // namespace

int main() {
  std::printf("Mahi-Mahi-5, 10 validators (WAN), 10k tx/s offered\n\n");
  std::printf("%-22s %9s %9s %9s %9s %6s %10s\n", "attack", "tx/s", "avg", "p50",
              "p95", "skips", "agreement");

  run_attack("none", nullptr);
  run_attack("partition 8s-11s",
             std::make_shared<PartitionAdversary>(5, seconds(8), seconds(11)));
  run_attack("bursts 1s/3s <=800ms",
             std::make_shared<BurstDelayAdversary>(seconds(3), seconds(1), millis(800)));
  run_attack("targeted v0 +900ms",
             std::make_shared<TargetedDelayAdversary>(std::set<ValidatorId>{0},
                                                      millis(900)));

  std::printf(
      "\nEvery attack costs latency, none costs safety: the delivered\n"
      "sequences stay prefix-consistent across all validators. The partition\n"
      "stalls commits while active (tail latency absorbs the outage); bursts\n"
      "stretch the average; the targeted victim's slots are directly skipped\n"
      "while the remaining nine validators commit normally.\n");
  return 0;
}
