// Byzantine equivocation: safety under conflicting proposals (challenge 1).
//
// Validator 0 is Byzantine: every round it signs TWO different blocks and
// shows half the committee one and half the other. Mahi-Mahi's uncertified
// DAG cannot prevent this (there are no certificates); instead the ordered
// depth-first vote interpretation guarantees at most one of the twins is
// ever committed per slot, and all honest validators agree on which (§3.2,
// Lemma 2).
//
// Build & run:  ./build/examples/byzantine_equivocation
#include <cstdio>
#include <map>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

int main() {
  SimConfig config;
  config.protocol = Protocol::kMahiMahi5;
  config.n = 4;
  config.equivocators = 1;  // validator 0 equivocates every round
  config.wan = false;
  config.uniform_latency = millis(25);
  config.load_tps = 1'000;
  config.duration = seconds(15);
  config.warmup = seconds(3);
  config.record_sequences = true;

  const SimResult result = run_simulation(config);

  // 1. Liveness was preserved.
  std::printf("throughput: %.0f tx/s, avg latency %.3fs (equivocator active)\n",
              result.committed_tps, result.avg_latency_s);

  // 2. All honest validators delivered the same sequence.
  bool agree = true;
  for (std::size_t v = 1; v < result.sequences.size(); ++v) {
    const auto& a = result.sequences[0];
    const auto& b = result.sequences[v];
    for (std::size_t k = 0; k < std::min(a.size(), b.size()); ++k) {
      if (a[k] != b[k]) {
        agree = false;
        break;
      }
    }
  }
  std::printf("prefix agreement across validators: %s\n", agree ? "YES" : "NO");

  // 3. Integrity (Theorem 2): every block is delivered at most once, by
  // digest. Note both twins MAY be delivered as ordinary data blocks — what
  // the protocol guarantees is a single agreed order and at most one
  // committed LEADER per slot (Lemma 2), checked next.
  std::map<Digest, int> per_digest;
  std::map<std::pair<Round, ValidatorId>, int> honest_per_slot;
  for (const auto& ref : result.sequences[0]) {
    ++per_digest[ref.digest];
    if (ref.author != 0) ++honest_per_slot[{ref.round, ref.author}];
  }
  bool digest_unique = true;
  for (const auto& [digest, count] : per_digest) digest_unique &= count == 1;
  bool honest_unique = true;
  for (const auto& [slot, count] : honest_per_slot) honest_unique &= count == 1;
  std::printf("every delivered block unique by digest: %s\n",
              digest_unique ? "YES" : "NO");
  std::printf("honest blocks delivered once per (round, author): %s\n",
              honest_unique ? "YES" : "NO");

  // 4. Lemma 2: per leader slot, at most one (equivocating) block commits.
  std::map<std::pair<Round, std::uint32_t>, int> committed_per_slot;
  for (const auto& decision : result.decisions) {
    if (decision.kind == SlotDecision::Kind::kCommit) {
      ++committed_per_slot[{decision.slot.round, decision.slot.leader_offset}];
    }
  }
  bool one_leader_per_slot = true;
  for (const auto& [slot, count] : committed_per_slot) one_leader_per_slot &= count == 1;
  std::printf("at most one leader committed per slot: %s\n",
              one_leader_per_slot ? "YES" : "NO");

  const bool ok = agree && digest_unique && honest_unique && one_leader_per_slot;
  return ok ? 0 : 1;
}
