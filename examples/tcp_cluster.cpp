// Real networking: a 4-validator cluster over localhost TCP with WALs.
//
// Each validator is a NodeRuntime — an epoll event-loop thread driving the
// same sans-IO ValidatorCore used in simulation, with length-prefixed frames
// over raw TCP (the C++ analogue of the paper's tokio + raw-TCP stack, §4)
// and a write-ahead log for crash recovery.
//
// The example submits load for a few seconds, kills validator 3, restarts
// it from its WAL, and shows that it rejoins and the cluster keeps
// committing.
//
// Build & run:  ./build/examples/tcp_cluster
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "net/node_runtime.h"

using namespace mahimahi;
using namespace mahimahi::net;
using namespace std::chrono_literals;

namespace {

std::unique_ptr<NodeRuntime> make_node(const Committee::TestSetup& setup, ValidatorId id,
                                       const std::vector<NodeAddress>& addresses,
                                       const std::string& wal_path) {
  NodeRuntimeConfig config;
  config.validator.id = id;
  config.validator.committer = mahi_mahi_5(2);
  config.validator.min_round_delay = millis(20);
  config.peers = addresses;
  config.wal_path = wal_path;
  return std::make_unique<NodeRuntime>(setup.committee, setup.keypairs[id].private_key,
                                       config);
}

}  // namespace

int main() {
  auto setup = Committee::make_test(4);

  // Fixed localhost ports for the demo.
  std::vector<NodeAddress> addresses(4);
  for (int i = 0; i < 4; ++i) addresses[i].port = static_cast<std::uint16_t>(19331 + i);

  const auto wal_dir = std::filesystem::temp_directory_path();
  std::vector<std::string> wal_paths;
  for (int i = 0; i < 4; ++i) {
    auto path = wal_dir / ("mahi_example_node" + std::to_string(i) + ".wal");
    std::filesystem::remove(path);  // fresh demo
    wal_paths.push_back(path.string());
  }

  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (ValidatorId v = 0; v < 4; ++v) {
    nodes.push_back(make_node(setup, v, addresses, wal_paths[v]));
  }
  for (auto& node : nodes) node->start();
  std::printf("4 validators listening on 127.0.0.1:%u..%u, WALs in %s\n",
              addresses[0].port, addresses[3].port, wal_dir.c_str());

  // Open-loop client: 200 tx/s to each validator for 3 seconds.
  std::uint64_t batch_id = 0;
  for (int tick_count = 0; tick_count < 30; ++tick_count) {
    for (auto& node : nodes) {
      TxBatch batch;
      batch.id = ++batch_id;
      batch.count = 20;
      batch.submitted_at = steady_now_micros();
      node->submit({batch});
    }
    std::this_thread::sleep_for(100ms);
  }
  std::this_thread::sleep_for(500ms);
  for (const auto& node : nodes) {
    std::printf("validator %u: committed %llu txs, %llu blocks, round %llu\n",
                node->id(), static_cast<unsigned long long>(node->committed_transactions()),
                static_cast<unsigned long long>(node->committed_blocks()),
                static_cast<unsigned long long>(node->highest_round()));
  }

  // Crash validator 3 and restart it from the WAL.
  std::printf("\n-- crashing validator 3 and restarting from WAL --\n");
  const auto committed_before = nodes[0]->committed_transactions();
  nodes[3]->stop();
  nodes[3].reset();
  nodes[3] = make_node(setup, 3, addresses, wal_paths[3]);
  nodes[3]->start();
  std::printf("validator 3 recovered at round %llu\n",
              static_cast<unsigned long long>(nodes[3]->highest_round()));

  for (int tick_count = 0; tick_count < 20; ++tick_count) {
    TxBatch batch;
    batch.id = ++batch_id;
    batch.count = 20;
    batch.submitted_at = steady_now_micros();
    nodes[0]->submit({batch});
    std::this_thread::sleep_for(100ms);
  }
  std::this_thread::sleep_for(500ms);

  const auto committed_after = nodes[0]->committed_transactions();
  std::printf("cluster committed %llu more txs after the restart\n",
              static_cast<unsigned long long>(committed_after - committed_before));
  for (auto& node : nodes) node->stop();
  return committed_after > committed_before ? 0 : 1;
}
