// Observability: a 4-validator localhost cluster with the admin/metrics
// endpoint enabled, committing load while a scraper can watch.
//
// Every NodeRuntime binds an ephemeral admin port (config.admin_port = 0)
// next to its consensus port and serves the whole registry — pipeline stage
// histograms, the transaction-weighted finality histogram, I/O-plane and WAL
// counters, the loop watchdog — as Prometheus text on /metrics and JSON on
// /metrics.json.
//
// The demo prints one ADMIN_PORT=N line per validator (machine-readable: the
// CI smoke step curls them and feeds the scrape to scripts/check_metrics.py),
// drives load for a few seconds, then prints validator 0's own finality
// summary read back through the registry dump — the same numbers a scraper
// would see.
//
// At exit the demo scrapes validator 0's /trace/commits and prints a
// straggler-attribution table: which validator's block closed each committed
// wave, and by how much it trailed the wave's first arrival.
//
// Env knobs (for the CI flight-recorder smoke):
//   MM_DEMO_STALL_BUDGET_US  loop stall budget in micros (default 250000)
//   MM_DEMO_FLIGHTREC_DIR    directory for watchdog stall dumps (default off)
//
// Build & run:  ./build/examples/observability_demo
// While it runs: curl -s http://127.0.0.1:$PORT/metrics
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "net/node_runtime.h"

using namespace mahimahi;
using namespace mahimahi::net;
using namespace std::chrono_literals;

namespace {

// Minimal loopback HTTP GET (the demo is its own scraper at exit).
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  std::size_t body_needed = std::string::npos;
  for (;;) {
    if (body_needed == std::string::npos) {
      const auto header_end = response.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::size_t content_length = 0;
        const auto field = response.find("Content-Length: ");
        if (field != std::string::npos && field < header_end)
          content_length = std::stoul(response.substr(field + 16));
        body_needed = header_end + 4 + content_length;
      }
    }
    if (body_needed != std::string::npos && response.size() >= body_needed) break;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto header_end = response.find("\r\n\r\n");
  return header_end == std::string::npos ? std::string{} : response.substr(header_end + 4);
}

// Prints the straggler-attribution table from a /trace/commits body: per
// closing author, how many waves that author's block closed and how far its
// arrival trailed the wave's first arrival. Field scanning only — the JSON
// is machine-shaped (fixed field order, see commit_traces_json).
void print_straggler_table(const std::string& traces_json) {
  struct Row {
    std::uint64_t waves = 0;
    std::uint64_t offset_sum = 0;
    std::uint64_t offset_max = 0;
  };
  std::array<Row, 16> rows{};
  std::size_t total = 0;
  std::size_t pos = 0;
  const std::string key = "\"closing\":{\"author\":";
  while ((pos = traces_json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::uint64_t author = std::strtoull(traces_json.c_str() + pos, nullptr, 10);
    const auto offset_pos = traces_json.find("\"offset_micros\":", pos);
    if (offset_pos == std::string::npos || author >= rows.size()) break;
    const std::uint64_t offset =
        std::strtoull(traces_json.c_str() + offset_pos + 16, nullptr, 10);
    rows[author].waves += 1;
    rows[author].offset_sum += offset;
    rows[author].offset_max = std::max(rows[author].offset_max, offset);
    ++total;
  }
  std::printf("straggler attribution (validator 0, last %zu committed waves):\n", total);
  std::printf("  %-9s %-13s %-20s %s\n", "author", "waves_closed",
              "avg_close_offset_us", "max_close_offset_us");
  for (std::size_t author = 0; author < rows.size(); ++author) {
    const Row& row = rows[author];
    if (row.waves == 0) continue;
    std::printf("  %-9zu %-13llu %-20llu %llu\n", author,
                static_cast<unsigned long long>(row.waves),
                static_cast<unsigned long long>(row.offset_sum / row.waves),
                static_cast<unsigned long long>(row.offset_max));
  }
}

}  // namespace

int main() {
  auto setup = Committee::make_test(4);

  std::vector<NodeAddress> addresses(4);
  {
    // Pre-claim ephemeral consensus ports so every node knows the mesh.
    EventLoop probe_loop;
    std::vector<std::unique_ptr<TcpListener>> probes;
    for (int i = 0; i < 4; ++i) {
      probes.push_back(
          std::make_unique<TcpListener>(probe_loop, 0, [](TcpConnectionPtr) {}));
      addresses[i].port = probes.back()->port();
    }
  }

  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (ValidatorId v = 0; v < 4; ++v) {
    NodeRuntimeConfig config;
    config.validator.id = v;
    config.validator.committer = mahi_mahi_5(2);
    config.validator.min_round_delay = millis(20);
    // Execution engine on, so one scrape also covers the mm_exec_* series
    // (the CI smoke requires them).
    config.validator.execute_app = true;
    config.peers = addresses;
    config.admin_port = 0;  // ephemeral; the chosen port prints below
    if (const char* budget = std::getenv("MM_DEMO_STALL_BUDGET_US")) {
      config.loop_stall_budget = std::strtoll(budget, nullptr, 10);
    }
    if (const char* dir = std::getenv("MM_DEMO_FLIGHTREC_DIR")) {
      config.flightrec_dir = dir;
    }
    nodes.push_back(std::make_unique<NodeRuntime>(setup.committee,
                                                  setup.keypairs[v].private_key, config));
  }
  for (auto& node : nodes) node->start();
  for (const auto& node : nodes) {
    std::printf("ADMIN_PORT=%d\n", node->admin_port());
  }
  std::fflush(stdout);

  // Open-loop client: stamped batches so the finality histogram fills.
  std::uint64_t batch_id = 0;
  for (int tick_count = 0; tick_count < 30; ++tick_count) {
    for (auto& node : nodes) {
      TxBatch batch;
      batch.id = ++batch_id;
      batch.count = 20;
      batch.submitted_at = steady_now_micros();
      node->submit({batch});
    }
    std::this_thread::sleep_for(100ms);
  }
  std::this_thread::sleep_for(500ms);

  // Read the same registry a scraper sees, through the in-process dump.
  const obs::MetricsSnapshot snapshot = nodes[0]->metrics_registry().dump();
  const obs::HistogramSnapshot finality = snapshot.histogram("mm_finality_micros");
  std::printf("validator 0: committed %llu txs | finality p50 <= %llu us, "
              "p99 <= %llu us over %llu txs\n",
              static_cast<unsigned long long>(
                  snapshot.counter_value("mm_committed_transactions_total")),
              static_cast<unsigned long long>(finality.percentile(0.50)),
              static_cast<unsigned long long>(finality.percentile(0.99)),
              static_cast<unsigned long long>(finality.count()));

  // Cross-validator commit forensics, read back the way an operator would:
  // scrape /trace/commits and attribute each wave to the arrival that
  // closed it.
  print_straggler_table(http_get(nodes[0]->admin_port(), "/trace/commits"));

  const bool committed = nodes[0]->committed_transactions() > 0;
  for (auto& node : nodes) node->stop();
  return committed ? 0 : 1;
}
