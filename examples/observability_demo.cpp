// Observability: a 4-validator localhost cluster with the admin/metrics
// endpoint enabled, committing load while a scraper can watch.
//
// Every NodeRuntime binds an ephemeral admin port (config.admin_port = 0)
// next to its consensus port and serves the whole registry — pipeline stage
// histograms, the transaction-weighted finality histogram, I/O-plane and WAL
// counters, the loop watchdog — as Prometheus text on /metrics and JSON on
// /metrics.json.
//
// The demo prints one ADMIN_PORT=N line per validator (machine-readable: the
// CI smoke step curls them and feeds the scrape to scripts/check_metrics.py),
// drives load for a few seconds, then prints validator 0's own finality
// summary read back through the registry dump — the same numbers a scraper
// would see.
//
// Build & run:  ./build/examples/observability_demo
// While it runs: curl -s http://127.0.0.1:$PORT/metrics
#include <chrono>
#include <cstdio>
#include <thread>

#include "net/node_runtime.h"

using namespace mahimahi;
using namespace mahimahi::net;
using namespace std::chrono_literals;

int main() {
  auto setup = Committee::make_test(4);

  std::vector<NodeAddress> addresses(4);
  {
    // Pre-claim ephemeral consensus ports so every node knows the mesh.
    EventLoop probe_loop;
    std::vector<std::unique_ptr<TcpListener>> probes;
    for (int i = 0; i < 4; ++i) {
      probes.push_back(
          std::make_unique<TcpListener>(probe_loop, 0, [](TcpConnectionPtr) {}));
      addresses[i].port = probes.back()->port();
    }
  }

  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (ValidatorId v = 0; v < 4; ++v) {
    NodeRuntimeConfig config;
    config.validator.id = v;
    config.validator.committer = mahi_mahi_5(2);
    config.validator.min_round_delay = millis(20);
    config.peers = addresses;
    config.admin_port = 0;  // ephemeral; the chosen port prints below
    nodes.push_back(std::make_unique<NodeRuntime>(setup.committee,
                                                  setup.keypairs[v].private_key, config));
  }
  for (auto& node : nodes) node->start();
  for (const auto& node : nodes) {
    std::printf("ADMIN_PORT=%d\n", node->admin_port());
  }
  std::fflush(stdout);

  // Open-loop client: stamped batches so the finality histogram fills.
  std::uint64_t batch_id = 0;
  for (int tick_count = 0; tick_count < 30; ++tick_count) {
    for (auto& node : nodes) {
      TxBatch batch;
      batch.id = ++batch_id;
      batch.count = 20;
      batch.submitted_at = steady_now_micros();
      node->submit({batch});
    }
    std::this_thread::sleep_for(100ms);
  }
  std::this_thread::sleep_for(500ms);

  // Read the same registry a scraper sees, through the in-process dump.
  const obs::MetricsSnapshot snapshot = nodes[0]->metrics_registry().dump();
  const obs::HistogramSnapshot finality = snapshot.histogram("mm_finality_micros");
  std::printf("validator 0: committed %llu txs | finality p50 <= %llu us, "
              "p99 <= %llu us over %llu txs\n",
              static_cast<unsigned long long>(
                  snapshot.counter_value("mm_committed_transactions_total")),
              static_cast<unsigned long long>(finality.percentile(0.50)),
              static_cast<unsigned long long>(finality.percentile(0.99)),
              static_cast<unsigned long long>(finality.count()));

  const bool committed = nodes[0]->committed_transactions() > 0;
  for (auto& node : nodes) node->stop();
  return committed ? 0 : 1;
}
