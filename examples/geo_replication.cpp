// Geo-replication: compares the four protocols on the paper's 5-region WAN.
//
// Runs Mahi-Mahi-4, Mahi-Mahi-5, Cordial Miners, and Tusk on a simulated
// 10-validator deployment spread over Ohio, Oregon, Cape Town, Hong Kong,
// and Milan (the paper's §5.1 setup), at a moderate fixed load, and prints a
// miniature version of Figure 3's comparison.
//
// Build & run:  ./build/examples/geo_replication
#include <cstdio>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

int main() {
  std::printf("10 validators across 5 AWS regions, 10k tx/s, 512 B txs\n");
  std::printf("%-16s %10s %10s %10s %10s\n", "protocol", "tx/s", "avg lat", "p50",
              "p95");

  for (const Protocol protocol : {Protocol::kMahiMahi4, Protocol::kMahiMahi5,
                                  Protocol::kCordialMiners, Protocol::kTusk}) {
    SimConfig config;
    config.protocol = protocol;
    config.n = 10;
    config.wan = true;  // the 5-region latency matrix
    config.load_tps = 10'000;
    config.duration = seconds(20);
    config.warmup = seconds(5);
    const SimResult result = run_simulation(config);
    std::printf("%-16s %10.0f %9.3fs %9.3fs %9.3fs\n", to_string(protocol).c_str(),
                result.committed_tps, result.avg_latency_s, result.p50_latency_s,
                result.p95_latency_s);
  }

  std::printf(
      "\nExpected shape (paper, Fig. 3): Mahi-Mahi-4 < Mahi-Mahi-5 < Cordial "
      "Miners < Tusk.\n");
  return 0;
}
