// Cluster smoke: an N-validator localhost TCP cluster that must commit.
//
// The CI-facing cousin of tcp_cluster.cpp: everything is env-parameterized
// so the nightly workflow can run the same binary at shapes a per-push job
// cannot afford (50 validators, both I/O backends) without a rebuild:
//
//   MAHIMAHI_SMOKE_VALIDATORS  committee size                (default 4)
//   MAHIMAHI_SMOKE_SECONDS     load duration in seconds      (default 10)
//   MAHIMAHI_SMOKE_BACKEND     epoll | uring | auto          (default auto)
//   MAHIMAHI_SMOKE_EXECUTE     1 = execution engine on: real KV batches,
//                              execute_app + execution_threads (default 0)
//   MAHIMAHI_SMOKE_METRICS     path: write validator 0's full Prometheus
//                              dump here for artifact upload   (default off)
//
// Exit 0 only when every validator committed transactions; with
// MAHIMAHI_SMOKE_EXECUTE also when every validator executed commands with
// zero declared-access violations. An explicit uring request on a kernel
// without rings falls back to epoll (the runtime warns); the resolved
// backend per validator 0 is printed so the nightly log shows what actually
// ran.
//
// Build & run:  ./build/cluster_smoke
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "client/kv_batches.h"
#include "net/node_runtime.h"
#include "net/tcp.h"
#include "obs/export.h"

using namespace mahimahi;
using namespace mahimahi::net;
using namespace std::chrono_literals;

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

IoBackendKind env_backend() {
  const char* raw = std::getenv("MAHIMAHI_SMOKE_BACKEND");
  const std::string value = raw == nullptr ? "auto" : raw;
  if (value == "epoll") return IoBackendKind::kEpoll;
  if (value == "uring") return IoBackendKind::kUring;
  return IoBackendKind::kAuto;
}

const char* backend_name(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kEpoll: return "epoll";
    case IoBackendKind::kUring: return "uring";
    default: return "auto";
  }
}

}  // namespace

int main() {
  const auto n = static_cast<std::uint32_t>(env_u64("MAHIMAHI_SMOKE_VALIDATORS", 4));
  const auto seconds = env_u64("MAHIMAHI_SMOKE_SECONDS", 10);
  const bool execute = env_u64("MAHIMAHI_SMOKE_EXECUTE", 0) != 0;
  const IoBackendKind backend = env_backend();
  const char* metrics_path = std::getenv("MAHIMAHI_SMOKE_METRICS");

  auto setup = Committee::make_test(n);

  // Pre-claim ephemeral ports with short-lived listeners: every node needs
  // the full mesh upfront, and fixed ports collide on busy CI runners.
  std::vector<NodeAddress> addresses(n);
  {
    EventLoop probe_loop;
    std::vector<std::unique_ptr<TcpListener>> probes;
    for (std::uint32_t i = 0; i < n; ++i) {
      probes.push_back(
          std::make_unique<TcpListener>(probe_loop, 0, [](TcpConnectionPtr) {}));
      addresses[i].port = probes.back()->port();
    }
  }

  std::vector<std::unique_ptr<NodeRuntime>> nodes;
  for (ValidatorId v = 0; v < n; ++v) {
    NodeRuntimeConfig config;
    config.validator.id = v;
    config.validator.committer = mahi_mahi_5(2);
    // Large committees exchange more blocks per round; pace rounds a little
    // slower so a CI runner's cores keep up with 50 event loops.
    config.validator.min_round_delay = n >= 16 ? millis(100) : millis(20);
    if (execute) {
      config.validator.execute_app = true;
      config.validator.execution_threads =
          static_cast<std::size_t>(env_u64("MAHIMAHI_SMOKE_EXEC_THREADS", 1));
    }
    config.io_backend = backend;
    config.peers = addresses;
    nodes.push_back(std::make_unique<NodeRuntime>(
        setup.committee, setup.keypairs[v].private_key, config));
  }
  for (auto& node : nodes) node->start();
  std::printf("cluster_smoke: %u validators, backend %s (resolved %s), %llus%s\n",
              n, backend_name(backend), backend_name(nodes[0]->io_backend_kind()),
              static_cast<unsigned long long>(seconds),
              execute ? ", execution on" : "");

  // Open-loop load: one batch per validator per 100ms tick. With execution
  // on, batches are real encoded KV commands at a 25% declared-conflict
  // rate, so the engine schedules genuine multi-wave plans.
  client::KvWorkload workload;
  workload.conflict_percent = 25;
  Rng rng(7);
  std::uint64_t sequence = 0;
  for (std::uint64_t tick = 0; tick < seconds * 10; ++tick) {
    for (std::uint32_t v = 0; v < n; ++v) {
      ++sequence;
      TxBatch batch;
      if (execute) {
        batch = client::synth_kv_batch(workload, v, sequence, rng);
      } else {
        batch.count = 8;
      }
      batch.id = (static_cast<std::uint64_t>(v) << 40) | sequence;
      batch.submitted_at = steady_now_micros();
      nodes[v]->submit({batch});
    }
    std::this_thread::sleep_for(100ms);
  }
  std::this_thread::sleep_for(1s);

  bool ok = true;
  for (const auto& node : nodes) {
    const std::uint64_t committed = node->committed_transactions();
    const auto exec_stats = node->execution_stats();
    if (committed == 0) ok = false;
    if (execute && (exec_stats.commands_applied == 0 ||
                    exec_stats.access_violations != 0)) {
      ok = false;
    }
    if (node->id() == 0 || committed == 0) {
      std::printf(
          "validator %u: committed %llu txs, round %llu, exec commands %llu, "
          "waves %llu, early %llu\n",
          node->id(), static_cast<unsigned long long>(committed),
          static_cast<unsigned long long>(node->highest_round()),
          static_cast<unsigned long long>(exec_stats.commands_applied),
          static_cast<unsigned long long>(exec_stats.waves),
          static_cast<unsigned long long>(exec_stats.early_deliveries));
    }
  }

  if (metrics_path != nullptr && *metrics_path != '\0') {
    std::ofstream out(metrics_path, std::ios::trunc);
    out << obs::render_prometheus(nodes[0]->metrics_registry().dump());
    std::printf("cluster_smoke: metrics dump -> %s\n", metrics_path);
  }

  for (auto& node : nodes) node->stop();
  std::printf("cluster_smoke: %s\n", ok ? "OK" : "FAIL: a validator made no progress");
  return ok ? 0 : 1;
}
