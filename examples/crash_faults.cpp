// Crash faults: the direct skip rule in action (claim C3).
//
// Runs 10 validators with 3 crashed (the maximum for n = 10) and compares
// Mahi-Mahi-5 with Cordial Miners. Mahi-Mahi skips a crashed leader's slot
// as soon as 2f+1 vote-round blocks demonstrably cannot vote for it; Cordial
// Miners has no direct skip and must wait for a later wave's committed
// leader, adding rounds of head-of-line latency (§5.3, Figure 4).
//
// Build & run:  ./build/examples/crash_faults
#include <cstdio>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

int main() {
  std::printf("10 validators, 3 crashed, 5k tx/s\n");
  std::printf("%-16s %9s %9s %9s %14s %14s\n", "protocol", "tx/s", "avg lat", "p95",
              "direct skips", "indirect skips");

  for (const Protocol protocol : {Protocol::kMahiMahi5, Protocol::kMahiMahi4,
                                  Protocol::kCordialMiners}) {
    SimConfig config;
    config.protocol = protocol;
    config.n = 10;
    config.crashed = 3;
    config.wan = true;
    config.load_tps = 5'000;
    config.duration = seconds(20);
    config.warmup = seconds(5);
    const SimResult result = run_simulation(config);
    std::printf("%-16s %9.0f %8.3fs %8.3fs %14llu %14llu\n", to_string(protocol).c_str(),
                result.committed_tps, result.avg_latency_s, result.p95_latency_s,
                static_cast<unsigned long long>(result.commit_stats.direct_skips),
                static_cast<unsigned long long>(result.commit_stats.indirect_skips));
  }

  std::printf(
      "\nMahi-Mahi resolves dead slots with DIRECT skips; Cordial Miners can "
      "only skip\nINDIRECTLY via a later committed anchor — the mechanism "
      "behind its higher latency\nunder faults (paper Fig. 4: 1.7s vs 0.95s).\n");
  return 0;
}
