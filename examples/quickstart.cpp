// Quickstart: four validators reach consensus in-process.
//
// Demonstrates the core public API without any networking:
//   1. create a test committee (4 validators, f = 1),
//   2. instantiate sans-IO ValidatorCores,
//   3. hand-deliver every broadcast block to every peer,
//   4. submit transactions and watch the total-order commit stream.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <deque>

#include "validator/validator.h"

using namespace mahimahi;

int main() {
  // A deterministic 4-validator committee. In production, keys come from a
  // key ceremony; here each validator's keypair derives from a test seed.
  auto setup = Committee::make_test(/*n=*/4);
  std::printf("committee: n=%u f=%u quorum=2f+1=%u\n", setup.committee.size(),
              setup.committee.f(), setup.committee.quorum_threshold());

  // One ValidatorCore per validator, running Mahi-Mahi with a wave length of
  // 5 rounds and 2 leader slots per round (the paper's default).
  std::vector<std::unique_ptr<ValidatorCore>> validators;
  for (ValidatorId v = 0; v < 4; ++v) {
    ValidatorConfig config;
    config.id = v;
    config.committer = mahi_mahi_5(/*leaders=*/2);
    validators.push_back(std::make_unique<ValidatorCore>(
        setup.committee, setup.keypairs[v].private_key, config));
  }

  // Submit a few client transactions to validator 0. The returned Actions
  // carry the proposal that includes them.
  std::deque<std::pair<ValidatorId, Actions>> work;
  TimeMicros now = 0;
  TxBatch batch;
  batch.id = 1;
  batch.count = 3;                       // three 512-byte transactions
  batch.payload = to_bytes("hello mahi-mahi");
  work.emplace_back(0, validators[0]->on_transactions({batch}, now));

  // Drive the cluster: perform every action a core emits — deliver broadcast
  // blocks to all peers, serve fetch requests — instantly. The cores do the
  // rest: propose, validate, advance rounds, and commit.
  std::uint64_t committed_blocks = 0, committed_txs = 0;
  for (ValidatorId v = 0; v < 4; ++v) {
    work.emplace_back(v, validators[v]->on_tick(now));
  }
  while (!work.empty() && now < 200) {
    auto [from, actions] = std::move(work.front());
    work.pop_front();
    ++now;

    // Validator 0 narrates its own commit stream (all validators agree on
    // it — that is the whole point).
    if (from == 0) {
      for (const auto& sub_dag : actions.committed) {
        std::printf("committed slot %-10s leader=%s  (%zu blocks, %llu txs)\n",
                    sub_dag.slot.to_string().c_str(),
                    sub_dag.leader->ref().to_string().c_str(), sub_dag.blocks.size(),
                    static_cast<unsigned long long>(sub_dag.transaction_count()));
        committed_blocks += sub_dag.blocks.size();
        committed_txs += sub_dag.transaction_count();
      }
    }

    for (const auto& block : actions.broadcast) {
      for (ValidatorId to = 0; to < 4; ++to) {
        if (to == from) continue;
        Actions reaction = validators[to]->on_block(block, from, now);
        if (!reaction.empty()) work.emplace_back(to, std::move(reaction));
      }
    }
    for (const auto& request : actions.fetch_requests) {
      Actions served = validators[request.peer]->on_fetch_request(request.refs, from, now);
      if (!served.empty()) work.emplace_back(request.peer, std::move(served));
    }
    for (const auto& response : actions.responses) {
      for (const auto& block : response.blocks) {
        Actions reaction = validators[response.peer]->on_block(block, from, now);
        if (!reaction.empty()) work.emplace_back(response.peer, std::move(reaction));
      }
    }
  }

  std::printf("\nvalidator 0 committed %llu blocks / %llu transactions; "
              "DAG reached round %llu\n",
              static_cast<unsigned long long>(committed_blocks),
              static_cast<unsigned long long>(committed_txs),
              static_cast<unsigned long long>(validators[0]->dag().highest_round()));
  return 0;
}
