// Sharded-mempool microbenchmarks: submit-path scaling with shard count
// under concurrent producers, and drain cost.
//
// The headline series is BM_MempoolSubmit/shards:{1,4,8}/threads:8 — the
// same 8 producers against 1, 4 and 8 lock stripes. Throughput should rise
// with the stripe count (8-shard >= 2x single-shard): that delta is the
// whole point of sharding the pool.
//
// Machine-readable output: pass --benchmark_format=json (CI does).
#include <benchmark/benchmark.h>

#include "mempool/mempool.h"

namespace {

using namespace mahimahi;

MempoolConfig bench_config(std::size_t shards) {
  MempoolConfig config;
  config.shards = shards;
  // Caps sized so admission never rejects: the bench measures the accept
  // path (digest + quota bookkeeping + queue push), not shedding.
  config.max_pool_bytes = 1ull << 40;
  config.max_client_bytes = 1ull << 40;
  config.max_shard_batches = 1ull << 30;
  return config;
}

TxBatch make_batch(std::uint64_t client, std::uint64_t seq) {
  TxBatch batch;
  batch.id = (client << ShardedMempool::kClientKeyShift) | seq;
  batch.count = 1;
  batch.tx_bytes = 512;
  return batch;
}

// Shared across the producer threads of one benchmark run (set up and torn
// down by thread 0 at the framework's barriers).
ShardedMempool* g_pool = nullptr;

// N producer threads, each its own client stream, hammering submit(). Every
// 8192 submissions a producer also drains — the steady state a proposer
// imposes — which keeps residency (and memory) bounded over long runs.
void BM_MempoolSubmit(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_pool = new ShardedMempool(bench_config(static_cast<std::size_t>(state.range(0))));
  }
  const auto client = static_cast<std::uint64_t>(state.thread_index());
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_pool->submit(make_batch(client, seq++)));
    if ((seq & 8191u) == 0) g_pool->drain(8192, 1ull << 40);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["shards"] = static_cast<double>(state.range(0));
    state.counters["rejected"] = static_cast<double>(g_pool->stats().rejected());
    delete g_pool;
    g_pool = nullptr;
  }
}
BENCHMARK(BM_MempoolSubmit)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

// Proposal-path cost: one drain call pulling 256 batches round-robin from
// however many shards hold them.
void BM_MempoolDrain(benchmark::State& state) {
  ShardedMempool pool(bench_config(static_cast<std::size_t>(state.range(0))));
  std::uint64_t seq = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::uint64_t i = 0; i < 256; ++i) {
      pool.submit(make_batch(i % 8, seq++));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(pool.drain(256, 1ull << 40));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MempoolDrain)->ArgName("shards")->Arg(1)->Arg(8);

// Admission-control overhead when the pool rejects: duplicates short-circuit
// at the digest set, the cheapest possible outcome after hashing.
void BM_MempoolDuplicateReject(benchmark::State& state) {
  ShardedMempool pool(bench_config(4));
  const TxBatch batch = make_batch(1, 7);
  pool.submit(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.submit(batch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MempoolDuplicateReject);

}  // namespace

BENCHMARK_MAIN();
