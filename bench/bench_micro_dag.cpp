// Microbenchmarks: DAG operations, serialization, decision rules, WAL.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/committer.h"
#include "sim/dag_builder.h"
#include "types/validation.h"
#include "wal/wal.h"

namespace {

using namespace mahimahi;

void BM_BlockCreateAndSign(benchmark::State& state) {
  auto setup = Committee::make_test(4);
  std::vector<BlockRef> refs;
  for (ValidatorId v = 0; v < 4; ++v) {
    refs.push_back(Block::genesis(v, setup.committee.coin()).ref());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Block::make(0, 1, refs, {},
                                         setup.committee.coin().share(0, 1),
                                         setup.keypairs[0].private_key));
  }
}
BENCHMARK(BM_BlockCreateAndSign);

void BM_BlockSerialize(benchmark::State& state) {
  DagBuilder builder(10);
  builder.build_fully_connected(2);
  const BlockPtr block = builder.dag().slot(2, 0).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(block->serialize());
  }
}
BENCHMARK(BM_BlockSerialize);

void BM_BlockDeserialize(benchmark::State& state) {
  DagBuilder builder(10);
  builder.build_fully_connected(2);
  const Bytes wire = builder.dag().slot(2, 0).front()->serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Block::deserialize({wire.data(), wire.size()}));
  }
}
BENCHMARK(BM_BlockDeserialize);

void BM_BlockValidate(benchmark::State& state) {
  DagBuilder builder(10);
  builder.build_fully_connected(2);
  const BlockPtr block = builder.dag().slot(2, 0).front();
  ValidationOptions options;
  options.verify_signature = state.range(0) != 0;
  options.verify_coin_share = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_block(*block, builder.committee(), options));
  }
}
BENCHMARK(BM_BlockValidate)->Arg(0)->Arg(1);  // structural only vs full crypto

void BM_DagInsertRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    DagBuilder builder(n);
    builder.build_fully_connected(3);
    std::vector<BlockPtr> blocks;
    {
      DagBuilder source(n);
      source.build_fully_connected(4);
      blocks = source.dag().blocks_at(4);
    }
    state.ResumeTiming();
    // Not measurable this way (different committees); measure via add_block:
    benchmark::DoNotOptimize(builder.add_full_round(4));
  }
}
BENCHMARK(BM_DagInsertRound)->Arg(10)->Arg(50);

void BM_CommitterDecideWave(benchmark::State& state) {
  // Cost of the full decision pipeline over a freshly completed wave.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  DagBuilder builder(n);
  builder.build_fully_connected(40);
  for (auto _ : state) {
    Committer committer(builder.dag(), builder.committee(), mahi_mahi_5(2));
    benchmark::DoNotOptimize(committer.try_commit());
  }
  state.SetLabel("full decision pass over 40 rounds");
}
BENCHMARK(BM_CommitterDecideWave)->Arg(10)->Arg(50);

void BM_CommitterIncremental(benchmark::State& state) {
  // Steady-state incremental cost: one try_commit after one new round.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  DagBuilder builder(n);
  builder.build_fully_connected(30);
  Committer committer(builder.dag(), builder.committee(), mahi_mahi_5(2));
  committer.try_commit();
  Round next = 31;
  for (auto _ : state) {
    state.PauseTiming();
    builder.add_full_round(next++);
    state.ResumeTiming();
    benchmark::DoNotOptimize(committer.try_commit());
  }
}
BENCHMARK(BM_CommitterIncremental)->Arg(10)->Arg(50);

void BM_IsLink(benchmark::State& state) {
  DagBuilder builder(10);
  builder.build_fully_connected(20);
  const Dag& dag = builder.dag();
  const BlockPtr top = dag.slot(20, 0).front();
  const BlockRef deep = dag.slot(1, 5).front()->ref();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.is_link(deep, *top));
  }
}
BENCHMARK(BM_IsLink);

void BM_WalAppend(benchmark::State& state) {
  DagBuilder builder(10);
  builder.build_fully_connected(1);
  const BlockPtr block = builder.dag().slot(1, 0).front();
  const auto path = std::filesystem::temp_directory_path() / "mahi_bench.wal";
  std::filesystem::remove(path);
  {
    FileWal wal(path.string());
    for (auto _ : state) {
      wal.append_block(*block, false);
    }
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalAppend);

void BM_WalReplay(benchmark::State& state) {
  DagBuilder builder(10);
  builder.build_fully_connected(1);
  const BlockPtr block = builder.dag().slot(1, 0).front();
  const auto path = std::filesystem::temp_directory_path() / "mahi_bench_replay.wal";
  std::filesystem::remove(path);
  {
    FileWal wal(path.string());
    for (int i = 0; i < 1000; ++i) wal.append_block(*block, false);
  }
  for (auto _ : state) {
    int count = 0;
    FileWal::Visitor visitor;
    visitor.on_block = [&](BlockPtr, bool) { ++count; };
    benchmark::DoNotOptimize(FileWal::replay(path.string(), visitor, false));
    benchmark::DoNotOptimize(count);
  }
  state.SetLabel("1000-block log");
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalReplay);

}  // namespace

BENCHMARK_MAIN();
