// WAL microbenchmarks: inline-sync vs group-commit append cost under
// 1/8/64-record bursts.
//
// The quantity that matters to consensus is what the APPENDER's thread pays
// — on a deployed validator that thread is the event loop, so every micro
// spent in append + sync is a micro not spent multiplexing sockets.
//
//   BM_WalAppendInlineSync   the classic path: burst appends + one sync on
//                            the caller, what perform() used to cost.
//   BM_WalAppendGroupCommit  the staged path: burst appends return after an
//                            encode + memcpy; the writer thread lands groups
//                            concurrently. Caller-side cost only — the disk
//                            rides another thread.
//   BM_WalGroupDurableLatency  full durability latency of a burst (append +
//                            wait for the covering group flush): shows the
//                            per-record amortization as bursts grow — one
//                            write + sync covers the whole burst.
//
// Compare per-record (items/s) numbers: group-commit staging should beat
// inline append+sync at every burst size, and durable latency per record
// should fall sharply from burst 1 to burst 64 (acceptance: amortizing by
// burst 8). Machine-readable output: --benchmark_format=json (CI uploads
// bench_wal.json and gates it with scripts/check_bench.py).
//
// Every series also reports SyscallsPerRecord — kernel entries spent making
// records durable, divided by records landed. Inline fsync pays 2 per burst
// on the appender; group commit pays 2 per GROUP on the writer thread; the
// ring-backed variant (BM_WalGroupDurableFsyncUring, registered only where
// the kernel supports io_uring) pays 1 linked write→fsync submission per
// group. scripts/check_bench.py --compare gates the uring column against the
// classic one.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <future>
#include <string>

#include "types/committee.h"
#include "wal/group_commit_wal.h"
#include "wal/wal.h"
#include "wal/wal_ring.h"

namespace {

using namespace mahimahi;

// One representative block (4-validator committee, one small batch),
// reused for every append: signing dominates construction, not logging.
const Block& test_block() {
  static const Block block = [] {
    static Committee::TestSetup setup = Committee::make_test(4);
    std::vector<BlockRef> refs;
    for (ValidatorId v = 0; v < 4; ++v) {
      refs.push_back(Block::genesis(v, setup.committee.coin()).ref());
    }
    TxBatch batch;
    batch.id = 1;
    batch.count = 16;
    batch.tx_bytes = 512;
    return Block::make(0, 1, refs, {batch}, setup.committee.coin().share(0, 1),
                       setup.keypairs[0].private_key);
  }();
  return block;
}

std::string bench_wal_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("mahi_bench_wal_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

// Recreate the log every so often so long benchmark runs do not fill /tmp.
constexpr std::uint64_t kTruncateEveryBursts = 8192;

void inline_append_bench(benchmark::State& state, bool fsync) {
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  const std::string path = bench_wal_path(fsync ? "inline_fsync" : "inline");
  std::filesystem::remove(path);
  auto wal = std::make_unique<FileWal>(path, fsync);
  std::uint64_t bursts = 0;
  std::uint64_t syscalls = 0;  // accumulated across truncation resets
  for (auto _ : state) {
    for (std::size_t i = 0; i < burst; ++i) wal->append_block(test_block(), false);
    wal->sync();
    if (++bursts % kTruncateEveryBursts == 0) {
      state.PauseTiming();
      syscalls += wal->sync_syscalls();
      wal.reset();
      std::filesystem::remove(path);
      wal = std::make_unique<FileWal>(path, fsync);
      state.ResumeTiming();
    }
  }
  const auto records = state.iterations() * static_cast<std::int64_t>(burst);
  state.SetItemsProcessed(records);
  syscalls += wal->sync_syscalls();
  if (records > 0) {
    state.counters["SyscallsPerRecord"] =
        static_cast<double>(syscalls) / static_cast<double>(records);
  }
  wal.reset();
  std::filesystem::remove(path);
}

// fflush-only durability (process crash), the test/simulator default.
void BM_WalAppendInlineSync(benchmark::State& state) {
  inline_append_bench(state, /*fsync=*/false);
}
BENCHMARK(BM_WalAppendInlineSync)->ArgName("burst")->Arg(1)->Arg(8)->Arg(64);

// fsync durability (machine crash) — the deployment-grade baseline whose
// per-sync milliseconds the group path amortizes and offloads.
void BM_WalAppendInlineFsync(benchmark::State& state) {
  inline_append_bench(state, /*fsync=*/true);
}
BENCHMARK(BM_WalAppendInlineFsync)->ArgName("burst")->Arg(1)->Arg(8)->Arg(64);

void BM_WalAppendGroupCommit(benchmark::State& state) {
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  const std::string path = bench_wal_path("group");
  std::filesystem::remove(path);
  GroupCommitWalOptions options;
  options.flush_interval = 0;  // writer flushes whatever accumulated, ASAP
  auto make_wal = [&] {
    return std::make_unique<GroupCommitWal>(std::make_unique<FileWal>(path), options);
  };
  auto wal = make_wal();
  std::uint64_t bursts = 0;
  std::uint64_t groups = 0;
  std::uint64_t flush_syscalls = 0;
  for (auto _ : state) {
    // Caller-side cost only: appends stage and return. The bounded staging
    // buffer keeps this honest — if the writer cannot keep up, backpressure
    // shows up right here.
    for (std::size_t i = 0; i < burst; ++i) wal->append_block(test_block(), false);
    if (++bursts % kTruncateEveryBursts == 0) {
      state.PauseTiming();
      groups += wal->groups_flushed();
      flush_syscalls += wal->group_flush_syscalls();
      wal.reset();
      std::filesystem::remove(path);
      wal = make_wal();
      state.ResumeTiming();
    }
  }
  const auto records = state.iterations() * static_cast<std::int64_t>(burst);
  state.SetItemsProcessed(records);
  groups += wal->groups_flushed();
  flush_syscalls += wal->group_flush_syscalls();
  state.counters["groups"] = static_cast<double>(groups);
  if (records > 0) {
    state.counters["SyscallsPerRecord"] =
        static_cast<double>(flush_syscalls) / static_cast<double>(records);
  }
  wal.reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_WalAppendGroupCommit)->ArgName("burst")->Arg(1)->Arg(8)->Arg(64);

void group_durable_bench(benchmark::State& state, bool fsync, bool use_uring) {
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  const std::string path = bench_wal_path(
      use_uring ? "durable_uring" : (fsync ? "durable_fsync" : "durable"));
  std::filesystem::remove(path);
  GroupCommitWalOptions options;
  options.flush_interval = 0;
  options.use_io_uring = use_uring;
  auto make_wal = [&] {
    return std::make_unique<GroupCommitWal>(std::make_unique<FileWal>(path, fsync),
                                            options);
  };
  auto wal = make_wal();
  if (use_uring && !wal->wal_ring_active()) {
    state.SkipWithError("WAL ring did not come up despite runtime support probe");
    return;
  }
  std::uint64_t bursts = 0;
  std::uint64_t groups = 0;
  std::uint64_t flush_syscalls = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < burst; ++i) wal->append_block(test_block(), false);
    // Ack round trip: the whole burst becomes durable under one (or very
    // few) write + sync, so per-record latency amortizes with burst size.
    std::promise<void> durable;
    wal->on_durable([&durable] { durable.set_value(); });
    durable.get_future().wait();
    if (++bursts % kTruncateEveryBursts == 0) {
      state.PauseTiming();
      groups += wal->groups_flushed();
      flush_syscalls += wal->group_flush_syscalls();
      wal.reset();
      std::filesystem::remove(path);
      wal = make_wal();
      state.ResumeTiming();
    }
  }
  const auto records = state.iterations() * static_cast<std::int64_t>(burst);
  state.SetItemsProcessed(records);
  groups += wal->groups_flushed();
  flush_syscalls += wal->group_flush_syscalls();
  state.counters["groups"] = static_cast<double>(groups);
  if (records > 0) {
    state.counters["SyscallsPerRecord"] =
        static_cast<double>(flush_syscalls) / static_cast<double>(records);
  }
  wal.reset();
  std::filesystem::remove(path);
}

void BM_WalGroupDurableLatency(benchmark::State& state) {
  group_durable_bench(state, /*fsync=*/false, /*use_uring=*/false);
}
BENCHMARK(BM_WalGroupDurableLatency)->ArgName("burst")->Arg(1)->Arg(8)->Arg(64);

// The headline: one fsync covers the whole burst, so per-record durable
// latency falls ~linearly with burst size, versus BM_WalAppendInlineFsync
// which pays the device each time the appender syncs.
void BM_WalGroupDurableFsync(benchmark::State& state) {
  group_durable_bench(state, /*fsync=*/true, /*use_uring=*/false);
}
BENCHMARK(BM_WalGroupDurableFsync)->ArgName("burst")->Arg(1)->Arg(8)->Arg(64);

// Same workload landed through the WAL submission ring: one linked
// write→fsync io_uring pair per group. Registered from main() only where the
// kernel supports io_uring, so the JSON never carries a skipped entry on
// hosts (or CI runners) that refuse rings.
void BM_WalGroupDurableFsyncUring(benchmark::State& state) {
  group_durable_bench(state, /*fsync=*/true, /*use_uring=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  if (mahimahi::WalUring::supported()) {
    benchmark::RegisterBenchmark("BM_WalGroupDurableFsyncUring",
                                 BM_WalGroupDurableFsyncUring)
        ->ArgName("burst")
        ->Arg(1)
        ->Arg(8)
        ->Arg(64);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
