// Ablations of Mahi-Mahi's design choices (DESIGN.md §7).
//
// A: overlapping waves (a wave every round) vs strided waves (one wave per
//    wave_length rounds) — strided degenerates into Cordial Miners' cadence.
// B: the direct skip rule, on vs off, under crash faults — off reproduces
//    Cordial Miners' head-of-line blocking.
// C: wave length 3 — safe but not live under adversarial scheduling
//    (Appendix C note): the adversary suppresses elected leaders and no slot
//    ever directly commits, while the random schedule still commits.
#include <cstdio>

#include "core/committer.h"
#include "sim/dag_builder.h"
#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

namespace {

SimResult run_with(CommitterOptions options, std::uint32_t crashed) {
  SimConfig config;
  config.protocol = Protocol::kMahiMahi5;  // overridden below
  config.committer_override = options;
  config.n = 10;
  config.crashed = crashed;
  config.wan = true;
  config.load_tps = 5'000;
  config.duration = seconds(20);
  config.warmup = seconds(5);
  config.seed = 21;
  return run_simulation(config);
}

void ablation_wave_stride() {
  std::printf("--- A: overlapping vs strided waves (w=5, 2 leaders, no faults) ---\n");
  for (const Round stride : {Round{1}, Round{5}}) {
    CommitterOptions options = mahi_mahi_5(2);
    options.wave_stride = stride;
    const SimResult result = run_with(options, 0);
    std::printf("stride=%llu  %s\n", static_cast<unsigned long long>(stride),
                result.to_string().c_str());
  }
  std::printf("\n");
}

void ablation_direct_skip() {
  std::printf("--- B: direct skip rule under 3 crash faults (w=5, 2 leaders) ---\n");
  for (const bool direct_skip : {true, false}) {
    CommitterOptions options = mahi_mahi_5(2);
    options.direct_skip = direct_skip;
    const SimResult result = run_with(options, 3);
    std::printf("direct_skip=%-5s %s\n", direct_skip ? "on" : "off",
                result.to_string().c_str());
  }
  std::printf("\n");
}

void ablation_wave_length_3() {
  std::printf("--- C: wave length 3 — liveness under schedule control ---\n");
  // DAG-model experiment (no timing): count direct commits over 60 rounds
  // under the random schedule vs the leader-suppressing adversary.
  for (const bool adversarial : {false, true}) {
    DagBuilder builder(4, 11);
    Rng rng(33);
    CommitterOptions options;
    options.wave_length = 3;
    options.leaders_per_round = 1;
    for (Round r = 1; r <= 60; ++r) {
      if (adversarial && r >= 2) {
        builder.add_adversarial_round(r, {builder.leader_of({r - 1, 0}, options)});
      } else {
        builder.add_random_network_round(r, rng);
      }
    }
    Committer committer(builder.dag(), builder.committee(), options);
    committer.try_commit();
    const auto& stats = committer.stats();
    std::printf(
        "w=3 %-12s direct=%llu indirect=%llu skips=%llu first-pending-round=%llu\n",
        adversarial ? "adversarial" : "random",
        static_cast<unsigned long long>(stats.direct_commits),
        static_cast<unsigned long long>(stats.indirect_commits),
        static_cast<unsigned long long>(stats.skipped_slots()),
        static_cast<unsigned long long>(committer.next_pending_slot().round));
  }
  std::printf("(adversarial w=3: expect commits ~0 and the pending round stuck "
              "near 1 — the\n common-core guarantee of Lemma 10 needs two rounds "
              "between propose and vote.)\n\n");
}

void ablation_gc_depth() {
  std::printf("--- D: garbage-collection depth (w=5, 2 leaders, no faults) ---\n");
  std::printf("%-10s %12s %10s %10s\n", "gc_depth", "dag blocks", "tps", "avg lat");
  for (const Round depth : {Round{0}, Round{32}, Round{8}}) {
    CommitterOptions options = mahi_mahi_5(2);
    options.gc_depth = depth;
    const SimResult result = run_with(options, 0);
    std::printf("%-10llu %12llu %10.0f %9.3fs\n",
                static_cast<unsigned long long>(depth),
                static_cast<unsigned long long>(result.total_blocks),
                result.committed_tps, result.avg_latency_s);
  }
  std::printf("(the deterministic delivery cut bounds the retained DAG at roughly\n"
              " n * (gc_depth + pipeline) blocks with no cost to throughput,\n"
              " latency, or agreement — see tests/test_gc.cpp)\n\n");
}

}  // namespace

int main() {
  std::printf("=== Ablations (DESIGN.md §7) ===\n\n");
  ablation_wave_stride();
  ablation_direct_skip();
  ablation_wave_length_3();
  ablation_gc_depth();
  return 0;
}
