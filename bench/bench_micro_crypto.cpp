// Microbenchmarks: cryptographic substrate (google-benchmark).
//
// The paper argues uncertified DAGs save certificate-verification CPU; these
// numbers quantify this implementation's primitive costs (§4 discussion).
#include <benchmark/benchmark.h>

#include "common/crc32.h"
#include "crypto/blake2b.h"
#include "crypto/coin.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace {

using namespace mahimahi;
using namespace mahimahi::crypto;

Bytes make_input(std::size_t size) {
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) data[i] = static_cast<std::uint8_t>(i * 31);
  return data;
}

void BM_Blake2b256(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Blake2b::hash256({input.data(), input.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Blake2b256)->Arg(64)->Arg(512)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash({input.data(), input.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(512)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::hash({input.data(), input.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(512)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = make_input(32);
  const Bytes input = make_input(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hmac_sha256({key.data(), key.size()}, {input.data(), input.size()}));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_Crc32(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32({input.data(), input.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096);

void BM_Ed25519Keygen(benchmark::State& state) {
  std::array<std::uint8_t, 32> seed{};
  std::uint8_t counter = 0;
  for (auto _ : state) {
    seed[0] = ++counter;
    benchmark::DoNotOptimize(ed25519_keypair_from_seed(seed));
  }
}
BENCHMARK(BM_Ed25519Keygen);

void BM_Ed25519Sign(benchmark::State& state) {
  std::array<std::uint8_t, 32> seed{};
  const auto keypair = ed25519_keypair_from_seed(seed);
  const Bytes message = make_input(32);  // blocks sign their 32-byte digest
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ed25519_sign(keypair.private_key, {message.data(), message.size()}));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  std::array<std::uint8_t, 32> seed{};
  const auto keypair = ed25519_keypair_from_seed(seed);
  const Bytes message = make_input(32);
  const auto signature =
      ed25519_sign(keypair.private_key, {message.data(), message.size()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ed25519_verify(keypair.public_key, {message.data(), message.size()}, signature));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_CoinShare(benchmark::State& state) {
  const ThresholdCoin coin(50, 16, Blake2b::hash256(as_bytes_view("bench")));
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin.share(3, ++round));
  }
}
BENCHMARK(BM_CoinShare);

void BM_CoinCombine(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  const ThresholdCoin coin(n, f, Blake2b::hash256(as_bytes_view("bench")));
  std::vector<std::pair<std::uint32_t, CoinShare>> shares;
  for (std::uint32_t a = 0; a < 2 * f + 1; ++a) shares.emplace_back(a, coin.share(a, 9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin.combine(9, shares));
  }
}
BENCHMARK(BM_CoinCombine)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
