// Microbenchmarks: cryptographic substrate (google-benchmark).
//
// The paper argues uncertified DAGs save certificate-verification CPU; these
// numbers quantify this implementation's primitive costs (§4 discussion).
#include <benchmark/benchmark.h>

#include "common/crc32.h"
#include "crypto/blake2b.h"
#include "crypto/coin.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace {

using namespace mahimahi;
using namespace mahimahi::crypto;

Bytes make_input(std::size_t size) {
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) data[i] = static_cast<std::uint8_t>(i * 31);
  return data;
}

void BM_Blake2b256(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Blake2b::hash256({input.data(), input.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Blake2b256)->Arg(64)->Arg(512)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash({input.data(), input.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(512)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::hash({input.data(), input.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(512)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = make_input(32);
  const Bytes input = make_input(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hmac_sha256({key.data(), key.size()}, {input.data(), input.size()}));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_Crc32(benchmark::State& state) {
  const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32({input.data(), input.size()}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096);

void BM_Ed25519Keygen(benchmark::State& state) {
  std::array<std::uint8_t, 32> seed{};
  std::uint8_t counter = 0;
  for (auto _ : state) {
    seed[0] = ++counter;
    benchmark::DoNotOptimize(ed25519_keypair_from_seed(seed));
  }
}
BENCHMARK(BM_Ed25519Keygen);

void BM_Ed25519Sign(benchmark::State& state) {
  std::array<std::uint8_t, 32> seed{};
  const auto keypair = ed25519_keypair_from_seed(seed);
  const Bytes message = make_input(32);  // blocks sign their 32-byte digest
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ed25519_sign(keypair.private_key, {message.data(), message.size()}));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  std::array<std::uint8_t, 32> seed{};
  const auto keypair = ed25519_keypair_from_seed(seed);
  const Bytes message = make_input(32);
  const auto signature =
      ed25519_sign(keypair.private_key, {message.data(), message.size()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ed25519_verify(keypair.public_key, {message.data(), message.size()}, signature));
  }
}
BENCHMARK(BM_Ed25519Verify);

// --- Batch verification ------------------------------------------------------
//
// The ingestion pipeline's headline win: verifying a worker batch of blocks
// as one random-linear-combination check. `authors` models the committee —
// a 64-block batch from 10 validators collapses to 10 public-key scalar
// multiplications plus one fixed-base term.

struct BatchFixture {
  std::vector<Ed25519Keypair> keypairs;
  std::vector<Bytes> messages;
  std::vector<Ed25519BatchItem> items;
};

BatchFixture make_batch(std::size_t count, std::size_t authors) {
  BatchFixture fixture;
  std::array<std::uint8_t, 32> seed{};
  for (std::size_t a = 0; a < authors; ++a) {
    seed[0] = static_cast<std::uint8_t>(a + 1);
    fixture.keypairs.push_back(ed25519_keypair_from_seed(seed));
  }
  for (std::size_t i = 0; i < count; ++i) {
    Bytes message = make_input(32);  // blocks sign their 32-byte digest
    message[0] = static_cast<std::uint8_t>(i);
    fixture.messages.push_back(std::move(message));
  }
  for (std::size_t i = 0; i < count; ++i) {
    const auto& kp = fixture.keypairs[i % authors];
    const auto& message = fixture.messages[i];
    fixture.items.push_back({kp.public_key, {message.data(), message.size()},
                             ed25519_sign(kp.private_key, {message.data(), message.size()})});
  }
  return fixture;
}

// Baseline: the pre-pipeline ingestion cost — one ed25519_verify per block.
void BM_Ed25519VerifySingleLoop(benchmark::State& state) {
  const auto fixture = make_batch(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    bool all = true;
    for (const auto& item : fixture.items) {
      all &= ed25519_verify(item.key, item.message, item.signature);
    }
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Ed25519VerifySingleLoop)
    ->ArgsProduct({{16, 64}, {10}})
    ->ArgNames({"batch", "authors"});

void BM_Ed25519VerifyBatch(benchmark::State& state) {
  const auto fixture = make_batch(static_cast<std::size_t>(state.range(0)),
                                  static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_verify_batch(fixture.items));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Ed25519VerifyBatch)
    ->ArgsProduct({{16, 64}, {10}})      // committee-shaped: authors repeat
    ->ArgNames({"batch", "authors"});
BENCHMARK(BM_Ed25519VerifyBatch)
    ->Args({64, 64})                     // worst case: all keys distinct
    ->ArgNames({"batch", "authors"});

void BM_CoinVerifySharesBatch(benchmark::State& state) {
  const ThresholdCoin coin(50, 16, Blake2b::hash256(as_bytes_view("bench")));
  std::vector<ThresholdCoin::ShareQuery> queries;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const std::uint32_t author = i % 10;
    queries.push_back({author, i / 10 + 1, coin.share(author, i / 10 + 1)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin.verify_shares(queries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_CoinVerifySharesBatch);

void BM_CoinShare(benchmark::State& state) {
  const ThresholdCoin coin(50, 16, Blake2b::hash256(as_bytes_view("bench")));
  std::uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin.share(3, ++round));
  }
}
BENCHMARK(BM_CoinShare);

void BM_CoinCombine(benchmark::State& state) {
  const std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  const ThresholdCoin coin(n, f, Blake2b::hash256(as_bytes_view("bench")));
  std::vector<std::pair<std::uint32_t, CoinShare>> shares;
  for (std::uint32_t a = 0; a < 2 * f + 1; ++a) shares.emplace_back(a, coin.share(a, 9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin.combine(9, shares));
  }
}
BENCHMARK(BM_CoinCombine)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
