// I/O-plane comparison: the same 11-validator loopback TCP committee — group
// commit + fsync WAL, verification inline on the loop thread — run once per
// backend, measured in SYSCALLS PER COMMITTED BLOCK rather than wall time.
//
// Wall time on a loopback cluster mostly measures the scheduler; what the
// io_uring plane actually changes is how many kernel entries each committed
// block costs. The counters here come straight from the runtime's own
// accounting (NodeRuntime::io_plane_report):
//
//   NetSyscallsPerBlock  data-plane entries — one recv/sendmsg per readiness
//                        event on epoll, one io_uring_enter per loop tick
//                        (covering every send, recv re-arm and cancel the
//                        tick produced) on uring;
//   WalSyscallsPerBlock  group-flush entries on the WAL writer thread —
//                        write + fsync classically, one linked write→fsync
//                        submission with the WAL ring;
//   SyscallsPerBlock     the sum, the headline metric.
//
// Entries: BM_IoPlaneClusterEpoll always; BM_IoPlaneClusterUring only where
// the kernel supports io_uring (registered from main(), so no skipped-entry
// noise in the JSON). CI diffs the two with
//   scripts/check_bench.py --compare SyscallsPerBlock Epoll Uring
// which fails the push if the uring plane ever costs more syscalls per
// committed block than epoll.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "net/io_backend.h"
#include "net/node_runtime.h"
#include "types/committee.h"

namespace {

using namespace mahimahi;
using namespace mahimahi::net;
namespace fs = std::filesystem;

constexpr ValidatorId kValidators = 11;      // 10+ peers per the acceptance bar
constexpr std::uint64_t kTargetBlocks = 33;  // committed blocks per node (~3 waves)

std::string bench_dir(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("mahi_bench_io_") + tag + "_" + std::to_string(::getpid())))
      .string();
}

void io_plane_cluster_bench(benchmark::State& state, IoBackendKind kind) {
  const std::string dir = bench_dir(to_string(kind));
  for (auto _ : state) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    auto setup = Committee::make_test(kValidators);

    // Pre-claim ephemeral ports so every node knows every peer's address
    // before any of them starts.
    std::vector<NodeAddress> addresses(kValidators);
    {
      EventLoop probe_loop;
      std::vector<std::unique_ptr<TcpListener>> probes;
      for (ValidatorId i = 0; i < kValidators; ++i) {
        probes.push_back(
            std::make_unique<TcpListener>(probe_loop, 0, [](TcpConnectionPtr) {}));
        addresses[i].port = probes.back()->port();
      }
    }

    // Co-located committee on a small machine: one shared verifier cache
    // (every block verifies once, not 11 times) and inline verification, so
    // the loop thread's work is dominated by the thing under test —
    // multiplexing 20 sockets and feeding the WAL.
    auto cache = std::make_shared<VerifierCache>();
    std::vector<std::unique_ptr<NodeRuntime>> nodes;
    for (ValidatorId v = 0; v < kValidators; ++v) {
      NodeRuntimeConfig config;
      config.validator.id = v;
      config.validator.committer = mahi_mahi_5(1);
      config.validator.min_round_delay = millis(10);
      config.validator.signature_cache = cache;
      config.validator.wal_group_commit = true;
      config.validator.wal_fsync = true;
      config.peers = addresses;
      config.wal_path = dir + "/v" + std::to_string(v) + ".wal";
      config.tick_interval = millis(10);
      config.verify_threads = 0;
      config.io_backend = kind;
      nodes.push_back(std::make_unique<NodeRuntime>(
          setup.committee, setup.keypairs[v].private_key, config));
    }
    for (auto& node : nodes) node->start();
    if (nodes[0]->io_backend_kind() != kind) {
      state.SkipWithError("requested backend did not materialize");
      for (auto& node : nodes) node->stop();
      break;
    }
    TxBatch batch;
    batch.id = 7;
    batch.count = 10;
    nodes[0]->submit({batch});

    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
    bool done = false;
    while (!done && std::chrono::steady_clock::now() < deadline) {
      done = true;
      for (auto& node : nodes) {
        if (node->committed_blocks() < kTargetBlocks) {
          done = false;
          break;
        }
      }
      if (!done) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    // Counters are read BEFORE stop(): shutdown drains and closes everything,
    // and those teardown syscalls are not part of the steady-state cost.
    std::uint64_t net_syscalls = 0;
    std::uint64_t wal_syscalls = 0;
    std::uint64_t blocks = 0;
    bool ring_active = true;
    for (auto& node : nodes) {
      const auto report = node->io_plane_report();
      net_syscalls += report.submit_syscalls;
      wal_syscalls += report.wal_flush_syscalls;
      blocks += node->committed_blocks();
      ring_active = ring_active && report.wal_ring_active;
    }
    for (auto& node : nodes) node->stop();
    nodes.clear();
    fs::remove_all(dir);
    if (!done) {
      state.SkipWithError("cluster missed the commit target before the deadline");
      break;
    }

    state.counters["Blocks"] = static_cast<double>(blocks);
    state.counters["NetSyscallsPerBlock"] =
        static_cast<double>(net_syscalls) / static_cast<double>(blocks);
    state.counters["WalSyscallsPerBlock"] =
        static_cast<double>(wal_syscalls) / static_cast<double>(blocks);
    state.counters["SyscallsPerBlock"] =
        static_cast<double>(net_syscalls + wal_syscalls) / static_cast<double>(blocks);
    state.counters["WalRingActive"] =
        kind == IoBackendKind::kUring && ring_active ? 1.0 : 0.0;
    state.SetItemsProcessed(static_cast<std::int64_t>(blocks));
  }
}

void BM_IoPlaneClusterEpoll(benchmark::State& state) {
  io_plane_cluster_bench(state, IoBackendKind::kEpoll);
}
BENCHMARK(BM_IoPlaneClusterEpoll)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_IoPlaneClusterUring(benchmark::State& state) {
  io_plane_cluster_bench(state, IoBackendKind::kUring);
}

}  // namespace

int main(int argc, char** argv) {
  if (uring_backend_available()) {
    benchmark::RegisterBenchmark("BM_IoPlaneClusterUring", BM_IoPlaneClusterUring)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
