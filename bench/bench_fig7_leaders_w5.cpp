// Figure 7 (Appendix D): leaders per round for Mahi-Mahi-5.
//
// Same experiment as Figure 5 with a wave length of 5: 10 validators, 1-3
// leaders, zero and three crash faults. Paper reference: same trend as
// Fig. 5 — ~40ms ideal / ~100ms faulty improvement from 1 to 3 leaders.
#include <cstdio>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

int main() {
  std::printf("=== Figure 7: leaders per round, Mahi-Mahi-5, 10 validators ===\n");
  std::printf("%-8s %7s %9s | %9s %8s %8s\n", "leaders", "faults", "load", "tx/s",
              "avg", "p95");

  for (const std::uint32_t leaders : {1u, 2u, 3u}) {
    for (const std::uint32_t crashed : {0u, 3u}) {
      for (const double load : {10'000.0, 40'000.0, 80'000.0}) {
        if (crashed == 3 && load > 40'000.0) continue;
        SimConfig config;
        config.protocol = Protocol::kMahiMahi5;
        config.n = 10;
        config.leaders_per_round = leaders;
        config.crashed = crashed;
        config.wan = true;
        config.load_tps = load;
        config.duration = seconds(20);
        config.warmup = seconds(5);
        config.seed = 42;
        const SimResult result = run_simulation(config);
        std::printf("%-8u %7u %9.0f | %9.0f %7.3fs %7.3fs\n", leaders, crashed, load,
                    result.committed_tps, result.avg_latency_s, result.p95_latency_s);
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }
  return 0;
}
