// Figure 3: comparative throughput-latency under ideal conditions.
//
// WAN, 10 and 50 validators, no faults, 512 B transactions, 2 leaders per
// round for Mahi-Mahi. Sweeps offered load per protocol and prints the
// latency-throughput curve — the same series as the paper's Figure 3.
//
// Paper reference points (absolute numbers are testbed-specific; the SHAPE
// is what this harness reproduces — see EXPERIMENTS.md):
//   10 nodes: peak ~100-130k tx/s; latency Tusk 3.5s, CM 1.5s, MM-5 1.1s,
//             MM-4 0.9s.
//   50 nodes: CM/MM >350k tx/s, Tusk ~125k; latency Tusk 3.5s, CM 2.6s,
//             MM-5 2.0s, MM-4 1.5s.
#include <cstdio>
#include <vector>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

int main() {
  std::printf("=== Figure 3: throughput-latency, ideal WAN conditions ===\n");
  std::printf("%-16s %4s %9s | %9s %8s %8s %8s\n", "protocol", "n", "load",
              "tx/s", "avg", "p50", "p95");

  const std::vector<Protocol> protocols = {Protocol::kTusk, Protocol::kCordialMiners,
                                           Protocol::kMahiMahi5, Protocol::kMahiMahi4};

  for (const std::uint32_t n : {10u, 50u}) {
    const std::vector<double> loads =
        n == 10 ? std::vector<double>{5'000, 25'000, 50'000, 75'000, 100'000, 125'000}
                : std::vector<double>{25'000, 100'000, 200'000, 300'000, 350'000};
    for (const Protocol protocol : protocols) {
      for (const double load : loads) {
        SimConfig config;
        config.protocol = protocol;
        config.n = n;
        config.leaders_per_round = 2;
        config.wan = true;
        config.load_tps = load;
        config.duration = n == 10 ? seconds(20) : seconds(15);
        config.warmup = n == 10 ? seconds(5) : seconds(4);
        config.seed = 42;
        const SimResult result = run_simulation(config);
        std::printf("%-16s %4u %9.0f | %9.0f %7.3fs %7.3fs %7.3fs\n",
                    to_string(protocol).c_str(), n, load, result.committed_tps,
                    result.avg_latency_s, result.p50_latency_s, result.p95_latency_s);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
