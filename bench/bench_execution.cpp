// Execution microbenchmarks: serial vs conflict-aware parallel apply of
// committed KV batches across a conflict-rate sweep.
//
// The question the sweep answers is the one the scheduler exists for: how
// much of the serial apply cost can wave-parallel decode + effect
// preparation reclaim, and how does that win decay as batches start to
// fight over the shared hot keyspace?
//
//   BM_ExecApplySerial/conflict:{0,25,75,100}    SerialExecutor::apply_subdag
//                                                over the same commit stream —
//                                                the execution_threads=0
//                                                fallback and replay path.
//   BM_ExecApplyParallel/conflict:{0,25,75,100}  ExecutionEngine (worker pool
//                                                + merge thread), execute() +
//                                                drain() of the same stream.
//
// Both series report MicrosPerBatch — wall micros per committed batch for
// the whole stream (manual timing: batch/block construction, engine and
// thread spawn are outside the clock). At conflict:0 every batch lands in
// wave 0 and the parallel engine must win; at conflict:100 every wave holds
// one batch and parallel degenerates to serial plus handoff overhead — the
// honest cost of the machinery.
//
// The parallel series (and the CI gate comparing it against serial at 0%
// conflicts) registers only when the host has ≥ 2 hardware threads: on a
// 1-core runner a worker pool cannot win and the comparison would measure
// scheduler thrash, not the subsystem. check_bench.py --compare skips with
// a note when the parallel entries are absent.
//
// Machine-readable output: --benchmark_format=json (CI runs this through
// scripts/run_benches.py, uploads bench_execution.json, and gates it:
//
//   check_bench.py bench_execution.json
//     --expect BM_ExecApplySerial
//     --compare MicrosPerBatch 'BM_ExecApplySerial/conflict:0' \
//                              'BM_ExecApplyParallel/conflict:0'
//
// — self-failing if parallel ever loses to serial on a disjoint workload).
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "client/kv_batches.h"
#include "exec/engine.h"
#include "sim/dag_builder.h"

namespace {

using namespace mahimahi;

constexpr std::size_t kSubdags = 8;
constexpr std::size_t kBatchesPerSubdag = 8;
constexpr std::uint32_t kCommandsPerBatch = 16;
constexpr std::size_t kTotalBatches = kSubdags * kBatchesPerSubdag;

// One commit stream's worth of sub-DAGs at the given conflict rate. Batch
// ids fold in `generation` so successive benchmark iterations never collide
// in the executor's dedup horizon — a reused id would be deduplicated and
// the iteration would measure a no-op.
std::vector<CommittedSubDag> build_stream(std::uint32_t conflict_percent,
                                          std::uint64_t generation,
                                          DagBuilder& builder,
                                          const std::vector<BlockRef>& genesis,
                                          Round& next_round) {
  client::KvWorkload workload;
  workload.conflict_percent = conflict_percent;
  workload.hot_keys = 4;
  workload.commands_per_batch = kCommandsPerBatch;
  workload.value_bytes = 64;
  Rng rng(0x5EED0000 + conflict_percent * 1000 + generation);

  std::vector<CommittedSubDag> stream;
  stream.reserve(kSubdags);
  std::uint64_t sequence = generation * kTotalBatches;
  for (std::size_t s = 0; s < kSubdags; ++s) {
    std::vector<TxBatch> batches;
    batches.reserve(kBatchesPerSubdag);
    for (std::size_t b = 0; b < kBatchesPerSubdag; ++b) {
      // Distinct streams per batch position: private keys never collide
      // across batches, so conflict_percent alone controls conflicts.
      batches.push_back(client::synth_kv_batch(workload, b, ++sequence, rng));
    }
    const Round round = next_round++;
    CommittedSubDag subdag;
    subdag.slot = SlotId{round, 0};
    std::vector<BlockPtr> blocks;
    blocks.push_back(
        builder.add_block(0, round, genesis,
                          {batches.begin(), batches.begin() + kBatchesPerSubdag / 2}));
    blocks.push_back(
        builder.add_block(1, round, genesis,
                          {batches.begin() + kBatchesPerSubdag / 2, batches.end()}));
    subdag.leader = blocks.back();
    subdag.blocks = std::move(blocks);
    stream.push_back(std::move(subdag));
  }
  return stream;
}

// Shared builder state per series: block signing is the expensive part of
// stream construction, and it happens outside the manual clock.
struct StreamSource {
  DagBuilder builder{4};
  std::vector<BlockRef> genesis;
  Round next_round = 1;
  std::uint64_t generation = 0;

  StreamSource() {
    for (const auto& g : builder.dag().blocks_at(0)) genesis.push_back(g->ref());
  }

  std::vector<CommittedSubDag> next(std::uint32_t conflict_percent) {
    return build_stream(conflict_percent, generation++, builder, genesis, next_round);
  }
};

void finish(benchmark::State& state, double elapsed_seconds) {
  const double batches =
      static_cast<double>(state.iterations()) * static_cast<double>(kTotalBatches);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kTotalBatches * kCommandsPerBatch));
  state.counters["MicrosPerBatch"] =
      benchmark::Counter(batches > 0 ? elapsed_seconds * 1e6 / batches : 0);
}

void BM_ExecApplySerial(benchmark::State& state) {
  const auto conflict = static_cast<std::uint32_t>(state.range(0));
  StreamSource source;
  double elapsed = 0;
  for (auto _ : state) {
    const std::vector<CommittedSubDag> stream = source.next(conflict);
    exec::SerialExecutor executor;
    const auto start = std::chrono::steady_clock::now();
    for (const CommittedSubDag& subdag : stream) executor.apply_subdag(subdag);
    Digest digest = executor.state_digest();
    benchmark::DoNotOptimize(digest);
    const std::chrono::duration<double> delta =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(delta.count());
    elapsed += delta.count();
  }
  finish(state, elapsed);
}

void BM_ExecApplyParallel(benchmark::State& state) {
  const auto conflict = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  StreamSource source;
  double elapsed = 0;
  for (auto _ : state) {
    const std::vector<CommittedSubDag> stream = source.next(conflict);
    // Fresh engine per iteration (thread spawn outside the clock): the dedup
    // horizon and store must start empty, like the serial baseline's.
    auto engine =
        std::make_unique<exec::ExecutionEngine>(exec::ExecutionEngine::Options{threads});
    const auto start = std::chrono::steady_clock::now();
    for (const CommittedSubDag& subdag : stream) engine->execute(subdag, 0);
    Digest digest = engine->state_digest();  // drains
    benchmark::DoNotOptimize(digest);
    const std::chrono::duration<double> delta =
        std::chrono::steady_clock::now() - start;
    state.SetIterationTime(delta.count());
    elapsed += delta.count();
  }
  finish(state, elapsed);
}

void register_benches() {
  auto* serial = benchmark::RegisterBenchmark("BM_ExecApplySerial", BM_ExecApplySerial);
  serial->ArgName("conflict")->UseManualTime();
  for (int conflict : {0, 25, 75, 100}) serial->Arg(conflict);

  // A worker pool on a 1-core host measures scheduler thrash, not the
  // subsystem; the CI compare gate self-skips when these are absent.
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 2) {
    const int threads = static_cast<int>(std::min(cores - 1, 4u));
    auto* parallel =
        benchmark::RegisterBenchmark("BM_ExecApplyParallel", BM_ExecApplyParallel);
    parallel->ArgNames({"conflict", "threads"})->UseManualTime();
    for (int conflict : {0, 25, 75, 100}) parallel->Args({conflict, threads});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
