// Recovery/replay benchmarks: monolithic log vs checkpoint + segment-suffix.
//
// The quantity that matters to an operator is restart time. A monolithic WAL
// replays every record ever written — O(history). The checkpoint subsystem
// (checkpoint/) bounds it: recovery decodes the newest checkpoint and
// replays only the segment suffix accumulated since the last cut, which the
// checkpoint interval caps independently of history length.
//
//   BM_RecoveryReplayMonolithic/N        full FileWal::replay of N records
//   BM_RecoveryReplayCheckpointSuffix/N  CheckpointStore load + decode, plus
//                                        SegmentedWal::replay of the bounded
//                                        suffix (same fixed interval at every
//                                        N — that is the point)
//
// Compare PerRecordNs across N for the monolithic series: it must stay flat
// (the replay scratch buffer is shared and reused — a per-record allocation
// regression shows up here as superlinear growth, and the benchmark fails
// itself if per-record time at the largest N exceeds 20x the smallest-N
// baseline). Machine-readable output: --benchmark_format=json (CI uploads
// bench_recovery.json and gates it with scripts/check_bench.py).
//
// Catch-up transfer (incremental checkpoints, checkpoint/delta.h):
//
//   BM_RecoveryCatchupMonolithic/N   a refreshing peer is shipped the full
//                                    newest cut — CatchupBytes grows with
//                                    the N-record app history it re-sends
//   BM_RecoveryCatchupDeltaChain/N   the peer already holds the chain's
//                                    base; it is shipped only the delta
//                                    links (touched keys + decided suffix),
//                                    so CatchupBytes must stay sublinear in
//                                    N — the benchmark fails itself if the
//                                    delta series' bytes grow at even half
//                                    the rate of the history
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "app/kv_command.h"
#include "app/kv_store.h"
#include "checkpoint/checkpoint.h"
#include "checkpoint/delta.h"
#include "checkpoint/segmented_wal.h"
#include "sim/dag_builder.h"
#include "validator/validator.h"
#include "wal/wal.h"

namespace {

using namespace mahimahi;

namespace fs = std::filesystem;

// Records since the last checkpoint cut — what the suffix replay pays no
// matter how long the validator has been running.
constexpr std::size_t kSuffixRecords = 1024;

std::string bench_dir(const char* tag) {
  const auto dir = fs::temp_directory_path() /
                   (std::string("mahi_bench_recovery_") + tag + "_" +
                    std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// One representative framed block record, cloned N times: replay cost per
// record (frame scan + CRC + block decode) is independent of block identity.
const Bytes& record_bytes() {
  static const Bytes record = [] {
    static Committee::TestSetup setup = Committee::make_test(4);
    std::vector<BlockRef> refs;
    for (ValidatorId v = 0; v < 4; ++v) {
      refs.push_back(Block::genesis(v, setup.committee.coin()).ref());
    }
    TxBatch batch;
    batch.id = 1;
    batch.count = 16;
    batch.tx_bytes = 512;
    const Block block =
        Block::make(0, 1, refs, {batch}, setup.committee.coin().share(0, 1),
                    setup.keypairs[0].private_key);
    return wal_encode_block_record(block, false);
  }();
  return record;
}

// The replayed logs are built the way a production group-commit writer lands
// them — whole groups through FramedWal::append_group_durable — so the build
// exercises (and reports) each layout's group-flush syscall accounting. The
// file bytes are identical to per-record appends either way.
constexpr std::size_t kBuildGroupRecords = 64;

struct LogBuildStats {
  std::uint64_t groups = 0;
  std::uint64_t syscalls = 0;  // kernel entries spent landing the groups
};

LogBuildStats write_records(FramedWal& wal, std::size_t count) {
  const Bytes& record = record_bytes();
  Bytes group;
  std::size_t staged = 0;
  for (std::size_t i = 0; i < count; ++i) {
    group.insert(group.end(), record.begin(), record.end());
    if (++staged == kBuildGroupRecords || i + 1 == count) {
      wal.append_group_durable({group.data(), group.size()});
      group.clear();
      staged = 0;
    }
  }
  return {wal.groups_durable(), wal.group_flush_syscalls()};
}

// A real captured cut (30 fully-connected rounds, GC horizon active), so the
// checkpoint-decode half of recovery pays representative costs.
const Bytes& checkpoint_bytes() {
  static const Bytes encoded = [] {
    DagBuilder builder(4);
    builder.build_fully_connected(30);
    Committee::TestSetup setup = Committee::make_test(4);
    ValidatorConfig config;
    config.observer = true;
    config.committer.gc_depth = 8;
    config.validation.verify_signature = false;
    config.validation.verify_coin_share = false;
    ValidatorCore core(setup.committee, setup.keypairs[0].private_key, config);
    for (Round r = 1; r <= 30; ++r) {
      for (ValidatorId v = 0; v < 4; ++v) {
        core.on_block(builder.dag().slot(r, v).front(), v, 0);
      }
    }
    CheckpointData data = core.capture_checkpoint();
    data.sequence = 1;
    return encode_checkpoint(data);
  }();
  return encoded;
}

// Cross-run quadratic guard: per-record replay time at the largest N must
// stay within an order of magnitude of the smallest-N baseline. Quadratic
// growth (e.g. a reintroduced per-record allocation pattern) trips this at
// ratio ~100.
std::map<std::string, double>& per_record_baseline() {
  static std::map<std::string, double> baseline;
  return baseline;
}

void check_linear(benchmark::State& state, const std::string& series,
                  double per_record_ns) {
  state.counters["PerRecordNs"] = per_record_ns;
  auto [it, inserted] = per_record_baseline().emplace(series, per_record_ns);
  if (!inserted && per_record_ns > 20.0 * it->second) {
    state.SkipWithError("superlinear replay: per-record time grew >20x vs "
                        "the smallest-N baseline");
  }
}

void BM_RecoveryReplayMonolithic(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  const std::string dir = bench_dir("mono");
  const std::string path = (fs::path(dir) / "log.wal").string();
  LogBuildStats build;
  {
    FileWal wal(path);
    build = write_records(wal, records);
  }
  std::uint64_t replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    replayed = 0;
    const auto result = FileWal::replay(path, visitor);
    benchmark::DoNotOptimize(result.records);
  }
  const double wall_ns = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * records));
  if (records > 0) {
    state.counters["LogBuildSyscallsPerRecord"] =
        static_cast<double>(build.syscalls) / static_cast<double>(records);
  }
  if (state.iterations() > 0 && records > 0) {
    check_linear(state, "monolithic",
                 wall_ns / static_cast<double>(state.iterations() * records));
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoveryReplayMonolithic)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_RecoveryReplayCheckpointSuffix(benchmark::State& state) {
  // `records` is the history length; the checkpoint path replays only the
  // bounded suffix regardless — the flat line next to the monolithic series
  // IS the subsystem's value proposition.
  const auto records = static_cast<std::size_t>(state.range(0));
  const std::string dir = bench_dir("ckpt");
  LogBuildStats build;
  {
    SegmentedWalOptions options;
    options.segment_bytes = 256 * 1024;
    SegmentedWal seg(dir, options);
    build = write_records(seg, std::min(records, kSuffixRecords));
    CheckpointStore store(dir);
    const Bytes& encoded = checkpoint_bytes();
    store.write(1, {encoded.data(), encoded.size()});
  }
  std::uint64_t replayed = 0;
  FileWal::Visitor visitor;
  visitor.on_block = [&](BlockPtr, bool) { ++replayed; };
  for (auto _ : state) {
    replayed = 0;
    CheckpointStore store(dir);
    auto data = store.load_newest_valid();
    benchmark::DoNotOptimize(data->blocks.size());
    const auto result = SegmentedWal::replay(dir, visitor);
    benchmark::DoNotOptimize(result.records);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * std::min(records, kSuffixRecords)));
  if (const std::size_t suffix = std::min(records, kSuffixRecords); suffix > 0) {
    state.counters["LogBuildSyscallsPerRecord"] =
        static_cast<double>(build.syscalls) / static_cast<double>(suffix);
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoveryReplayCheckpointSuffix)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

// --- Catch-up transfer: monolithic re-send vs delta chain --------------------

// Working set touched between cuts and chain length after the base. Both are
// fixed across N on purpose: the delta path's transfer cost is a function of
// these, not of history length.
constexpr std::size_t kHotKeys = 256;
constexpr std::size_t kCatchupDeltas = 3;

struct CatchupFixture {
  Bytes base;                 // the cut the refreshing peer already holds
  std::vector<Bytes> deltas;  // the links the delta path ships
  Bytes monolithic;           // the full tip cut the monolithic path ships
};

// Real core-driven cuts (four capture points, heads advancing) with the app
// state scaled to `records` keys: the base and monolithic tip carry the full
// snapshot, each delta only the kHotKeys window since the previous cut.
const CatchupFixture& catchup_fixture(std::size_t records) {
  static std::map<std::size_t, CatchupFixture> cache;
  if (auto it = cache.find(records); it != cache.end()) return it->second;

  const Round stage = 8;
  const Round total = stage * (kCatchupDeltas + 2);
  DagBuilder builder(4);
  builder.build_fully_connected(total);
  Committee::TestSetup setup = Committee::make_test(4);
  ValidatorConfig config;
  config.observer = true;
  config.committer.gc_depth = 8;
  config.validation.verify_signature = false;
  config.validation.verify_coin_share = false;
  ValidatorCore core(setup.committee, setup.keypairs[0].private_key, config);

  app::KvStore kv;
  for (std::size_t i = 0; i < records; ++i) {
    kv.apply(app::KvCommand::put("key" + std::to_string(i),
                                 "v" + std::to_string(i)));
  }
  kv.clear_delta_window();

  Round fed = 0;
  std::uint64_t sequence = 0;
  const auto capture = [&](Round upto) {
    for (Round r = fed + 1; r <= upto; ++r) {
      for (ValidatorId v = 0; v < 4; ++v) {
        core.on_block(builder.dag().slot(r, v).front(), v, 0);
      }
    }
    fed = upto;
    CheckpointData data = core.capture_checkpoint();
    data.sequence = ++sequence;
    data.app_state = kv.snapshot_bytes();
    data.app_digest = kv.state_digest();
    return data;
  };

  CatchupFixture fixture;
  CheckpointData prev = capture(stage * 2);
  fixture.base = encode_checkpoint(prev);
  for (std::size_t d = 0; d < kCatchupDeltas; ++d) {
    for (std::size_t i = 0; i < kHotKeys; ++i) {
      kv.apply(app::KvCommand::put(
          "hot" + std::to_string(i),
          std::to_string(d) + ":" + std::to_string(i)));
    }
    Bytes app_delta = kv.delta_bytes();
    kv.clear_delta_window();
    CheckpointData next = capture(stage * (d + 3));
    fixture.deltas.push_back(encode_checkpoint_delta(make_checkpoint_delta(
        prev, next, /*base_sequence=*/1, std::move(app_delta))));
    prev = std::move(next);
  }
  fixture.monolithic = encode_checkpoint(prev);
  return cache.emplace(records, std::move(fixture)).first->second;
}

// Sublinearity gate on the delta series: CatchupBytes at N records must grow
// at less than half the rate of the history vs the smallest-N baseline (the
// links carry the touched window, so the real ratio is ~1x at 100x history).
// The monolithic series records the counter un-gated — it is the linear
// control the table compares against.
std::map<std::string, std::pair<double, double>>& catchup_baseline() {
  static std::map<std::string, std::pair<double, double>> baseline;
  return baseline;
}

void check_catchup_bytes(benchmark::State& state, const std::string& series,
                         double bytes, double records) {
  state.counters["CatchupBytes"] = bytes;
  auto [it, inserted] =
      catchup_baseline().emplace(series, std::make_pair(records, bytes));
  // The harness re-invokes a benchmark at the same N while estimating
  // iteration counts; the ratio test only means something once N grew.
  if (inserted || series != "delta-chain" || records <= it->second.first) return;
  const double record_ratio = records / it->second.first;
  const double byte_ratio = bytes / it->second.second;
  if (byte_ratio > 0.5 * record_ratio) {
    state.SkipWithError(
        "delta catch-up bytes grew superlinearly in history length");
  }
}

void BM_RecoveryCatchupMonolithic(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  const CatchupFixture& fixture = catchup_fixture(records);
  for (auto _ : state) {
    // The wire carries the full tip cut; the joiner decodes and restores.
    const CheckpointData tip = decode_checkpoint(
        {fixture.monolithic.data(), fixture.monolithic.size()});
    const app::KvStore kv =
        app::KvStore::restore({tip.app_state.data(), tip.app_state.size()});
    if (kv.state_digest() != tip.app_digest) {
      state.SkipWithError("monolithic catch-up digest mismatch");
      break;
    }
    benchmark::DoNotOptimize(kv.state_digest());
  }
  check_catchup_bytes(state, "monolithic",
                      static_cast<double>(fixture.monolithic.size()),
                      static_cast<double>(records));
}
BENCHMARK(BM_RecoveryCatchupMonolithic)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_RecoveryCatchupDeltaChain(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  const CatchupFixture& fixture = catchup_fixture(records);
  // The joiner's installed state: the chain's base, decoded once.
  const CheckpointData base =
      decode_checkpoint({fixture.base.data(), fixture.base.size()});
  double wire_bytes = 0;
  for (const Bytes& link : fixture.deltas) {
    wire_bytes += static_cast<double>(link.size());
  }
  for (auto _ : state) {
    CheckpointData data = base;
    for (const Bytes& link : fixture.deltas) {
      apply_checkpoint_delta(
          data, decode_checkpoint_delta({link.data(), link.size()}));
    }
    const app::KvStore kv =
        app::KvStore::restore({data.app_state.data(), data.app_state.size()});
    if (kv.state_digest() != data.app_digest) {
      state.SkipWithError("delta-chain catch-up digest mismatch");
      break;
    }
    benchmark::DoNotOptimize(kv.state_digest());
  }
  check_catchup_bytes(state, "delta-chain", wire_bytes,
                      static_cast<double>(records));
}
BENCHMARK(BM_RecoveryCatchupDeltaChain)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
