// Commit-path microbenchmarks: loop-thread time per commit batch, serial vs
// off-loop evaluation.
//
// Every delivered batch pays the commit path on the event-loop thread, so
// its loop-thread cost bounds end-to-end latency under load. The headline
// comparison is BM_CommitBatchSerial vs BM_CommitBatchOffloop over the same
// replayed DAG: serial pays the full Committer::try_commit (candidate-wave
// scan + linearization) on the "loop thread"; off-loop pays only
// Committer::apply of decisions a CommitScanner produced elsewhere — the
// scan itself (BM_CommitScanOnly measures it) moves to the worker pool.
// Timings use manual time so only the loop-thread share is reported.
//
// Machine-readable output: pass --benchmark_format=json (CI uploads
// bench_committer.json and gates it with scripts/check_bench.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>

#include "core/commit_scanner.h"
#include "core/committer.h"
#include "sim/dag_builder.h"

namespace {

using namespace mahimahi;

constexpr Round kRounds = 64;

struct GlobalDag {
  std::unique_ptr<DagBuilder> builder;
  std::vector<std::vector<BlockPtr>> per_round;  // insertion batches, causal order
};

// One signed random-network DAG per committee size, built once and replayed
// by every benchmark (signing 64 rounds of blocks dominates setup otherwise).
const GlobalDag& global_dag(std::uint32_t n) {
  static std::map<std::uint32_t, GlobalDag> cache;
  GlobalDag& entry = cache[n];
  if (entry.builder == nullptr) {
    entry.builder = std::make_unique<DagBuilder>(n, /*seed=*/7);
    Rng rng(12345);
    for (Round r = 1; r <= kRounds; ++r) {
      entry.per_round.push_back(entry.builder->add_random_network_round(r, rng));
    }
  }
  return entry;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Serial baseline: each ingested batch runs the full commit rule inline —
// what ValidatorCore::on_blocks stage 4 costs the loop thread today.
void BM_CommitBatchSerial(benchmark::State& state) {
  const GlobalDag& global = global_dag(static_cast<std::uint32_t>(state.range(0)));
  const CommitterOptions options = mahi_mahi_5(2);
  std::uint64_t slots = 0;
  for (auto _ : state) {
    Dag live(global.builder->committee());
    Committer committer(live, global.builder->committee(), options);
    double loop_seconds = 0;
    for (const auto& batch : global.per_round) {
      for (const auto& block : batch) live.insert(block);
      const auto start = std::chrono::steady_clock::now();
      const auto sub_dags = committer.try_commit();
      loop_seconds += seconds_since(start);
      slots += sub_dags.size();
    }
    state.SetIterationTime(loop_seconds);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);  // commit batches
  state.counters["slots_per_replay"] =
      static_cast<double>(slots) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CommitBatchSerial)->ArgName("n")->Arg(4)->Arg(10)->UseManualTime();

// Off-loop mode: the scan runs against the CommitScanner's replica (a worker
// would host it); the loop thread only applies the posted decisions.
void BM_CommitBatchOffloop(benchmark::State& state) {
  const GlobalDag& global = global_dag(static_cast<std::uint32_t>(state.range(0)));
  const CommitterOptions options = mahi_mahi_5(2);
  std::uint64_t slots = 0;
  for (auto _ : state) {
    Dag live(global.builder->committee());
    Committer committer(live, global.builder->committee(), options);
    CommitScanner scanner(live, committer.next_pending_slot(),
                          global.builder->committee(), options);
    double loop_seconds = 0;
    for (const auto& batch : global.per_round) {
      for (const auto& block : batch) live.insert(block);
      scanner.ingest(batch);
      const auto decisions = scanner.scan();  // worker-side: untimed
      const auto start = std::chrono::steady_clock::now();
      const auto sub_dags = committer.apply(decisions);
      loop_seconds += seconds_since(start);
      slots += sub_dags.size();
    }
    state.SetIterationTime(loop_seconds);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
  state.counters["slots_per_replay"] =
      static_cast<double>(slots) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CommitBatchOffloop)->ArgName("n")->Arg(4)->Arg(10)->UseManualTime();

// The work the off-loop mode moves to the worker pool: replica ingest + scan
// + self-consumption. Compare against BM_CommitBatchOffloop to see the
// loop-thread/worker split of the serial total.
void BM_CommitScanOnly(benchmark::State& state) {
  const GlobalDag& global = global_dag(static_cast<std::uint32_t>(state.range(0)));
  const CommitterOptions options = mahi_mahi_5(2);
  for (auto _ : state) {
    CommitScanner scanner(Dag(global.builder->committee()), SlotId{1, 0},
                          global.builder->committee(), options);
    double scan_seconds = 0;
    for (const auto& batch : global.per_round) {
      const auto start = std::chrono::steady_clock::now();
      scanner.ingest(batch);
      benchmark::DoNotOptimize(scanner.scan());
      scan_seconds += seconds_since(start);
    }
    state.SetIterationTime(scan_seconds);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_CommitScanOnly)->ArgName("n")->Arg(4)->Arg(10)->UseManualTime();

}  // namespace

BENCHMARK_MAIN();
