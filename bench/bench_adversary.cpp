// Ablation: wave length 5 vs 4 under adversarial schedules (§2.2 challenge 2).
//
// The paper parameterizes Mahi-Mahi either with a 5-round wave (maximum
// direct-commit probability under a continuously active asynchronous
// adversary) or a 4-round wave (lower latency under the more moderate
// random-network adversary). This bench runs both — plus Cordial Miners as
// the uncertified-DAG baseline — through the WAN simulator under
// increasingly hostile schedules and reports the latency/commit-mix shape:
//
//   * fair       — plain WAN, no interference (Figure 3 conditions);
//   * burst      — periodic windows where every message gains up to 800ms
//                  (continuously active asynchronous adversary, bounded);
//   * partition  — repeated 2-second splits of the committee;
//   * targeted   — a fixed victim's blocks always arrive ~900ms late.
//
// Expected shape: MM-4 wins latency in the fair schedule (claim C5); under
// sustained burst asynchrony the gap narrows or reverses as MM-4 falls back
// to indirect decisions more often (its single boost round forms the common
// core with lower probability, Lemma 16 vs Lemma 13); Cordial Miners trails
// throughout (one leader per 5 rounds; no direct skip).
#include <cstdio>
#include <memory>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

namespace {

enum class Attack { kFair, kBurst, kPartition, kTargeted };

const char* to_string(Attack attack) {
  switch (attack) {
    case Attack::kFair: return "fair";
    case Attack::kBurst: return "burst";
    case Attack::kPartition: return "partition";
    case Attack::kTargeted: return "targeted";
  }
  return "?";
}

std::shared_ptr<Adversary> make_adversary(Attack attack, std::uint32_t n) {
  switch (attack) {
    case Attack::kFair:
      return nullptr;
    case Attack::kBurst:
      // 1.2s hostile window every 3s, up to 800ms extra per message.
      return std::make_shared<BurstDelayAdversary>(seconds(3), millis(1200),
                                                   millis(800));
    case Attack::kPartition:
      // One mid-run split lasting 2s (the heal drains the backlog).
      return std::make_shared<PartitionAdversary>(n / 2, seconds(8), seconds(10));
    case Attack::kTargeted:
      return std::make_shared<TargetedDelayAdversary>(std::set<ValidatorId>{0},
                                                      millis(900));
  }
  return nullptr;
}

void run_row(Protocol protocol, Attack attack) {
  SimConfig config;
  config.protocol = protocol;
  config.n = 10;
  config.wan = true;
  config.load_tps = 10'000;
  config.duration = seconds(25);
  config.warmup = seconds(5);
  config.seed = 3;
  config.adversary = make_adversary(attack, config.n);

  const SimResult result = run_simulation(config);
  const auto& stats = result.commit_stats;
  const double direct_share =
      stats.committed_slots() + stats.skipped_slots() == 0
          ? 0.0
          : static_cast<double>(stats.direct_commits) /
                static_cast<double>(stats.committed_slots() + stats.skipped_slots());
  std::printf("%-15s %-10s %9.0f %8.3f %8.3f %8.3f %9.2f %7llu %7llu\n",
              sim::to_string(protocol).c_str(), to_string(attack),
              result.committed_tps, result.avg_latency_s, result.p50_latency_s,
              result.p95_latency_s, direct_share,
              static_cast<unsigned long long>(stats.indirect_commits),
              static_cast<unsigned long long>(stats.skipped_slots()));
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("=== Wave-length ablation under adversarial schedules ===\n");
  std::printf("WAN, 10 validators, 10k tx/s offered, 512B txs, 20s window\n\n");
  std::printf("%-15s %-10s %9s %8s %8s %8s %9s %7s %7s\n", "protocol", "attack",
              "tps", "avg_s", "p50_s", "p95_s", "direct%", "indir", "skips");

  for (const Attack attack :
       {Attack::kFair, Attack::kBurst, Attack::kPartition, Attack::kTargeted}) {
    for (const Protocol protocol :
         {Protocol::kMahiMahi5, Protocol::kMahiMahi4, Protocol::kCordialMiners}) {
      run_row(protocol, attack);
    }
    std::printf("\n");
  }

  std::printf(
      "Reading the shape: MM-4 leads latency on the fair schedule (C5); the\n"
      "burst adversary erodes MM-4's direct-commit share faster than MM-5's\n"
      "(Lemma 16's l/(3f+1) vs Lemma 13's 1-C(f,l)/C(3f+1,l)); Cordial Miners\n"
      "pays its one-leader-per-wave latency everywhere; the targeted victim\n"
      "is absorbed by direct skips without stalling either variant.\n");
  return 0;
}
