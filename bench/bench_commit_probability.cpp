// Appendix C: direct-commit probability analysis (Lemmas 13, 16, 18).
//
// Compares the paper's closed-form bounds with Monte-Carlo measurements over
// DAGs generated under three message schedules:
//
//   * random     — the random network model of §2.3: each validator
//                  references a uniformly random 2f+1 subset. Lemma 18:
//                  direct commits with probability -> 1.
//   * blind      — a model-compliant asynchronous adversary: it controls
//                  which blocks every validator references each round
//                  (suppressing a rotating set of f authors) but cannot
//                  predict the common coin. The measured rate must dominate
//                  the worst-case bound p* (Lemmas 13/16).
//   * prescient  — an OUT-OF-MODEL adversary that reads the coin before it
//                  opens and suppresses the elected leaders. This is the
//                  attack that after-the-fact election (§2.3) prevents;
//                  with one leader slot it collapses direct commits to 0,
//                  quantifying why retrospective election is load-bearing.
//
// Closed forms come from src/analysis (shared with tests):
//   w=5, async:   p* = 1 - C(f,l)/C(3f+1,l)   (Lemma 13; certainty if l > f)
//   w=4, async:   p* = l/(3f+1)               (Lemma 16; certainty if l = 3f+1)
//   w=4, random:  ~1 with high probability     (Lemma 18)
#include <cstdio>
#include <set>

#include "analysis/commit_probability.h"
#include "core/committer.h"
#include "sim/dag_builder.h"

using namespace mahimahi;

namespace {

enum class Schedule { kRandom, kBlind, kPrescient };

const char* to_string(Schedule schedule) {
  switch (schedule) {
    case Schedule::kRandom: return "random";
    case Schedule::kBlind: return "blind";
    case Schedule::kPrescient: return "prescient";
  }
  return "?";
}

struct Measurement {
  double round_rate;  // fraction of rounds with >= 1 directly committed slot
  double slot_rate;   // fraction of slots directly committed
};

Measurement measure(std::uint32_t n, std::uint32_t wave_length, std::uint32_t leaders,
                    Schedule schedule, std::uint64_t seed, Round rounds = 120) {
  const std::uint32_t f = (n - 1) / 3;
  DagBuilder builder(n, /*committee seed=*/11);
  Rng rng(seed);
  CommitterOptions options;
  options.wave_length = wave_length;
  options.leaders_per_round = leaders;

  for (Round r = 1; r <= rounds; ++r) {
    std::vector<ValidatorId> suppressed;
    switch (schedule) {
      case Schedule::kRandom:
        break;
      case Schedule::kBlind:
        for (std::uint32_t i = 0; i < f; ++i) {
          suppressed.push_back(static_cast<ValidatorId>((r + i) % n));
        }
        break;
      case Schedule::kPrescient:
        if (r >= 2) {
          for (std::uint32_t offset = 0; offset < leaders; ++offset) {
            suppressed.push_back(builder.leader_of({r - 1, offset}, options));
          }
        }
        break;
    }
    if (suppressed.empty()) {
      builder.add_random_network_round(r, rng);
    } else {
      builder.add_adversarial_round(r, suppressed);
    }
  }

  Committer committer(builder.dag(), builder.committee(), options);
  committer.try_commit();

  std::set<Round> rounds_decided, rounds_direct;
  std::uint64_t slots_decided = 0, slots_direct = 0;
  for (const auto& decision : committer.decided_sequence()) {
    rounds_decided.insert(decision.slot.round);
    ++slots_decided;
    if (decision.kind == SlotDecision::Kind::kCommit &&
        decision.via == SlotDecision::Via::kDirect) {
      rounds_direct.insert(decision.slot.round);
      ++slots_direct;
    }
  }
  Measurement m{};
  m.round_rate = rounds_decided.empty()
                     ? 0
                     : static_cast<double>(rounds_direct.size()) / rounds_decided.size();
  m.slot_rate = slots_decided == 0 ? 0 : static_cast<double>(slots_direct) / slots_decided;
  return m;
}

}  // namespace

int main() {
  std::printf("=== Appendix C: direct-commit probability, bound vs measured ===\n");
  std::printf("%-3s %-3s %-7s %-12s %12s %14s %14s\n", "w", "f", "leaders", "schedule",
              "bound p*", "measured/rnd", "measured/slot");

  for (const std::uint32_t wave_length : {5u, 4u}) {
    for (const std::uint32_t f : {1u, 3u}) {
      const std::uint32_t n = 3 * f + 1;
      for (const std::uint32_t leaders : {1u, 2u, 3u}) {
        for (const Schedule schedule :
             {Schedule::kRandom, Schedule::kBlind, Schedule::kPrescient}) {
          Measurement total{};
          constexpr int kTrials = 5;
          for (int trial = 0; trial < kTrials; ++trial) {
            const Measurement m =
                measure(n, wave_length, leaders, schedule, 100 + trial);
            total.round_rate += m.round_rate / kTrials;
            total.slot_rate += m.slot_rate / kTrials;
          }
          std::printf("%-3u %-3u %-7u %-12s %12.3f %14.3f %14.3f\n", wave_length, f,
                      leaders, to_string(schedule),
                      analysis::direct_commit_probability(wave_length, f, leaders),
                      total.round_rate, total.slot_rate);
          std::fflush(stdout);
        }
      }
    }
  }
  std::printf(
      "\nReading the table: under `random` the rate approaches 1 (Lemma 18);\n"
      "under `blind` (a model-compliant asynchronous adversary) the measured\n"
      "per-round rate dominates the worst-case bound p* (Lemmas 13/16);\n"
      "`prescient` cheats by reading the coin before it opens — the attack\n"
      "after-the-fact election prevents — and collapses single-leader direct\n"
      "commits to zero, which quantifies why retrospective election matters.\n");
  return 0;
}
