// Observability hot-path microbenchmarks: what a metric record costs on the
// consensus data path.
//
// The contract the registry makes with the pipeline (src/obs/metrics.h) is
// that instrumentation is one relaxed atomic add — cheap enough to stamp
// every block, every frame, every commit without showing up in the latency
// figures. CI holds that contract with an absolute gate:
//
//     check_bench.py bench_obs.json --max-ns BM_ObsCounterAdd 50 \
//                                   --max-ns BM_ObsHistogramRecord 50 \
//                                   --max-ns BM_ObsSpanStamp 50 \
//                                   --max-ns BM_FlightRecorderEvent 50
//
// A registry change that puts a lock, a hash lookup, or a shared cache line
// on the record path fails the push.
//
// Machine-readable output: pass --benchmark_format=json (CI does).
#include <benchmark/benchmark.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace mahimahi;

// One counter hammered from N threads. With per-thread stripes the 8-thread
// rate should track the 1-thread rate; a collapsed (shared-cell) registry
// shows up as an 8x per-op slowdown from cache-line ping-pong.
obs::Registry* g_registry = nullptr;
obs::Counter* g_counter = nullptr;

void BM_ObsCounterAdd(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_registry = new obs::Registry();
    g_counter = &g_registry->counter("bench_counter");
  }
  for (auto _ : state) {
    g_counter->add(1);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(g_counter->value());
    delete g_registry;
    g_registry = nullptr;
  }
}
BENCHMARK(BM_ObsCounterAdd)->Threads(1)->Threads(8)->UseRealTime();

// Histogram record: bit_width + two relaxed adds. The value sweep covers the
// bucket range so the bench is not branch-predicting one bucket.
void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Registry registry;
  obs::Histogram& histogram = registry.histogram("bench_histogram");
  std::int64_t value = 0;
  for (auto _ : state) {
    histogram.record(value, 1);
    value = (value * 2 + 1) & 0xfffff;  // 0, 1, 3, ... sweeps the buckets
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(histogram.snapshot().sum);
}
BENCHMARK(BM_ObsHistogramRecord);

// A full lifecycle span stamp as the pipeline issues it: the tracer's bounds
// check plus the stage histogram record. This is what every handoff in
// NodeRuntime::perform / verify_frames pays per block.
void BM_ObsSpanStamp(benchmark::State& state) {
  obs::Registry registry;
  obs::LifecycleTracer tracer(registry);
  TimeMicros delta = 0;
  for (auto _ : state) {
    tracer.record_stage(obs::Stage::kDagInsert, delta, 1);
    delta = (delta + 37) & 0xffff;
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(tracer.nonmonotonic());
}
BENCHMARK(BM_ObsSpanStamp);

// A flight-recorder event stamp: one relaxed fetch_add on the thread's own
// ring head, three relaxed stores, one release store. The recorder is always
// on — every frame, block, and commit pays this — so CI gates it at 50 ns
// like the other hot-path stamps. Uses the caller-timestamp overload (the
// pipeline's: handoffs already hold a stamp); the steady-clock read in
// record_now is the driver's cost, not the recorder's.
obs::FlightRecorder* g_recorder = nullptr;

void BM_FlightRecorderEvent(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_recorder = new obs::FlightRecorder();
  }
  TimeMicros at = 0;
  std::uint64_t a = static_cast<std::uint64_t>(state.thread_index());
  for (auto _ : state) {
    g_recorder->record(obs::FlightEventType::kBlockInsert, at, a, at);
    ++at;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(g_recorder->ring_count());
    delete g_recorder;
    g_recorder = nullptr;
  }
}
BENCHMARK(BM_FlightRecorderEvent)->Threads(1)->Threads(8)->UseRealTime();

// Scrape cost for context (not gated): a dump of a registry sized like a
// real validator's (~40 metrics incl. per-stage histograms). Scrapes run
// off the hot path on the loop thread, so milliseconds would be a problem,
// microseconds are fine.
void BM_ObsRegistryDump(benchmark::State& state) {
  obs::Registry registry("validator=\"0\"");
  obs::LifecycleTracer tracer(registry);
  for (int i = 0; i < 20; ++i) {
    registry.counter("bench_counter_" + std::to_string(i)).add(1);
  }
  for (int i = 0; i < 6; ++i) {
    registry.histogram("bench_histogram_" + std::to_string(i)).record(i * 100);
  }
  tracer.record_stage(obs::Stage::kDecode, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.dump());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRegistryDump);

}  // namespace

BENCHMARK_MAIN();
