// Figure 4: throughput-latency with 3 crash faults, 10 validators.
//
// Paper reference: all systems reach ~35-40k tx/s; latency Tusk ~7s, Cordial
// Miners ~1.7s, Mahi-Mahi-5 0.95s, Mahi-Mahi-4 0.85s. Mahi-Mahi's direct
// skip rule bypasses dead leaders ~2 rounds earlier than Cordial Miners'
// anchor-based resolution (claim C3).
#include <cstdio>
#include <vector>

#include "sim/harness.h"

using namespace mahimahi;
using namespace mahimahi::sim;

int main() {
  std::printf("=== Figure 4: 10 validators, 3 crash faults ===\n");
  std::printf("%-16s %9s | %9s %8s %8s %12s %12s\n", "protocol", "load", "tx/s",
              "avg", "p95", "direct-skip", "indir-skip");

  for (const Protocol protocol : {Protocol::kTusk, Protocol::kCordialMiners,
                                  Protocol::kMahiMahi5, Protocol::kMahiMahi4}) {
    for (const double load : {5'000.0, 15'000.0, 25'000.0, 35'000.0, 45'000.0}) {
      SimConfig config;
      config.protocol = protocol;
      config.n = 10;
      config.crashed = 3;
      config.leaders_per_round = 2;
      config.wan = true;
      config.load_tps = load;
      config.duration = seconds(20);
      config.warmup = seconds(5);
      config.seed = 42;
      const SimResult result = run_simulation(config);
      std::printf("%-16s %9.0f | %9.0f %7.3fs %7.3fs %12llu %12llu\n",
                  to_string(protocol).c_str(), load, result.committed_tps,
                  result.avg_latency_s, result.p95_latency_s,
                  static_cast<unsigned long long>(result.commit_stats.direct_skips),
                  static_cast<unsigned long long>(result.commit_stats.indirect_skips));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
