#include "wal/wal.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/crc32.h"
#include "common/log.h"
#include "serde/serde.h"
#include "wal/wal_ring.h"

namespace mahimahi {

Bytes wal_frame_record(BytesView payload) {
  Bytes framed(8 + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  std::memcpy(framed.data(), &len, 4);
  std::memcpy(framed.data() + 4, &crc, 4);
  std::memcpy(framed.data() + 8, payload.data(), payload.size());
  return framed;
}

Bytes wal_encode_block_record(const Block& block, bool own) {
  serde::Writer w;
  w.u8(static_cast<std::uint8_t>(own ? WalRecordType::kOwnBlock
                                     : WalRecordType::kReceivedBlock));
  const Bytes encoded = block.serialize();
  w.bytes({encoded.data(), encoded.size()});
  return wal_frame_record({w.data().data(), w.data().size()});
}

Bytes wal_encode_commit_record(SlotId slot) {
  serde::Writer w;
  w.u8(static_cast<std::uint8_t>(WalRecordType::kCommittedSlot));
  w.varint(slot.round);
  w.u32(slot.leader_offset);
  return wal_frame_record({w.data().data(), w.data().size()});
}

FileWal::FileWal(std::string path, bool fsync_on_sync)
    : path_(std::move(path)), fsync_on_sync_(fsync_on_sync) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) throw std::runtime_error("FileWal: cannot open " + path_);
}

FileWal::~FileWal() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void FileWal::append_framed(BytesView framed) {
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    throw std::runtime_error("FileWal: short write to " + path_);
  }
  bytes_written_ += framed.size();
}

void FileWal::append_block(const Block& block, bool own) {
  const Bytes framed = wal_encode_block_record(block, own);
  append_framed({framed.data(), framed.size()});
}

void FileWal::append_commit(SlotId slot) {
  const Bytes framed = wal_encode_commit_record(slot);
  append_framed({framed.data(), framed.size()});
}

void FileWal::sync() {
  std::fflush(file_);
  if (fsync_on_sync_) ::fsync(::fileno(file_));
  sync_syscalls_.fetch_add(fsync_on_sync_ ? 2 : 1, std::memory_order_relaxed);
}

bool FileWal::wal_ring_active() const { return ring_ != nullptr && fsync_on_sync_; }

void FileWal::append_group_durable(BytesView group) {
  groups_durable_.fetch_add(1, std::memory_order_relaxed);
  if (wal_ring_active()) {
    // Any stdio-buffered bytes must hit the fd before the ring write lands
    // behind them (O_APPEND orders the two at the kernel). In steady state
    // the stdio buffer is empty and this flush is free.
    std::fflush(file_);
    const std::uint64_t spent = ring_->append_fsync(::fileno(file_), group);
    group_flush_syscalls_.fetch_add(spent, std::memory_order_relaxed);
    bytes_written_ += group.size();
    return;
  }
  append_framed(group);
  sync();
  // fflush issues the write; fsync is the second entry when enabled.
  group_flush_syscalls_.fetch_add(fsync_on_sync_ ? 2 : 1, std::memory_order_relaxed);
}

FileWal::ReplayResult FileWal::replay(const std::string& path, const Visitor& visitor,
                                      bool truncate_corrupt_tail) {
  Bytes scratch;
  return replay_with_scratch(path, visitor, truncate_corrupt_tail, scratch);
}

FileWal::ReplayResult FileWal::replay_with_scratch(const std::string& path,
                                                   const Visitor& visitor,
                                                   bool truncate_corrupt_tail,
                                                   Bytes& scratch) {
  ReplayResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return result;  // absent log = empty log

  Bytes& payload = scratch;
  for (;;) {
    std::uint8_t header[8];
    const std::size_t header_read = std::fread(header, 1, 8, file);
    if (header_read != 8) {
      // 0 bytes = clean EOF. A partial header is a torn tail like any other:
      // it must be flagged (and truncated) or the next append would land
      // after the garbage and orphan everything behind it.
      if (header_read != 0) result.corrupt_tail = true;
      break;
    }
    std::uint32_t len, crc;
    std::memcpy(&len, header, 4);
    std::memcpy(&crc, header + 4, 4);
    if (len > 64 * 1024 * 1024) {  // corrupt length field
      result.corrupt_tail = true;
      break;
    }
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, file) != len) {
      result.corrupt_tail = true;  // torn record
      break;
    }
    if (crc32({payload.data(), payload.size()}) != crc) {
      result.corrupt_tail = true;
      break;
    }

    try {
      serde::Reader r({payload.data(), payload.size()});
      const auto type = static_cast<WalRecordType>(r.u8());
      switch (type) {
        case WalRecordType::kOwnBlock:
        case WalRecordType::kReceivedBlock: {
          // Decode straight out of the scratch buffer: copying the
          // length-prefixed block bytes into their own heap allocation per
          // record made long replays allocation-bound.
          const std::uint64_t encoded_len = r.varint();
          if (encoded_len > r.remaining()) {
            throw serde::SerdeError("block record length exceeds payload");
          }
          const BytesView encoded = r.raw(static_cast<std::size_t>(encoded_len));
          auto block = std::make_shared<const Block>(Block::deserialize(encoded));
          if (visitor.on_block) {
            visitor.on_block(std::move(block), type == WalRecordType::kOwnBlock);
          }
          break;
        }
        case WalRecordType::kCommittedSlot: {
          SlotId slot;
          slot.round = r.varint();
          slot.leader_offset = r.u32();
          if (visitor.on_commit) visitor.on_commit(slot);
          break;
        }
        default:
          throw serde::SerdeError("unknown WAL record type");
      }
    } catch (const serde::SerdeError&) {
      result.corrupt_tail = true;
      break;
    }
    ++result.records;
    result.valid_bytes += 8 + len;
  }
  std::fclose(file);

  if (result.corrupt_tail && truncate_corrupt_tail) {
    std::error_code ec;
    std::filesystem::resize_file(path, result.valid_bytes, ec);
    if (ec) {
      MM_LOG(kWarn) << "WAL truncation failed for " << path << ": " << ec.message();
    }
  }
  return result;
}

}  // namespace mahimahi
