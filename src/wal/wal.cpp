#include "wal/wal.h"

#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/crc32.h"
#include "common/log.h"
#include "serde/serde.h"

namespace mahimahi {

FileWal::FileWal(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) throw std::runtime_error("FileWal: cannot open " + path_);
}

FileWal::~FileWal() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void FileWal::append_record(BytesView payload) {
  std::uint8_t header[8];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  if (std::fwrite(header, 1, 8, file_) != 8 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    throw std::runtime_error("FileWal: short write to " + path_);
  }
  bytes_written_ += 8 + payload.size();
}

void FileWal::append_block(const Block& block, bool own) {
  serde::Writer w;
  w.u8(static_cast<std::uint8_t>(own ? WalRecordType::kOwnBlock
                                     : WalRecordType::kReceivedBlock));
  const Bytes encoded = block.serialize();
  w.bytes({encoded.data(), encoded.size()});
  append_record({w.data().data(), w.data().size()});
}

void FileWal::append_commit(SlotId slot) {
  serde::Writer w;
  w.u8(static_cast<std::uint8_t>(WalRecordType::kCommittedSlot));
  w.varint(slot.round);
  w.u32(slot.leader_offset);
  append_record({w.data().data(), w.data().size()});
}

void FileWal::sync() { std::fflush(file_); }

FileWal::ReplayResult FileWal::replay(const std::string& path, const Visitor& visitor,
                                      bool truncate_corrupt_tail) {
  ReplayResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return result;  // absent log = empty log

  Bytes payload;
  for (;;) {
    std::uint8_t header[8];
    if (std::fread(header, 1, 8, file) != 8) break;  // clean EOF or short tail
    std::uint32_t len, crc;
    std::memcpy(&len, header, 4);
    std::memcpy(&crc, header + 4, 4);
    if (len > 64 * 1024 * 1024) {  // corrupt length field
      result.corrupt_tail = true;
      break;
    }
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, file) != len) {
      result.corrupt_tail = true;  // torn record
      break;
    }
    if (crc32({payload.data(), payload.size()}) != crc) {
      result.corrupt_tail = true;
      break;
    }

    try {
      serde::Reader r({payload.data(), payload.size()});
      const auto type = static_cast<WalRecordType>(r.u8());
      switch (type) {
        case WalRecordType::kOwnBlock:
        case WalRecordType::kReceivedBlock: {
          const Bytes encoded = r.bytes();
          auto block = std::make_shared<const Block>(
              Block::deserialize({encoded.data(), encoded.size()}));
          if (visitor.on_block) {
            visitor.on_block(std::move(block), type == WalRecordType::kOwnBlock);
          }
          break;
        }
        case WalRecordType::kCommittedSlot: {
          SlotId slot;
          slot.round = r.varint();
          slot.leader_offset = r.u32();
          if (visitor.on_commit) visitor.on_commit(slot);
          break;
        }
        default:
          throw serde::SerdeError("unknown WAL record type");
      }
    } catch (const serde::SerdeError&) {
      result.corrupt_tail = true;
      break;
    }
    ++result.records;
    result.valid_bytes += 8 + len;
  }
  std::fclose(file);

  if (result.corrupt_tail && truncate_corrupt_tail) {
    std::error_code ec;
    std::filesystem::resize_file(path, result.valid_bytes, ec);
    if (ec) {
      MM_LOG(kWarn) << "WAL truncation failed for " << path << ": " << ec.message();
    }
  }
  return result;
}

}  // namespace mahimahi
