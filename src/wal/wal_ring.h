// WAL group flushes over io_uring: one linked write→fsync SQE pair per
// group, so a durable group costs a single io_uring_enter instead of the
// classic write + fsync syscall pair — and the pair is ordered by the kernel
// (the fsync runs only after the write completed in full).
//
// Owned by the GroupCommitWal and driven exclusively from its writer thread
// (one ring per thread — common/uring.h contract); the loop's socket ring is
// a different instance on a different thread. Attached to the inner
// FramedWal layout, which routes append_group_durable through it. The bytes
// on disk are identical to the classic path: an O_APPEND write at offset -1
// appends exactly like the stdio path it replaces.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.h"

namespace mahimahi {

class WalUring {
 public:
  // Compiled in (MAHIMAHI_IOURING) and the kernel probe passed.
  static bool supported();
  // nullptr when unsupported or ring setup fails — callers keep the classic
  // write+fsync path.
  static std::unique_ptr<WalUring> create();
  ~WalUring();

  WalUring(const WalUring&) = delete;
  WalUring& operator=(const WalUring&) = delete;

  // Durably appends `data` to `fd` (an O_APPEND file whose stdio buffer the
  // caller already flushed): blocks until both the write and the linked
  // fsync complete. A short write (which breaks the link) or a failed fsync
  // is completed via classic write/fsync calls, so on return the group is on
  // disk either way. Throws std::runtime_error on unrecoverable I/O errors,
  // matching the layouts' short-write behavior. Returns the syscalls spent
  // on this group (normally 1).
  std::uint64_t append_fsync(int fd, BytesView data);

  std::uint64_t groups() const;    // groups landed through the ring
  std::uint64_t syscalls() const;  // enters + any classic fallback calls

 private:
  WalUring();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mahimahi
