// Write-ahead log tailored to the consensus protocol (§4).
//
// Record framing: [u32 payload_len][u32 crc32(payload)][payload], where the
// payload is [u8 type][body]. Recovery scans from the start and stops at the
// first truncated or corrupt record (torn writes at the tail are expected
// after a crash and are discarded).
//
// Logged state is exactly what a validator needs to rejoin safely: every
// block admitted to its DAG (in insertion = causal order) with an own/remote
// marker, so replay rebuilds the DAG and the proposer round without
// re-equivocating.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "types/block.h"

namespace mahimahi {

enum class WalRecordType : std::uint8_t {
  kReceivedBlock = 1,
  kOwnBlock = 2,
  kCommittedSlot = 3,
};

class Wal {
 public:
  virtual ~Wal() = default;
  virtual void append_block(const Block& block, bool own) = 0;
  virtual void append_commit(SlotId slot) = 0;
  virtual void sync() = 0;
};

// No-op WAL for tests and the simulator.
class NullWal : public Wal {
 public:
  void append_block(const Block&, bool) override {}
  void append_commit(SlotId) override {}
  void sync() override {}
};

class FileWal : public Wal {
 public:
  // Opens (creating or appending) the log at `path`. Throws on failure.
  explicit FileWal(std::string path);
  ~FileWal() override;

  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  void append_block(const Block& block, bool own) override;
  void append_commit(SlotId slot) override;
  void sync() override;

  std::uint64_t bytes_written() const { return bytes_written_; }

  // Replay visitor: called per intact record in log order.
  struct Visitor {
    std::function<void(BlockPtr block, bool own)> on_block;
    std::function<void(SlotId slot)> on_commit;
  };

  struct ReplayResult {
    std::uint64_t records = 0;
    std::uint64_t valid_bytes = 0;   // log prefix that parsed cleanly
    bool corrupt_tail = false;       // a torn/corrupt record was discarded
  };

  // Reads `path` and feeds intact records to the visitor. If
  // `truncate_corrupt_tail` is set, the file is truncated to the valid
  // prefix so subsequent appends produce a clean log.
  static ReplayResult replay(const std::string& path, const Visitor& visitor,
                             bool truncate_corrupt_tail = true);

 private:
  void append_record(BytesView payload);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace mahimahi
