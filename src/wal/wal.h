// Write-ahead log tailored to the consensus protocol (§4).
//
// Record framing: [u32 payload_len][u32 crc32(payload)][payload], where the
// payload is [u8 type][body]. Recovery scans from the start and stops at the
// first truncated or corrupt record (torn writes at the tail are expected
// after a crash and are discarded).
//
// Logged state is exactly what a validator needs to rejoin safely: every
// block admitted to its DAG (in insertion = causal order) with an own/remote
// marker, so replay rebuilds the DAG and the proposer round without
// re-equivocating.
//
// Durability model: append_* calls stage a record; sync() makes everything
// staged durable. The inline implementations here (NullWal, FileWal) complete
// on_durable() synchronously — append, sync, ack, all on the caller's thread.
// wal/group_commit_wal.h adds the off-thread variant: appends stage into a
// buffer, a writer thread flushes groups, and the ack arrives later. Drivers
// that must not send an own block before it is durable (the non-equivocation
// contract) gate the send on on_durable() and work with either.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "types/block.h"

namespace mahimahi {

class WalUring;  // wal/wal_ring.h

enum class WalRecordType : std::uint8_t {
  kReceivedBlock = 1,
  kOwnBlock = 2,
  kCommittedSlot = 3,
};

// Record encoding, shared by every WAL implementation so that a log is
// byte-identical no matter which of them wrote it (group-commit recovery
// equivalence rests on this). Each helper returns one fully framed record:
// [u32 len][u32 crc][payload].
Bytes wal_frame_record(BytesView payload);
Bytes wal_encode_block_record(const Block& block, bool own);
Bytes wal_encode_commit_record(SlotId slot);

class Wal {
 public:
  virtual ~Wal() = default;
  virtual void append_block(const Block& block, bool own) = 0;
  virtual void append_commit(SlotId slot) = 0;
  virtual void sync() = 0;

  // Runs `done` once every record appended before this call is durable.
  // Inline implementations sync and invoke it before returning — so a driver
  // gating its proposal broadcast on the ack degenerates to the classic
  // append → sync → send sequence, and a NullWal (no persistence, nothing to
  // wait for) can never wedge the proposal path. A group-commit WAL
  // completes the ack from its writer thread after the covering flush.
  virtual void on_durable(std::function<void()> done) {
    sync();
    done();
  }
};

// A WAL whose physical layout accepts pre-framed records verbatim. The two
// layouts — FileWal (one monolithic file) and checkpoint/segmented_wal.h
// (rolling segment files) — both implement this, and the group-commit
// decorator stages records and lands whole groups through it, so group
// commit composes with either layout.
class FramedWal : public Wal {
 public:
  // Writes one pre-framed buffer (one or more records produced by the
  // wal_encode_* helpers) verbatim.
  virtual void append_framed(BytesView framed) = 0;

  // Lands one group durably: on return the bytes are written and synced.
  // Semantically identical to append_framed + sync — the default is exactly
  // that — but overridable so a layout with an attached WAL ring
  // (wal/wal_ring.h) can land the group as one linked write→fsync
  // submission. The group-commit writer flushes through this seam.
  virtual void append_group_durable(BytesView group) {
    append_framed(group);
    sync();
  }

  // Adopts a (non-owning) submission ring for group flushes; nullptr
  // detaches. Call before concurrent appends start. Layouts that cannot use
  // a ring ignore it.
  virtual void attach_wal_ring(WalUring* ring) { (void)ring; }
  virtual bool wal_ring_active() const { return false; }

  // Syscall accounting for the group-flush path: kernel entries spent inside
  // append_group_durable (write/fsync classically, ring enters otherwise)
  // and groups landed. The pair behind the syscalls-per-committed-block
  // columns in bench_wal/bench_io_plane.
  virtual std::uint64_t group_flush_syscalls() const { return 0; }
  virtual std::uint64_t groups_durable() const { return 0; }
};

// No-op WAL for tests and the simulator. on_durable acks synchronously
// (inherited default with a no-op sync): with nothing persisted there is
// nothing to wait for.
class NullWal : public Wal {
 public:
  void append_block(const Block&, bool) override {}
  void append_commit(SlotId) override {}
  void sync() override {}
};

class FileWal : public FramedWal {
 public:
  // Opens (creating or appending) the log at `path`. Throws on failure.
  // fsync_on_sync upgrades sync() from fflush (durable across a process
  // crash — the page cache survives) to fflush + fsync (durable across a
  // machine crash). fsync costs milliseconds on real disks, which is exactly
  // the latency the group-commit decorator amortizes and moves off the
  // appender's thread.
  explicit FileWal(std::string path, bool fsync_on_sync = false);
  ~FileWal() override;

  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  void append_block(const Block& block, bool own) override;
  void append_commit(SlotId slot) override;
  void sync() override;

  // Writes one pre-framed buffer (one or more records produced by the
  // wal_encode_* helpers) verbatim. The group-commit writer uses this to
  // land a whole group as a single write.
  void append_framed(BytesView framed) override;

  // With an attached ring (and fsync_on_sync set), lands the group as one
  // linked write→fsync submission — byte-identical to the classic path, one
  // syscall instead of two. Falls back to append_framed + sync otherwise.
  void append_group_durable(BytesView group) override;
  void attach_wal_ring(WalUring* ring) override { ring_ = ring; }
  bool wal_ring_active() const override;
  std::uint64_t group_flush_syscalls() const override {
    return group_flush_syscalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t groups_durable() const override {
    return groups_durable_.load(std::memory_order_relaxed);
  }

  std::uint64_t bytes_written() const { return bytes_written_; }

  // Kernel entries spent inside sync(): fflush's write, plus the fsync when
  // fsync_on_sync is set. The inline-append half of the syscalls-per-record
  // accounting (the group-flush half lives in group_flush_syscalls()).
  std::uint64_t sync_syscalls() const {
    return sync_syscalls_.load(std::memory_order_relaxed);
  }

  // Replay visitor: called per intact record in log order.
  struct Visitor {
    std::function<void(BlockPtr block, bool own)> on_block;
    std::function<void(SlotId slot)> on_commit;
  };

  struct ReplayResult {
    std::uint64_t records = 0;
    std::uint64_t valid_bytes = 0;   // log prefix that parsed cleanly
    bool corrupt_tail = false;       // a torn/corrupt record was discarded
  };

  // Reads `path` and feeds intact records to the visitor. If
  // `truncate_corrupt_tail` is set, the file is truncated to the valid
  // prefix so subsequent appends produce a clean log.
  static ReplayResult replay(const std::string& path, const Visitor& visitor,
                             bool truncate_corrupt_tail = true);

  // Same scan, but the record payload buffer is caller-supplied: replaying a
  // multi-file log (the segmented layout) shares ONE scratch buffer across
  // every file, so replay pays no per-record heap allocation once the buffer
  // warmed up to the largest record. replay() wraps this with a local
  // scratch.
  static ReplayResult replay_with_scratch(const std::string& path,
                                          const Visitor& visitor,
                                          bool truncate_corrupt_tail, Bytes& scratch);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool fsync_on_sync_ = false;
  std::uint64_t bytes_written_ = 0;
  WalUring* ring_ = nullptr;  // non-owning; see attach_wal_ring
  std::atomic<std::uint64_t> sync_syscalls_{0};
  std::atomic<std::uint64_t> group_flush_syscalls_{0};
  std::atomic<std::uint64_t> groups_durable_{0};
};

}  // namespace mahimahi
