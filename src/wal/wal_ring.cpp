#include "wal/wal_ring.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <stdexcept>

#include "common/uring.h"

namespace mahimahi {

#if MAHIMAHI_IOURING

struct WalUring::Impl {
  explicit Impl() : ring(8) {}
  MiniUring ring;
  // Read by runtime-stats callers while the writer thread flushes.
  std::atomic<std::uint64_t> groups{0};
  std::atomic<std::uint64_t> syscalls{0};
};

WalUring::WalUring() = default;
WalUring::~WalUring() = default;

bool WalUring::supported() { return uring_runtime_supported(); }

std::unique_ptr<WalUring> WalUring::create() {
  if (!uring_runtime_supported()) return nullptr;
  try {
    std::unique_ptr<WalUring> ring(new WalUring());
    ring->impl_ = std::make_unique<Impl>();
    return ring;
  } catch (const std::exception&) {
    return nullptr;
  }
}

std::uint64_t WalUring::append_fsync(int fd, BytesView data) {
  constexpr std::uint64_t kWriteOp = 1;
  constexpr std::uint64_t kFsyncOp = 2;
  Impl& impl = *impl_;
  const std::uint64_t enters_before = impl.ring.enter_syscalls();

  if (!impl.ring.prep_write(fd, data.data(), static_cast<unsigned>(data.size()),
                            kWriteOp, /*link=*/true) ||
      !impl.ring.prep_fsync(fd, kFsyncOp)) {
    // 8-entry ring with at most 2 in flight: cannot happen, but fail loudly
    // rather than lose a group.
    throw std::runtime_error("WalUring: submission queue unavailable");
  }

  // One enter submits the pair and waits; the loop only iterates when the
  // two completions land in separate reaps.
  std::int64_t write_res = INT64_MIN;
  std::int64_t fsync_res = INT64_MIN;
  unsigned seen = 0;
  while (seen < 2) {
    const int rc = impl.ring.submit(/*wait_for=*/2 - seen);
    if (rc < 0) throw std::runtime_error("WalUring: io_uring_enter failed");
    MiniUring::Cqe cqes[4];
    const std::size_t count = impl.ring.reap(cqes, 4);
    for (std::size_t i = 0; i < count; ++i) {
      if (cqes[i].user_data == kWriteOp) {
        write_res = cqes[i].res;
        ++seen;
      } else if (cqes[i].user_data == kFsyncOp) {
        fsync_res = cqes[i].res;
        ++seen;
      }
    }
  }

  std::uint64_t spent = impl.ring.enter_syscalls() - enters_before;
  const std::size_t len = data.size();
  if (write_res != static_cast<std::int64_t>(len) || fsync_res != 0) {
    // Short write (breaks the link: the fsync came back -ECANCELED), write
    // error, or sync failure. Both completions were observed, so the durable
    // prefix is known exactly — finish the remainder classically.
    std::size_t done = write_res > 0 ? static_cast<std::size_t>(write_res) : 0;
    while (done < len) {
      const ssize_t wrote = ::write(fd, data.data() + done, len - done);
      ++spent;
      if (wrote < 0) {
        if (errno == EINTR) continue;
        impl.syscalls.fetch_add(spent, std::memory_order_relaxed);
        throw std::runtime_error("WalUring: write fallback failed");
      }
      done += static_cast<std::size_t>(wrote);
    }
    ::fsync(fd);
    ++spent;
  }
  impl.groups.fetch_add(1, std::memory_order_relaxed);
  impl.syscalls.fetch_add(spent, std::memory_order_relaxed);
  return spent;
}

std::uint64_t WalUring::groups() const {
  return impl_->groups.load(std::memory_order_relaxed);
}

std::uint64_t WalUring::syscalls() const {
  return impl_->syscalls.load(std::memory_order_relaxed);
}

#else  // !MAHIMAHI_IOURING

struct WalUring::Impl {};

WalUring::WalUring() = default;
WalUring::~WalUring() = default;

bool WalUring::supported() { return false; }

std::unique_ptr<WalUring> WalUring::create() { return nullptr; }

std::uint64_t WalUring::append_fsync(int, BytesView) {
  throw std::runtime_error("WalUring compiled out");
}

std::uint64_t WalUring::groups() const { return 0; }

std::uint64_t WalUring::syscalls() const { return 0; }

#endif  // MAHIMAHI_IOURING

}  // namespace mahimahi
