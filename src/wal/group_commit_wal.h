// Group-commit decorator over a FramedWal layout (monolithic FileWal or the
// checkpoint subsystem's SegmentedWal).
//
// The inline FileWal pays a write + sync on the appender's thread for every
// insertion batch — on a deployed validator that thread is the event loop,
// so a slow disk serializes consensus behind log I/O. This decorator moves
// the file entirely off the appender's thread:
//
//   append_*  (appender thread)   encode the record, copy it into a bounded
//                                 staging buffer, return immediately
//   writer    (dedicated thread)  waits out the flush interval (or a byte
//                                 budget, whichever trips first), then lands
//                                 the whole group as ONE write + sync and
//                                 completes the durability acks it covers
//
// Because every implementation shares the wal_encode_* record framing, a
// group-committed log is byte-identical to the inline log for the same
// append sequence — recovery (FileWal::replay) cannot tell them apart, and
// a torn tail still truncates to a clean record boundary.
//
// Threading contract: append_block / append_commit / on_durable come from
// ONE appender thread (the runtime's event loop); sync() — a full blocking
// durability barrier, meant for shutdown paths — may come from any thread
// except the writer's. Acks run on the writer thread, or are handed to the
// ack executor when one is configured (the TCP runtime posts them to its
// event loop).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time.h"
#include "wal/wal.h"

namespace mahimahi {

struct GroupCommitWalOptions {
  // Longest a staged record waits before its group flushes. 0 = the writer
  // flushes as soon as it is free — still a group commit: everything that
  // arrived during the previous write + sync lands together.
  TimeMicros flush_interval = millis(1);
  // Staged bytes that trip a flush before the interval elapses.
  std::size_t group_byte_budget = 1 << 20;
  // Hard bound on the staging buffer. Appends block (backpressure on the
  // appender) once the buffer holds this much — an unbounded buffer would
  // hide a dying disk until the process OOMs.
  std::size_t max_staged_bytes = 64 << 20;
  // Land groups through a WAL submission ring (wal/wal_ring.h): one linked
  // write→fsync io_uring pair per group instead of the write + fsync syscall
  // pair. Silently ignored when the ring is compiled out or the kernel
  // refuses it — the classic path is always correct, just costlier.
  bool use_io_uring = false;
  // Non-empty: the writer thread's MM_LOG context (see common/log.h), e.g.
  // "v3/wal" — makes its lines attributable in multi-validator cluster logs.
  std::string log_context;
};

class GroupCommitWal : public Wal {
 public:
  // Runs a durability ack somewhere; null = on the writer thread.
  using AckExecutor = std::function<void(std::function<void()>)>;

  GroupCommitWal(std::unique_ptr<FramedWal> inner, GroupCommitWalOptions options,
                 AckExecutor ack_executor = nullptr);
  // Drains every staged record (one final group) and joins the writer.
  ~GroupCommitWal() override;

  GroupCommitWal(const GroupCommitWal&) = delete;
  GroupCommitWal& operator=(const GroupCommitWal&) = delete;

  void append_block(const Block& block, bool own) override;
  void append_commit(SlotId slot) override;
  // Blocking durability barrier: returns once everything appended before the
  // call is on disk. Shutdown/teardown path — the hot path never calls this;
  // it rides the interval/budget flushes and on_durable acks instead.
  void sync() override;
  // Registers an ack covering every record appended so far. Fires after the
  // covering flush (in registration order), via the ack executor when one is
  // set; fires immediately (same dispatch) when already durable.
  void on_durable(std::function<void()> done) override;

  // Drains and joins the writer early (idempotent; the destructor calls it).
  // After shutdown the inner FileWal is still owned and readable; appends
  // are a programming error.
  void shutdown();

  // Introspection (thread-safe).
  std::uint64_t groups_flushed() const;
  std::uint64_t records_appended() const;
  std::uint64_t records_flushed() const;
  // Total micros the writer spent inside write + sync — the disk time that
  // no longer runs on the appender's thread.
  std::uint64_t flush_micros() const;
  // True when groups land through the WAL ring (use_io_uring requested AND
  // the ring came up AND the layout fsyncs).
  bool wal_ring_active() const { return inner_->wal_ring_active(); }
  // Syscalls spent landing groups (see FramedWal::group_flush_syscalls).
  std::uint64_t group_flush_syscalls() const { return inner_->group_flush_syscalls(); }
  const FramedWal& inner() const { return *inner_; }

 private:
  // Shared append body: blocks for staging space, copies the framed record
  // in, and wakes the writer.
  void stage_record(const Bytes& framed);
  void writer_main();

  const GroupCommitWalOptions options_;
  const AckExecutor ack_executor_;
  // Declared before inner_ (destroyed after it): the layout holds a raw
  // pointer to the ring. Driven only by the writer thread.
  std::unique_ptr<WalUring> wal_ring_;
  std::unique_ptr<FramedWal> inner_;

  mutable std::mutex mutex_;
  std::condition_variable writer_wake_;   // writer waits: work or stop
  std::condition_variable caller_wake_;   // appenders/barriers wait: space or durability
  Bytes staged_;                          // framed records awaiting the next group
  std::uint64_t staged_records_ = 0;      // records in staged_
  std::uint64_t appended_seq_ = 0;        // records ever appended
  std::uint64_t durable_seq_ = 0;         // records on disk
  std::chrono::steady_clock::time_point group_opened_at_{};  // first staged record
  bool flush_requested_ = false;          // sync(): flush now, skip the interval
  bool stopping_ = false;
  struct PendingAck {
    std::uint64_t seq;
    std::function<void()> done;
  };
  std::deque<PendingAck> pending_acks_;  // popped front-first as groups land

  std::uint64_t groups_flushed_ = 0;
  std::uint64_t records_flushed_ = 0;
  std::uint64_t flush_micros_ = 0;

  std::thread writer_;
};

}  // namespace mahimahi
