#include "wal/group_commit_wal.h"

#include <utility>

#include "common/log.h"
#include "wal/wal_ring.h"

namespace mahimahi {

namespace {

std::chrono::microseconds chrono_micros(TimeMicros t) {
  return std::chrono::microseconds(t);
}

}  // namespace

GroupCommitWal::GroupCommitWal(std::unique_ptr<FramedWal> inner,
                               GroupCommitWalOptions options, AckExecutor ack_executor)
    : options_(options), ack_executor_(std::move(ack_executor)), inner_(std::move(inner)) {
  if (options_.use_io_uring) {
    // Set up before the writer starts: the ring is created here but driven
    // only by the writer thread. nullptr (unsupported kernel / compiled out)
    // leaves the classic write+fsync path attached.
    wal_ring_ = WalUring::create();
    if (wal_ring_ != nullptr) inner_->attach_wal_ring(wal_ring_.get());
  }
  writer_ = std::thread([this] { writer_main(); });
}

GroupCommitWal::~GroupCommitWal() { shutdown(); }

void GroupCommitWal::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  writer_wake_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void GroupCommitWal::stage_record(const Bytes& framed) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Bounded staging: block until the writer drains (disk backpressure must
  // reach the appender, not grow an unbounded buffer). An oversized record
  // is taken into an empty buffer anyway so it cannot wedge the appender.
  caller_wake_.wait(lock, [this, &framed] {
    return stopping_ || staged_.size() + framed.size() <= options_.max_staged_bytes ||
           staged_.empty();
  });
  if (stopping_) return;
  if (staged_.empty()) group_opened_at_ = std::chrono::steady_clock::now();
  staged_.insert(staged_.end(), framed.begin(), framed.end());
  ++staged_records_;
  ++appended_seq_;
  lock.unlock();
  writer_wake_.notify_one();
}

void GroupCommitWal::append_block(const Block& block, bool own) {
  // Encoding happens on the appender's thread — it is pure CPU over an
  // immutable block and keeps the staged bytes byte-identical to what the
  // inline FileWal would have written at this point in the sequence.
  stage_record(wal_encode_block_record(block, own));
}

void GroupCommitWal::append_commit(SlotId slot) {
  stage_record(wal_encode_commit_record(slot));
}

void GroupCommitWal::sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t target = appended_seq_;
  // Already durable: return without arming flush_requested_ — the writer
  // only clears the flag when it takes a group, so a stale request would
  // make the NEXT group flush immediately and skip the interval batching.
  if (durable_seq_ >= target) return;
  flush_requested_ = true;
  writer_wake_.notify_one();
  caller_wake_.wait(lock, [this, target] { return stopping_ || durable_seq_ >= target; });
}

void GroupCommitWal::on_durable(std::function<void()> done) {
  // Always routed through the writer thread, even when the covering records
  // are already durable: a single dispatcher makes ack completion order total
  // (registration order), so gated sends can never overtake each other.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_acks_.push_back({appended_seq_, std::move(done)});
  }
  writer_wake_.notify_one();
}

std::uint64_t GroupCommitWal::groups_flushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return groups_flushed_;
}

std::uint64_t GroupCommitWal::records_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_seq_;
}

std::uint64_t GroupCommitWal::records_flushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_flushed_;
}

std::uint64_t GroupCommitWal::flush_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flush_micros_;
}

void GroupCommitWal::writer_main() {
  if (!options_.log_context.empty()) set_log_context(options_.log_context);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    writer_wake_.wait(lock, [this] {
      return stopping_ || !staged_.empty() ||
             (!pending_acks_.empty() && pending_acks_.front().seq <= durable_seq_);
    });

    if (!staged_.empty()) {
      // A group is open. Hold it until the flush interval elapses, the byte
      // budget trips, a barrier asks for an immediate flush, or shutdown —
      // records arriving meanwhile join the group for free.
      const auto deadline = group_opened_at_ + chrono_micros(options_.flush_interval);
      while (!stopping_ && !flush_requested_ &&
             staged_.size() < options_.group_byte_budget &&
             std::chrono::steady_clock::now() < deadline) {
        writer_wake_.wait_until(lock, deadline);
      }

      Bytes group;
      group.swap(staged_);
      const std::uint64_t group_records = staged_records_;
      staged_records_ = 0;
      const std::uint64_t flushed_through = appended_seq_;
      flush_requested_ = false;
      lock.unlock();

      // One durable landing for the whole group, off the appender's thread:
      // write + sync classically, or a single linked write→fsync submission
      // when the layout has the WAL ring attached.
      const TimeMicros start = steady_now_micros();
      inner_->append_group_durable({group.data(), group.size()});
      const TimeMicros spent = steady_now_micros() - start;

      lock.lock();
      durable_seq_ = flushed_through;
      ++groups_flushed_;
      records_flushed_ += group_records;
      flush_micros_ += static_cast<std::uint64_t>(spent);
      caller_wake_.notify_all();
    }

    // Dispatch every covered ack, in registration order. Acks are pushed in
    // seq order, so the covered ones form a prefix.
    std::vector<PendingAck> due;
    while (!pending_acks_.empty() && pending_acks_.front().seq <= durable_seq_) {
      due.push_back(std::move(pending_acks_.front()));
      pending_acks_.pop_front();
    }
    if (!due.empty()) {
      lock.unlock();
      for (auto& ack : due) {
        if (ack_executor_) {
          ack_executor_(std::move(ack.done));
        } else {
          ack.done();
        }
      }
      lock.lock();
    }

    // Shutdown completes only after the final group landed and every ack it
    // covers was dispatched.
    if (stopping_ && staged_.empty() && pending_acks_.empty()) return;
  }
}

}  // namespace mahimahi
