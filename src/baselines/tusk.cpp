#include "baselines/tusk.h"

#include "core/linearize.h"

namespace mahimahi {

TuskCommitter::TuskCommitter(const Dag& dag, const Committee& committee,
                             TuskOptions options)
    : dag_(dag), committee_(committee), options_(options) {
  next_pending_ = SlotId{options_.first_slot_round, 0};
}

std::optional<ValidatorId> TuskCommitter::slot_leader(SlotId slot) const {
  const Round reveal = support_round(slot.round);
  if (dag_.distinct_authors_at(reveal) < committee_.quorum_threshold()) {
    return std::nullopt;
  }
  return static_cast<ValidatorId>(committee_.coin().value(reveal) % committee_.size());
}

SlotDecision TuskCommitter::evaluate(SlotId slot,
                                     const std::map<SlotId, SlotDecision>& later) {
  SlotDecision decision = SlotDecision::undecided(slot);
  const auto leader = slot_leader(slot);
  if (!leader.has_value()) return decision;
  decision.leader = *leader;

  // The certified DAG holds at most one block per slot (no equivocation).
  const auto& candidates = dag_.slot(slot.round, *leader);
  const BlockPtr block = candidates.empty() ? nullptr : candidates.front();

  if (block != nullptr) {
    // Direct rule: f+1 distinct support-round authors reference the leader
    // block as a parent.
    std::uint32_t supporting_authors = 0;
    for (ValidatorId a = 0; a < committee_.size(); ++a) {
      for (const BlockPtr& support : dag_.slot(support_round(slot.round), a)) {
        bool references = false;
        for (const auto& parent : support->parents()) {
          if (parent.digest == block->digest()) {
            references = true;
            break;
          }
        }
        if (references) {
          ++supporting_authors;
          break;
        }
      }
    }
    if (supporting_authors >= committee_.validity_threshold()) {
      decision.kind = SlotDecision::Kind::kCommit;
      decision.via = SlotDecision::Via::kDirect;
      decision.block = block;
      decision.ref = block->ref();
      decision.final_decision = true;
      return decision;
    }
  }

  // Recursive rule: resolve from the next committed leader. The anchor is
  // the earliest later slot that is not skipped.
  const SlotDecision* anchor = nullptr;
  for (auto it = later.lower_bound(SlotId{slot.round + 1, 0}); it != later.end(); ++it) {
    if (it->second.kind != SlotDecision::Kind::kSkip) {
      anchor = &it->second;
      break;
    }
  }
  if (anchor == nullptr || anchor->kind == SlotDecision::Kind::kUndecided) {
    return decision;
  }
  if (block != nullptr && dag_.is_link(block->ref(), *anchor->block)) {
    decision.kind = SlotDecision::Kind::kCommit;
    decision.via = SlotDecision::Via::kIndirect;
    decision.block = block;
    decision.ref = block->ref();
  } else {
    decision.kind = SlotDecision::Kind::kSkip;
    decision.via = SlotDecision::Via::kIndirect;
  }
  decision.final_decision = true;
  return decision;
}

std::vector<CommittedSubDag> TuskCommitter::try_commit() {
  // Evaluate pending slots, newest first (the recursive rule consults later
  // decisions), then consume the decided prefix.
  std::map<SlotId, SlotDecision> pass;
  const Round highest = dag_.highest_round();
  if (highest >= options_.first_slot_round) {
    const Round aligned =
        highest - (highest - options_.first_slot_round) % options_.wave_stride;
    for (Round r = aligned;; r -= options_.wave_stride) {
      const SlotId slot{r, 0};
      if (!(slot < next_pending_)) pass.emplace(slot, evaluate(slot, pass));
      if (r < next_pending_.round + options_.wave_stride) break;
      if (r < options_.wave_stride) break;
    }
  }

  std::vector<CommittedSubDag> out;
  for (SlotId slot = next_pending_;; slot.round += options_.wave_stride) {
    const auto it = pass.find(slot);
    if (it == pass.end()) break;
    const SlotDecision& decision = it->second;
    if (decision.kind == SlotDecision::Kind::kUndecided) break;
    decided_log_.push_back(decision);
    if (decision.kind == SlotDecision::Kind::kCommit) {
      decision.via == SlotDecision::Via::kDirect ? ++stats_.direct_commits
                                                 : ++stats_.indirect_commits;
      out.push_back(linearize_sub_dag(dag_, slot, decision.block, delivered_, stats_));
    } else {
      decision.via == SlotDecision::Via::kDirect ? ++stats_.direct_skips
                                                 : ++stats_.indirect_skips;
    }
    next_pending_ = SlotId{slot.round + options_.wave_stride, 0};
  }
  return out;
}

}  // namespace mahimahi
