// Tusk commit rule (Danezis et al., EuroSys '22) — the certified-DAG
// baseline of the paper's evaluation (§5).
//
// Tusk runs over a *certified* DAG: every vertex is reliably broadcast,
// which costs 3 message delays per round but rules out equivocation. Waves
// are 2 rounds: an even.. rather, propose round r (stride 2) and a support
// round r+1. The common coin revealed with round r+1 retroactively elects
// one leader for round r; the leader commits directly when f+1 distinct
// round-(r+1) authors reference its block as a parent. Undecided leaders are
// resolved recursively from the next committed leader by causal reachability
// (commit if reachable, skip otherwise).
//
// The 3-delay certification itself is a transport property, simulated by the
// harness's certified-dissemination mode (sim/harness.h); this class only
// implements the commit rule. The simulator runs Tusk with honest
// validators, mirroring the paper's evaluation (crash faults only).
#pragma once

#include <map>
#include <optional>

#include "core/committer_base.h"
#include "core/linearize.h"
#include "dag/dag.h"
#include "types/committee.h"

namespace mahimahi {

struct TuskOptions {
  Round first_slot_round = 1;
  Round wave_stride = 2;  // propose rounds 1, 3, 5, ...
};

class TuskCommitter : public CommitterBase {
 public:
  TuskCommitter(const Dag& dag, const Committee& committee, TuskOptions options = {});

  std::vector<CommittedSubDag> try_commit() override;
  const CommitStats& stats() const override { return stats_; }
  SlotId next_pending_slot() const override { return next_pending_; }
  const std::vector<SlotDecision>& decided_sequence() const override {
    return decided_log_;
  }
  void prune_below(Round) override {}  // no memoized state

  // Leader of the wave proposing at `slot.round`; nullopt until 2f+1
  // distinct support-round blocks opened the coin.
  std::optional<ValidatorId> slot_leader(SlotId slot) const;

 private:
  Round support_round(Round propose_round) const { return propose_round + 1; }
  SlotDecision evaluate(SlotId slot, const std::map<SlotId, SlotDecision>& later);

  const Dag& dag_;
  const Committee& committee_;
  TuskOptions options_;

  SlotId next_pending_;
  std::vector<SlotDecision> decided_log_;
  DeliveredMap delivered_;
  CommitStats stats_;
};

// ValidatorConfig::committer_factory adapter.
inline auto tusk_committer_factory(TuskOptions options = {}) {
  return [options](const Dag& dag, const Committee& committee) {
    return std::make_unique<TuskCommitter>(dag, committee, options);
  };
}

}  // namespace mahimahi
