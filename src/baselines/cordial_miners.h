// Cordial Miners (Keidar et al., DISC '23) — the uncertified-DAG baseline.
//
// Cordial Miners shares Mahi-Mahi's substrate (uncertified DAG, best-effort
// block dissemination, retrospective coin election) but commits at most one
// leader block every wave_length rounds and has no direct skip rule: a
// missing leader is only resolved once a later wave's leader commits, via the
// recursive rule — roughly two rounds later than Mahi-Mahi's direct skip
// (§5.3). It is exactly the Mahi-Mahi committer restricted to:
//
//   * non-overlapping waves (wave_stride = wave_length),
//   * a single leader slot per wave,
//   * direct skip disabled.
//
// The paper's own Cordial Miners implementation is built the same way, on
// the same system components (§4).
#pragma once

#include <memory>

#include "core/committer.h"
#include "core/options.h"

namespace mahimahi {

// ValidatorConfig-ready options (see cordial_miners_shape in core/options.h).
inline CommitterOptions cordial_miners_options(std::uint32_t wave_length = 5) {
  return cordial_miners_shape(wave_length);
}

inline auto cordial_miners_committer_factory(std::uint32_t wave_length = 5) {
  return [wave_length](const Dag& dag, const Committee& committee) {
    return std::make_unique<Committer>(dag, committee, cordial_miners_shape(wave_length));
  };
}

}  // namespace mahimahi
