// Commands of the replicated key-value state machine (app/kv_store.h).
//
// Mahi-Mahi solves Byzantine Atomic Broadcast, whose purpose is State
// Machine Replication (§2.1): every validator applies the same commands in
// the same (total) order and therefore reaches the same state. This header
// defines the command wire format carried inside TxBatch payloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "serde/serde.h"

namespace mahimahi::app {

struct KvCommand {
  enum class Op : std::uint8_t { kPut = 0, kDelete = 1, kNoop = 2 };

  Op op = Op::kNoop;
  std::string key;
  std::string value;  // empty for kDelete / kNoop

  bool operator==(const KvCommand&) const = default;

  static KvCommand put(std::string key, std::string value) {
    return {Op::kPut, std::move(key), std::move(value)};
  }
  static KvCommand del(std::string key) { return {Op::kDelete, std::move(key), {}}; }

  void serialize(serde::Writer& w) const {
    w.u8(static_cast<std::uint8_t>(op));
    w.bytes(as_bytes_view(key));
    w.bytes(as_bytes_view(value));
  }

  static KvCommand deserialize(serde::Reader& r) {
    KvCommand cmd;
    const std::uint8_t op = r.u8();
    if (op > static_cast<std::uint8_t>(Op::kNoop)) {
      throw serde::SerdeError("KvCommand: unknown op");
    }
    cmd.op = static_cast<Op>(op);
    const Bytes key = r.bytes();
    const Bytes value = r.bytes();
    cmd.key.assign(key.begin(), key.end());
    cmd.value.assign(value.begin(), value.end());
    return cmd;
  }
};

// A batch payload is a command list, domain-tagged so the state machine can
// tell application batches apart from opaque benchmark filler.
inline constexpr std::uint32_t kKvPayloadMagic = 0x4b564d31;  // "KVM1"

inline Bytes encode_kv_payload(const std::vector<KvCommand>& commands) {
  serde::Writer w;
  w.u32(kKvPayloadMagic);
  w.varint(commands.size());
  for (const auto& cmd : commands) cmd.serialize(w);
  return std::move(w).take();
}

// Returns an empty vector for payloads that are not KV command lists
// (benchmark filler); throws SerdeError on corrupt KV payloads.
inline std::vector<KvCommand> decode_kv_payload(BytesView payload) {
  if (payload.size() < 4) return {};
  serde::Reader r(payload);
  if (r.u32() != kKvPayloadMagic) return {};
  const std::uint64_t count = r.varint();
  std::vector<KvCommand> commands;
  commands.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) commands.push_back(KvCommand::deserialize(r));
  r.expect_done();
  return commands;
}

}  // namespace mahimahi::app
