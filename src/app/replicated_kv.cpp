#include "app/replicated_kv.h"

#include "crypto/blake2b.h"
#include "serde/serde.h"

namespace mahimahi::app {

Digest batch_identity(const TxBatch& batch) {
  serde::Writer w;
  w.u64(batch.id);
  w.bytes({batch.payload.data(), batch.payload.size()});
  return crypto::Blake2b::hash256({w.data().data(), w.data().size()});
}

std::uint64_t ReplicatedKv::apply_subdag(const CommittedSubDag& subdag) {
  std::uint64_t applied = 0;
  for (const BlockPtr& block : subdag.blocks) {
    for (const TxBatch& batch : block->batches()) {
      if (batch.payload.empty()) continue;  // benchmark filler carries no commands
      if (!executed_batches_.insert(batch_identity(batch)).second) {
        ++batches_deduplicated_;
        continue;
      }
      try {
        for (const KvCommand& cmd : decode_kv_payload({batch.payload.data(),
                                                        batch.payload.size()})) {
          store_.apply(cmd);
          ++applied;
        }
      } catch (const serde::SerdeError&) {
        // A Byzantine client can submit garbage; it must not poison the
        // replica. Count and continue — determinism holds because every
        // validator sees the same bytes and takes the same branch.
        ++malformed_batches_;
      }
    }
  }
  commands_applied_ += applied;
  return applied;
}

}  // namespace mahimahi::app
