// Replicated key-value application: the bridge from consensus output
// (CommittedSubDag stream) to the deterministic state machine.
//
// The paper's client model (§2.3) resubmits a transaction to a different
// validator if it does not finalize quickly, so the same command may appear
// in two committed blocks. The application layer provides exactly-once
// execution by deduplicating on the batch's content identity in committed
// order — a deterministic function of the committed sequence, so all
// validators still agree on the resulting state.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "app/kv_store.h"
#include "core/decision.h"
#include "types/transaction.h"

namespace mahimahi::app {

// Content identity of a batch: id plus payload. Two submissions of the same
// command batch (client resubmission to a different validator) collide here;
// distinct commands never do (up to hash collisions). Shared with the
// parallel executor (exec/) so both apply paths deduplicate identically.
Digest batch_identity(const TxBatch& batch);

class ReplicatedKv {
 public:
  // Applies every KV command carried by `subdag`'s blocks, in the sub-DAG's
  // deterministic causal order. Non-KV (benchmark filler) batches are
  // skipped. Returns the number of commands applied.
  std::uint64_t apply_subdag(const CommittedSubDag& subdag);

  const KvStore& store() const { return store_; }
  Digest state_digest() const { return store_.state_digest(); }
  std::uint64_t commands_applied() const { return commands_applied_; }
  std::uint64_t batches_deduplicated() const { return batches_deduplicated_; }
  std::uint64_t malformed_batches() const { return malformed_batches_; }

 private:
  KvStore store_;
  std::unordered_set<Digest, DigestHasher> executed_batches_;
  std::uint64_t commands_applied_ = 0;
  std::uint64_t batches_deduplicated_ = 0;
  std::uint64_t malformed_batches_ = 0;
};

}  // namespace mahimahi::app
