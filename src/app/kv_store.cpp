#include "app/kv_store.h"

#include "crypto/blake2b.h"
#include "serde/serde.h"

namespace mahimahi::app {

bool KvStore::apply(const KvCommand& command) {
  switch (command.op) {
    case KvCommand::Op::kPut:
      entries_[command.key] = command.value;
      ++version_;
      touched_.insert(command.key);
      return true;
    case KvCommand::Op::kDelete:
      if (entries_.erase(command.key) == 0) return false;
      ++version_;
      touched_.insert(command.key);
      return true;
    case KvCommand::Op::kNoop:
      return false;
  }
  return false;
}

void KvStore::apply_resolved(const KvCommand& command, bool changes_state) {
  if (!changes_state) return;  // no-op Delete (absent key) or Noop
  if (command.op == KvCommand::Op::kPut) {
    entries_[command.key] = command.value;
  } else {
    entries_.erase(command.key);
  }
  ++version_;
  touched_.insert(command.key);
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

Digest KvStore::state_digest() const {
  const Bytes encoded = snapshot_bytes();
  return crypto::Blake2b::hash256({encoded.data(), encoded.size()});
}

Bytes KvStore::snapshot_bytes() const {
  // std::map iterates in key order, so the encoding is deterministic.
  serde::Writer w;
  w.u64(version_);
  w.varint(entries_.size());
  for (const auto& [key, value] : entries_) {
    w.bytes(as_bytes_view(key));
    w.bytes(as_bytes_view(value));
  }
  return std::move(w).take();
}

KvStore KvStore::restore(BytesView snapshot) {
  serde::Reader r(snapshot);
  KvStore store;
  store.version_ = r.u64();
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Bytes key = r.bytes();
    const Bytes value = r.bytes();
    store.entries_.emplace(std::string(key.begin(), key.end()),
                           std::string(value.begin(), value.end()));
  }
  r.expect_done();
  return store;
}

Bytes KvStore::delta_bytes() const {
  serde::Writer w;
  w.u64(version_);
  w.varint(touched_.size());
  for (const auto& key : touched_) {  // std::set: sorted, deterministic
    w.bytes(as_bytes_view(key));
    const auto it = entries_.find(key);
    w.u8(it != entries_.end() ? 1 : 0);
    if (it != entries_.end()) w.bytes(as_bytes_view(it->second));
  }
  return std::move(w).take();
}

void KvStore::apply_delta(BytesView delta) {
  serde::Reader r(delta);
  const std::uint64_t version = r.u64();
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Bytes key_bytes = r.bytes();
    std::string key(key_bytes.begin(), key_bytes.end());
    if (r.u8() != 0) {
      const Bytes value = r.bytes();
      entries_[std::move(key)] = std::string(value.begin(), value.end());
    } else {
      entries_.erase(key);
    }
  }
  r.expect_done();
  version_ = version;
}

}  // namespace mahimahi::app
