// Deterministic key-value state machine.
//
// Pure and replayable: the state after applying a command sequence is a
// function of that sequence alone. `state_digest()` folds the full contents
// into one hash, which is how the tests and examples check that validators
// executing the same committed sequence reach identical states (the whole
// point of Byzantine Atomic Broadcast, §2.1).
//
// Delta snapshots (checkpoint/delta.h): the store tracks which keys changed
// since the last clear_delta_window(); delta_bytes() serializes only those
// keys (present-with-value or absent), so an incremental checkpoint carries
// the touched working set instead of the full state. apply_delta() on the
// previous full state reproduces the current one exactly — including
// `version`, so state_digest() equality is the cross-check.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "app/kv_command.h"
#include "crypto/digest.h"

namespace mahimahi::app {

class KvStore {
 public:
  // Applies one command; returns true if the state changed (a Put of the
  // same value still counts as a change to `version`).
  bool apply(const KvCommand& command);

  // Parallel-execution support (exec/engine.cpp): applies a command whose
  // state-change outcome a worker pre-resolved against the pre-wave state.
  // `changes_state` must equal what apply() would have returned at this
  // serial position — the wave invariants guarantee it (no same-wave writer
  // shares this command's key), and the digest-equivalence property tests
  // would catch a violation as a version mismatch.
  void apply_resolved(const KvCommand& command, bool changes_state);

  std::optional<std::string> get(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }
  // Number of state-changing commands applied (Noop and no-op Deletes are
  // not counted).
  std::uint64_t version() const { return version_; }

  // Deterministic digest of (sorted) contents and version.
  Digest state_digest() const;

  // Full-state serialization for checkpoints (the same deterministic
  // encoding state_digest() hashes): restore() on the snapshot reproduces
  // state_digest() exactly. Throws serde::SerdeError on malformed input.
  Bytes snapshot_bytes() const;
  static KvStore restore(BytesView snapshot);

  // --- Delta snapshots (incremental checkpoints) ---------------------------

  // Keys whose state changed since the last clear_delta_window() (no-op
  // Deletes and Noops do not count — they changed nothing).
  std::size_t touched_count() const { return touched_.size(); }

  // Serializes `version` plus each touched key with its current outcome
  // (present + value, or absent). Deterministic (keys sorted). Does NOT
  // clear the window — pair with clear_delta_window() once the delta is
  // safely handed off.
  Bytes delta_bytes() const;

  // Starts a fresh delta window (after a base or delta cut was taken).
  void clear_delta_window() { touched_.clear(); }

  // Applies a delta_bytes() record produced on top of this exact state:
  // overwrites/erases the carried keys and adopts the carried version. A
  // restore-path operation — the receiving store's own delta window is left
  // untouched. Throws serde::SerdeError on malformed input.
  void apply_delta(BytesView delta);

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
  // Sorted so delta_bytes() is deterministic without an extra sort.
  std::set<std::string> touched_;
  std::uint64_t version_ = 0;
};

}  // namespace mahimahi::app
