// Deterministic key-value state machine.
//
// Pure and replayable: the state after applying a command sequence is a
// function of that sequence alone. `state_digest()` folds the full contents
// into one hash, which is how the tests and examples check that validators
// executing the same committed sequence reach identical states (the whole
// point of Byzantine Atomic Broadcast, §2.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "app/kv_command.h"
#include "crypto/digest.h"

namespace mahimahi::app {

class KvStore {
 public:
  // Applies one command; returns true if the state changed (a Put of the
  // same value still counts as a change to `version`).
  bool apply(const KvCommand& command);

  // Parallel-execution support (exec/engine.cpp): applies a command whose
  // state-change outcome a worker pre-resolved against the pre-wave state.
  // `changes_state` must equal what apply() would have returned at this
  // serial position — the wave invariants guarantee it (no same-wave writer
  // shares this command's key), and the digest-equivalence property tests
  // would catch a violation as a version mismatch.
  void apply_resolved(const KvCommand& command, bool changes_state);

  std::optional<std::string> get(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }
  // Number of state-changing commands applied (Noop and no-op Deletes are
  // not counted).
  std::uint64_t version() const { return version_; }

  // Deterministic digest of (sorted) contents and version.
  Digest state_digest() const;

  // Full-state serialization for checkpoints (the same deterministic
  // encoding state_digest() hashes): restore() on the snapshot reproduces
  // state_digest() exactly. Throws serde::SerdeError on malformed input.
  Bytes snapshot_bytes() const;
  static KvStore restore(BytesView snapshot);

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
  std::uint64_t version_ = 0;
};

}  // namespace mahimahi::app
