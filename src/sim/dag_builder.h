// Direct DAG construction, bypassing networking.
//
// Used by the decision-rule tests (hand-crafted DAGs such as the paper's
// Fig. 2), the property tests, and the commit-probability benches (Monte
// Carlo over the random-network and asynchronous message-schedule models of
// §2.3 / Appendix C). Blocks are real, signed blocks; only transport is
// elided.
#pragma once

#include <vector>

#include "common/rng.h"
#include "core/options.h"
#include "dag/dag.h"
#include "types/committee.h"

namespace mahimahi {

class DagBuilder {
 public:
  explicit DagBuilder(std::uint32_t n, std::uint64_t seed = 42);

  Dag& dag() { return dag_; }
  const Dag& dag() const { return dag_; }
  const Committee& committee() const { return setup_.committee; }
  std::uint32_t n() const { return setup_.committee.size(); }
  std::uint32_t f() const { return setup_.committee.f(); }
  std::uint32_t quorum() const { return setup_.committee.quorum_threshold(); }

  // The validator the coin will assign to `slot`. With the simulated coin
  // this is computable before any block exists, which lets tests construct
  // DAGs shaped around a known leader (e.g. the Fig. 2 scenarios).
  ValidatorId leader_of(SlotId slot, const CommitterOptions& options) const {
    const auto coin_value =
        setup_.committee.coin().value(options.certify_round(slot.round));
    return static_cast<ValidatorId>((coin_value + slot.leader_offset) % n());
  }

  // Adds a signed block with explicit parents. Parents must already be in
  // the DAG. Returns the inserted block.
  BlockPtr add_block(ValidatorId author, Round round, std::vector<BlockRef> parents,
                     std::vector<TxBatch> batches = {});

  // Convenience: parents given as blocks.
  BlockPtr add_block_from(ValidatorId author, Round round,
                          const std::vector<BlockPtr>& parents);

  // Every author in `authors` proposes at `round`, referencing all blocks of
  // round-1 (the fully-connected round used by most tests). Returns the new
  // blocks, indexed by position in `authors`.
  std::vector<BlockPtr> add_full_round(Round round, std::vector<ValidatorId> authors = {});

  // Builds rounds 1..last_round fully connected.
  void build_fully_connected(Round last_round);

  // --- Message-schedule models (§2.3) --------------------------------------

  // Random network model: each proposer at `round` references its own
  // previous block plus blocks from a uniformly random subset of 2f+1
  // authors of round-1. `alive` lists the proposing authors (defaults all).
  std::vector<BlockPtr> add_random_network_round(Round round, Rng& rng,
                                                 std::vector<ValidatorId> alive = {});

  // Asynchronous adversary: `suppressed` blocks of round-1 are withheld from
  // every proposer that can still form a 2f+1 quorum without them (the
  // adversary delays targeted blocks as long as quorum formation allows —
  // the leader-suppression attack of §2.2).
  std::vector<BlockPtr> add_adversarial_round(Round round,
                                              const std::vector<ValidatorId>& suppressed_authors,
                                              std::vector<ValidatorId> alive = {});

 private:
  std::vector<ValidatorId> all_validators() const;

  Committee::TestSetup setup_;
  Dag dag_;
};

}  // namespace mahimahi
