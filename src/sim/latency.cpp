#include "sim/latency.h"

#include <algorithm>

namespace mahimahi {

namespace {

// One-way latencies (milliseconds) between the five regions, approximated
// from public inter-region RTT tables (half RTT). Symmetric.
constexpr double kOneWayMs[GeoLatency::kRegions][GeoLatency::kRegions] = {
    //            Ohio  Oregon  CapeTown  HongKong  Milan
    /* Ohio     */ {1.0, 25.0, 117.0, 95.0, 50.0},
    /* Oregon   */ {25.0, 1.0, 135.0, 72.0, 70.0},
    /* CapeTown */ {117.0, 135.0, 1.0, 140.0, 75.0},
    /* HongKong */ {95.0, 72.0, 140.0, 1.0, 90.0},
    /* Milan    */ {50.0, 70.0, 75.0, 90.0, 1.0},
};

TimeMicros with_jitter(TimeMicros base, double jitter_fraction, Rng& rng) {
  if (jitter_fraction <= 0.0) return base;
  const double jitter = rng.gaussian() * jitter_fraction * static_cast<double>(base);
  const auto result = static_cast<TimeMicros>(static_cast<double>(base) + jitter);
  // Delays never drop below a fifth of the base (no faster-than-light links).
  return std::max(result, base / 5);
}

}  // namespace

TimeMicros UniformLatency::sample(ValidatorId, ValidatorId, Rng& rng) {
  return with_jitter(base_, jitter_fraction_, rng);
}

TimeMicros GeoLatency::base(ValidatorId from, ValidatorId to) const {
  const std::size_t region_from = from % kRegions;
  const std::size_t region_to = to % kRegions;
  return static_cast<TimeMicros>(kOneWayMs[region_from][region_to] * kMicrosPerMilli);
}

TimeMicros GeoLatency::sample(ValidatorId from, ValidatorId to, Rng& rng) {
  return with_jitter(base(from, to), jitter_fraction_, rng);
}

const char* GeoLatency::region_name(std::size_t region) {
  switch (region) {
    case kOhio: return "us-east-2 (Ohio)";
    case kOregon: return "us-west-2 (Oregon)";
    case kCapeTown: return "af-south-1 (Cape Town)";
    case kHongKong: return "ap-east-1 (Hong Kong)";
    case kMilan: return "eu-south-1 (Milan)";
  }
  return "?";
}

}  // namespace mahimahi
