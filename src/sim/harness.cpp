#include "sim/harness.h"

#include <algorithm>
#include <deque>

#include "baselines/cordial_miners.h"
#include "baselines/tusk.h"
#include "checkpoint/cert.h"
#include "checkpoint/checkpoint.h"
#include "checkpoint/delta.h"
#include "checkpoint/segmented_wal.h"
#include "client/kv_batches.h"
#include "common/log.h"
#include "core/commit_scanner.h"
#include "exec/access.h"
#include "exec/engine.h"
#include "obs/trace.h"
#include "serde/serde.h"
#include "wal/wal.h"

namespace mahimahi::sim {

std::string to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kMahiMahi5: return "Mahi-Mahi-5";
    case Protocol::kMahiMahi4: return "Mahi-Mahi-4";
    case Protocol::kMahiMahi3: return "Mahi-Mahi-3";
    case Protocol::kCordialMiners: return "Cordial-Miners";
    case Protocol::kTusk: return "Tusk";
  }
  return "?";
}

std::string SimResult::to_string() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "tps=%8.0f  avg=%6.3fs  p50=%6.3fs  p95=%6.3fs  rounds=%llu  "
                "direct=%llu indirect=%llu skips=%llu",
                committed_tps, avg_latency_s, p50_latency_s, p95_latency_s,
                static_cast<unsigned long long>(max_round),
                static_cast<unsigned long long>(commit_stats.direct_commits),
                static_cast<unsigned long long>(commit_stats.indirect_commits),
                static_cast<unsigned long long>(commit_stats.skipped_slots()));
  return buffer;
}

namespace {

constexpr std::uint64_t kOriginShift = 40;

CommitterOptions options_for(const SimConfig& config) {
  if (config.committer_override.has_value()) return *config.committer_override;
  switch (config.protocol) {
    case Protocol::kMahiMahi5: return mahi_mahi_5(config.leaders_per_round);
    case Protocol::kMahiMahi4: return mahi_mahi_4(config.leaders_per_round);
    case Protocol::kMahiMahi3: {
      CommitterOptions o = mahi_mahi_5(config.leaders_per_round);
      o.wave_length = 3;
      return o;
    }
    case Protocol::kCordialMiners: return cordial_miners_shape(5);
    case Protocol::kTusk: return {};  // unused (factory overrides)
  }
  return {};
}

}  // namespace

struct SimHarness::Impl {
  explicit Impl(SimConfig config_in)
      : config(std::move(config_in)),
        setup(Committee::make_test(config.n)),
        rng(config.seed) {
    if (config.wan) {
      latency = std::make_unique<GeoLatency>(config.jitter_fraction);
    } else {
      latency = std::make_unique<UniformLatency>(config.uniform_latency,
                                                 config.jitter_fraction);
    }

    egress_free.assign(config.n, 0);
    // Client index lives in id bits [32, 40): at most 256 streams/validator.
    config.clients_per_validator =
        std::clamp<std::uint32_t>(config.clients_per_validator, 1, 256);
    batch_seq.assign(config.n,
                     std::vector<std::uint64_t>(config.clients_per_validator, 0));
    sequences.resize(config.n);
    inboxes.resize(config.n);
    inbox_scheduled.assign(config.n, 0);

    // Tusk: per-sender echo round trip — time to collect 2f+1 echoes
    // (itself plus the 2f fastest peers).
    cert_rtt.assign(config.n, 0);
    if (config.protocol == Protocol::kTusk) {
      const std::uint32_t needed = setup.committee.quorum_threshold() - 1;
      for (ValidatorId v = 0; v < config.n; ++v) {
        std::vector<TimeMicros> rtts;
        for (ValidatorId u = 0; u < config.n; ++u) {
          if (u == v || !alive(u)) continue;
          rtts.push_back(latency->base(v, u) + latency->base(u, v));
        }
        std::sort(rtts.begin(), rtts.end());
        cert_rtt[v] = rtts.empty() ? 0 : rtts[std::min<std::size_t>(needed, rtts.size()) - 1];
      }
    }

    down.assign(config.n, 0);
    mem_logs.resize(config.n);
    wals.resize(config.n);
    seg_wals.assign(config.n, nullptr);
    wal_stages.resize(config.n);
    scanners.resize(config.n);
    scan_scheduled.assign(config.n, 0);
    ckpts.resize(config.n);
    ckpt_stores.resize(config.n);
    execs.resize(config.n);
    exec_epochs.assign(config.n, 0);
    for (ValidatorId v = 0; v < config.n; ++v) {
      if (!alive(v)) {
        nodes.push_back(nullptr);
        continue;
      }
      nodes.push_back(make_node(v));
      scanners[v] = make_scanner(v);
      if (!config.wal_dir.empty()) open_wal(v);
      if (config.execute_app) execs[v] = std::make_unique<ExecNode>();
    }
  }

  // Does this run model the checkpoint subsystem? Requires a horizon to cut
  // at (gc_depth) and a core with the restore-capable default committer.
  bool checkpointing_active(ValidatorId v) const {
    return config.checkpoint_interval > 0 &&
           options_for(config).gc_depth > 0 && nodes[v] != nullptr &&
           nodes[v]->checkpoint_capable();
  }

  // Opens validator v's on-disk log in the layout this run models: rolling
  // segments + a checkpoint store with checkpointing on, one monolithic
  // FileWal otherwise.
  void open_wal(ValidatorId v) {
    if (config.checkpoint_interval > 0 && options_for(config).gc_depth > 0) {
      SegmentedWalOptions options;
      options.segment_bytes = config.wal_segment_bytes;
      auto segmented = std::make_unique<SegmentedWal>(wal_path(v), options);
      seg_wals[v] = segmented.get();
      wals[v] = std::move(segmented);
      if (ckpt_stores[v] == nullptr) {
        ckpt_stores[v] = std::make_unique<CheckpointStore>(wal_path(v));
      }
    } else {
      wals[v] = std::make_unique<FileWal>(wal_path(v));
    }
  }

  std::unique_ptr<ValidatorCore> make_node(ValidatorId v) {
    ValidatorConfig vc;
    vc.id = v;
    vc.min_round_delay = config.min_round_delay;
    vc.committer = options_for(config);
    if (config.protocol == Protocol::kTusk) {
      vc.committer_factory = tusk_committer_factory();
    }
    vc.mempool = config.mempool;
    vc.validation.verify_signature = config.verify_crypto;
    vc.validation.verify_coin_share = config.verify_crypto;
    if (config.verify_crypto) {
      // All simulated validators share a process: one verification cache
      // means each block pays ed25519 once instead of once per validator.
      if (verifier_cache == nullptr) verifier_cache = std::make_shared<VerifierCache>();
      vc.signature_cache = verifier_cache;
    }
    vc.byzantine_equivocate = v < config.equivocators;
    vc.parallel_commit = config.parallel_commit;
    return std::make_unique<ValidatorCore>(setup.committee,
                                           setup.keypairs[v].private_key, vc);
  }

  // The off-loop evaluation replica for `v` — nullptr when the core commits
  // inline (parallel_commit off, or a committer_factory variant like Tusk).
  // Seeded from the core's current DAG and consumption head, so it works
  // both at startup (genesis only) and after a WAL replay (restart()).
  std::unique_ptr<CommitScanner> make_scanner(ValidatorId v) {
    if (!nodes[v]->parallel_commit_active()) return nullptr;
    return std::make_unique<CommitScanner>(nodes[v]->dag(),
                                           nodes[v]->committer().next_pending_slot(),
                                           setup.committee, options_for(config));
  }

  std::string wal_path(ValidatorId v) const {
    return config.wal_dir + "/v" + std::to_string(v) + ".wal";
  }

  bool alive(ValidatorId v) const { return v < config.n - config.crashed; }
  // Alive AND not currently crashed by a RestartSpec.
  bool running(ValidatorId v) const {
    return alive(v) && !down[v] && nodes[v] != nullptr;
  }
  std::uint32_t alive_count() const { return config.n - config.crashed; }
  bool in_window(TimeMicros t) const { return t >= config.warmup && t <= config.duration; }

  TimeMicros transmission_delay(std::uint64_t bytes) const {
    return static_cast<TimeMicros>(static_cast<double>(bytes) /
                                   config.bandwidth_bytes_per_sec * kMicrosPerSecond);
  }

  void schedule_send(ValidatorId from, ValidatorId to, BlockPtr block) {
    if (!alive(to) || to == from) return;
    std::uint64_t bytes = block->wire_bytes();
    if (config.protocol == Protocol::kTusk) {
      // Certified dissemination: the block travels twice (proposal + final
      // certified copy) and carries 2f+1 signatures.
      bytes = bytes * 2 + setup.committee.quorum_threshold() * 96;
    }
    const TimeMicros start = std::max(queue.now(), egress_free[from]);
    egress_free[from] = start + transmission_delay(bytes);
    TimeMicros arrival = egress_free[from] + latency->sample(from, to, rng);
    if (config.protocol == Protocol::kTusk) arrival += cert_rtt[from];
    if (config.adversary != nullptr) {
      arrival += config.adversary->block_delay(*block, from, to, queue.now(), rng);
    }
    queue.schedule(arrival, [this, from, to, block] {
      // Checked at delivery time: a message in flight towards a validator
      // that crashed meanwhile is lost (the synchronizer re-fetches it).
      if (!running(to)) return;
      deliver_block(to, block, from);
    });
  }

  // Batched delivery through the staged ingestion pipeline: blocks arriving
  // at the same simulated instant accumulate in a per-validator inbox that a
  // same-time drain event (scheduled behind them by the queue's determinis-
  // tic tie-break) flushes as one ValidatorCore::on_blocks call — the sim
  // analogue of the TCP runtime's worker-pool batches.
  void deliver_block(ValidatorId to, BlockPtr block, ValidatorId from) {
    inboxes[to].push_back(IngestBlock{std::move(block), from, false});
    if (inbox_scheduled[to]) return;
    inbox_scheduled[to] = 1;
    queue.schedule(queue.now(), [this, to] { drain_inbox(to); });
  }

  // Flushes the inbox through ValidatorCore::on_blocks, honouring the core's
  // max_ingest_batch (the sim analogue of the TCP runtime's adaptive verify
  // drain): an over-cap burst is split into several same-time on_blocks
  // calls, later arrivals never wait behind the entire backlog.
  void drain_inbox(ValidatorId to) {
    inbox_scheduled[to] = 0;
    if (!running(to)) return;  // crashed between arrival and drain
    auto& inbox = inboxes[to];
    if (inbox.empty()) return;
    const std::size_t cap = nodes[to]->config().max_ingest_batch;
    const std::size_t take = cap == 0 ? inbox.size() : std::min(cap, inbox.size());
    std::vector<IngestBlock> items;
    items.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      items.push_back(std::move(inbox.front()));
      inbox.pop_front();
    }
    if (!inbox.empty()) {
      inbox_scheduled[to] = 1;
      queue.schedule(queue.now(), [this, to] { drain_inbox(to); });
    }
    // Validator 0's creation-to-arrival lag, the sim twin of the runtime's
    // mm_peer_rx_lag_micros (virtual clocks share a basis, so no clamping).
    if (to == 0) {
      for (const auto& item : items) {
        if (item.block->created_at() > 0) {
          peer_rx_lag->record(
              static_cast<std::int64_t>(queue.now() - item.block->created_at()));
        }
      }
    }
    handle_actions(to, nodes[to]->on_blocks(std::move(items), queue.now()));
  }

  void schedule_small_message(ValidatorId from, ValidatorId to,
                              std::function<void()> deliver) {
    if (!alive(to)) return;
    TimeMicros arrival = queue.now() + latency->sample(from, to, rng);
    if (config.adversary != nullptr) {
      arrival += config.adversary->message_delay(from, to, queue.now(), rng);
    }
    queue.schedule(arrival, [this, to, deliver = std::move(deliver)] {
      if (running(to)) deliver();
    });
  }

  // True when validator v's log uses the staged group-commit model. With no
  // log at all there is nothing to make durable: acks are synchronous, the
  // NullWal behavior.
  bool group_commit_active(ValidatorId v) const {
    return config.wal_group_commit &&
           (wals[v] != nullptr || !config.restarts.empty());
  }

  // Sends one Actions::broadcast group to the network. An equivocator's twin
  // proposals are split: half the peers see one block, half the other. The
  // split is per broadcast group, which is why gated (deferred) broadcasts
  // keep their group boundaries instead of being flattened.
  void dispatch_broadcast(ValidatorId v, const std::vector<BlockPtr>& blocks) {
    const bool split = nodes[v]->config().byzantine_equivocate && blocks.size() > 1;
    for (ValidatorId peer = 0; peer < config.n; ++peer) {
      if (peer == v || !alive(peer)) continue;
      if (split) {
        schedule_send(v, peer, blocks[peer % blocks.size()]);
      } else {
        for (const auto& block : blocks) schedule_send(v, peer, block);
      }
    }
  }

  void handle_actions(ValidatorId v, Actions&& actions) {
    const bool staged_wal = group_commit_active(v);
    // Broadcast own blocks — immediately when the log is inline-durable (or
    // absent), behind the covering group flush otherwise.
    if (!actions.broadcast.empty()) {
      if (staged_wal) {
        wal_stages[v].gated_broadcasts.push_back(actions.broadcast);
        schedule_wal_flush(v);
      } else {
        dispatch_broadcast(v, actions.broadcast);
      }
    }

    // Validator 0's lifecycle spans: insert stamps open the commit-wait
    // breakdown that record_commits closes, all in virtual time.
    if (v == 0) {
      for (const auto& block : actions.inserted) {
        tracer.block_inserted(block->digest(), queue.now());
        forensics.block_arrived(block->digest(), queue.now());
      }
    }

    for (auto& request : actions.fetch_requests) {
      fetch_requests->add();
      const ValidatorId peer = request.peer;
      if (!alive(peer)) continue;
      schedule_small_message(v, peer, [this, v, peer, refs = std::move(request.refs)] {
        handle_actions(peer, nodes[peer]->on_fetch_request(refs, v, queue.now()));
      });
    }

    for (auto& response : actions.responses) {
      for (const auto& block : response.blocks) schedule_send(v, response.peer, block);
    }

    for (const auto& sub_dag : actions.committed) {
      record_commits(v, sub_dag);
    }

    // Persist admitted blocks for crash recovery (only when a restart can
    // actually happen; the log is pure overhead otherwise). Group commit
    // stages them for the deferred flush event instead — a crash before the
    // flush loses exactly the staged tail.
    if (staged_wal) {
      if (!actions.inserted.empty()) {
        for (const auto& block : actions.inserted) {
          wal_stages[v].records.emplace_back(block, block->author() == v);
        }
        schedule_wal_flush(v);
      }
    } else if (wals[v] != nullptr) {
      for (const auto& block : actions.inserted) {
        wals[v]->append_block(*block, block->author() == v);
      }
    } else if (!config.restarts.empty()) {
      for (const auto& block : actions.inserted) mem_logs[v].push_back(block);
    }

    // Parallel commit: feed the replica and schedule the off-loop scan — the
    // sim analogue of the TCP runtime's worker handoff.
    if (scanners[v] != nullptr && !actions.inserted.empty()) {
      scanners[v]->ingest(actions.inserted);
      schedule_commit_scan(v);
    }

    // Checkpoint & state sync: horizon notices travel like any small
    // message; catch-up requests pull the serving peer's latest snapshot.
    for (const auto& notice : actions.horizon_notices) {
      schedule_small_message(
          v, notice.peer, [this, from = v, to = notice.peer, h = notice.horizon] {
            handle_actions(to, nodes[to]->on_peer_horizon(from, h, queue.now()));
          });
    }
    for (const ValidatorId target : actions.checkpoint_requests) {
      checkpoint_requests->add();
      schedule_small_message(v, target,
                             [this, v, target] { serve_checkpoint(target, v); });
    }

    // Commits may have advanced the GC horizon past the checkpoint interval.
    maybe_cut_checkpoint(v);
  }

  // The deterministic checkpoint cut: capture the consistent state and roll
  // the active segment NOW, complete (publish/persist/retire) a write-delay
  // later. A crash in between drops the in-flight checkpoint — the
  // completion event is epoch-guarded exactly like the group-commit flush.
  void maybe_cut_checkpoint(ValidatorId v) {
    if (!running(v) || !checkpointing_active(v)) return;
    auto& state = ckpts[v];
    if (state.in_flight) return;
    const Round horizon = nodes[v]->dag().pruned_below();
    if (horizon == 0 || horizon < state.last_horizon + config.checkpoint_interval) {
      return;
    }
    CheckpointData data = nodes[v]->capture_checkpoint();
    Bytes app_delta;
    if (config.execute_app && execs[v] != nullptr) {
      // ExecutionEngine::drain() analogue: force pending waves through so the
      // snapshot covers exactly the decided prefix captured above. The
      // touched-key window is consumed at every cut (a base subsumes it in
      // the full snapshot, exactly like NodeRuntime::start_cut).
      drain_exec(v);
      data.app_digest = execs[v]->executor.state_digest();
      app_delta = execs[v]->executor.take_app_delta();
    }
    data.sequence = ++state.seq;

    // Delta link while the chain is short enough and the new cut extends the
    // previous one; otherwise (or on any linkage mismatch) re-base.
    bool is_base = true;
    Bytes record;
    if (config.checkpoint_max_deltas > 0 && state.last_cut != nullptr &&
        !state.chain.empty() &&
        data.sequence - state.base_seq <= config.checkpoint_max_deltas) {
      try {
        record = encode_checkpoint_delta(make_checkpoint_delta(
            *state.last_cut, data, state.base_seq, std::move(app_delta)));
        is_base = false;
      } catch (const std::invalid_argument&) {
      }
    }
    if (is_base) {
      if (config.execute_app && execs[v] != nullptr) {
        data.app_state = execs[v]->executor.snapshot_bytes();
      }
      record = encode_checkpoint(data);
    }

    // Segments roll (and retire) only at base cuts: a delta keeps its whole
    // chain's WAL suffix live, so retirement is chain-granular.
    const std::uint64_t keep_from =
        is_base && seg_wals[v] != nullptr ? seg_wals[v]->roll_segment() : 0;
    state.in_flight = true;
    auto encoded = std::make_shared<const Bytes>(std::move(record));
    auto cut = std::make_shared<const CheckpointData>(std::move(data));
    queue.schedule_after(
        config.checkpoint_write_delay,
        [this, v, encoded, cut, is_base, horizon, keep_from,
         epoch = wal_stages[v].epoch] {
          if (wal_stages[v].epoch != epoch || !running(v)) return;  // crashed mid-write
          auto& done = ckpts[v];
          done.in_flight = false;
          done.last_horizon = horizon;
          if (is_base) {
            done.latest = encoded;
            done.chain.clear();
            done.base_seq = cut->sequence;
          } else {
            checkpoint_delta_cuts->add();
          }
          done.chain.push_back(encoded);
          done.last_cut = cut;
          if (ckpt_stores[v] != nullptr) {
            if (is_base) {
              ckpt_stores[v]->write(cut->sequence, {encoded->data(), encoded->size()});
              ckpt_stores[v]->retire(2);
            } else {
              ckpt_stores[v]->write_delta(cut->sequence,
                                          {encoded->data(), encoded->size()});
            }
          }
          // One chain of retirement lag (see NodeRuntime::finish_checkpoint):
          // the previous chain's segments retire when the next base lands.
          if (is_base && seg_wals[v] != nullptr) {
            seg_wals[v]->retire_segments_below(done.keep_from);
            done.keep_from = keep_from;
          }
          checkpoints_written->add();
          schedule_cut_cert(v, cut);
        });
  }

  // Certificate-formation model (SimConfig::cert_collect_delay): one
  // endorsement event per completed cut, cert_collect_delay after the write
  // lands. Every running validator outside cert_withholding signs the
  // cutter's payload with its real key; a real MultisigCollector aggregates
  // and the finished certificate must pass verify_checkpoint_certificate.
  // Formation only: the sim's cuts are horizon-triggered rather than
  // canonical boundary cuts, so certificates are never attached to served
  // chains (the chain verifier would refuse the binding) and cut_index
  // doubles as the cut's sequence number.
  void schedule_cut_cert(ValidatorId v, std::shared_ptr<const CheckpointData> cut) {
    if (config.cert_collect_delay == 0) return;
    queue.schedule_after(
        config.cert_collect_delay, [this, v, cut, epoch = wal_stages[v].epoch] {
          if (wal_stages[v].epoch != epoch || !running(v)) return;
          CutPayload payload;
          payload.cut_index = cut->sequence;
          payload.head = cut->head;
          DecidedLogHasher hasher;
          hasher.fold(cut->decided.begin(), cut->decided.end());
          payload.decided_digest = hasher.digest();
          payload.app_digest = cut->app_digest;
          crypto::MultisigCollector collector(setup.committee.quorum_threshold());
          bool formed = false;
          for (ValidatorId signer = 0; signer < config.n && !formed; ++signer) {
            if (!running(signer)) continue;
            if (std::find(config.cert_withholding.begin(),
                          config.cert_withholding.end(),
                          signer) != config.cert_withholding.end()) {
              continue;
            }
            const CutShare share =
                sign_cut(payload, signer, setup.keypairs[signer].private_key);
            if (!verify_cut_share(share, setup.committee)) continue;
            formed = collector.add(share.author, share.signature);
          }
          if (!formed) return;  // withheld/crashed below 2f+1: no certificate
          const CheckpointCertificate cert{payload, collector.certificate()};
          if (!verify_checkpoint_certificate(cert, setup.committee).empty()) return;
          checkpoint_certs->add();
        });
  }

  // A catching-up validator asked `server` for its live base+delta chain.
  // The transfer ships the whole chain as one kCheckpointChain-style frame
  // and pays sender-side bandwidth serialization on the frame bytes plus
  // link latency, like a (large) block send.
  void serve_checkpoint(ValidatorId server, ValidatorId client) {
    const auto& chain = ckpts[server].chain;
    if (chain.empty() || !alive(client)) return;
    std::vector<std::pair<BytesView, BytesView>> links;
    links.reserve(chain.size());
    for (const auto& record : chain) {
      links.emplace_back(BytesView{record->data(), record->size()}, BytesView{});
    }
    auto frame = std::make_shared<const Bytes>(encode_checkpoint_chain_frame(links));
    const TimeMicros start = std::max(queue.now(), egress_free[server]);
    egress_free[server] = start + transmission_delay(frame->size());
    const TimeMicros arrival =
        egress_free[server] + latency->sample(server, client, rng);
    queue.schedule(arrival, [this, client, frame] {
      if (!running(client)) return;
      install_snapshot(client, *frame);
    });
  }

  // The receiving side of snapshot catch-up: the real chain codec and
  // verification over the wire bytes (the newest cut reconstructed from base
  // plus deltas), then the core install and a scanner reseed (the replica
  // predates the installed DAG). Sim chains travel uncertified — the cuts
  // are horizon-triggered, not canonical boundary cuts — so this always
  // exercises the legacy-trust install path.
  void install_snapshot(ValidatorId client, const Bytes& encoded) {
    ValidationOptions validation;
    validation.verify_signature = config.verify_crypto;
    validation.verify_coin_share = config.verify_crypto;
    CheckpointData data;
    try {
      ChainVerifyResult result = verify_checkpoint_chain(
          decode_checkpoint_chain_frame({encoded.data(), encoded.size()}),
          setup.committee, options_for(config), config.checkpoint_interval,
          validation, verifier_cache.get());
      if (!result.error.empty()) return;  // refused: the requester retries
      data = std::move(result.data);
    } catch (const serde::SerdeError&) {
      return;  // torn/corrupt frame: the requester retries elsewhere
    }
    const SlotId before = nodes[client]->committer().next_pending_slot();
    Actions actions = nodes[client]->install_checkpoint(data, queue.now());
    if (nodes[client]->committer().next_pending_slot() <= before) return;  // stale
    snapshot_catchups->add();
    scanners[client] = make_scanner(client);
    if (config.execute_app && execs[client] != nullptr && !data.app_state.empty()) {
      // State jump: in-flight and queued sub-DAGs are all below the new
      // horizon (the core just skipped past them), so drop them and restore
      // the store. The serial reference restarts from the same base. Must
      // precede handle_actions — any commits the install unblocks execute on
      // top of the snapshot.
      ++exec_epochs[client];
      auto& ex = *execs[client];
      ex.pending.clear();
      ex.plan.reset();
      ex.executor.install_snapshot({data.app_state.data(), data.app_state.size()});
      ex.ref_base = data.app_state;
      ex.log.clear();
    }
    handle_actions(client, std::move(actions));
  }

  void schedule_wal_flush(ValidatorId v) {
    auto& stage = wal_stages[v];
    if (stage.flush_scheduled) return;  // one covering flush per open group
    stage.flush_scheduled = true;
    queue.schedule_after(config.wal_flush_interval,
                         [this, v, epoch = stage.epoch] { flush_wal(v, epoch); });
  }

  // The deferred group flush: lands every staged record as one group
  // (append + sync on the file path), then releases the broadcasts gated on
  // it. `epoch` invalidates events that were in flight across a crash.
  void flush_wal(ValidatorId v, std::uint64_t epoch) {
    auto& stage = wal_stages[v];
    if (stage.epoch != epoch) return;  // scheduled before a crash: stale
    stage.flush_scheduled = false;
    if (!running(v)) return;
    if (wals[v] != nullptr) {
      for (const auto& [block, own] : stage.records) wals[v]->append_block(*block, own);
      wals[v]->sync();
    } else {
      for (const auto& [block, own] : stage.records) mem_logs[v].push_back(block);
    }
    if (!stage.records.empty()) wal_groups_flushed->add();
    stage.records.clear();
    // The covering flush makes every commit since the previous one durable.
    if (v == 0) forensics.durable_ack(queue.now());
    const auto gated = std::move(stage.gated_broadcasts);
    stage.gated_broadcasts.clear();
    for (const auto& group : gated) dispatch_broadcast(v, group);
  }

  void schedule_commit_scan(ValidatorId v) {
    if (scan_scheduled[v]) return;  // collapses bursts, like the verify drain
    scan_scheduled[v] = 1;
    queue.schedule_after(config.commit_scan_delay, [this, v] { run_commit_scan(v); });
  }

  void run_commit_scan(ValidatorId v) {
    scan_scheduled[v] = 0;
    if (!running(v) || scanners[v] == nullptr) return;
    auto decisions = scanners[v]->scan();
    if (decisions.empty()) return;
    handle_actions(v, nodes[v]->apply_commit_decisions(decisions, queue.now()));
  }

  void record_commits(ValidatorId v, const CommittedSubDag& sub_dag) {
    const TimeMicros now = queue.now();
    // Validator 0's view: per-block commit-wait spans and the transaction-
    // weighted finality histogram, deterministic in virtual time. With the
    // execution model on, finality moves to wave-delivery time
    // (exec_run_wave) — only the commit-wait spans close here.
    if (v == 0) {
      tracer.sub_dag_committed(sub_dag, now, !config.execute_app);
      // Forensic trace in virtual time. Durable resolves at the covering
      // group flush (inline WAL appends are synchronous in the sim: 0);
      // execute resolves when the wave schedule retires the sub-DAG.
      CommitTrace& trace = forensics.on_committed(sub_dag, now);
      trace.durable_pending = group_commit_active(0);
      trace.execute_pending = config.execute_app && execs[0] != nullptr;
    }
    if (config.execute_app && execs[v] != nullptr) {
      execs[v]->log.push_back(sub_dag);
      execs[v]->pending.push_back(sub_dag);
      exec_pump(v);
    }
    if (config.record_sequences) {
      for (const auto& block : sub_dag.blocks) sequences[v].push_back(block->ref());
    }
    for (const auto& block : sub_dag.blocks) {
      for (const auto& batch : block->batches()) {
        if (static_cast<ValidatorId>(batch.id >> kOriginShift) != v) continue;
        // Origin-side commit: the validator the client submitted to.
        if (batch.submitted_at >= config.warmup && in_window(now)) {
          latency_recorder.record(now - batch.submitted_at, batch.count);
        }
        if (in_window(now)) committed_tx->add(batch.count);
      }
    }
  }

  // --- Execution model (SimConfig::execute_app) ----------------------------
  //
  // One SerialExecutor per validator, driven by virtual-time wave events:
  // sub-DAGs execute strictly in commit order (one in flight per validator),
  // each wave retiring execution_wave_delay after the previous one. The
  // events are observational — nothing feeds back into consensus — so wave
  // timing never perturbs the DAG, only delivery stamps and exec counters.

  // Pops pending sub-DAGs until one yields a non-empty plan; true when a
  // plan is in flight afterwards.
  bool exec_plan_next(ValidatorId v) {
    auto& ex = *execs[v];
    while (!ex.pending.empty()) {
      ex.current = std::move(ex.pending.front());
      ex.pending.pop_front();
      ex.plan.emplace(ex.executor.plan(ex.current));
      if (ex.plan->waves.empty()) {
        ex.executor.note_empty_subdag();
        ex.plan.reset();
        continue;
      }
      ex.next_wave = 0;
      ex.delivered.assign(ex.plan->txns.size(), 0);
      return true;
    }
    return false;
  }

  // Applies the in-flight plan's next wave; true when that retired the
  // sub-DAG. Checks the early-delivery safety invariant against the pairwise
  // ground truth before applying: nothing in this wave may conflict with a
  // still-unsettled plan-order predecessor.
  bool exec_run_wave(ValidatorId v) {
    auto& ex = *execs[v];
    const std::size_t wave = ex.next_wave++;
    const bool last = wave + 1 == ex.plan->waves.size();
    for (const std::uint32_t i : ex.plan->waves[wave]) {
      for (std::uint32_t j = 0; j < i; ++j) {
        if (!ex.delivered[j] &&
            exec::conflicts(ex.plan->txns[j].access, ex.plan->txns[i].access)) {
          ++exec_order_violations_;
        }
      }
    }
    const auto deliveries = ex.executor.apply_wave(*ex.plan, wave, last);
    for (const std::uint32_t i : ex.plan->waves[wave]) ex.delivered[i] = 1;
    ++exec_waves_;
    const TimeMicros now = queue.now();
    for (const auto& delivery : deliveries) {
      if (delivery.early) ++exec_early_;
      if (v == 0) tracer.batch_delivered(delivery.submitted_at, delivery.count, now);
    }
    if (last && v == 0) forensics.execute_done(ex.current.slot, now);
    if (last) ex.plan.reset();
    return last;
  }

  // Starts execution when idle: inline to completion with a zero wave delay
  // (the zero-worker model), by scheduled wave events otherwise.
  void exec_pump(ValidatorId v) {
    auto& ex = *execs[v];
    if (ex.plan.has_value()) return;  // the in-flight sub-DAG's events drive on
    if (config.execution_wave_delay == 0) {
      while (exec_plan_next(v)) {
        while (!exec_run_wave(v)) {
        }
      }
      return;
    }
    if (exec_plan_next(v)) {
      queue.schedule_after(config.execution_wave_delay, [this, v, epoch = exec_epochs[v]] {
        exec_wave_event(v, epoch);
      });
    }
  }

  void exec_wave_event(ValidatorId v, std::uint64_t epoch) {
    if (epoch != exec_epochs[v] || !running(v) || execs[v] == nullptr) return;
    if (!execs[v]->plan.has_value()) return;
    if (exec_run_wave(v)) {
      exec_pump(v);
      return;
    }
    queue.schedule_after(config.execution_wave_delay,
                         [this, v, epoch] { exec_wave_event(v, epoch); });
  }

  // Forces every enqueued sub-DAG through at the current instant — the sim
  // analogue of ExecutionEngine::drain(), used at checkpoint cuts and run
  // end. Scheduled wave events go stale via the epoch bump.
  void drain_exec(ValidatorId v) {
    if (!config.execute_app || execs[v] == nullptr) return;
    auto& ex = *execs[v];
    if (!ex.plan.has_value() && ex.pending.empty()) return;
    ++exec_epochs[v];
    if (ex.plan.has_value()) {
      while (!exec_run_wave(v)) {
      }
    }
    while (exec_plan_next(v)) {
      while (!exec_run_wave(v)) {
      }
    }
  }

  void crash(ValidatorId v) {
    if (!running(v)) return;
    down[v] = 1;
    nodes[v].reset();
    scanners[v].reset();  // the replica dies with the process
    inboxes[v].clear();   // in-flight deliveries die with the process
    // The staged group-commit tail dies with the process: records that never
    // flushed are not durable, and the broadcasts they gated never happened.
    wal_stages[v].records.clear();
    wal_stages[v].gated_broadcasts.clear();
    wal_stages[v].flush_scheduled = false;
    ++wal_stages[v].epoch;  // invalidate in-flight flush + checkpoint events
    // An in-flight checkpoint cut dies with the process: its completion
    // event is epoch-guarded, and the captured state was never published.
    ckpts[v].in_flight = false;
    // The executor (mid-wave state included) dies with the process; restart
    // rebuilds it from checkpoint + log replay. Scheduled wave events stale.
    ++exec_epochs[v];
    execs[v].reset();
    if (wals[v] != nullptr) {
      // Keep the file for replay; drop the open handle like a crash would.
      wals[v]->sync();
      wals[v].reset();
      seg_wals[v] = nullptr;
    }
  }

  void restart(ValidatorId v) {
    if (!alive(v) || !down[v]) return;
    nodes[v] = make_node(v);
    down[v] = 0;
    // The restarted committer re-decides from the first slot, so its
    // recorded sequence restarts from scratch too (replay repopulates it).
    if (config.record_sequences) sequences[v].clear();

    if (config.execute_app) execs[v] = std::make_unique<ExecNode>();

    const auto replay_one = [this, v](BlockPtr block) {
      Actions actions = nodes[v]->recover_block(std::move(block));
      wal_replayed_blocks->add();
      // Replayed commits were already counted before the crash: refresh the
      // recorded sequence but leave throughput/latency metrics untouched.
      if (config.record_sequences) {
        for (const auto& sub : actions.committed) {
          for (const auto& block_ptr : sub.blocks) {
            sequences[v].push_back(block_ptr->ref());
          }
        }
      }
      // Replayed commits reach the state machine serially inline (the
      // ISSUE contract: recovery never runs parallel waves) with no
      // delivery stamps — the pre-crash run already stamped them.
      if (config.execute_app && execs[v] != nullptr) {
        for (const auto& sub : actions.committed) {
          execs[v]->log.push_back(sub);
          execs[v]->executor.apply_subdag(sub);
        }
      }
    };

    // Recovery prefers newest valid checkpoint + log-suffix replay: install
    // first (it sets the horizon, so sub-horizon log records are skipped),
    // then replay whatever the log still holds. Recovery from an older
    // checkpoint (a newer one corrupted mid-write) degrades to more replay,
    // never to divergence — the log records are a superset of every cut.
    if (checkpointing_active(v)) {
      std::optional<CheckpointData> recovered;
      if (ckpt_stores[v] != nullptr) {
        recovered = ckpt_stores[v]->load_newest_valid();
      } else if (!ckpts[v].chain.empty()) {
        // In-memory chain recovery: base plus the longest cleanly-applying
        // delta prefix, mirroring CheckpointStore::newest_valid_chain(). A
        // link that fails to apply truncates the chain there — recovery
        // degrades to more WAL replay, never to divergence.
        try {
          const auto& chain = ckpts[v].chain;
          CheckpointData data =
              decode_checkpoint({chain[0]->data(), chain[0]->size()});
          recovered = data;
          for (std::size_t i = 1; i < chain.size(); ++i) {
            apply_checkpoint_delta(
                data, decode_checkpoint_delta({chain[i]->data(), chain[i]->size()}));
            recovered = data;
          }
        } catch (const std::exception&) {
        }
      }
      ckpts[v].last_cut.reset();  // the diff base dies with the process
      if (recovered.has_value()) {
        nodes[v]->install_checkpoint(*recovered, queue.now());
        ckpts[v].last_horizon = recovered->horizon;
        ckpts[v].seq = std::max(ckpts[v].seq, recovered->sequence);
        if (ckpts[v].seq == recovered->sequence) {
          // The recovered cut IS the newest bookkept one: the next cut may
          // extend it as a delta. A sequence consumed by a cut that died
          // in flight would leave a gap in the chain walk instead — the
          // next cut then re-bases (last_cut stays null), like the
          // runtime's write-failure path.
          ckpts[v].last_cut = std::make_shared<const CheckpointData>(*recovered);
        }
        if (config.execute_app && !recovered->app_state.empty()) {
          // The cut's app snapshot stands in for every sub-horizon commit;
          // the log-suffix replay below lands the rest on top. The serial
          // reference rebuilds from the same base.
          execs[v]->executor.install_snapshot(
              {recovered->app_state.data(), recovered->app_state.size()});
          execs[v]->ref_base = recovered->app_state;
        }
      }
    }

    if (!config.wal_dir.empty()) {
      FileWal::Visitor visitor;
      visitor.on_block = [&](BlockPtr block, bool) { replay_one(std::move(block)); };
      visitor.on_commit = [](SlotId) {};
      if (config.checkpoint_interval > 0 && options_for(config).gc_depth > 0) {
        SegmentedWal::replay(wal_path(v), visitor);
      } else {
        FileWal::replay(wal_path(v), visitor);
      }
      open_wal(v);  // resume appends
    } else {
      for (const auto& block : mem_logs[v]) replay_one(block);
    }

    // Replay committed inline (recover_block always does); the fresh replica
    // resumes from the recovered DAG and head, exactly like the TCP runtime
    // reseeding its scanner after a WAL replay.
    scanners[v] = make_scanner(v);

    // Re-arm the driver loops that died while the validator was down.
    queue.schedule_after(0, [this, v] { tick(v); });
    queue.schedule_after(config.client_interval, [this, v] { inject_load(v); });
  }

  void inject_load(ValidatorId v) {
    if (!running(v)) return;
    const double interval_s = to_seconds(config.client_interval);
    const std::uint32_t clients = config.clients_per_validator;
    const double mean = config.load_tps / alive_count() * interval_s / clients;
    std::vector<TxBatch> batches;
    for (std::uint32_t client = 0; client < clients; ++client) {
      const std::uint64_t count = rng.poisson(mean);
      if (count == 0) continue;
      const std::uint64_t sequence = batch_seq[v][client]++;
      TxBatch batch;
      if (config.execute_app) {
        // Real encoded KV commands with declared write sets, so execution
        // does real work and the conflict knob shapes the waves. The private
        // keyspace is per (validator, client) stream.
        client::KvWorkload workload;
        workload.conflict_percent = config.kv_conflict_percent;
        workload.hot_keys = config.kv_hot_keys;
        workload.value_bytes = config.kv_value_bytes;
        workload.commands_per_batch =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(count, 128));
        batch = client::synth_kv_batch(
            workload, static_cast<std::uint64_t>(v) * 256 + client, sequence, rng,
            queue.now());
      } else {
        batch.submitted_at = queue.now();
        batch.tx_bytes = config.tx_bytes;
      }
      // Id layout: origin validator in the top bits (commit attribution),
      // client stream in bits [32, 40) (the sharded mempool's client key),
      // per-stream sequence below. Overrides synth_kv_batch's stream id.
      batch.id = (static_cast<std::uint64_t>(v) << kOriginShift) |
                 (static_cast<std::uint64_t>(client) << ShardedMempool::kClientKeyShift) |
                 sequence;
      batch.count = static_cast<std::uint32_t>(count);
      if (in_window(queue.now())) submitted_tx->add(count);
      batches.push_back(std::move(batch));
    }
    if (!batches.empty()) {
      handle_actions(v, nodes[v]->on_transactions(std::move(batches), queue.now()));
    }
    queue.schedule_after(config.client_interval, [this, v] { inject_load(v); });
  }

  void tick(ValidatorId v) {
    if (!running(v)) return;
    handle_actions(v, nodes[v]->on_tick(queue.now()));
    queue.schedule_after(config.tick_interval, [this, v] { tick(v); });
  }

  SimResult run() {
    for (ValidatorId v = 0; v < config.n; ++v) {
      if (!alive(v)) continue;
      // Stagger startup slightly so same-time events do not depend on id
      // ordering alone.
      queue.schedule(static_cast<TimeMicros>(v), [this, v] { tick(v); });
      queue.schedule(config.client_interval + static_cast<TimeMicros>(v),
                     [this, v] { inject_load(v); });
    }
    for (const auto& spec : config.restarts) {
      queue.schedule(spec.crash_at, [this, id = spec.id] { crash(id); });
      if (spec.restart_at > spec.crash_at) {
        queue.schedule(spec.restart_at, [this, id = spec.id] { restart(id); });
      }
    }
    queue.run_until(config.duration);

    SimResult result;
    const double window_s = to_seconds(config.duration - config.warmup);
    result.committed_tps =
        window_s > 0 ? static_cast<double>(committed_tx->value()) / window_s : 0;
    result.submitted_tps =
        window_s > 0 ? static_cast<double>(submitted_tx->value()) / window_s : 0;
    result.avg_latency_s = latency_recorder.mean_seconds();
    result.p50_latency_s = latency_recorder.percentile_seconds(50);
    result.p95_latency_s = latency_recorder.percentile_seconds(95);
    result.p99_latency_s = latency_recorder.percentile_seconds(99);
    result.latency_samples = latency_recorder.count();
    // Stats validator: the lowest-id node still running at the end.
    ValidatorId reporter = 0;
    while (reporter < config.n && !running(reporter)) ++reporter;
    if (reporter < config.n) {
      result.max_round = nodes[reporter]->dag().highest_round();
      result.commit_stats = nodes[reporter]->committer().stats();
      result.total_blocks = nodes[reporter]->dag().block_count();
      if (config.record_sequences) {
        result.decisions = nodes[reporter]->committer().decided_sequence();
      }
    }
    if (reporter < config.n) {
      result.mempool_rejected = nodes[reporter]->mempool().stats().rejected();
    }
    result.fetch_requests = fetch_requests->value();
    result.wal_replayed_blocks = wal_replayed_blocks->value();
    result.wal_groups_flushed = wal_groups_flushed->value();
    result.checkpoints_written = checkpoints_written->value();
    result.snapshot_catchups = snapshot_catchups->value();
    result.checkpoint_requests = checkpoint_requests->value();
    result.checkpoint_delta_cuts = checkpoint_delta_cuts->value();
    result.checkpoint_certs_formed = checkpoint_certs->value();
    result.equivocation_cells = count_equivocation_cells();
    if (config.execute_app) {
      result.app_digests.assign(config.n, Digest{});
      for (ValidatorId v = 0; v < config.n; ++v) {
        if (!running(v) || execs[v] == nullptr) continue;
        drain_exec(v);
        result.app_digests[v] = execs[v]->executor.state_digest();
        // Wave scheduling is an ordering optimization, never a semantics
        // change: re-apply the validator's recorded commit stream serially
        // (from its last installed snapshot base) and demand byte-identical
        // state.
        exec::SerialExecutor reference;
        if (!execs[v]->ref_base.empty()) {
          reference.install_snapshot(
              {execs[v]->ref_base.data(), execs[v]->ref_base.size()});
        }
        for (const auto& sub : execs[v]->log) reference.apply_subdag(sub);
        if (!(reference.state_digest() == result.app_digests[v])) {
          ++result.exec_serial_mismatches;
        }
      }
      result.exec_waves = exec_waves_;
      result.exec_early_deliveries = exec_early_;
      result.exec_order_violations = exec_order_violations_;
    }
    result.commit_traces = forensics.traces();
    result.metrics = registry.dump();
    if (config.record_sequences) {
      result.sequences = std::move(sequences);
    }
    return result;
  }

  std::uint64_t count_equivocation_cells() const {
    std::uint64_t worst = 0;
    for (ValidatorId v = 0; v < config.n; ++v) {
      if (!running(v)) continue;
      std::uint64_t cells = 0;
      const Dag& dag = nodes[v]->dag();
      for (Round r = 1; r <= dag.highest_round(); ++r) {
        for (ValidatorId author = 0; author < config.n; ++author) {
          if (dag.slot(r, author).size() > 1) ++cells;
        }
      }
      worst = std::max(worst, cells);
    }
    return worst;
  }

  SimConfig config;
  Committee::TestSetup setup;
  EventQueue queue;
  std::unique_ptr<LatencyModel> latency;
  Rng rng;
  std::vector<std::unique_ptr<ValidatorCore>> nodes;
  std::vector<TimeMicros> egress_free;
  std::vector<TimeMicros> cert_rtt;
  std::vector<std::vector<std::uint64_t>> batch_seq;  // [validator][client]
  std::vector<std::deque<IngestBlock>> inboxes;   // batched same-time deliveries
  std::vector<char> inbox_scheduled;
  std::vector<char> down;                         // RestartSpec crash state
  // Parallel commit: per-validator replica scanner + pending-scan-event flag.
  std::vector<std::unique_ptr<CommitScanner>> scanners;
  std::vector<char> scan_scheduled;
  // Per validator, when wal_dir is set: monolithic FileWal, or SegmentedWal
  // (seg_wals holds the downcast) when the run models checkpointing.
  std::vector<std::unique_ptr<FramedWal>> wals;
  std::vector<SegmentedWal*> seg_wals;
  std::vector<std::vector<BlockPtr>> mem_logs;    // in-memory WAL fallback
  // Checkpoint model state. `latest`/`chain` model the durable checkpoint
  // store in in-memory runs (they survive crashes, like mem_logs); on-disk
  // runs additionally persist through ckpt_stores.
  struct CkptState {
    std::shared_ptr<const Bytes> latest;  // encoded, completed base checkpoint
    // The live base+delta chain, base first: every completed cut's encoded
    // record. Cleared at each re-base; served whole for catch-up.
    std::vector<std::shared_ptr<const Bytes>> chain;
    std::uint64_t base_seq = 0;  // sequence of chain[0]
    // The previous completed cut: the diff base for the next delta attempt.
    // Process state (unlike `chain`): reset across restarts unless the
    // recovered cut is the newest bookkept one.
    std::shared_ptr<const CheckpointData> last_cut;
    std::uint64_t seq = 0;
    Round last_horizon = 0;
    bool in_flight = false;
    // Segment boundary of the previous completed chain: retirement lags one
    // base cut so recovery can fall back past a corrupt newest chain.
    std::uint64_t keep_from = 0;
  };
  std::vector<CkptState> ckpts;
  std::vector<std::unique_ptr<CheckpointStore>> ckpt_stores;
  // Group-commit staging (SimConfig::wal_group_commit): records and gated
  // broadcast groups awaiting the deferred flush event.
  struct WalStage {
    std::vector<std::pair<BlockPtr, bool>> records;          // (block, own)
    std::vector<std::vector<BlockPtr>> gated_broadcasts;     // per Actions group
    bool flush_scheduled = false;
    std::uint64_t epoch = 0;  // bumped at crash; stale events no-op
  };
  std::vector<WalStage> wal_stages;
  // Execution model (execute_app): per-validator executor + wave-event state.
  // `plan` points into `current`'s blocks, so the sub-DAG stays alive beside
  // it. `log`/`ref_base` feed the run-end serial-equivalence self-check.
  struct ExecNode {
    exec::SerialExecutor executor;
    std::deque<CommittedSubDag> pending;  // committed, not yet planned
    CommittedSubDag current;              // sub-DAG the in-flight plan covers
    std::optional<exec::Plan> plan;
    std::size_t next_wave = 0;
    std::vector<char> delivered;          // per plan-txn settled flag
    Bytes ref_base;                       // last installed snapshot (or empty)
    std::vector<CommittedSubDag> log;     // commit stream since ref_base
  };
  std::vector<std::unique_ptr<ExecNode>> execs;
  std::vector<std::uint64_t> exec_epochs;  // survives crashes; stales events
  std::uint64_t exec_waves_ = 0;
  std::uint64_t exec_early_ = 0;
  std::uint64_t exec_order_violations_ = 0;
  std::shared_ptr<VerifierCache> verifier_cache;  // shared when verify_crypto

  LatencyRecorder latency_recorder;
  std::vector<std::vector<BlockRef>> sequences;

  // One registry per run, dumped into SimResult::metrics at the end. Every
  // stamp the tracer sees is virtual time, so the whole dump is a pure
  // function of (config, seed). The tracer follows validator 0 only: block
  // digests are committee-global, so tracking every validator's inserts in
  // one table would cross-talk the commit-wait spans.
  obs::Registry registry{"sim=\"1\""};
  obs::LifecycleTracer tracer{registry};
  // Validator 0's commit forensics, same reporter rule as the tracer: block
  // digests are committee-global, so one validator's arrival table stays
  // coherent. Every stamp is virtual time — traces (and their JSON) are a
  // pure function of (config, seed). Capacity covers a full run; nothing
  // ages out mid-experiment.
  CommitForensics forensics{CommitForensics::Options{.trace_capacity = 1 << 16}};
  obs::Histogram* peer_rx_lag = &registry.histogram(
      "mm_peer_rx_lag_micros", "Peer block creation-to-arrival lag at validator 0");
  obs::Counter* committed_tx = &registry.counter(
      "mm_committed_transactions_total", "Origin-side committed transactions (in-window)");
  obs::Counter* submitted_tx = &registry.counter("mm_submitted_transactions_total",
                                                 "Transactions injected (in-window)");
  obs::Counter* fetch_requests =
      &registry.counter("mm_fetch_requests_total", "Synchronizer fetches, all validators");
  obs::Counter* checkpoints_written =
      &registry.counter("mm_checkpoints_written_total", "Completed checkpoint cuts");
  obs::Counter* snapshot_catchups =
      &registry.counter("mm_snapshot_catchups_total", "Peer checkpoints installed");
  obs::Counter* checkpoint_requests =
      &registry.counter("mm_checkpoint_requests_total", "Catch-up requests sent");
  obs::Counter* checkpoint_delta_cuts = &registry.counter(
      "mm_checkpoint_delta_cuts_total", "Checkpoint cuts landed as delta links");
  obs::Counter* checkpoint_certs = &registry.counter(
      "mm_checkpoint_certs_total", "Cut certificates aggregated (2f+1 shares)");
  obs::Counter* wal_groups_flushed =
      &registry.counter("mm_wal_groups_flushed_total", "Non-empty group flushes");
  obs::Counter* wal_replayed_blocks =
      &registry.counter("mm_wal_replayed_blocks_total", "Blocks replayed across restarts");
};

SimHarness::SimHarness(SimConfig config) : impl_(std::make_unique<Impl>(std::move(config))) {}
SimHarness::~SimHarness() = default;
SimResult SimHarness::run() { return impl_->run(); }

SimResult run_simulation(const SimConfig& config) { return SimHarness(config).run(); }

}  // namespace mahimahi::sim
