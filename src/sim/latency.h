// Network latency models.
//
// The geo model reproduces the paper's testbed shape (§5.1): validators
// spread round-robin across five AWS regions — Ohio (us-east-2), Oregon
// (us-west-2), Cape Town (af-south-1), Hong Kong (ap-east-1), Milan
// (eu-south-1) — with one-way latencies approximating public inter-region
// RTT measurements, plus Gaussian jitter. Absolute values need not match the
// paper's runs; the protocol comparisons depend on the *shape* (quorum
// formation time across a WAN).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/time.h"
#include "types/ids.h"

namespace mahimahi {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  // One-way delay for a message from -> to, sampled per message.
  virtual TimeMicros sample(ValidatorId from, ValidatorId to, Rng& rng) = 0;
  // Expected (jitter-free) one-way delay; used for derived quantities such
  // as the Tusk certification round-trip.
  virtual TimeMicros base(ValidatorId from, ValidatorId to) const = 0;
};

// Uniform latency with jitter; for tests and controlled experiments.
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(TimeMicros base, double jitter_fraction = 0.0)
      : base_(base), jitter_fraction_(jitter_fraction) {}

  TimeMicros sample(ValidatorId, ValidatorId, Rng& rng) override;
  TimeMicros base(ValidatorId, ValidatorId) const override { return base_; }

 private:
  TimeMicros base_;
  double jitter_fraction_;
};

// Five-region WAN model; validator v lives in region v % 5.
class GeoLatency : public LatencyModel {
 public:
  static constexpr std::size_t kRegions = 5;
  enum Region { kOhio = 0, kOregon, kCapeTown, kHongKong, kMilan };

  explicit GeoLatency(double jitter_fraction = 0.08)
      : jitter_fraction_(jitter_fraction) {}

  TimeMicros sample(ValidatorId from, ValidatorId to, Rng& rng) override;
  TimeMicros base(ValidatorId from, ValidatorId to) const override;

  static const char* region_name(std::size_t region);

 private:
  double jitter_fraction_;
};

}  // namespace mahimahi
