// End-to-end discrete-event simulation of a geo-replicated deployment.
//
// Substitutes for the paper's AWS testbed (§5.1): n validator cores run the
// real protocol logic (real blocks, real DAG, real commit rules) over a
// simulated WAN with per-link latency sampling and sender-side bandwidth
// serialization. Open-loop clients submit 512-byte transactions at a fixed
// aggregate rate; the harness measures commit latency (submission at the
// origin validator to commit at that validator) and committed throughput,
// exactly the quantities on the axes of Figures 3-5 and 7.
//
// Protocol variants:
//   * Mahi-Mahi (wave length 5/4/3, configurable leaders per round),
//   * Cordial Miners (uncertified DAG, 1 leader per 5 rounds, no direct skip),
//   * Tusk (certified DAG: dissemination pays a 2f+1 echo round trip before
//     each block becomes referencable, and blocks carry certificate bytes).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "client/metrics.h"
#include "core/commit_trace.h"
#include "core/options.h"
#include "obs/metrics.h"
#include "sim/adversary.h"
#include "sim/event_queue.h"
#include "sim/latency.h"
#include "validator/validator.h"

namespace mahimahi::sim {

enum class Protocol { kMahiMahi5, kMahiMahi4, kMahiMahi3, kCordialMiners, kTusk };

std::string to_string(Protocol protocol);

struct SimConfig {
  Protocol protocol = Protocol::kMahiMahi5;
  std::uint32_t n = 10;
  std::uint32_t leaders_per_round = 2;  // Mahi-Mahi only

  // Faults: the last `crashed` validators never start; the first
  // `equivocators` validators propose two conflicting blocks per round.
  std::uint32_t crashed = 0;
  std::uint32_t equivocators = 0;

  // Dynamic crash/restart fault injection (in addition to the static
  // `crashed` count): validator `id` halts at `crash_at` — in-flight
  // messages to it are dropped — and, when `restart_at` is nonzero, rejoins
  // then, rebuilding its DAG and proposer round by replaying its write-ahead
  // log (§4 crash recovery). Missed blocks are re-acquired through the
  // synchronizer's fetch path.
  struct RestartSpec {
    ValidatorId id = 0;
    TimeMicros crash_at = 0;
    TimeMicros restart_at = 0;  // 0 = crash only, never restarts
  };
  std::vector<RestartSpec> restarts;

  // When non-empty, every live validator appends admitted blocks to a
  // FileWal at `{wal_dir}/v{id}.wal` and restart replays that file — the
  // real on-disk recovery path, serde included. When empty, restarts replay
  // an in-memory block log. Use a fresh directory per run: the WAL appends.
  std::string wal_dir;

  // Deterministic model of ValidatorConfig::wal_group_commit: admitted
  // blocks stage per validator and land in the log (file or in-memory) as
  // one group when a deferred flush event fires wal_flush_interval later;
  // own-block broadcasts wait for the flush that covers them (the runtime's
  // durability gate), and a crash loses the staged tail — exactly what a
  // real group-commit crash loses. With no log at all (empty wal_dir and no
  // restarts) there is nothing to make durable, so acks are synchronous and
  // broadcasts flow immediately — the NullWal behavior the TCP runtime
  // relies on to not wedge proposals.
  bool wal_group_commit = false;
  TimeMicros wal_flush_interval = millis(1);

  // Deterministic model of the checkpoint subsystem (checkpoint/). Nonzero
  // checkpoint_interval (with a gc_depth-bearing committer_override) cuts a
  // checkpoint whenever a validator's GC horizon advances that many rounds:
  // the consistent capture and (with wal_dir) the segment roll happen at the
  // cut event, and the encoded snapshot becomes visible — installed as the
  // validator's latest, written to its CheckpointStore, covered segments
  // retired — only when a completion event fires checkpoint_write_delay
  // later. A crash in between drops the in-flight checkpoint (epoch-guarded,
  // like the group-commit flush): exactly what a real crash-during-
  // checkpoint loses. Peers that request sub-horizon ancestors get horizon
  // notices, and a stuck validator fetches + installs the serving peer's
  // latest snapshot — the real codec and verification, over simulated links.
  Round checkpoint_interval = 0;
  TimeMicros checkpoint_write_delay = millis(5);
  // Segment-roll budget of the on-disk layout (wal_dir runs); the sim uses
  // smaller segments than the runtime default so tests exercise rolls.
  std::uint64_t wal_segment_bytes = 256 * 1024;
  // Delta-chain length bound (ValidatorConfig::checkpoint_max_deltas): after
  // a base cut, up to this many cuts land as incremental deltas
  // (checkpoint/delta.h, real codec) before the model re-bases; catch-up
  // serves and restarts reconstruct through the whole base+delta chain.
  // 0 = every cut is a base (the historical model, trace-identical).
  std::size_t checkpoint_max_deltas = 0;
  // Threshold-certification model (checkpoint/cert.h): when nonzero, each
  // completed cut schedules an endorsement event this long after completion;
  // every running validator not in cert_withholding then signs the cutter's
  // payload with its REAL key, and 2f+1 shares aggregate through the real
  // MultisigCollector into a verified certificate (counted in
  // checkpoint_certs_formed). 0 = no certificate modeling.
  TimeMicros cert_collect_delay = 0;
  // Validators that never endorse (model Byzantine share withholding): with
  // more than f withheld, no certificate can reach 2f+1.
  std::vector<std::uint32_t> cert_withholding;

  // Network. wan=false uses UniformLatency(uniform_latency).
  bool wan = true;
  TimeMicros uniform_latency = millis(50);
  double jitter_fraction = 0.08;

  // Adversarial message scheduling layered on top of the latency model
  // (see sim/adversary.h). Null = fair network.
  std::shared_ptr<Adversary> adversary;
  // Paper machines have 10 Gbps ≈ 1.25e9 B/s full duplex.
  double bandwidth_bytes_per_sec = 1.25e9;

  // Load: aggregate transactions/second across all clients, 512 B each
  // (§5.1), injected as one batch per client per client_interval.
  double load_tps = 10'000;
  std::uint32_t tx_bytes = 512;
  TimeMicros client_interval = millis(25);

  // Distinct client streams per validator. Each stream gets its own id range
  // (origin << 40 | client << 32 | seq), so it maps to its own sharded-
  // mempool client key — multi-client workloads exercise the same admission
  // and fair-drain path the TCP runtime uses. 1 reproduces the historical
  // single-stream traces bit-for-bit.
  std::uint32_t clients_per_validator = 1;

  // Sharded-mempool shape handed to every validator core (shard count,
  // quotas, capacity caps).
  MempoolConfig mempool;

  // Run control.
  TimeMicros duration = seconds(25);
  TimeMicros warmup = seconds(5);
  TimeMicros tick_interval = millis(10);
  std::uint64_t seed = 1;

  // Minimum spacing between a validator's proposals. Real validators pace
  // rounds by block building, signing, serialization and batching costs on
  // top of quorum arrival; a pure-logic simulation without this floor runs
  // rounds at raw link speed, which starves the farthest region's blocks of
  // votes at wave length 4 (see EXPERIMENTS.md). 120ms approximates the
  // paper's observed round cadence at moderate load (their 10-node MM-5
  // latency of ~1.1s implies ~200ms effective rounds; we sit on the faster
  // side while giving the farthest region enough slack to be voted for).
  TimeMicros min_round_delay = millis(120);

  // Signature/coin verification is off by default in simulation (all cores
  // share a process; crypto cost is measured by the micro benches).
  bool verify_crypto = false;

  // Off-loop commit evaluation (ValidatorConfig::parallel_commit): each
  // validator's commit-rule scan runs as a separate deferred event against a
  // harness-owned replica (core/commit_scanner.h), mirroring the TCP
  // runtime's worker handoff — decisions post back through
  // ValidatorCore::apply_commit_decisions. Decisions are final, so the
  // commit sequence is identical to the inline mode; only event ordering
  // (and, with a nonzero delay, commit timing) differs. Ignored for Tusk
  // (committer_factory overrides fall back to inline evaluation).
  bool parallel_commit = false;
  // Simulated lag between an insertion and the scan event it schedules:
  // 0 = same-instant (sequences and metrics bit-identical to serial mode).
  TimeMicros commit_scan_delay = 0;

  // Mahi-Mahi committer options are derived from `protocol` and
  // `leaders_per_round`; override here if non-default shapes are needed.
  std::optional<CommitterOptions> committer_override;

  // Record every validator's delivered block sequence (for agreement
  // checks in tests; costs memory at scale, so off by default).
  bool record_sequences = false;

  // --- Execution (exec/) ---------------------------------------------------
  //
  // Deterministic model of ValidatorConfig::execute_app: every validator owns
  // an exec::SerialExecutor fed by its commit stream. Committed sub-DAGs are
  // planned into dependency waves and applied by virtual-time wave events,
  // serialized per validator; validator 0's finality histogram
  // (mm_finality_micros) then stamps at wave-delivery time instead of commit
  // time — early waves stamp before their sub-DAG retires, the
  // early-delivery win. Injected load switches from opaque filler to real
  // encoded KV batches (client/kv_batches.h) so execution does real work.
  bool execute_app = false;
  // Virtual time between consecutive wave retirements of one sub-DAG.
  // 0 = the whole sub-DAG applies inline at the commit instant — the
  // zero-worker model: identical state, and every wave (early flags
  // included) stamps at the commit instant, so early delivery carries no
  // latency win.
  TimeMicros execution_wave_delay = 0;
  // KV workload shape (execute_app runs only): the chance a command targets
  // the shared hot keyspace instead of the stream's private keys — the
  // declared-conflict rate between concurrently committed batches.
  std::uint32_t kv_conflict_percent = 25;
  std::uint32_t kv_hot_keys = 4;
  std::uint32_t kv_value_bytes = 16;
};

struct SimResult {
  double committed_tps = 0;        // unique txs committed (origin-side) per second
  double submitted_tps = 0;        // offered load actually injected
  double avg_latency_s = 0;
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  std::uint64_t latency_samples = 0;  // transactions measured
  Round max_round = 0;                // highest DAG round reached (validator 0)
  CommitStats commit_stats;           // validator 0's committer stats
  std::uint64_t total_blocks = 0;     // blocks in validator 0's DAG
  std::uint64_t fetch_requests = 0;   // synchronizer traffic across all nodes
  std::uint64_t wal_replayed_blocks = 0;  // blocks replayed across all restarts
  std::uint64_t wal_groups_flushed = 0;   // non-empty group flushes (group commit)
  std::uint64_t mempool_rejected = 0;     // admission rejects at validator 0's pool
  std::uint64_t checkpoints_written = 0;  // completed checkpoint cuts, all validators
  std::uint64_t snapshot_catchups = 0;    // peer checkpoints installed
  std::uint64_t checkpoint_requests = 0;  // catch-up requests sent
  std::uint64_t checkpoint_delta_cuts = 0;  // cuts landed as delta links
  std::uint64_t checkpoint_certs_formed = 0;  // 2f+1 cut certificates aggregated

  // Max over surviving validators of (author, round) cells holding more
  // than one block — nonzero only if some author equivocated (configured
  // equivocators, or a recovery bug re-proposing a logged round).
  std::uint64_t equivocation_cells = 0;

  // Execution model results (execute_app runs; empty/zero otherwise). Every
  // running validator's executor is force-drained at run end before its
  // digest is taken.
  std::vector<Digest> app_digests;        // per validator; down = zero digest
  std::uint64_t exec_waves = 0;           // waves applied, all validators
  std::uint64_t exec_early_deliveries = 0;  // batches delivered pre-retirement
  // Wave events that would have delivered a batch while a conflicting
  // plan-order predecessor was still unsettled. The early-delivery safety
  // invariant: must stay 0.
  std::uint64_t exec_order_violations = 0;
  // Validators whose wave-scheduled executor state diverged from a serial
  // re-apply of their own recorded commit stream (snapshot base included).
  // Must stay 0: wave scheduling is an ordering optimization, not a
  // semantics change.
  std::uint64_t exec_serial_mismatches = 0;

  // Full dump of the run's metrics registry: every counter above plus the
  // lifecycle-stage histograms (validator 0's commit-wait breakdown and the
  // transaction-weighted finality histogram, stamped in virtual time — the
  // dump is deterministic for a fixed config and seed).
  obs::MetricsSnapshot metrics;

  // Validator 0's commit forensics, one trace per committed wave with
  // straggler attribution (arrival offsets, closing block, pipeline
  // breakdown), all stamped in virtual time. commit_traces_json() of this
  // deque is byte-identical across runs with the same config and seed.
  std::deque<CommitTrace> commit_traces;

  // Per-validator delivered sequences (only if record_sequences was set).
  std::vector<std::vector<BlockRef>> sequences;

  // Validator 0's consumed slot decisions (diagnostics; filled when
  // record_sequences is set).
  std::vector<SlotDecision> decisions;

  std::string to_string() const;
};

class SimHarness {
 public:
  explicit SimHarness(SimConfig config);
  ~SimHarness();

  SimResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience: configure + run.
SimResult run_simulation(const SimConfig& config);

}  // namespace mahimahi::sim
