// Deterministic discrete-event queue.
//
// Events at equal timestamps execute in scheduling order (a monotone
// sequence number breaks ties), so a seeded simulation is exactly
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/time.h"

namespace mahimahi {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  TimeMicros now() const { return now_; }

  void schedule(TimeMicros at, Callback callback) {
    if (at < now_) at = now_;  // never schedule into the past
    queue_.push(Event{at, next_seq_++, std::move(callback)});
  }

  void schedule_after(TimeMicros delay, Callback callback) {
    schedule(now_ + delay, std::move(callback));
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // Runs the next event; returns false when the queue is empty.
  bool run_next() {
    if (queue_.empty()) return false;
    // priority_queue exposes const refs; the event must be moved out before
    // executing, as callbacks may schedule more events.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.callback();
    return true;
  }

  // Runs until the queue drains or simulated time exceeds `end`.
  void run_until(TimeMicros end) {
    while (!queue_.empty() && queue_.top().at <= end) run_next();
    if (now_ < end) now_ = end;
  }

 private:
  struct Event {
    TimeMicros at;
    std::uint64_t seq;
    Callback callback;

    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  TimeMicros now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mahimahi
