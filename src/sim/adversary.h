// Adversarial message-schedule models (§2.1, §2.3).
//
// The asynchronous network model grants the adversary control over the
// message schedule: it may delay any message arbitrarily, but messages
// between honest validators are eventually delivered. These policies plug
// into the simulator's transport and implement that power in bounded form —
// each block or control message can be held back by an adversary-chosen
// finite extra delay. The adversary delays; it never forges (signatures
// hold) and never drops forever (eventual delivery, §2.1), so every run
// remains within the model under which Appendix C proves safety/liveness.
//
// Three concrete adversaries cover the attacks the paper reasons about:
//
//   * TargetedDelayAdversary — delays every block authored by a fixed
//     target set (a DoS against specific validators). The paper's
//     after-the-fact leader election (§2.3) is designed so an adversary
//     cannot aim this at leaders before the vote round has passed; aiming
//     it at fixed validators is the residual attack.
//   * PartitionAdversary — messages crossing a group boundary during
//     [start, end) are buffered until the partition heals. Models a
//     transient network split / targeted link attack.
//   * BurstDelayAdversary — periodic windows in which every message gains
//     extra delay. Models a continuously active asynchronous adversary
//     (congestion/DoS bursts) — the scenario the 5-round wave is
//     parameterized for (§2.2, challenge 2).
#pragma once

#include <cstdint>
#include <set>

#include "common/rng.h"
#include "common/time.h"
#include "types/block.h"
#include "types/ids.h"

namespace mahimahi::sim {

// Transport hook: returns extra one-way delay, decided at send time.
class Adversary {
 public:
  virtual ~Adversary() = default;

  // Extra delay for a block traveling from -> to. 0 = untouched schedule.
  virtual TimeMicros block_delay(const Block& block, ValidatorId from,
                                 ValidatorId to, TimeMicros now, Rng& rng) = 0;

  // Extra delay for small control messages (fetch request/response legs).
  // Defaults to no interference.
  virtual TimeMicros message_delay(ValidatorId /*from*/, ValidatorId /*to*/,
                                   TimeMicros /*now*/, Rng& /*rng*/) {
    return 0;
  }
};

// Delays every block authored by a member of `targets` by `delay`.
class TargetedDelayAdversary : public Adversary {
 public:
  TargetedDelayAdversary(std::set<ValidatorId> targets, TimeMicros delay)
      : targets_(std::move(targets)), delay_(delay) {}

  TimeMicros block_delay(const Block& block, ValidatorId, ValidatorId,
                         TimeMicros, Rng&) override {
    return targets_.contains(block.author()) ? delay_ : 0;
  }

 private:
  std::set<ValidatorId> targets_;
  TimeMicros delay_;
};

// Splits the committee into {v : v < boundary} and the rest during
// [start, end): messages crossing the split are held until `end` (plus a
// small random stagger so the heal is not one synchronized burst).
class PartitionAdversary : public Adversary {
 public:
  PartitionAdversary(ValidatorId boundary, TimeMicros start, TimeMicros end)
      : boundary_(boundary), start_(start), end_(end) {}

  TimeMicros block_delay(const Block&, ValidatorId from, ValidatorId to,
                         TimeMicros now, Rng& rng) override {
    return crossing_delay(from, to, now, rng);
  }

  TimeMicros message_delay(ValidatorId from, ValidatorId to, TimeMicros now,
                           Rng& rng) override {
    return crossing_delay(from, to, now, rng);
  }

 private:
  TimeMicros crossing_delay(ValidatorId from, ValidatorId to, TimeMicros now,
                            Rng& rng) const {
    if (now < start_ || now >= end_) return 0;
    const bool crosses = (from < boundary_) != (to < boundary_);
    if (!crosses) return 0;
    return (end_ - now) + static_cast<TimeMicros>(rng.uniform(millis(20)));
  }

  ValidatorId boundary_;
  TimeMicros start_;
  TimeMicros end_;
};

// Every `period`, opens a window of `burst_length` during which every
// message (blocks and control alike) gains a uniformly random delay up to
// `max_extra_delay` — sustained adversarial asynchrony.
class BurstDelayAdversary : public Adversary {
 public:
  BurstDelayAdversary(TimeMicros period, TimeMicros burst_length,
                      TimeMicros max_extra_delay)
      : period_(period), burst_length_(burst_length), max_extra_(max_extra_delay) {}

  TimeMicros block_delay(const Block&, ValidatorId, ValidatorId, TimeMicros now,
                         Rng& rng) override {
    return in_burst(now) && max_extra_ > 0
               ? static_cast<TimeMicros>(rng.uniform(max_extra_))
               : 0;
  }

  TimeMicros message_delay(ValidatorId, ValidatorId, TimeMicros now,
                           Rng& rng) override {
    return in_burst(now) && max_extra_ > 0
               ? static_cast<TimeMicros>(rng.uniform(max_extra_))
               : 0;
  }

 private:
  bool in_burst(TimeMicros now) const {
    return period_ > 0 && now % period_ < burst_length_;
  }

  TimeMicros period_;
  TimeMicros burst_length_;
  TimeMicros max_extra_;
};

}  // namespace mahimahi::sim
