#include "sim/dag_builder.h"

#include <algorithm>
#include <numeric>

namespace mahimahi {

DagBuilder::DagBuilder(std::uint32_t n, std::uint64_t seed)
    : setup_(Committee::make_test(n, seed)), dag_(setup_.committee) {}

std::vector<ValidatorId> DagBuilder::all_validators() const {
  std::vector<ValidatorId> out(n());
  std::iota(out.begin(), out.end(), 0);
  return out;
}

BlockPtr DagBuilder::add_block(ValidatorId author, Round round,
                               std::vector<BlockRef> parents,
                               std::vector<TxBatch> batches) {
  auto block = std::make_shared<const Block>(Block::make(
      author, round, std::move(parents), std::move(batches),
      setup_.committee.coin().share(author, round), setup_.keypairs[author].private_key));
  dag_.insert(block);
  return block;
}

BlockPtr DagBuilder::add_block_from(ValidatorId author, Round round,
                                    const std::vector<BlockPtr>& parents) {
  std::vector<BlockRef> refs;
  refs.reserve(parents.size());
  for (const auto& parent : parents) refs.push_back(parent->ref());
  return add_block(author, round, std::move(refs));
}

std::vector<BlockPtr> DagBuilder::add_full_round(Round round,
                                                 std::vector<ValidatorId> authors) {
  if (authors.empty()) authors = all_validators();
  std::vector<BlockRef> parent_refs;
  for (const auto& block : dag_.blocks_at(round - 1)) parent_refs.push_back(block->ref());
  std::vector<BlockPtr> out;
  out.reserve(authors.size());
  for (const ValidatorId author : authors) {
    out.push_back(add_block(author, round, parent_refs));
  }
  return out;
}

void DagBuilder::build_fully_connected(Round last_round) {
  for (Round r = dag_.highest_round() + 1; r <= last_round; ++r) add_full_round(r);
}

std::vector<BlockPtr> DagBuilder::add_random_network_round(Round round, Rng& rng,
                                                           std::vector<ValidatorId> alive) {
  if (alive.empty()) alive = all_validators();
  // Authors with at least one block in the previous round.
  std::vector<ValidatorId> previous_authors;
  for (ValidatorId a = 0; a < n(); ++a) {
    if (!dag_.slot(round - 1, a).empty()) previous_authors.push_back(a);
  }

  std::vector<BlockPtr> out;
  out.reserve(alive.size());
  for (const ValidatorId author : alive) {
    // Uniformly random 2f+1 subset of the previous round's authors (§2.3).
    std::vector<ValidatorId> choices = previous_authors;
    std::shuffle(choices.begin(), choices.end(), rng);
    choices.resize(std::min<std::size_t>(choices.size(), quorum()));
    // Also reference the author's own previous block if present (block
    // creation rule of §2.3: "starting with their most recent block").
    std::vector<BlockRef> refs;
    const auto& own = dag_.slot(round - 1, author);
    if (!own.empty() &&
        std::find(choices.begin(), choices.end(), author) == choices.end()) {
      refs.push_back(own.front()->ref());
      // Keep the random subset at 2f+1 distinct previous-round authors: the
      // own-block reference comes on top of the sampled quorum.
    }
    for (const ValidatorId choice : choices) {
      refs.push_back(dag_.slot(round - 1, choice).front()->ref());
    }
    out.push_back(add_block(author, round, std::move(refs)));
  }
  return out;
}

std::vector<BlockPtr> DagBuilder::add_adversarial_round(
    Round round, const std::vector<ValidatorId>& suppressed_authors,
    std::vector<ValidatorId> alive) {
  if (alive.empty()) alive = all_validators();
  std::vector<ValidatorId> previous_authors;
  for (ValidatorId a = 0; a < n(); ++a) {
    if (!dag_.slot(round - 1, a).empty()) previous_authors.push_back(a);
  }

  // Preferred parents: everyone except the suppressed authors.
  std::vector<ValidatorId> preferred;
  for (const ValidatorId a : previous_authors) {
    if (std::find(suppressed_authors.begin(), suppressed_authors.end(), a) ==
        suppressed_authors.end()) {
      preferred.push_back(a);
    }
  }

  std::vector<BlockPtr> out;
  out.reserve(alive.size());
  for (const ValidatorId author : alive) {
    // The adversary delivers only non-suppressed blocks when they suffice
    // for a quorum; otherwise it must let enough suppressed blocks through.
    std::vector<ValidatorId> chosen = preferred;
    for (const ValidatorId a : suppressed_authors) {
      if (chosen.size() >= quorum()) break;
      if (std::find(previous_authors.begin(), previous_authors.end(), a) !=
          previous_authors.end()) {
        chosen.push_back(a);
      }
    }
    std::vector<BlockRef> refs;
    refs.reserve(chosen.size());
    for (const ValidatorId c : chosen) {
      refs.push_back(dag_.slot(round - 1, c).front()->ref());
    }
    out.push_back(add_block(author, round, std::move(refs)));
  }
  return out;
}

}  // namespace mahimahi
