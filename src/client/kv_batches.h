// Client-side KV batch encoding: commands -> TxBatch with declared access
// sets.
//
// A client knows exactly which keys its commands touch, so it declares them
// on the batch (TxBatch::read_keys / write_keys). The execution scheduler can
// then place the batch into a dependency wave without decoding the payload
// first — and the declaration is enforced at execution time, so a buggy or
// Byzantine declaration costs only that client its parallelism, never
// correctness (exec/plan.h).
//
// Also home to the deterministic synthetic conflict workload shared by
// bench_execution, the execution property tests, and the simulator's KV load
// generator: batches draw keys from a small shared hot set with probability
// `conflict_percent`, else from a keyspace private to the generating stream.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "app/kv_command.h"
#include "common/rng.h"
#include "common/time.h"
#include "types/transaction.h"

namespace mahimahi::client {

// Encodes `commands` into a batch payload and declares the derived write set
// (KV commands are blind writes: the read set is empty). `count` defaults to
// the command count so latency histograms weight the batch sensibly.
inline TxBatch make_kv_batch(std::uint64_t id,
                             const std::vector<app::KvCommand>& commands,
                             TimeMicros submitted_at = 0) {
  TxBatch batch;
  batch.id = id;
  batch.submitted_at = submitted_at;
  batch.count = static_cast<std::uint32_t>(commands.size());
  batch.payload = app::encode_kv_payload(commands);
  for (const app::KvCommand& cmd : commands) {
    if (cmd.op == app::KvCommand::Op::kNoop) continue;
    batch.write_keys.push_back(cmd.key);
  }
  return batch;
}

struct KvWorkload {
  // Probability (0-100) that a key is drawn from the shared hot set; 0 means
  // fully disjoint batches (maximal parallelism), 100 means every command
  // fights over `hot_keys` keys (fully serial waves).
  std::uint32_t conflict_percent = 0;
  std::uint32_t hot_keys = 4;
  std::uint32_t commands_per_batch = 8;
  std::uint32_t value_bytes = 16;
  // Every tenth command is a Delete (exercises the resolved no-op-delete
  // branch of the parallel merge); 0 disables.
  bool with_deletes = true;
};

// One synthetic batch. `stream` disambiguates the private keyspace (callers
// pass e.g. a client index) so two generators never collide by accident;
// `sequence` makes batch ids and private keys unique within the stream.
inline TxBatch synth_kv_batch(const KvWorkload& workload, std::uint64_t stream,
                              std::uint64_t sequence, Rng& rng,
                              TimeMicros submitted_at = 0) {
  std::vector<app::KvCommand> commands;
  commands.reserve(workload.commands_per_batch);
  for (std::uint32_t i = 0; i < workload.commands_per_batch; ++i) {
    std::string key;
    if (rng.uniform(100) < workload.conflict_percent) {
      key = "hot/" + std::to_string(rng.uniform(workload.hot_keys));
    } else {
      key = "s" + std::to_string(stream) + "/" + std::to_string(sequence) +
            "/" + std::to_string(i);
    }
    if (workload.with_deletes && i % 10 == 9) {
      commands.push_back(app::KvCommand::del(std::move(key)));
    } else {
      std::string value(workload.value_bytes, 'v');
      if (!value.empty()) value[0] = static_cast<char>('a' + (sequence % 26));
      commands.push_back(app::KvCommand::put(std::move(key), std::move(value)));
    }
  }
  return make_kv_batch((stream << 40) | sequence, commands, submitted_at);
}

}  // namespace mahimahi::client
