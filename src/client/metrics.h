// Benchmark metrics: weighted latency distribution and throughput window.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/time.h"

namespace mahimahi {

// Per-stage counters of the block-ingestion pipeline
// (decode → structural validation → crypto verification → DAG insert).
// Owned by each ValidatorCore; drivers that run the crypto stage off-thread
// (net/node_runtime.h) keep mirror counters for their worker stages and sum
// both views for reporting.
// The acceptance counters track where the signature-verification DECISION
// came from, not raw cycles: cache_hits and verified are decisions made
// inside the core, preverified means the driver ran the (configured) crypto
// stage off-thread — including configurations where that stage skips
// signatures. With verify_signature disabled, blocks accepted inline
// increment none of them.
struct IngestStats {
  std::uint64_t structurally_rejected = 0;  // failed the cheap structural stage
  std::uint64_t crypto_rejected = 0;        // bad signature or coin share
  std::uint64_t cache_hits = 0;             // verifier-cache hit skipped ed25519
  std::uint64_t verified = 0;               // paid full crypto verification
  std::uint64_t preverified = 0;            // driver ran the crypto stage off-thread
};

// Collects (latency, weight) samples; weight = transactions represented by
// the sample (a committed TxBatch contributes its count).
class LatencyRecorder {
 public:
  void record(TimeMicros latency, std::uint64_t weight) {
    if (weight == 0) return;
    samples_.push_back({latency, weight});
    sorted_ = false;
    total_weight_ += weight;
    weighted_sum_ += static_cast<double>(latency) * static_cast<double>(weight);
  }

  std::uint64_t count() const { return total_weight_; }
  bool empty() const { return samples_.empty(); }

  double mean_seconds() const {
    return total_weight_ == 0 ? 0.0 : weighted_sum_ / total_weight_ / kMicrosPerSecond;
  }

  // Weighted percentile, p in [0, 100]. Sorts lazily: the first percentile
  // query after a batch of record()s pays one sort; further queries (benches
  // report p50/p90/p99/p999 in a row) walk the already-sorted samples.
  double percentile_seconds(double p) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end(),
                [](const Sample& a, const Sample& b) { return a.latency < b.latency; });
      sorted_ = true;
    }
    const double target = total_weight_ * p / 100.0;
    std::uint64_t cumulative = 0;
    for (const auto& sample : samples_) {
      cumulative += sample.weight;
      if (static_cast<double>(cumulative) >= target) {
        return to_seconds(sample.latency);
      }
    }
    return to_seconds(samples_.back().latency);
  }

 private:
  struct Sample {
    TimeMicros latency;
    std::uint64_t weight;
  };
  // record() appends and clears sorted_; percentile_seconds() sorts in place
  // at most once per dirty batch. Mutable: sorting does not change the
  // distribution, so the cache is logically const.
  mutable std::vector<Sample> samples_;
  mutable bool sorted_ = false;
  std::uint64_t total_weight_ = 0;
  double weighted_sum_ = 0.0;
};

}  // namespace mahimahi
