// Benchmark metrics: weighted latency distribution and throughput window.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/time.h"

namespace mahimahi {

// Collects (latency, weight) samples; weight = transactions represented by
// the sample (a committed TxBatch contributes its count).
class LatencyRecorder {
 public:
  void record(TimeMicros latency, std::uint64_t weight) {
    if (weight == 0) return;
    samples_.push_back({latency, weight});
    total_weight_ += weight;
    weighted_sum_ += static_cast<double>(latency) * static_cast<double>(weight);
  }

  std::uint64_t count() const { return total_weight_; }
  bool empty() const { return samples_.empty(); }

  double mean_seconds() const {
    return total_weight_ == 0 ? 0.0 : weighted_sum_ / total_weight_ / kMicrosPerSecond;
  }

  // Weighted percentile, p in [0, 100].
  double percentile_seconds(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<Sample> sorted = samples_;
    std::sort(sorted.begin(), sorted.end(),
              [](const Sample& a, const Sample& b) { return a.latency < b.latency; });
    const double target = total_weight_ * p / 100.0;
    std::uint64_t cumulative = 0;
    for (const auto& sample : sorted) {
      cumulative += sample.weight;
      if (static_cast<double>(cumulative) >= target) {
        return to_seconds(sample.latency);
      }
    }
    return to_seconds(sorted.back().latency);
  }

 private:
  struct Sample {
    TimeMicros latency;
    std::uint64_t weight;
  };
  std::vector<Sample> samples_;
  std::uint64_t total_weight_ = 0;
  double weighted_sum_ = 0.0;
};

}  // namespace mahimahi
