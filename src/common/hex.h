// Hex encoding/decoding for digests, keys and debug output.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"

namespace mahimahi {

std::string to_hex(BytesView data);

// Returns std::nullopt on odd length or non-hex characters.
std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace mahimahi
