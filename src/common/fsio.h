// Durable file-system primitives shared by the WAL segment manifest and the
// checkpoint store: crash-atomic whole-file writes and directory fsync.
//
// POSIX only makes a rename (or unlink) durable once the containing
// directory has itself been fsynced; without it a power loss can persist the
// unlink of an old file while losing the rename that replaced it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace mahimahi {

// fsyncs the directory entry list at `dir` so prior renames/unlinks inside
// it survive power loss. Best-effort: returns false (and logs) when the
// directory cannot be opened or the filesystem refuses directory fsync.
bool fsync_dir(const std::string& dir);

// Crash-atomic whole-file write: tmp file + fwrite + fflush + fsync +
// rename + parent-directory fsync. Every step's result is checked; on any
// failure the tmp file is removed and a std::runtime_error (prefixed with
// `who`) is thrown — the destination is either the old content or the new,
// never a torn mix.
void write_file_atomic(const std::string& path, BytesView content, const char* who);

// Parses the decimal index out of a `<prefix><digits><suffix>` file name
// (e.g. "seg-00000042.wal" with pad_width 8). Accepts exactly the names the
// canonical `%0<pad_width><PRIu64>` formatter produces: zero-padded to
// pad_width, wider only once the index outgrows the padding (such files must
// not become invisible to directory scans). Non-canonical strays — unpadded
// digits the formatter could never reconstruct a path for, or digit strings
// past 2^64 that strtoull would silently saturate — are rejected.
std::optional<std::uint64_t> parse_indexed_name(const std::string& name,
                                                std::string_view prefix,
                                                std::string_view suffix,
                                                unsigned pad_width);

}  // namespace mahimahi
