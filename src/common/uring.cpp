#include "common/uring.h"

#if MAHIMAHI_IOURING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace mahimahi {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

unsigned load_acquire(const unsigned* ptr) {
  return std::atomic_ref<const unsigned>(*ptr).load(std::memory_order_acquire);
}

void store_release(unsigned* ptr, unsigned value) {
  std::atomic_ref<unsigned>(*ptr).store(value, std::memory_order_release);
}

}  // namespace

// The SQE array slot. Alias of the UAPI struct so the header can forward-
// declare without dragging <linux/io_uring.h> into every includer.
struct MiniUring::SqeSlot : io_uring_sqe {};

bool MiniUring::cqe_has_buffer(std::uint32_t flags) {
  return (flags & IORING_CQE_F_BUFFER) != 0;
}

bool MiniUring::cqe_has_more(std::uint32_t flags) {
  return (flags & IORING_CQE_F_MORE) != 0;
}

std::uint16_t MiniUring::cqe_buffer_id(std::uint32_t flags) {
  return static_cast<std::uint16_t>(flags >> IORING_CQE_BUFFER_SHIFT);
}

MiniUring::MiniUring(unsigned entries) {
  io_uring_params params{};
  // CQ 4x the SQ: a multishot recv produces completions without consuming
  // submission slots, so the CQ needs headroom beyond the SQ depth. (With
  // IORING_FEAT_NODROP — every kernel new enough for multishot recv — an
  // overflow would stall, not lose, completions; the headroom keeps it off
  // the slow path.)
  params.flags = IORING_SETUP_CQSIZE;
  params.cq_entries = entries * 4;
  ring_fd_ = sys_io_uring_setup(entries, &params);
  if (ring_fd_ < 0) throw std::runtime_error("io_uring_setup failed");

  sq_entries_ = params.sq_entries;
  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap_) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }

  sq_ring_ = static_cast<std::uint8_t*>(
      ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING));
  cq_ring_ = single_mmap_
                 ? sq_ring_
                 : static_cast<std::uint8_t*>(
                       ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                              MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING));
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<std::uint8_t*>(::mmap(nullptr, sqes_bytes_,
                                            PROT_READ | PROT_WRITE,
                                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                                            IORING_OFF_SQES));
  if (sq_ring_ == MAP_FAILED || cq_ring_ == MAP_FAILED || sqes_ == MAP_FAILED) {
    ::close(ring_fd_);
    ring_fd_ = -1;
    throw std::runtime_error("io_uring ring mmap failed");
  }

  sq_khead_ = reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.head);
  sq_ktail_ = reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.tail);
  sq_kflags_ = reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.flags);
  sq_array_ = reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.array);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.ring_mask);
  sq_local_tail_ = *sq_ktail_;

  cq_khead_ = reinterpret_cast<unsigned*>(cq_ring_ + params.cq_off.head);
  cq_ktail_ = reinterpret_cast<unsigned*>(cq_ring_ + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_ring_ + params.cq_off.ring_mask);
  cqes_ = cq_ring_ + params.cq_off.cqes;
}

MiniUring::~MiniUring() {
  if (buf_ring_ != nullptr) ::munmap(buf_ring_, buf_ring_bytes_);
  delete[] pool_;
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && !single_mmap_) ::munmap(cq_ring_, cq_ring_bytes_);
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

MiniUring::SqeSlot* MiniUring::next_sqe(std::uint64_t user_data) {
  if (sq_local_tail_ - load_acquire(sq_khead_) >= sq_entries_) return nullptr;
  const unsigned index = sq_local_tail_ & sq_mask_;
  auto* sqe = reinterpret_cast<SqeSlot*>(sqes_ + index * sizeof(io_uring_sqe));
  std::memset(sqe, 0, sizeof(io_uring_sqe));
  sqe->user_data = user_data;
  sq_array_[index] = index;
  ++sq_local_tail_;
  return sqe;
}

bool MiniUring::prep_sendmsg(int fd, const msghdr* msg, std::uint64_t user_data) {
  SqeSlot* sqe = next_sqe(user_data);
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(msg);
  sqe->msg_flags = MSG_NOSIGNAL;
  return true;
}

bool MiniUring::prep_recv_multishot(int fd, std::uint16_t buf_group,
                                    std::uint64_t user_data) {
  SqeSlot* sqe = next_sqe(user_data);
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = buf_group;
  // len 0 + buffer select: each completion fills one pool buffer.
  return true;
}

bool MiniUring::prep_write(int fd, const void* data, unsigned len,
                           std::uint64_t user_data, bool link) {
  SqeSlot* sqe = next_sqe(user_data);
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_WRITE;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(data);
  sqe->len = len;
  sqe->off = static_cast<std::uint64_t>(-1);  // write(2) semantics: file position
  if (link) sqe->flags = IOSQE_IO_LINK;
  return true;
}

bool MiniUring::prep_fsync(int fd, std::uint64_t user_data) {
  SqeSlot* sqe = next_sqe(user_data);
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_FSYNC;
  sqe->fd = fd;
  return true;
}

bool MiniUring::prep_cancel(std::uint64_t target_user_data, std::uint64_t user_data) {
  SqeSlot* sqe = next_sqe(user_data);
  if (sqe == nullptr) return false;
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = target_user_data;
  return true;
}

int MiniUring::submit(unsigned wait_for) {
  store_release(sq_ktail_, sq_local_tail_);
  const unsigned to_submit = sq_local_tail_ - load_acquire(sq_khead_);
  unsigned flags = 0;
  if (wait_for > 0) flags |= IORING_ENTER_GETEVENTS;
  // A CQ overflow parks completions inside the kernel until the next
  // GETEVENTS enter flushes them into the ring.
  if (load_acquire(sq_kflags_) & IORING_SQ_CQ_OVERFLOW) flags |= IORING_ENTER_GETEVENTS;
  if (to_submit == 0 && flags == 0) return 0;  // nothing to do, no syscall
  for (;;) {
    const int rc = sys_io_uring_enter(ring_fd_, to_submit, wait_for, flags);
    ++enter_syscalls_;
    if (rc >= 0) return rc;
    if (errno != EINTR) return -errno;
  }
}

std::size_t MiniUring::reap(Cqe* out, std::size_t max) {
  unsigned head = *cq_khead_;  // only this thread advances it
  const unsigned tail = load_acquire(cq_ktail_);
  std::size_t count = 0;
  while (head != tail && count < max) {
    const auto* cqe =
        reinterpret_cast<const io_uring_cqe*>(cqes_ + (head & cq_mask_) * sizeof(io_uring_cqe));
    out[count].user_data = cqe->user_data;
    out[count].res = cqe->res;
    out[count].flags = cqe->flags;
    ++count;
    ++head;
  }
  if (count > 0) store_release(cq_khead_, head);
  return count;
}

bool MiniUring::register_buffer_pool(unsigned count, unsigned size) {
  static_assert(sizeof(io_uring_buf) == 16, "provided-buffer ring ABI");
  buf_ring_bytes_ = count * sizeof(io_uring_buf);
  buf_ring_ = static_cast<std::uint8_t*>(::mmap(nullptr, buf_ring_bytes_,
                                                PROT_READ | PROT_WRITE,
                                                MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
  if (buf_ring_ == MAP_FAILED) {
    buf_ring_ = nullptr;
    return false;
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(buf_ring_);
  reg.ring_entries = count;
  reg.bgid = 0;
  if (sys_io_uring_register(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    ::munmap(buf_ring_, buf_ring_bytes_);
    buf_ring_ = nullptr;
    return false;
  }
  pool_ = new std::uint8_t[static_cast<std::size_t>(count) * size];
  pool_buffers_ = count;
  pool_buffer_bytes_ = size;
  buf_ring_tail_ = 0;
  for (unsigned id = 0; id < count; ++id) {
    recycle_buffer(static_cast<std::uint16_t>(id));
  }
  return true;
}

std::uint8_t* MiniUring::buffer(std::uint16_t id) {
  return pool_ + static_cast<std::size_t>(id) * pool_buffer_bytes_;
}

void MiniUring::recycle_buffer(std::uint16_t id) {
  auto* entries = reinterpret_cast<io_uring_buf*>(buf_ring_);
  io_uring_buf& slot = entries[buf_ring_tail_ & (pool_buffers_ - 1)];
  slot.addr = reinterpret_cast<std::uint64_t>(buffer(id));
  slot.len = pool_buffer_bytes_;
  slot.bid = id;
  ++buf_ring_tail_;
  // The tail the kernel reads lives in the reserved fields of entry 0
  // (io_uring_buf_ring ABI: u64 + u32 + u16, then the u16 tail).
  auto* tail = reinterpret_cast<std::uint16_t*>(buf_ring_ + 14);
  std::atomic_ref<std::uint16_t>(*tail).store(buf_ring_tail_, std::memory_order_release);
}

namespace {

// One-shot runtime probe. Everything the I/O plane submits must be
// supported: SENDMSG/WRITE/FSYNC/ASYNC_CANCEL by opcode probe, multishot
// recv by kernel generation (IORING_OP_SEND_ZC shipped in the same release,
// 6.0, and IS probeable — RECV's multishot flag is not), and the
// provided-buffer ring by actually registering one.
bool probe_uring() {
  try {
    MiniUring ring(8);
    constexpr unsigned kProbeOps = 64;
    // Flat byte buffer: io_uring_probe ends in a flexible array, which C++
    // cannot embed in another aggregate.
    std::vector<std::uint8_t> mem(sizeof(io_uring_probe) +
                                      kProbeOps * sizeof(io_uring_probe_op),
                                  0);
    if (sys_io_uring_register(ring.ring_fd(), IORING_REGISTER_PROBE, mem.data(),
                              kProbeOps) < 0) {
      return false;
    }
    const auto* ops =
        reinterpret_cast<const io_uring_probe_op*>(mem.data() + sizeof(io_uring_probe));
    const auto supported = [ops](unsigned op) {
      return op < kProbeOps && (ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
    };
    if (!supported(IORING_OP_SENDMSG) || !supported(IORING_OP_RECV) ||
        !supported(IORING_OP_WRITE) || !supported(IORING_OP_FSYNC) ||
        !supported(IORING_OP_ASYNC_CANCEL) || !supported(IORING_OP_SEND_ZC)) {
      return false;
    }
    MiniUring pool_probe(8);
    return pool_probe.register_buffer_pool(8, 4096);
  } catch (const std::runtime_error&) {
    return false;
  }
}

}  // namespace

bool uring_runtime_supported() {
  static const bool supported = probe_uring();
  return supported;
}

}  // namespace mahimahi

#else  // !MAHIMAHI_IOURING

namespace mahimahi {

bool uring_runtime_supported() { return false; }

}  // namespace mahimahi

#endif  // MAHIMAHI_IOURING
