#include "common/rng.h"

#include <cmath>

namespace mahimahi {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform(span));
}

double Rng::uniform_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::gaussian() {
  double u1 = uniform_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform_double();
    while (product > limit) {
      ++count;
      product *= uniform_double();
    }
    return count;
  }
  const double sample = mean + std::sqrt(mean) * gaussian();
  return sample <= 0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace mahimahi
