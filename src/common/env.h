// Environment-tunable test knobs.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace mahimahi {

// Iteration count for randomized property tests: `base` by default,
// overridden by the MAHIMAHI_PROPERTY_ITERS environment variable. The
// nightly CI job raises it to run extended sweeps with the same binaries;
// unparsable or zero values fall back to `base`.
inline std::uint64_t property_iters(std::uint64_t base) {
  const char* env = std::getenv("MAHIMAHI_PROPERTY_ITERS");
  if (env == nullptr || *env == '\0') return base;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) return base;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace mahimahi
