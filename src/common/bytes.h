// Basic byte-buffer aliases and small helpers shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

namespace mahimahi {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// View over the raw bytes of a string literal / std::string, for hashing and
// test fixtures.
inline BytesView as_bytes_view(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// Constant-time equality for fixed-size secrets (signatures, MACs). Not
// data-independent at the length level: lengths are public here.
inline bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace mahimahi
