// CRC-32 (IEEE 802.3 polynomial) used to frame write-ahead-log records.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace mahimahi {

std::uint32_t crc32(BytesView data);

// Incremental form: feed chunks, starting from crc32_init().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, BytesView data);
std::uint32_t crc32_finish(std::uint32_t state);

}  // namespace mahimahi
