// Time representation shared by the simulator and the real runtime.
//
// All protocol-visible timestamps are microseconds held in a signed 64-bit
// integer. The simulator supplies virtual time; the TCP runtime supplies
// steady-clock time. The validator core never reads a clock itself (sans-IO),
// it is always told the current time by its driver.
#pragma once

#include <chrono>
#include <cstdint>

namespace mahimahi {

using TimeMicros = std::int64_t;

constexpr TimeMicros kMicrosPerMilli = 1000;
constexpr TimeMicros kMicrosPerSecond = 1000 * 1000;

inline TimeMicros millis(std::int64_t ms) { return ms * kMicrosPerMilli; }
inline TimeMicros seconds(double s) { return static_cast<TimeMicros>(s * kMicrosPerSecond); }
inline double to_seconds(TimeMicros t) { return static_cast<double>(t) / kMicrosPerSecond; }

// Steady-clock now, for the real (non-simulated) runtime.
inline TimeMicros steady_now_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace mahimahi
