// Minimal raw-syscall io_uring wrapper — no liburing dependency.
//
// The io_uring I/O plane (net/uring_backend.h for the socket data plane,
// wal/wal_ring.h for WAL group flushes) needs exactly four kernel
// facilities: a submission/completion ring pair, batched io_uring_enter, a
// provided-buffer ring for multishot recv, and linked SQEs for write→fsync
// pairs. The toolchain bakes in the kernel UAPI header but not liburing, and
// this repo's style is from-scratch subsystems anyway (see the hand-rolled
// crypto) — so this wraps the raw ABI from <linux/io_uring.h> directly:
// io_uring_setup + mmap'd rings + atomic head/tail publishing, ~300 lines.
//
// Thread contract: one MiniUring belongs to ONE thread (the event loop's, or
// the WAL writer's). Nothing here locks.
//
// Compiled to stubs when the CMake option MAHIMAHI_IOURING is off or the
// UAPI header is absent; uring_runtime_supported() is then constant false
// and every caller falls back to the classic epoll/write+fsync path.
#pragma once

#include <cstddef>
#include <cstdint>

struct msghdr;  // <sys/socket.h>

namespace mahimahi {

// True when the wrapper is compiled in AND a runtime probe succeeded:
// io_uring_setup works (not seccomp-blocked or sysctl-disabled), the opcodes
// the I/O plane uses are supported, and a provided-buffer ring registers.
// Cached after the first call; safe from any thread.
bool uring_runtime_supported();

#if MAHIMAHI_IOURING

class MiniUring {
 public:
  // A reaped completion. `flags` carries the provided-buffer id for recv
  // completions (see cqe_buffer_id / cqe_has_buffer / cqe_has_more).
  struct Cqe {
    std::uint64_t user_data = 0;
    std::int32_t res = 0;
    std::uint32_t flags = 0;
  };

  static bool cqe_has_buffer(std::uint32_t flags);
  static bool cqe_has_more(std::uint32_t flags);  // multishot op still armed
  static std::uint16_t cqe_buffer_id(std::uint32_t flags);

  // `entries` is the SQ depth (rounded up to a power of two by the kernel);
  // the CQ is sized 4x deeper so a burst of multishot-recv completions
  // between reaps does not overflow. Throws std::runtime_error on failure —
  // callers that want a fallback probe uring_runtime_supported() first.
  explicit MiniUring(unsigned entries);
  ~MiniUring();

  MiniUring(const MiniUring&) = delete;
  MiniUring& operator=(const MiniUring&) = delete;

  int ring_fd() const { return ring_fd_; }

  // --- SQE preparation -------------------------------------------------------
  // Each returns false when the submission queue is full (caller submits and
  // retries). Prepared entries reach the kernel only at the next submit().

  // Gathered socket send; `msg` (and its iovec array) must stay alive until
  // the completion is reaped.
  bool prep_sendmsg(int fd, const msghdr* msg, std::uint64_t user_data);
  // Multishot recv with buffer selection from `buf_group`: one SQE produces a
  // completion per arriving chunk until cancelled or the pool runs dry.
  bool prep_recv_multishot(int fd, std::uint16_t buf_group, std::uint64_t user_data);
  // File write at the current file position (offset -1, write(2) semantics).
  // With `link`, the NEXT prepared SQE runs only after this one succeeds in
  // full — the write→fsync durability pair.
  bool prep_write(int fd, const void* data, unsigned len, std::uint64_t user_data,
                  bool link);
  bool prep_fsync(int fd, std::uint64_t user_data);
  // Cancels the in-flight op carrying `target_user_data`.
  bool prep_cancel(std::uint64_t target_user_data, std::uint64_t user_data);

  // Unsubmitted prepared entries.
  unsigned pending_sqes() const { return sq_local_tail_ - *sq_khead_; }

  // --- submission / completion ----------------------------------------------

  // One io_uring_enter covering everything prepared since the last call;
  // wait_for > 0 additionally blocks until that many completions exist (the
  // same single syscall does both). Returns entries consumed by the kernel,
  // or a negative errno. EINTR is retried internally.
  int submit(unsigned wait_for = 0);

  // Drains up to `max` completions into `out`; pure shared-memory reads, no
  // syscall. Returns the count.
  std::size_t reap(Cqe* out, std::size_t max);

  // --- provided-buffer pool (multishot-recv ingress) -------------------------

  // Registers one pool (buffer group 0) of `count` buffers (power of two) of
  // `size` bytes each. False when the kernel lacks PBUF_RING.
  bool register_buffer_pool(unsigned count, unsigned size);
  std::uint8_t* buffer(std::uint16_t id);
  unsigned buffer_size() const { return pool_buffer_bytes_; }
  // Returns a consumed buffer to the kernel.
  void recycle_buffer(std::uint16_t id);

  // Kernel entries made by submit() — THE data-plane syscall count.
  std::uint64_t enter_syscalls() const { return enter_syscalls_; }

 private:
  struct SqeSlot;  // io_uring_sqe, kept out of the header
  SqeSlot* next_sqe(std::uint64_t user_data);

  int ring_fd_ = -1;
  // Submission ring (shared with the kernel).
  std::uint8_t* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  unsigned* sq_khead_ = nullptr;
  unsigned* sq_ktail_ = nullptr;
  unsigned* sq_kflags_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned sq_local_tail_ = 0;  // entries prepared, not yet published
  std::uint8_t* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;
  // Completion ring.
  std::uint8_t* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  unsigned* cq_khead_ = nullptr;
  unsigned* cq_ktail_ = nullptr;
  unsigned cq_mask_ = 0;
  std::uint8_t* cqes_ = nullptr;
  bool single_mmap_ = false;
  // Provided-buffer ring + its backing pool.
  std::uint8_t* buf_ring_ = nullptr;
  std::size_t buf_ring_bytes_ = 0;
  std::uint8_t* pool_ = nullptr;
  unsigned pool_buffers_ = 0;
  unsigned pool_buffer_bytes_ = 0;
  std::uint16_t buf_ring_tail_ = 0;

  std::uint64_t enter_syscalls_ = 0;
};

#endif  // MAHIMAHI_IOURING

}  // namespace mahimahi
