// Minimal leveled logger.
//
// The library is quiet by default (kWarn); tests and examples raise the level
// explicitly. Logging goes to stderr so example/bench stdout stays parseable.
#pragma once

#include <sstream>
#include <string>

namespace mahimahi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Per-thread log context, prepended to every line this thread logs:
//
//   [WARN ] [v3/wal] group flush fell behind ...
//
// Multi-validator cluster tests run dozens of loop/worker/writer threads in
// one process; the context ("v3", "v3/wk", "v3/wal") makes interleaved lines
// attributable. Empty (the default) prints the bare legacy format. Set it
// once at thread start (NodeRuntime loop, WorkerPool workers, the WAL writer
// do); it is thread-local, so there is nothing to unset.
void set_log_context(std::string context);
const std::string& log_context();

namespace detail {
void log_line(LogLevel level, const std::string& message);
// The exact line log_line prints (sans trailing newline); split out so tests
// can assert the format without capturing stderr.
std::string format_line(LogLevel level, const std::string& message);
}  // namespace detail

// Usage: MM_LOG(kInfo) << "committed " << n << " blocks";
#define MM_LOG(level_suffix)                                             \
  for (bool mm_log_once = ::mahimahi::log_level() <= ::mahimahi::LogLevel::level_suffix; \
       mm_log_once; mm_log_once = false)                                 \
  ::mahimahi::detail::LogStream(::mahimahi::LogLevel::level_suffix)

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mahimahi
