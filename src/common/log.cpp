#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mahimahi {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace {
thread_local std::string g_context;
}  // namespace

void set_log_context(std::string context) { g_context = std::move(context); }
const std::string& log_context() { return g_context; }

namespace detail {
std::string format_line(LogLevel level, const std::string& message) {
  std::string line = "[";
  line += level_name(level);
  line += "]";
  if (!g_context.empty()) {
    line += " [";
    line += g_context;
    line += "]";
  }
  line += " ";
  line += message;
  return line;
}

void log_line(LogLevel level, const std::string& message) {
  const std::string line = format_line(level, message);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}
}  // namespace detail

}  // namespace mahimahi
