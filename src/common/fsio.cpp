#include "common/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "common/log.h"

namespace mahimahi {

bool fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    MM_LOG(kWarn) << "fsync_dir: cannot open " << dir;
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) MM_LOG(kWarn) << "fsync_dir: fsync failed for " << dir;
  return ok;
}

void write_file_atomic(const std::string& path, BytesView content, const char* who) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error(std::string(who) + ": cannot open " + tmp);
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), file) == content.size();
  ok = std::fflush(file) == 0 && ok;
  ok = ::fsync(::fileno(file)) == 0 && ok;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error(std::string(who) + ": failed to write " + tmp);
  }
  // The rename is the commit point; the directory fsync makes it durable, so
  // a later unlink of the content this file supersedes can never outlive it
  // across power loss.
  std::filesystem::rename(tmp, path);
  fsync_dir(std::filesystem::path(path).parent_path().string());
}

std::optional<std::uint64_t> parse_indexed_name(const std::string& name,
                                                std::string_view prefix,
                                                std::string_view suffix,
                                                unsigned pad_width) {
  if (name.size() <= prefix.size() + suffix.size() || !name.starts_with(prefix) ||
      !name.ends_with(suffix)) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.size() > 20 ||  // 2^64 has 20 decimal digits: longer cannot fit
      !std::all_of(digits.begin(), digits.end(),
                   [](unsigned char c) { return std::isdigit(c) != 0; })) {
    return std::nullopt;
  }
  const std::uint64_t value = std::strtoull(digits.c_str(), nullptr, 10);
  // Round-trip gate: only names the canonical formatter itself produces are
  // accepted. This rejects both unpadded strays (the formatter could never
  // rebuild their path, so they would poison index-contiguity checks) and
  // digit strings past 2^64-1 (strtoull saturates to ULLONG_MAX, whose
  // rendering no longer matches the input).
  char canonical[24];
  std::snprintf(canonical, sizeof(canonical), "%0*" PRIu64,
                static_cast<int>(pad_width), value);
  if (digits != canonical) return std::nullopt;
  return value;
}

}  // namespace mahimahi
