// Deterministic pseudo-random number generation for simulation and tests.
//
// Every stochastic component in the simulator (latency jitter, Poisson
// arrivals, adversarial schedulers) draws from an explicitly seeded Rng so
// that runs are exactly reproducible. Not cryptographic.
#pragma once

#include <cstdint>
#include <limits>

namespace mahimahi {

// SplitMix64: used to expand a single seed into stream seeds.
std::uint64_t splitmix64(std::uint64_t& state);

// xoshiro256++ generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform_double();

  // Exponentially distributed with the given mean (> 0). Used for Poisson
  // inter-arrival times in the open-loop load generator.
  double exponential(double mean);

  // Normal(0,1) via Box-Muller; used for latency jitter.
  double gaussian();

  // Poisson-distributed count with the given mean; Knuth's product method
  // for small means, normal approximation for large ones. Used by the
  // open-loop load generator.
  std::uint64_t poisson(double mean);

  // Derive an independent child generator; convenient for giving each
  // simulated component its own stream.
  Rng fork();

  // UniformRandomBitGenerator interface so the Rng works with <algorithm>
  // shuffles.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace mahimahi
