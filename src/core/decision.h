// Slot decisions and commit outputs (§3.1, §3.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "types/block.h"
#include "types/ids.h"

namespace mahimahi {

// State of a leader slot: undecided until classified commit or skip (§3.1).
struct SlotDecision {
  enum class Kind { kUndecided, kCommit, kSkip };
  // How the decision was reached; kept for stats and the ablation benches.
  enum class Via { kNone, kDirect, kIndirect };

  SlotId slot;
  ValidatorId leader = 0;   // meaningful once the coin opened
  Kind kind = Kind::kUndecided;
  Via via = Via::kNone;
  BlockPtr block;           // the committed block, when kind == kCommit
  // The committed block's reference, set alongside `block` for commits. It
  // outlives the pointer: a decision restored from a checkpoint whose block
  // fell below the GC horizon keeps the ref (identity) with a null `block`.
  BlockRef ref;
  // Final decisions never change as the DAG grows; non-final ones are
  // re-evaluated on the next pass.
  bool final_decision = false;

  static SlotDecision undecided(SlotId slot) {
    SlotDecision d;
    d.slot = slot;
    return d;
  }

  std::string to_string() const;
};

// Do two decisions agree on the observable outcome — same slot, same
// classification and, for commits, the same block? `via` is deliberately
// ignored: a slot may legitimately be decided directly in one view and
// indirectly in another (Lemma 7); only the outcome is agreement-critical.
// The serial-vs-off-loop determinism checks compare decision streams with
// this.
inline bool same_outcome(const SlotDecision& a, const SlotDecision& b) {
  if (a.slot != b.slot || a.kind != b.kind) return false;
  if (a.kind != SlotDecision::Kind::kCommit) return true;
  return a.block != nullptr && b.block != nullptr &&
         a.block->digest() == b.block->digest();
}

// A committed leader slot together with the newly delivered portion of its
// causal history, in deterministic causal order (leader block last).
struct CommittedSubDag {
  SlotId slot;
  BlockPtr leader;
  std::vector<BlockPtr> blocks;  // includes `leader` as the last element

  std::uint64_t transaction_count() const {
    std::uint64_t total = 0;
    for (const auto& b : blocks) total += b->transaction_count();
    return total;
  }
};

struct CommitStats {
  std::uint64_t direct_commits = 0;
  std::uint64_t indirect_commits = 0;
  std::uint64_t direct_skips = 0;
  std::uint64_t indirect_skips = 0;
  std::uint64_t delivered_blocks = 0;
  std::uint64_t delivered_transactions = 0;

  std::uint64_t committed_slots() const { return direct_commits + indirect_commits; }
  std::uint64_t skipped_slots() const { return direct_skips + indirect_skips; }
};

}  // namespace mahimahi
