// The Mahi-Mahi committer: leader slots, decision rules and linearization
// (§3, Algorithms 1-3).
//
// One committer instance is owned by each validator and evaluated against its
// local DAG. The committer is deterministic: two validators whose DAGs agree
// on the relevant sub-graph produce the same commit sequence (Appendix C,
// Lemmas 5-7).
//
// Note on Algorithm 2, line 25: the paper's pseudocode returns skip for the
// whole slot upon finding one skippable equivocation, yet the Appendix B
// walkthrough classifies equivocation L5b as skip and still commits its
// sibling L'5b in the same slot. We implement the semantics of the worked
// example and of the Appendix C proofs: per-block classification, where the
// slot commits the (unique, Lemma 2) certified block if one exists, and is
// skipped only when every potential block for the slot is provably dead —
// every *seen* candidate has 2f+1 distinct-author non-votes, and 2f+1
// distinct vote-round authors are present (which kills every *unseen*
// candidate: a vote for an unseen block would place that block in our DAG by
// causal completeness).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/committer_base.h"
#include "core/decision.h"
#include "core/linearize.h"
#include "core/options.h"
#include "core/vote_index.h"
#include "dag/dag.h"
#include "types/committee.h"

namespace mahimahi {

class Committer : public CommitterBase {
 public:
  Committer(const Dag& dag, const Committee& committee, CommitterOptions options);

  // Algorithm 1, ExtendCommitSequence: classify as many pending slots as the
  // current DAG allows, consume the decided prefix in slot order, and return
  // the newly committed sub-DAGs (deterministic causal order, leader last).
  // Idempotent: call after every DAG insertion (or batch of insertions).
  // Equivalent to apply(scan()) — the split below exists so drivers can run
  // the expensive scan off their loop thread (core/commit_scanner.h).
  std::vector<CommittedSubDag> try_commit() override;

  // --- Split evaluation (parallel commit) -----------------------------------
  //
  // scan() is the candidate-wave/leader-slot evaluation: it classifies
  // pending slots against the current DAG and returns the newly decided
  // consecutive prefix starting at next_pending_slot(), WITHOUT consuming
  // it. Read-only with respect to the DAG and the consumption state; only
  // the memo caches (vote index, final-decision map) mutate. All returned
  // decisions are final (SlotDecision::final_decision): they never change as
  // the DAG grows, so a prefix scanned against a lagging replica applies
  // bit-identically to any equal-or-larger DAG containing the same blocks.
  std::vector<SlotDecision> scan();

  // apply() consumes a decision prefix produced by scan() — here or on a
  // replica scanner — in slot order: extends the decided log, advances
  // next_pending_slot(), and (when `deliver` is set) linearizes committed
  // sub-DAGs against this committer's DAG. Decisions below the current head
  // are skipped (already consumed); a gap above the head stops the apply.
  // `deliver = false` advances the head without delivering — the replica
  // scanner uses it to stay in lockstep with the owner without duplicating
  // linearization work.
  std::vector<CommittedSubDag> apply(const std::vector<SlotDecision>& decisions,
                                     bool deliver = true);

  // Repositions the consumption head without delivering anything: slots
  // below `head` are treated as consumed before this committer existed.
  // Used by replica scanners seeded from a running validator's DAG snapshot
  // (e.g. after WAL recovery), whose early slots were consumed — and
  // possibly pruned — before the snapshot was taken. No-op when `head` is
  // not ahead of the current head.
  void fast_forward(SlotId head);

  // --- Checkpoint support ---------------------------------------------------
  //
  // Delivered marks at or above `min_round`, for a checkpoint cut at that
  // horizon. Marks below it are never consulted again (linearize's min_round
  // cut excludes sub-horizon parents first), so the snapshot stays bounded.
  std::vector<std::pair<Digest, Round>> delivered_snapshot(Round min_round) const;

  // Installs a checkpointed consumption state: replaces the decided log,
  // repositions the head, seeds the delivered map, and recomputes the
  // commit/skip stats from the log (delivered byte/tx counters restart at
  // zero — they are local diagnostics, not agreed state). Decisions must be
  // final and in slot order; commits below the checkpoint horizon may carry
  // a null `block` (their ref keeps the identity). Pair with
  // Dag::prune_below(horizon) + insert of the checkpoint's DAG suffix.
  void restore(std::vector<SlotDecision> decided, SlotId head,
               const std::vector<std::pair<Digest, Round>>& delivered);

  const CommitterOptions& options() const { return options_; }
  const CommitStats& stats() const override { return stats_; }

  // The first slot not yet consumed (commit latency head-of-line marker).
  SlotId next_pending_slot() const override { return next_pending_; }

  // All consumed slot decisions, in slot order.
  const std::vector<SlotDecision>& decided_sequence() const override {
    return decided_log_;
  }

  // The validator assigned to `slot` once the coin for its wave opened
  // (2f+1 distinct certify-round shares in the DAG); nullopt before that.
  std::optional<ValidatorId> slot_leader(SlotId slot) const;

  // Evaluates every pending slot against the current DAG without consuming
  // anything. Exposed for tests and the probability benches.
  std::map<SlotId, SlotDecision> evaluate_all();

  // Has `digest` been delivered as part of a committed sub-DAG?
  bool is_delivered(const Digest& digest) const { return delivered_.contains(digest); }

  // Forget memoized state below `round` (pair with Dag::prune_below).
  void prune_below(Round round) override;

 private:
  SlotId successor(SlotId slot) const;
  // Highest propose round whose wave could possibly be evaluated now.
  Round highest_propose_round() const;

  // The decision rules. `later` holds decisions for all slots after `slot`
  // in the current pass (used by the indirect rule's anchor search).
  SlotDecision evaluate(SlotId slot, const std::map<SlotId, SlotDecision>& later);
  bool supported(const Block& candidate, Round vote_round, Round certify_round);
  bool skipped(const Block& candidate, ValidatorId leader, Round propose_round,
               Round vote_round);

  const Dag& dag_;
  const Committee& committee_;
  CommitterOptions options_;
  VoteIndex votes_;

  SlotId next_pending_;
  std::map<SlotId, SlotDecision> final_;  // decided (= final) slots >= next_pending_
  std::vector<SlotDecision> decided_log_;
  DeliveredMap delivered_;
  Round delivered_pruned_below_ = 0;  // amortizes delivered_ rescans
  CommitStats stats_;
};

}  // namespace mahimahi
