// Abstract commit rule.
//
// The validator core drives any DAG commit rule through this interface: the
// Mahi-Mahi committer (core/committer.h, also configurable into the Cordial
// Miners shape) and the Tusk baseline (baselines/tusk.h).
#pragma once

#include <memory>
#include <vector>

#include "core/decision.h"

namespace mahimahi {

class CommitterBase {
 public:
  virtual ~CommitterBase() = default;

  // Classify pending slots and return newly committed sub-DAGs in commit
  // order. Idempotent; called after DAG insertions.
  virtual std::vector<CommittedSubDag> try_commit() = 0;

  virtual const CommitStats& stats() const = 0;
  virtual SlotId next_pending_slot() const = 0;
  virtual const std::vector<SlotDecision>& decided_sequence() const = 0;
  virtual void prune_below(Round round) = 0;
};

}  // namespace mahimahi
