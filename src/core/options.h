// Committer configuration (§3, §5).
#pragma once

#include <cstdint>

#include "types/ids.h"

namespace mahimahi {

struct CommitterOptions {
  // Rounds per wave: Propose, Boost*, Vote, Certify. The paper ships 5
  // (maximum asynchronous commit probability) and 4 (lower latency under the
  // random network model). 3 is safe but not live under asynchrony
  // (Appendix C note); it is provided for the ablation benches.
  std::uint32_t wave_length = 5;

  // Leader slots per round (§3.1). The paper evaluates 1-3 and defaults to 2.
  std::uint32_t leaders_per_round = 2;

  // Distance between consecutive propose rounds. Mahi-Mahi starts a wave
  // every round (stride 1, overlapping waves, Fig. 1 right). A stride equal
  // to wave_length yields non-overlapping waves — the Cordial Miners shape.
  Round wave_stride = 1;

  // The direct skip rule (§3.2 step 2). Disabling it forces crashed/withheld
  // leader slots to be resolved indirectly via a later anchor, reproducing
  // Cordial Miners' head-of-line blocking under faults (claim C3 ablation).
  bool direct_skip = true;

  // First propose round. Round 0 is genesis and never hosts slots.
  Round first_slot_round = 1;

  // Deterministic garbage collection depth (0 = unbounded history, the
  // paper's pseudocode). When > 0, a committed leader at round R delivers
  // only causal-history blocks with round >= R - gc_depth; anything older
  // that was never delivered is excluded — identically at every validator,
  // because the cut depends only on the agreed leader sequence. This is
  // what makes pruning safe: once the consumed-slot head passes round H,
  // rounds below H - gc_depth can never be delivered by any future leader,
  // so the validator can drop them (Dag::prune_below) without any risk of
  // two validators delivering different histories. gc_depth is a protocol
  // parameter: all validators must agree on it.
  Round gc_depth = 0;

  bool valid() const {
    return wave_length >= 3 && leaders_per_round >= 1 && wave_stride >= 1 &&
           first_slot_round >= 1;
  }

  // Round role mapping for the wave proposing at `r` (Fig. 1 left).
  Round vote_round(Round propose_round) const { return propose_round + wave_length - 2; }
  Round certify_round(Round propose_round) const {
    return propose_round + wave_length - 1;
  }

  bool is_propose_round(Round r) const {
    return r >= first_slot_round && (r - first_slot_round) % wave_stride == 0;
  }

  // The first leader slot at or after round `r`: offset 0 of the first
  // propose round >= max(r, first_slot_round). Canonical-cut boundaries
  // (checkpoint/cert.h) are defined with this, so every validator maps a
  // cut index to the same slot.
  SlotId first_slot_at_or_after(Round r) const {
    Round target = r < first_slot_round ? first_slot_round : r;
    const Round steps = (target - first_slot_round + wave_stride - 1) / wave_stride;
    return SlotId{first_slot_round + steps * wave_stride, 0};
  }
};

// Canonical configurations used across examples, tests and benches.
inline CommitterOptions mahi_mahi_5(std::uint32_t leaders = 2) {
  return CommitterOptions{.wave_length = 5, .leaders_per_round = leaders};
}
inline CommitterOptions mahi_mahi_4(std::uint32_t leaders = 2) {
  return CommitterOptions{.wave_length = 4, .leaders_per_round = leaders};
}
// The Cordial Miners shape: uncertified DAG, one leader every wave_length
// rounds, no direct skip (see src/baselines/cordial_miners.h).
inline CommitterOptions cordial_miners_shape(std::uint32_t wave_length = 5) {
  return CommitterOptions{.wave_length = wave_length,
                          .leaders_per_round = 1,
                          .wave_stride = wave_length,
                          .direct_skip = false};
}

}  // namespace mahimahi
