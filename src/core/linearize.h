// Shared sub-DAG linearization (Algorithm 3, LinearizeSubDags).
#pragma once

#include <unordered_map>

#include "core/decision.h"
#include "dag/dag.h"

namespace mahimahi {

// Digests already delivered, with the block round retained so garbage
// collection can drop entries that fall below the GC cut.
using DeliveredMap = std::unordered_map<Digest, Round, DigestHasher>;

// Collects the not-yet-delivered causal history of `leader` (inclusive),
// orders it deterministically and causally — by (round, author, digest);
// parents always precede children because parent rounds are strictly lower —
// marks it delivered, and updates the stats counters.
//
// `min_round` is the deterministic GC cut (CommitterOptions::gc_depth):
// blocks with round < min_round are excluded from delivery and not
// traversed. 0 delivers the full history.
CommittedSubDag linearize_sub_dag(const Dag& dag, SlotId slot, BlockPtr leader,
                                  DeliveredMap& delivered, CommitStats& stats,
                                  Round min_round = 0);

}  // namespace mahimahi
