#include "core/commit_scanner.h"

namespace mahimahi {

CommitScanner::CommitScanner(const Dag& seed, SlotId head, const Committee& committee,
                             CommitterOptions options)
    : replica_(seed), scanner_(replica_, committee, options) {
  scanner_.fast_forward(head);
}

void CommitScanner::ingest(const std::vector<BlockPtr>& blocks) {
  for (const BlockPtr& block : blocks) {
    // Below the replica's horizon: the owner admitted this block before its
    // own (lagging) GC caught up with ours. Sub-horizon blocks can never
    // influence a pending slot — every pending slot's vote/certify rounds
    // sit at or above the consumption head, strictly above the horizon — and
    // the owner linearizes against its full DAG, so skipping is safe.
    if (block->round() < replica_.pruned_below()) continue;
    if (replica_.insert(block)) ++blocks_ingested_;
  }
}

std::vector<SlotDecision> CommitScanner::scan() {
  ++scans_run_;
  std::vector<SlotDecision> decisions = scanner_.scan();
  if (decisions.empty()) return decisions;
  // Consume without delivering: the owner's apply() does the linearization.
  scanner_.apply(decisions, /*deliver=*/false);
  // Mirror the owner's GC (ValidatorCore::maybe_gc): once the head passes
  // gc_depth, rounds below head - gc_depth can never be scanned again.
  const Round depth = scanner_.options().gc_depth;
  const Round head = scanner_.next_pending_slot().round;
  if (depth > 0 && head > depth) {
    const Round horizon = head - depth;
    if (horizon > replica_.pruned_below()) {
      replica_.prune_below(horizon);
      scanner_.prune_below(horizon);
    }
  }
  return decisions;
}

}  // namespace mahimahi
