#include "core/vote_index.h"

#include <unordered_set>

namespace mahimahi {

std::optional<Digest> VoteIndex::resolve(const Block& from, ValidatorId author,
                                         Round round) {
  // Algorithm 3, VotedBlock: the target round must be strictly below the
  // traversal root; otherwise nothing can be found.
  if (round >= from.round()) return std::nullopt;

  if (const auto it = memo_.find(Key{from.digest(), round, author});
      it != memo_.end()) {
    return it->second;
  }

  // Iterative ordered depth-first traversal with an explicit frame stack.
  // In parallel-commit mode this runs inside worker-pool tasks, where an
  // unmemoized ancestor chain as deep as the unpruned DAG must not overflow
  // a thread stack the way head recursion could. Raw Block pointers are safe
  // while the owning DAG is not mutated, which the single-threaded-use
  // contract of the committer guarantees.
  struct Frame {
    const Block* block;
    std::size_t next_parent = 0;
    std::optional<Digest> result;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{.block = &from});
  std::optional<Digest> propagated;
  bool child_returned = false;

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (child_returned) {
      child_returned = false;
      if (propagated.has_value()) frame.result = propagated;
    }

    bool descended = false;
    while (!frame.result.has_value() &&
           frame.next_parent < frame.block->parents().size()) {
      const BlockRef& parent = frame.block->parents()[frame.next_parent++];
      if (parent.round < round) continue;  // cannot contain the target
      if (parent.round == round && parent.author == author) {
        frame.result = parent.digest;
        break;
      }
      const BlockPtr parent_block = dag_.get(parent.digest);
      if (parent_block == nullptr) continue;  // pruned history; treated as absent
      if (const auto it = memo_.find(Key{parent.digest, round, author});
          it != memo_.end()) {
        if (it->second.has_value()) frame.result = it->second;
        continue;
      }
      stack.push_back(Frame{.block = parent_block.get()});
      descended = true;
      break;
    }
    if (descended) continue;

    // Frame exhausted (or found the target): memoize and propagate upward.
    memo_.emplace(Key{frame.block->digest(), round, author}, frame.result);
    propagated = frame.result;
    child_returned = true;
    stack.pop_back();
  }
  return propagated;
}

BlockPtr VoteIndex::voted_block(const Block& from, ValidatorId author, Round round) {
  const auto digest = resolve(from, author, round);
  return digest.has_value() ? dag_.get(*digest) : nullptr;
}

bool VoteIndex::is_cert(const Block& cert, const Block& leader, Round vote_round,
                        std::uint32_t quorum) {
  std::unordered_set<ValidatorId> voting_authors;
  for (const auto& parent : cert.parents()) {
    if (parent.round != vote_round) continue;
    if (voting_authors.contains(parent.author)) continue;
    const BlockPtr vote = dag_.get(parent.digest);
    if (vote == nullptr) continue;
    if (is_vote(*vote, leader)) voting_authors.insert(parent.author);
  }
  return voting_authors.size() >= quorum;
}

void VoteIndex::prune_below(Round round) {
  for (auto it = memo_.begin(); it != memo_.end();) {
    it = it->first.round < round ? memo_.erase(it) : std::next(it);
  }
}

}  // namespace mahimahi
