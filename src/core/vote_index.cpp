#include "core/vote_index.h"

#include <unordered_set>

namespace mahimahi {

std::optional<Digest> VoteIndex::resolve(const Block& from, ValidatorId author,
                                         Round round) {
  // Algorithm 3, VotedBlock: the target round must be strictly below the
  // traversal root; otherwise nothing can be found.
  if (round >= from.round()) return std::nullopt;

  const Key key{from.digest(), round, author};
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

  std::optional<Digest> result;
  for (const auto& parent : from.parents()) {
    if (parent.round < round) continue;  // cannot contain the target
    if (parent.round == round && parent.author == author) {
      result = parent.digest;
      break;
    }
    const BlockPtr parent_block = dag_.get(parent.digest);
    if (parent_block == nullptr) continue;  // pruned history; treated as absent
    const auto sub = resolve(*parent_block, author, round);
    if (sub.has_value()) {
      result = sub;
      break;
    }
  }

  memo_.emplace(key, result);
  return result;
}

BlockPtr VoteIndex::voted_block(const Block& from, ValidatorId author, Round round) {
  const auto digest = resolve(from, author, round);
  return digest.has_value() ? dag_.get(*digest) : nullptr;
}

bool VoteIndex::is_cert(const Block& cert, const Block& leader, Round vote_round,
                        std::uint32_t quorum) {
  std::unordered_set<ValidatorId> voting_authors;
  for (const auto& parent : cert.parents()) {
    if (parent.round != vote_round) continue;
    if (voting_authors.contains(parent.author)) continue;
    const BlockPtr vote = dag_.get(parent.digest);
    if (vote == nullptr) continue;
    if (is_vote(*vote, leader)) voting_authors.insert(parent.author);
  }
  return voting_authors.size() >= quorum;
}

void VoteIndex::prune_below(Round round) {
  for (auto it = memo_.begin(); it != memo_.end();) {
    it = it->first.round < round ? memo_.erase(it) : std::next(it);
  }
}

}  // namespace mahimahi
