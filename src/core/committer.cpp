#include "core/committer.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/linearize.h"

namespace mahimahi {

std::string SlotDecision::to_string() const {
  std::string out = slot.to_string() + "=";
  switch (kind) {
    case Kind::kUndecided: out += "undecided"; break;
    case Kind::kCommit: out += "commit(" + ref.to_string() + ")"; break;
    case Kind::kSkip: out += "skip"; break;
  }
  if (via == Via::kDirect) out += "/direct";
  if (via == Via::kIndirect) out += "/indirect";
  return out;
}

Committer::Committer(const Dag& dag, const Committee& committee,
                     CommitterOptions options)
    : dag_(dag), committee_(committee), options_(options), votes_(dag) {
  if (!options_.valid()) throw std::invalid_argument("invalid CommitterOptions");
  if (options_.leaders_per_round > committee_.size()) {
    // A validator may lead at most one slot per round; otherwise one block
    // could occupy two slots and be delivered twice.
    throw std::invalid_argument("leaders_per_round exceeds committee size");
  }
  next_pending_ = SlotId{options_.first_slot_round, 0};
}

SlotId Committer::successor(SlotId slot) const {
  if (slot.leader_offset + 1 < options_.leaders_per_round) {
    return SlotId{slot.round, slot.leader_offset + 1};
  }
  return SlotId{slot.round + options_.wave_stride, 0};
}

Round Committer::highest_propose_round() const {
  const Round highest = dag_.highest_round();
  if (highest < options_.first_slot_round) return 0;  // no slots exist yet
  const Round offset = (highest - options_.first_slot_round) % options_.wave_stride;
  return highest - offset;
}

std::optional<ValidatorId> Committer::slot_leader(SlotId slot) const {
  const Round certify = options_.certify_round(slot.round);
  // The coin for a wave opens once 2f+1 distinct authors contributed their
  // certify-round shares (§3.2 step 1); shares travel inside blocks, so this
  // is a condition on the DAG.
  if (dag_.distinct_authors_at(certify) < committee_.quorum_threshold()) {
    return std::nullopt;
  }
  const std::uint64_t coin = committee_.coin().value(certify);
  return static_cast<ValidatorId>((coin + slot.leader_offset) % committee_.size());
}

bool Committer::supported(const Block& candidate, Round vote_round,
                          Round certify_round) {
  // Direct commit evidence: 2f+1 distinct certify-round authors each holding
  // a certificate block over `candidate` (§3.2 step 2).
  const std::uint32_t quorum = committee_.quorum_threshold();
  std::uint32_t certifying_authors = 0;
  for (ValidatorId a = 0; a < committee_.size(); ++a) {
    for (const BlockPtr& cert : dag_.slot(certify_round, a)) {
      if (votes_.is_cert(*cert, candidate, vote_round, quorum)) {
        ++certifying_authors;
        break;  // one certificate per author suffices
      }
    }
    if (certifying_authors >= quorum) return true;
  }
  return false;
}

bool Committer::skipped(const Block& candidate, ValidatorId leader,
                        Round propose_round, Round vote_round) {
  // Direct skip evidence for one candidate: 2f+1 distinct vote-round authors
  // with a block that does not vote for it. Such a candidate can never
  // gather a certificate (Lemma 3's quorum intersection).
  const std::uint32_t quorum = committee_.quorum_threshold();
  std::uint32_t non_voting_authors = 0;
  for (ValidatorId a = 0; a < committee_.size(); ++a) {
    for (const BlockPtr& vote : dag_.slot(vote_round, a)) {
      const BlockPtr target = votes_.voted_block(*vote, leader, propose_round);
      if (target == nullptr || target->digest() != candidate.digest()) {
        ++non_voting_authors;
        break;
      }
    }
    if (non_voting_authors >= quorum) return true;
  }
  return false;
}

SlotDecision Committer::evaluate(SlotId slot,
                                 const std::map<SlotId, SlotDecision>& later) {
  SlotDecision decision = SlotDecision::undecided(slot);

  const auto leader = slot_leader(slot);
  if (!leader.has_value()) return decision;  // coin not yet reconstructible
  decision.leader = *leader;

  const Round vote_round = options_.vote_round(slot.round);
  const Round certify_round = options_.certify_round(slot.round);
  const auto& candidates = dag_.slot(slot.round, *leader);

  // --- Direct decision rule (§3.2 step 2). ---
  for (const BlockPtr& candidate : candidates) {
    if (supported(*candidate, vote_round, certify_round)) {
      decision.kind = SlotDecision::Kind::kCommit;
      decision.via = SlotDecision::Via::kDirect;
      decision.block = candidate;
      decision.ref = candidate->ref();
      decision.final_decision = true;
      return decision;
    }
  }
  if (options_.direct_skip &&
      dag_.distinct_authors_at(vote_round) >= committee_.quorum_threshold()) {
    bool all_candidates_dead = true;
    for (const BlockPtr& candidate : candidates) {
      if (!skipped(*candidate, *leader, slot.round, vote_round)) {
        all_candidates_dead = false;
        break;
      }
    }
    if (all_candidates_dead) {
      decision.kind = SlotDecision::Kind::kSkip;
      decision.via = SlotDecision::Via::kDirect;
      decision.final_decision = true;
      return decision;
    }
  }

  // --- Indirect decision rule (§3.2 step 3). ---
  // Anchor: the earliest slot of a later wave (round > certify round, i.e.
  // round >= propose + wave_length) that is not skipped.
  const SlotDecision* anchor = nullptr;
  for (auto it = later.lower_bound(SlotId{slot.round + options_.wave_length, 0});
       it != later.end(); ++it) {
    if (it->second.kind != SlotDecision::Kind::kSkip) {
      anchor = &it->second;
      break;
    }
  }
  if (anchor == nullptr || anchor->kind == SlotDecision::Kind::kUndecided) {
    return decision;  // undecided, for now
  }

  assert(anchor->kind == SlotDecision::Kind::kCommit);
  // Commit iff the anchor's causal history contains a certificate over a
  // candidate (at most one candidate can be certified, Lemma 2).
  for (const BlockPtr& candidate : candidates) {
    bool linked_certificate = false;
    dag_.for_each_at(certify_round, [&](const BlockPtr& cert) {
      if (votes_.is_cert(*cert, *candidate, vote_round, committee_.quorum_threshold()) &&
          dag_.is_link(cert->ref(), *anchor->block)) {
        linked_certificate = true;
        return false;
      }
      return true;
    });
    if (linked_certificate) {
      decision.kind = SlotDecision::Kind::kCommit;
      decision.via = SlotDecision::Via::kIndirect;
      decision.block = candidate;
      decision.ref = candidate->ref();
      decision.final_decision = true;
      return decision;
    }
  }
  decision.kind = SlotDecision::Kind::kSkip;
  decision.via = SlotDecision::Via::kIndirect;
  decision.final_decision = true;
  return decision;
}

std::map<SlotId, SlotDecision> Committer::evaluate_all() {
  std::map<SlotId, SlotDecision> pass;
  const Round highest = highest_propose_round();
  if (highest == 0) return pass;

  // Descending over pending propose rounds; within a round, descending over
  // leader offsets (Algorithm 1, TryDecide). Later slots are evaluated first
  // so the indirect rule can consult them.
  for (Round r = highest;; r -= options_.wave_stride) {
    for (std::uint32_t offset = options_.leaders_per_round; offset-- > 0;) {
      const SlotId slot{r, offset};
      if (slot < next_pending_) continue;
      if (const auto it = final_.find(slot); it != final_.end()) {
        pass.emplace(slot, it->second);
        continue;
      }
      SlotDecision decision = evaluate(slot, pass);
      if (decision.final_decision) final_.emplace(slot, decision);
      pass.emplace(slot, std::move(decision));
    }
    if (r < next_pending_.round + options_.wave_stride) break;  // reached the head
    if (r < options_.wave_stride) break;                        // underflow guard
  }
  return pass;
}

std::vector<SlotDecision> Committer::scan() {
  std::vector<SlotDecision> out;
  const auto pass = evaluate_all();

  // The decided prefix in slot order, stopping at the first undecided slot
  // (Algorithm 1, ExtendCommitSequence). Consumption is apply()'s job.
  for (SlotId slot = next_pending_;; slot = successor(slot)) {
    const auto it = pass.find(slot);
    if (it == pass.end()) break;  // beyond the evaluated range
    if (it->second.kind == SlotDecision::Kind::kUndecided) break;
    out.push_back(it->second);
  }
  return out;
}

std::vector<CommittedSubDag> Committer::apply(
    const std::vector<SlotDecision>& decisions, bool deliver) {
  std::vector<CommittedSubDag> out;
  for (const SlotDecision& decision : decisions) {
    if (decision.slot < next_pending_) continue;  // consumed by an earlier apply
    if (decision.slot != next_pending_) break;    // gap: scanned ahead of our head
    assert(decision.final_decision);

    decided_log_.push_back(decision);
    if (decision.kind == SlotDecision::Kind::kCommit) {
      decision.via == SlotDecision::Via::kDirect ? ++stats_.direct_commits
                                                 : ++stats_.indirect_commits;
      if (deliver) {
        const Round leader_round = decision.block->round();
        const Round min_round =
            options_.gc_depth > 0 && leader_round > options_.gc_depth
                ? leader_round - options_.gc_depth
                : 0;
        out.push_back(linearize_sub_dag(dag_, decision.slot, decision.block,
                                        delivered_, stats_, min_round));
      }
    } else {
      decision.via == SlotDecision::Via::kDirect ? ++stats_.direct_skips
                                                 : ++stats_.indirect_skips;
    }
    final_.erase(decision.slot);
    next_pending_ = successor(decision.slot);
  }
  return out;
}

void Committer::fast_forward(SlotId head) {
  if (head <= next_pending_) return;
  next_pending_ = head;
  // Memoized final decisions below the head can never be consumed now.
  std::erase_if(final_, [head](const auto& entry) { return entry.first < head; });
}

std::vector<std::pair<Digest, Round>> Committer::delivered_snapshot(
    Round min_round) const {
  std::vector<std::pair<Digest, Round>> out;
  for (const auto& [digest, round] : delivered_) {
    if (round >= min_round) out.emplace_back(digest, round);
  }
  // The map iterates in hash order; a checkpoint must encode
  // deterministically (two captures of the same cut are byte-identical).
  std::sort(out.begin(), out.end());
  return out;
}

void Committer::restore(std::vector<SlotDecision> decided, SlotId head,
                        const std::vector<std::pair<Digest, Round>>& delivered) {
  decided_log_ = std::move(decided);
  next_pending_ = head;
  // Memoized evaluations predate the installed DAG; drop them rather than
  // reason about which survive (they are a cache, re-deriving is cheap).
  final_.clear();
  delivered_.clear();
  for (const auto& [digest, round] : delivered) delivered_.emplace(digest, round);
  delivered_pruned_below_ = 0;
  stats_ = {};
  for (const SlotDecision& decision : decided_log_) {
    if (decision.kind == SlotDecision::Kind::kCommit) {
      decision.via == SlotDecision::Via::kDirect ? ++stats_.direct_commits
                                                 : ++stats_.indirect_commits;
    } else if (decision.kind == SlotDecision::Kind::kSkip) {
      decision.via == SlotDecision::Via::kDirect ? ++stats_.direct_skips
                                                 : ++stats_.indirect_skips;
    }
  }
}

std::vector<CommittedSubDag> Committer::try_commit() { return apply(scan()); }

void Committer::prune_below(Round round) {
  votes_.prune_below(round);
  // Delivered entries below the GC cut are never consulted again (linearize
  // skips sub-cut parents before the delivered check). Rescan the map only
  // every 16 rounds of horizon progress to amortize the O(map) sweep.
  if (round >= delivered_pruned_below_ + 16) {
    delivered_pruned_below_ = round;
    std::erase_if(delivered_,
                  [round](const auto& entry) { return entry.second < round; });
  }
}

}  // namespace mahimahi
