#include "core/commit_trace.h"

#include <algorithm>
#include <cstdio>

namespace mahimahi {

namespace {

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

std::string commit_traces_json(const std::deque<CommitTrace>& traces) {
  std::string out = "{\"traces\":[";
  bool first_trace = true;
  for (const CommitTrace& trace : traces) {
    if (!first_trace) out.push_back(',');
    first_trace = false;
    out += "{\"slot\":{\"round\":";
    append_u64(out, trace.slot.round);
    out += ",\"leader_offset\":";
    append_u64(out, trace.slot.leader_offset);
    out += "},\"leader\":";
    append_u64(out, trace.leader_author);
    out += ",\"committed_at\":";
    append_i64(out, trace.committed_at);
    out += ",\"blocks\":";
    append_u64(out, trace.blocks);
    out += ",\"transactions\":";
    append_u64(out, trace.transactions);
    out += ",\"first_arrival\":";
    append_i64(out, trace.first_arrival);
    out += ",\"closing\":{\"author\":";
    append_u64(out, trace.closing_author);
    out += ",\"round\":";
    append_u64(out, trace.closing_round);
    out += ",\"offset_micros\":";
    append_i64(out, trace.closing_offset_micros);
    out += "},\"scan_micros\":";
    append_i64(out, trace.scan_micros);
    out += ",\"apply_micros\":";
    append_i64(out, trace.apply_micros);
    out += ",\"durable_micros\":";
    append_i64(out, trace.durable_micros);
    out += ",\"execute_micros\":";
    append_i64(out, trace.execute_micros);
    out += ",\"arrivals\":[";
    bool first_arrival = true;
    for (const CommitTrace::Arrival& arrival : trace.arrivals) {
      if (!first_arrival) out.push_back(',');
      first_arrival = false;
      out += "{\"author\":";
      append_u64(out, arrival.author);
      out += ",\"round\":";
      append_u64(out, arrival.round);
      out += ",\"offset_micros\":";
      append_i64(out, arrival.offset_micros);
      out += ",\"stamped\":";
      out += arrival.stamped ? "true" : "false";
      out += ",\"closed_wave\":";
      out += arrival.closed_wave ? "true" : "false";
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

CommitForensics::CommitForensics(Options options) : options_(options) {}

void CommitForensics::block_arrived(const Digest& digest, TimeMicros at) {
  auto [it, inserted] = arrivals_.try_emplace(digest, at);
  if (!inserted) return;  // re-delivery: the first arrival is the one that counts
  arrival_fifo_.push_back(digest);
  if (arrival_fifo_.size() > options_.arrival_capacity) {
    arrivals_.erase(arrival_fifo_.front());
    arrival_fifo_.pop_front();
  }
}

CommitTrace& CommitForensics::on_committed(const CommittedSubDag& sub_dag,
                                           TimeMicros committed_at) {
  CommitTrace trace;
  trace.slot = sub_dag.slot;
  trace.leader_author = sub_dag.leader != nullptr ? sub_dag.leader->author() : 0;
  trace.committed_at = committed_at;
  trace.blocks = sub_dag.blocks.size();
  trace.transactions = sub_dag.transaction_count();

  // First pass: earliest stamped arrival anchors the offsets.
  TimeMicros first = 0;
  bool any_stamped = false;
  for (const BlockPtr& block : sub_dag.blocks) {
    const auto it = arrivals_.find(block->digest());
    if (it == arrivals_.end()) continue;
    if (!any_stamped || it->second < first) first = it->second;
    any_stamped = true;
  }
  trace.first_arrival = any_stamped ? first : 0;

  // Second pass: offsets, plus the closing (latest stamped) arrival — the
  // block the wave was actually waiting for.
  std::size_t closing_index = sub_dag.blocks.size();
  TimeMicros closing_at = 0;
  trace.arrivals.reserve(sub_dag.blocks.size());
  for (std::size_t i = 0; i < sub_dag.blocks.size(); ++i) {
    const BlockPtr& block = sub_dag.blocks[i];
    CommitTrace::Arrival arrival;
    arrival.author = block->author();
    arrival.round = block->round();
    const auto it = arrivals_.find(block->digest());
    if (it != arrivals_.end()) {
      arrival.stamped = true;
      arrival.offset_micros = it->second - first;
      // >= so ties resolve to the causally-latest block (leader last).
      if (closing_index == sub_dag.blocks.size() || it->second >= closing_at) {
        closing_index = i;
        closing_at = it->second;
      }
    }
    trace.arrivals.push_back(arrival);
  }
  if (closing_index < trace.arrivals.size()) {
    CommitTrace::Arrival& closing = trace.arrivals[closing_index];
    closing.closed_wave = true;
    trace.closing_author = closing.author;
    trace.closing_round = closing.round;
    trace.closing_offset_micros = closing.offset_micros;
  }

  traces_.push_back(std::move(trace));
  if (traces_.size() > options_.trace_capacity) traces_.pop_front();
  return traces_.back();
}

void CommitForensics::durable_ack(TimeMicros now) {
  for (CommitTrace& trace : traces_) {
    if (!trace.durable_pending) continue;
    trace.durable_pending = false;
    trace.durable_micros = std::max<TimeMicros>(0, now - trace.committed_at);
  }
}

void CommitForensics::execute_done(SlotId slot, TimeMicros now) {
  for (CommitTrace& trace : traces_) {
    if (!trace.execute_pending || !(trace.slot == slot)) continue;
    trace.execute_pending = false;
    trace.execute_micros = std::max<TimeMicros>(0, now - trace.committed_at);
    return;
  }
}

}  // namespace mahimahi
