// Off-loop commit-rule evaluation (the parallel committer).
//
// Once verification and mempool admission run on the worker pool, the
// commit-rule scan — Committer::scan(), a full candidate-wave/leader-slot
// pass after every ingested batch — is the largest remaining non-I/O consumer
// of event-loop time. CommitScanner moves that scan off the loop thread
// without ever sharing the live DAG across threads: it owns a private replica
// of the owner's DAG, incrementally maintained from the owner's insertion
// stream (Actions::inserted, which is causal by construction), plus a
// scanning Committer bound to that replica. A drive context — a worker-pool
// task in the TCP runtime, a deferred event in the simulator — calls
// ingest() + scan(); the returned decisions are handed back to the owning
// thread, which applies them to the live committer with Committer::apply
// (cheap: linearization and bookkeeping only, no wave scans).
//
// Determinism: every decision scan() returns is final
// (SlotDecision::final_decision) — once a slot classifies commit/skip it
// never changes as the DAG grows — so a decision stream computed against a
// lagging replica applies bit-identically to the equal-or-larger live DAG.
// The scanner consumes its own decided prefix (without delivering) after
// each scan, so successive scans resume exactly where the previous one
// stopped, in lockstep with the owner's apply step; it also prunes the
// replica at the same deterministic GC horizons the owner does.
//
// Threading: not internally synchronized. The owner must serialize ingest()
// and scan() calls — NodeRuntime uses the same single-drain discipline as
// its verify stage — and order construction before the first drive (a
// worker-pool submission provides the necessary happens-before edge).
#pragma once

#include <cstdint>
#include <vector>

#include "core/committer.h"
#include "dag/dag.h"
#include "types/committee.h"

namespace mahimahi {

class CommitScanner {
 public:
  // `seed` is a snapshot of the owner's DAG (copied; blocks are shared).
  // `head` is the owner committer's next_pending_slot() at snapshot time:
  // slots below it were consumed before the snapshot — possibly against
  // history the snapshot no longer holds (WAL recovery + GC) — and are never
  // re-scanned.
  CommitScanner(const Dag& seed, SlotId head, const Committee& committee,
                CommitterOptions options);

  // Inserts newly admitted blocks, in the owner's insertion (= causal)
  // order. Duplicates and blocks below the replica's GC horizon are skipped.
  void ingest(const std::vector<BlockPtr>& blocks);

  // Runs the commit-rule scan against the replica, consumes the newly
  // decided prefix (no delivery) and returns it in slot order for the owner
  // to apply. Prunes the replica by gc_depth as the head advances, mirroring
  // the owner's ValidatorCore::maybe_gc.
  std::vector<SlotDecision> scan();

  SlotId next_pending_slot() const { return scanner_.next_pending_slot(); }
  const Dag& replica() const { return replica_; }
  std::uint64_t blocks_ingested() const { return blocks_ingested_; }
  std::uint64_t scans_run() const { return scans_run_; }

 private:
  Dag replica_;
  Committer scanner_;
  std::uint64_t blocks_ingested_ = 0;
  std::uint64_t scans_run_ = 0;
};

}  // namespace mahimahi
