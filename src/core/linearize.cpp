#include "core/linearize.h"

#include <algorithm>
#include <unordered_set>

namespace mahimahi {

CommittedSubDag linearize_sub_dag(const Dag& dag, SlotId slot, BlockPtr leader,
                                  DeliveredMap& delivered, CommitStats& stats,
                                  Round min_round) {
  CommittedSubDag sub_dag;
  sub_dag.slot = slot;
  sub_dag.leader = leader;

  std::vector<BlockPtr> frontier{leader};
  std::unordered_set<Digest, DigestHasher> seen{leader->digest()};
  while (!frontier.empty()) {
    const BlockPtr current = frontier.back();
    frontier.pop_back();
    sub_dag.blocks.push_back(current);
    for (const auto& parent : current->parents()) {
      // The GC cut: references below min_round are deterministically
      // excluded, whether or not the local DAG still holds them.
      if (parent.round < min_round) continue;
      if (seen.contains(parent.digest) || delivered.contains(parent.digest)) continue;
      seen.insert(parent.digest);
      if (const BlockPtr block = dag.get(parent.digest)) frontier.push_back(block);
    }
  }

  std::sort(sub_dag.blocks.begin(), sub_dag.blocks.end(),
            [](const BlockPtr& a, const BlockPtr& b) {
              if (a->round() != b->round()) return a->round() < b->round();
              if (a->author() != b->author()) return a->author() < b->author();
              return a->digest() < b->digest();
            });

  for (const BlockPtr& block : sub_dag.blocks) {
    delivered.emplace(block->digest(), block->round());
    ++stats.delivered_blocks;
    stats.delivered_transactions += block->transaction_count();
  }
  return sub_dag;
}

}  // namespace mahimahi
