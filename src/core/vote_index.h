// Vote interpretation over the uncertified DAG (Algorithm 3).
//
// A block `v` votes for leader block `b` at (author, round) if `b` is the
// FIRST block authored by (author, round) encountered in the ordered
// depth-first traversal of v's causal references (Observation 1: this makes
// "vote" single-valued per voter even under equivocation). The traversal is
// a pure function of block content, so results are memoized per
// (block, author, round); it is implemented iteratively (explicit frame
// stack) because in parallel-commit mode it runs on worker-pool threads,
// whose stacks must survive arbitrarily deep unmemoized ancestor chains.
#pragma once

#include <optional>
#include <unordered_map>

#include "dag/dag.h"

namespace mahimahi {

class VoteIndex {
 public:
  explicit VoteIndex(const Dag& dag) : dag_(dag) {}

  // The first (author, round) block encountered in the ordered DFS from
  // `from` (exclusive of `from` itself). nullptr if none is reachable.
  // Precondition: round < from.round() for a meaningful result.
  BlockPtr voted_block(const Block& from, ValidatorId author, Round round);

  // Algorithm 3 IsVote: does `vote` vote for `leader`?
  bool is_vote(const Block& vote, const Block& leader) {
    const BlockPtr target = voted_block(vote, leader.author(), leader.round());
    return target != nullptr && target->digest() == leader.digest();
  }

  // Algorithm 3 IsCert: `cert` carries >= 2f+1 distinct-author vote-round
  // parents that vote for `leader`. Quorums count distinct authors (not raw
  // blocks), which is what the Appendix C quorum-intersection arguments rely
  // on under equivocation.
  bool is_cert(const Block& cert, const Block& leader, Round vote_round,
               std::uint32_t quorum);

  // Drops memoized entries for traversal roots below `round` (DAG pruning).
  void prune_below(Round round);

 private:
  struct Key {
    Digest from;
    Round round;
    ValidatorId author;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      std::size_t h = DigestHasher{}(k.from);
      h ^= (k.round * 0x9e3779b97f4a7c15ULL) + (h << 6) + (h >> 2);
      h ^= (static_cast<std::size_t>(k.author) * 0xc2b2ae3d27d4eb4fULL) + (h << 6);
      return h;
    }
  };

  std::optional<Digest> resolve(const Block& from, ValidatorId author, Round round);

  const Dag& dag_;
  std::unordered_map<Key, std::optional<Digest>, KeyHasher> memo_;
};

}  // namespace mahimahi
