// Cross-validator commit forensics: one structured trace per committed wave.
//
// Aggregate histograms say commits are slow; a commit trace says *why this
// one* was — which author's block arrived last and closed the wave, how the
// arrival offsets spread across the committee, and how the local pipeline
// (scan → apply → durable → execute) broke down after the decision. The
// runtime keeps a bounded buffer of recent traces and serves them as JSON on
// /trace/commits; the sim records the same traces in virtual time, so
// straggler attribution is deterministic and property-testable.
//
// CommitForensics is single-threaded by design: the runtime drives it only
// from the loop thread (commit application, WAL acks, the admin renderer all
// run there), the sim from its single driver thread.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "core/decision.h"

namespace mahimahi {

// One committed wave, as seen by this validator.
struct CommitTrace {
  SlotId slot;                       // committed leader slot
  ValidatorId leader_author = 0;
  TimeMicros committed_at = 0;       // driver clock (steady live, virtual sim)
  std::uint64_t blocks = 0;          // newly delivered blocks in the sub-DAG
  std::uint64_t transactions = 0;

  // Per-block arrivals in causal order (leader last), offsets relative to
  // the earliest stamped arrival in the sub-DAG. `stamped` is false when the
  // arrival predates the forensics window (recovered or aged-out blocks).
  struct Arrival {
    ValidatorId author = 0;
    Round round = 0;
    TimeMicros offset_micros = 0;
    bool stamped = false;
    bool closed_wave = false;  // the last stamped arrival: what the commit waited for
  };
  std::vector<Arrival> arrivals;
  TimeMicros first_arrival = 0;      // absolute stamp the offsets are relative to

  // The straggler attribution: author/round of the block whose arrival
  // closed the wave, and how long after first_arrival it landed.
  ValidatorId closing_author = 0;
  Round closing_round = 0;
  TimeMicros closing_offset_micros = 0;

  // Post-decision breakdown, durations in micros. 0 = not applicable (or
  // instantaneous); durable/execute fill in asynchronously when the WAL ack
  // or execution handoff lands.
  TimeMicros scan_micros = 0;
  TimeMicros apply_micros = 0;
  TimeMicros durable_micros = 0;
  TimeMicros execute_micros = 0;

  // Internal bookkeeping for the asynchronous fields; not rendered.
  bool durable_pending = false;
  bool execute_pending = false;
};

// Deterministic JSON rendering: {"traces":[...]} with a fixed field order
// and integer-only values (the sim forensics test compares these strings
// byte for byte across seeded runs).
std::string commit_traces_json(const std::deque<CommitTrace>& traces);

class CommitForensics {
 public:
  struct Options {
    // Recent commits kept for /trace/commits; older traces age out.
    std::size_t trace_capacity = 64;
    // FIFO bound on the digest -> arrival stamp table (same idiom as the
    // tracer's insert table): blocks that never commit age out, not leak.
    std::size_t arrival_capacity = 1 << 16;
  };

  // (Separate default constructor: GCC rejects `Options = {}` default
  // arguments for nested aggregates with deferred member initializers.)
  CommitForensics() : CommitForensics(Options{}) {}
  explicit CommitForensics(Options options);

  // Stamps a block's arrival (DAG insert time on the recording validator).
  void block_arrived(const Digest& digest, TimeMicros at);

  // Builds and stores the trace for a committed sub-DAG. The returned
  // reference is valid until the next call (fill scan/apply/pending flags
  // on it immediately).
  CommitTrace& on_committed(const CommittedSubDag& sub_dag, TimeMicros committed_at);

  // Resolves durable_micros (= now - committed_at) for every trace still
  // marked durable_pending — the group-commit WAL ack covers all commits
  // that happened since the previous flush.
  void durable_ack(TimeMicros now);

  // Resolves execute_micros for the oldest pending trace of `slot`.
  void execute_done(SlotId slot, TimeMicros now);

  const std::deque<CommitTrace>& traces() const { return traces_; }
  std::string to_json() const { return commit_traces_json(traces_); }

 private:
  Options options_;
  std::deque<CommitTrace> traces_;
  std::unordered_map<Digest, TimeMicros, DigestHasher> arrivals_;
  std::deque<Digest> arrival_fifo_;
};

}  // namespace mahimahi
