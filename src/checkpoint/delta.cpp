#include "checkpoint/delta.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "app/kv_store.h"
#include "common/crc32.h"
#include "serde/serde.h"
#include "wal/wal.h"

namespace mahimahi {

namespace {

constexpr std::uint32_t kDeltaMagic = 0x4d4d4344;  // "MMCD"
constexpr std::uint8_t kDeltaVersion = 1;

void write_slot(serde::Writer& w, SlotId slot) {
  w.varint(slot.round);
  w.u32(slot.leader_offset);
}

SlotId read_slot(serde::Reader& r) {
  SlotId slot;
  slot.round = r.varint();
  slot.leader_offset = r.u32();
  return slot;
}

void write_decided(serde::Writer& w,
                   std::span<const CheckpointData::DecidedSlot> decided) {
  w.varint(decided.size());
  for (const auto& d : decided) {
    write_slot(w, d.slot);
    w.u32(d.leader);
    w.u8(static_cast<std::uint8_t>(d.kind));
    w.u8(static_cast<std::uint8_t>(d.via));
    if (d.kind == SlotDecision::Kind::kCommit) {
      w.varint(d.block.round);
      w.u32(d.block.author);
      w.digest(d.block.digest);
    }
  }
}

std::vector<CheckpointData::DecidedSlot> read_decided(serde::Reader& r) {
  const std::uint64_t count = r.varint();
  constexpr std::size_t kMinDecidedBytes = 11;  // slot(1+4) + leader(4) + kind + via
  if (count > r.remaining() / kMinDecidedBytes) {
    throw serde::SerdeError("delta: decided count exceeds payload");
  }
  std::vector<CheckpointData::DecidedSlot> decided;
  decided.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointData::DecidedSlot d;
    d.slot = read_slot(r);
    d.leader = r.u32();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(SlotDecision::Kind::kSkip)) {
      throw serde::SerdeError("delta: bad decision kind");
    }
    d.kind = static_cast<SlotDecision::Kind>(kind);
    const std::uint8_t via = r.u8();
    if (via > static_cast<std::uint8_t>(SlotDecision::Via::kIndirect)) {
      throw serde::SerdeError("delta: bad decision via");
    }
    d.via = static_cast<SlotDecision::Via>(via);
    if (d.kind == SlotDecision::Kind::kCommit) {
      d.block.round = r.varint();
      d.block.author = r.u32();
      d.block.digest = r.digest();
    }
    decided.push_back(d);
  }
  return decided;
}

}  // namespace

Bytes encode_checkpoint_delta(const CheckpointDelta& delta) {
  serde::Writer w;
  w.u32(kDeltaMagic);
  w.u8(kDeltaVersion);
  w.u64(delta.sequence);
  w.u64(delta.prev_sequence);
  w.u64(delta.base_sequence);
  w.u32(delta.author);
  w.varint(delta.horizon);
  write_slot(w, delta.prev_head);
  write_slot(w, delta.head);
  w.varint(delta.last_proposed_round);

  write_decided(w, delta.decided_suffix);

  w.varint(delta.delivered.size());
  for (const auto& [digest, round] : delta.delivered) {
    w.digest(digest);
    w.varint(round);
  }

  w.varint(delta.blocks_added.size());
  for (const BlockPtr& block : delta.blocks_added) {
    const Bytes encoded = block->serialize();
    w.bytes({encoded.data(), encoded.size()});
  }

  w.bytes({delta.app_delta.data(), delta.app_delta.size()});
  w.digest(delta.app_digest);

  return wal_frame_record({w.data().data(), w.data().size()});
}

CheckpointDelta decode_checkpoint_delta(BytesView encoded) {
  serde::Reader framing(encoded);
  const std::uint32_t len = framing.u32();
  const std::uint32_t crc = framing.u32();
  if (len != framing.remaining()) {
    throw serde::SerdeError("delta: frame length mismatch");
  }
  const BytesView payload = framing.raw(len);
  if (crc32(payload) != crc) throw serde::SerdeError("delta: CRC mismatch");

  serde::Reader r(payload);
  if (r.u32() != kDeltaMagic) throw serde::SerdeError("delta: bad magic");
  if (r.u8() != kDeltaVersion) throw serde::SerdeError("delta: bad version");

  CheckpointDelta delta;
  delta.sequence = r.u64();
  delta.prev_sequence = r.u64();
  delta.base_sequence = r.u64();
  delta.author = r.u32();
  delta.horizon = r.varint();
  delta.prev_head = read_slot(r);
  delta.head = read_slot(r);
  delta.last_proposed_round = r.varint();

  delta.decided_suffix = read_decided(r);

  const std::uint64_t delivered_count = r.varint();
  constexpr std::size_t kMinDeliveredBytes = 33;  // digest(32) + round varint(1)
  if (delivered_count > r.remaining() / kMinDeliveredBytes) {
    throw serde::SerdeError("delta: delivered count exceeds payload");
  }
  delta.delivered.reserve(delivered_count);
  for (std::uint64_t i = 0; i < delivered_count; ++i) {
    const Digest digest = r.digest();
    delta.delivered.emplace_back(digest, r.varint());
  }

  const std::uint64_t block_count = r.varint();
  if (block_count > r.remaining()) {
    throw serde::SerdeError("delta: block count exceeds payload");
  }
  delta.blocks_added.reserve(block_count);
  for (std::uint64_t i = 0; i < block_count; ++i) {
    const std::uint64_t block_len = r.varint();
    if (block_len > r.remaining()) {
      throw serde::SerdeError("delta: block length exceeds payload");
    }
    delta.blocks_added.push_back(std::make_shared<const Block>(
        Block::deserialize(r.raw(static_cast<std::size_t>(block_len)))));
  }

  delta.app_delta = r.bytes();
  delta.app_digest = r.digest();
  r.expect_done();
  return delta;
}

bool is_checkpoint_delta(BytesView encoded) {
  try {
    serde::Reader framing(encoded);
    framing.u32();  // length
    framing.u32();  // crc
    serde::Reader r(framing.raw(
        std::min<std::size_t>(framing.remaining(), sizeof(std::uint32_t))));
    return r.u32() == kDeltaMagic;
  } catch (const serde::SerdeError&) {
    return false;
  }
}

CheckpointDelta make_checkpoint_delta(const CheckpointData& prev,
                                      const CheckpointData& next,
                                      std::uint64_t base_sequence,
                                      Bytes app_delta) {
  if (prev.author != next.author) {
    throw std::invalid_argument("delta: author mismatch");
  }
  if (next.head < prev.head || next.horizon < prev.horizon) {
    throw std::invalid_argument("delta: cut regressed");
  }
  if (next.decided.size() < prev.decided.size()) {
    throw std::invalid_argument("delta: decided log shrank");
  }
  for (std::size_t i = 0; i < prev.decided.size(); ++i) {
    const auto& a = prev.decided[i];
    const auto& b = next.decided[i];
    if (a.slot != b.slot || a.kind != b.kind ||
        (a.kind == SlotDecision::Kind::kCommit &&
         a.block.digest != b.block.digest)) {
      throw std::invalid_argument("delta: decided log is not an extension");
    }
  }

  CheckpointDelta delta;
  delta.sequence = next.sequence;
  delta.prev_sequence = prev.sequence;
  delta.base_sequence = base_sequence;
  delta.author = next.author;
  delta.horizon = next.horizon;
  delta.prev_head = prev.head;
  delta.head = next.head;
  delta.last_proposed_round = next.last_proposed_round;
  delta.decided_suffix.assign(next.decided.begin() + prev.decided.size(),
                              next.decided.end());
  delta.delivered = next.delivered;

  std::unordered_set<Digest, DigestHasher> prev_blocks;
  prev_blocks.reserve(prev.blocks.size());
  for (const BlockPtr& block : prev.blocks) prev_blocks.insert(block->digest());
  for (const BlockPtr& block : next.blocks) {
    if (!prev_blocks.contains(block->digest())) delta.blocks_added.push_back(block);
  }

  delta.app_delta = std::move(app_delta);
  delta.app_digest = next.app_digest;
  return delta;
}

void apply_checkpoint_delta(CheckpointData& data, const CheckpointDelta& delta) {
  if (delta.author != data.author) {
    throw std::invalid_argument("delta apply: author mismatch");
  }
  if (delta.prev_sequence != data.sequence) {
    throw std::invalid_argument("delta apply: sequence linkage mismatch");
  }
  if (delta.prev_head != data.head) {
    throw std::invalid_argument("delta apply: head linkage mismatch");
  }
  if (delta.head < delta.prev_head || delta.horizon < data.horizon) {
    throw std::invalid_argument("delta apply: link regressed");
  }

  data.sequence = delta.sequence;
  data.horizon = delta.horizon;
  data.head = delta.head;
  data.last_proposed_round = delta.last_proposed_round;
  data.decided.insert(data.decided.end(), delta.decided_suffix.begin(),
                      delta.decided_suffix.end());
  data.delivered = delta.delivered;

  // New suffix = surviving old blocks (round >= the new horizon) merged with
  // the added ones; both inputs are round-ascending, so a merge keeps the
  // order verify_checkpoint and install expect (parents before children).
  std::vector<BlockPtr> survivors;
  survivors.reserve(data.blocks.size());
  for (BlockPtr& block : data.blocks) {
    if (block->round() >= delta.horizon) survivors.push_back(std::move(block));
  }
  std::vector<BlockPtr> merged;
  merged.reserve(survivors.size() + delta.blocks_added.size());
  std::merge(survivors.begin(), survivors.end(), delta.blocks_added.begin(),
             delta.blocks_added.end(), std::back_inserter(merged),
             [](const BlockPtr& a, const BlockPtr& b) {
               return a->round() < b->round();
             });
  data.blocks = std::move(merged);

  if (delta.app_delta.empty()) {
    if (!data.app_state.empty()) {
      throw std::invalid_argument("delta apply: app delta missing");
    }
  } else {
    app::KvStore store = data.app_state.empty()
                             ? app::KvStore{}
                             : app::KvStore::restore(
                                   {data.app_state.data(), data.app_state.size()});
    store.apply_delta({delta.app_delta.data(), delta.app_delta.size()});
    data.app_state = store.snapshot_bytes();
  }
  data.app_digest = delta.app_digest;
}

void truncate_checkpoint(CheckpointData& data, SlotId boundary,
                         std::span<const Digest> delivered_after_boundary) {
  const auto cut = std::lower_bound(
      data.decided.begin(), data.decided.end(), boundary,
      [](const CheckpointData::DecidedSlot& d, SlotId b) { return d.slot < b; });
  data.decided.erase(cut, data.decided.end());
  data.head = boundary;

  if (!delivered_after_boundary.empty()) {
    std::unordered_set<Digest, DigestHasher> drop(
        delivered_after_boundary.begin(), delivered_after_boundary.end());
    std::erase_if(data.delivered,
                  [&](const auto& mark) { return drop.contains(mark.first); });
  }
}

// --- Chain wire frame --------------------------------------------------------

Bytes encode_checkpoint_chain_frame(
    const std::vector<std::pair<BytesView, BytesView>>& links) {
  serde::Writer w;
  w.varint(links.size());
  for (const auto& [record, cert] : links) {
    w.bytes(record);
    w.bytes(cert);
  }
  return std::move(w).take();
}

CheckpointChainFrame decode_checkpoint_chain_frame(BytesView payload) {
  serde::Reader r(payload);
  const std::uint64_t count = r.varint();
  // Each link costs at least its two length varints; the records themselves
  // re-validate under their own CRC framing.
  if (count > r.remaining() / 2) {
    throw serde::SerdeError("chain frame: link count exceeds payload");
  }
  CheckpointChainFrame frame;
  frame.links.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointChainFrame::Link link;
    link.record = r.bytes();
    link.cert = r.bytes();
    frame.links.push_back(std::move(link));
  }
  r.expect_done();
  return frame;
}

}  // namespace mahimahi
