// Segmented WAL layout: the same record stream as FileWal, rolled across
// bounded segment files so checkpointing can retire history.
//
// A monolithic log grows without bound — a long-running validator pays
// unbounded replay time and disk. This layout splits the identical byte
// stream (shared wal_encode_* framing, so a segmented log concatenates to
// exactly what FileWal would have written) into `seg-<index>.wal` files
// under one directory:
//
//   * appends go to the highest-index (active) segment; when the active
//     segment exceeds the byte/record budget, it is sealed (flush + optional
//     fsync) and the next index opens — a record never splits across files;
//   * a MANIFEST file names the lowest live segment. It is only rewritten
//     (crash-atomically: tmp + fsync + rename) by retire_segments_below(),
//     BEFORE the retired files are unlinked — a crash mid-retire leaves
//     stale files below the manifest base, which replay ignores and the next
//     retire removes;
//   * replay walks segments base..max in order with one shared scratch
//     buffer. A torn tail is expected only in the LAST segment (crashes tear
//     the active file) and truncates exactly like FileWal's; a corrupt
//     record in an earlier segment is disk damage — replay stops there and
//     reports it so the caller can fall back to an older checkpoint.
//
// Thread safety: unlike FileWal, all mutating members take an internal
// mutex. The checkpoint writer needs to roll/retire from the loop thread
// while the group-commit writer thread is appending groups.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "wal/wal.h"

namespace mahimahi {

struct SegmentedWalOptions {
  // Seal the active segment once it holds at least this many bytes. A single
  // oversized record (or group-commit group) still lands whole — segments
  // may exceed the budget by one append.
  std::uint64_t segment_bytes = 4 << 20;
  // Record-count budget tripping a roll before the byte budget (0 = none).
  std::uint64_t segment_records = 0;
  // Same meaning as FileWal: upgrade sync() from fflush to fflush + fsync.
  bool fsync_on_sync = false;
};

class SegmentedWal : public FramedWal {
 public:
  // Opens (creating the directory if needed) the segmented log at `dir`.
  // Appends resume on the highest existing segment. Throws on failure.
  explicit SegmentedWal(std::string dir, SegmentedWalOptions options = {});
  ~SegmentedWal() override;

  SegmentedWal(const SegmentedWal&) = delete;
  SegmentedWal& operator=(const SegmentedWal&) = delete;

  void append_block(const Block& block, bool own) override;
  void append_commit(SlotId slot) override;
  void sync() override;
  void append_framed(BytesView framed) override;

  // With an attached ring (and fsync_on_sync set), lands the group as one
  // linked write→fsync submission into the active segment — after the usual
  // roll check, so segment budgets behave exactly as on the classic path.
  void append_group_durable(BytesView group) override;
  void attach_wal_ring(WalUring* ring) override;
  bool wal_ring_active() const override;
  std::uint64_t group_flush_syscalls() const override {
    return group_flush_syscalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t groups_durable() const override {
    return groups_durable_.load(std::memory_order_relaxed);
  }

  // Seals the active segment and opens the next index (no-op on an empty
  // active segment). The checkpoint writer calls this at the cut: every
  // record of the cut is in a sealed segment, so once the checkpoint file is
  // durable the sealed prefix can retire. Returns the active index after the
  // call — replay of [returned index, ...) plus the checkpoint covers
  // everything.
  std::uint64_t roll_segment();

  // Deletes sealed segments with index < keep_from after atomically
  // rewriting the manifest base. Never touches the active segment
  // (keep_from is clamped to it).
  void retire_segments_below(std::uint64_t keep_from);

  std::uint64_t active_segment() const;
  std::uint64_t base_segment() const;
  std::uint64_t bytes_written() const;
  std::uint64_t segments_retired() const;

  struct ReplayResult {
    std::uint64_t records = 0;
    std::uint64_t segments = 0;   // files visited
    bool corrupt_tail = false;    // torn tail (last segment) or mid-log damage
  };

  // Replays segments manifest-base..max in index order. A gap in the index
  // sequence or a corrupt record in a non-final segment stops the replay
  // with corrupt_tail set (the caller falls back to an older checkpoint); a
  // torn tail of the final segment truncates like FileWal's.
  static ReplayResult replay(const std::string& dir, const FileWal::Visitor& visitor,
                             bool truncate_corrupt_tail = true);

  static std::string segment_path(const std::string& dir, std::uint64_t index);
  // Lowest live segment per the manifest; 0 when the manifest is absent or
  // unreadable (replay then starts at the lowest file present).
  static std::uint64_t read_manifest(const std::string& dir);
  // Sorted indexes of the segment files present on disk.
  static std::vector<std::uint64_t> list_segments(const std::string& dir);

 private:
  void open_active_locked(std::uint64_t index);
  void seal_active_locked();
  void roll_if_over_budget_locked(std::size_t incoming_bytes);
  void write_locked(BytesView framed);
  void write_manifest_locked(std::uint64_t base);

  const std::string dir_;
  const SegmentedWalOptions options_;

  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;           // the active segment
  std::uint64_t active_index_ = 0;
  std::uint64_t base_index_ = 0;
  std::uint64_t active_bytes_ = 0;      // size of the active segment file
  std::uint64_t active_records_ = 0;    // records appended to it this session
  std::uint64_t bytes_written_ = 0;     // this session, across segments
  std::uint64_t segments_retired_ = 0;
  WalUring* ring_ = nullptr;            // non-owning; see attach_wal_ring
  std::atomic<std::uint64_t> group_flush_syscalls_{0};
  std::atomic<std::uint64_t> groups_durable_{0};
};

}  // namespace mahimahi
