// Checkpoints: a serialized consistent cut of a validator's committed state.
//
// A checkpoint captures, at a GC horizon, everything a fresh validator needs
// to stand where the writer stood without replaying history below the
// horizon:
//
//   * the consumption head (first unconsumed leader slot) and the full
//     decided slot log — the agreed sequence itself;
//   * the live DAG suffix: every block with round >= horizon, round-
//     ascending, so re-insertion never misses a parent (sub-horizon parents
//     are exempt once the DAG's horizon is set);
//   * the delivered marks at or above the horizon, so the first commit after
//     installation does not re-deliver blocks a pre-cut commit already
//     delivered;
//   * the writer's proposer round (restart safety: never re-propose a
//     checkpointed round) and an opaque application snapshot with the digest
//     the restored app must reproduce (the cut's analogue of verifying
//     against the committed certificate chain: the digest is a deterministic
//     function of the decided log, so peers agree on it).
//
// The encoding is one CRC-framed record (shared wal_frame_record framing),
// written crash-atomically by CheckpointStore (tmp + fsync + rename):
// a checkpoint file either decodes end-to-end or is discarded, and recovery
// falls back to the previous one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/decision.h"
#include "core/options.h"
#include "types/block.h"
#include "types/committee.h"
#include "types/validation.h"
#include "validator/verifier_cache.h"

namespace mahimahi {

struct CheckpointData {
  std::uint64_t sequence = 0;      // writer-local monotonic checkpoint number
  ValidatorId author = 0;          // which validator cut this
  Round horizon = 0;               // the cut's GC horizon (DAG pruned below it)
  SlotId head;                     // first unconsumed slot at the cut
  Round last_proposed_round = 0;   // author's proposer round at the cut

  // The full decided log at the cut. `block` is resolved against the DAG at
  // install time (null for commits below the horizon); `ref` always carries
  // the identity.
  struct DecidedSlot {
    SlotId slot;
    ValidatorId leader = 0;
    SlotDecision::Kind kind = SlotDecision::Kind::kUndecided;
    SlotDecision::Via via = SlotDecision::Via::kNone;
    BlockRef block;  // meaningful for commits
  };
  std::vector<DecidedSlot> decided;

  // Delivered marks with round >= horizon (Committer::delivered_snapshot).
  std::vector<std::pair<Digest, Round>> delivered;

  // Live DAG suffix: round >= max(horizon, 1), ascending by round (genesis
  // is excluded — every validator constructs it locally).
  std::vector<BlockPtr> blocks;

  // Opaque application snapshot (driver-owned; e.g. app/kv_store.h contents)
  // plus the state digest the restored application must reproduce.
  Bytes app_state;
  Digest app_digest;
};

// One CRC-framed record; decode throws serde::SerdeError on any mismatch
// (torn file, CRC failure, malformed payload).
Bytes encode_checkpoint(const CheckpointData& data);
CheckpointData decode_checkpoint(BytesView encoded);

// Semantic checks beyond the CRC, run before installing a checkpoint that
// came off the wire: block shape + (per `validation`) batched coin/signature
// verification, round-ascending suffix at or above the horizon, a decided
// log that is EXACTLY the slot-successor chain from `options.first_slot_round`
// to `head` (a fabricated head with a thin or empty log is rejected), and
// every committed slot at or above the horizon backed by a block in the
// suffix. Returns an empty string when acceptable, else a reason.
// Thread-safe (workers verify off-loop).
//
// Known trust gap: decisions BELOW the horizon are unverifiable without the
// pruned history — the receiver trusts the serving committee member for
// them (mitigated by only requesting when provably stuck, and only from
// committee peers). Certified checkpoints (threshold-signed cuts) are the
// ROADMAP follow-up that closes it.
std::string verify_checkpoint(const CheckpointData& data, const Committee& committee,
                              const CommitterOptions& options,
                              const ValidationOptions& validation,
                              VerifierCache* cache = nullptr);

// Directory of `ckpt-<sequence>.ckpt` files with crash-atomic writes and
// corruption fallback on load. One store typically shares the segmented
// WAL's directory.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir);

  // Writes `encoded` (an encode_checkpoint result) as checkpoint `sequence`:
  // tmp file, fsync, rename. Throws on I/O failure.
  void write(std::uint64_t sequence, BytesView encoded);

  // Newest checkpoint that decodes cleanly; corrupt newer files are skipped
  // (recovery falls back a checkpoint on corruption). nullopt when none.
  std::optional<CheckpointData> load_newest_valid() const;

  // Raw encoded bytes of the newest valid checkpoint, for serving snapshot
  // catch-up without a re-encode.
  std::optional<std::pair<std::uint64_t, Bytes>> newest_valid_bytes() const;

  // Keeps the newest `keep` checkpoint files, deletes older ones (at least
  // one fallback survives with keep >= 2).
  void retire(std::size_t keep = 2);

  static std::vector<std::uint64_t> list(const std::string& dir);
  static std::string checkpoint_path(const std::string& dir, std::uint64_t sequence);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace mahimahi
