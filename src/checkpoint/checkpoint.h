// Checkpoints: a serialized consistent cut of a validator's committed state.
//
// A checkpoint captures, at a GC horizon, everything a fresh validator needs
// to stand where the writer stood without replaying history below the
// horizon:
//
//   * the consumption head (first unconsumed leader slot) and the full
//     decided slot log — the agreed sequence itself;
//   * the live DAG suffix: every block with round >= horizon, round-
//     ascending, so re-insertion never misses a parent (sub-horizon parents
//     are exempt once the DAG's horizon is set);
//   * the delivered marks at or above the horizon, so the first commit after
//     installation does not re-deliver blocks a pre-cut commit already
//     delivered;
//   * the writer's proposer round (restart safety: never re-propose a
//     checkpointed round) and an opaque application snapshot with the digest
//     the restored app must reproduce (the cut's analogue of verifying
//     against the committed certificate chain: the digest is a deterministic
//     function of the decided log, so peers agree on it).
//
// The encoding is one CRC-framed record (shared wal_frame_record framing),
// written crash-atomically by CheckpointStore (tmp + fsync + rename):
// a checkpoint file either decodes end-to-end or is discarded, and recovery
// falls back to the previous one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/decision.h"
#include "core/options.h"
#include "types/block.h"
#include "types/committee.h"
#include "types/validation.h"
#include "validator/verifier_cache.h"

namespace mahimahi {

struct CheckpointData {
  std::uint64_t sequence = 0;      // writer-local monotonic checkpoint number
  ValidatorId author = 0;          // which validator cut this
  Round horizon = 0;               // the cut's GC horizon (DAG pruned below it)
  SlotId head;                     // first unconsumed slot at the cut
  Round last_proposed_round = 0;   // author's proposer round at the cut

  // The full decided log at the cut. `block` is resolved against the DAG at
  // install time (null for commits below the horizon); `ref` always carries
  // the identity.
  struct DecidedSlot {
    SlotId slot;
    ValidatorId leader = 0;
    SlotDecision::Kind kind = SlotDecision::Kind::kUndecided;
    SlotDecision::Via via = SlotDecision::Via::kNone;
    BlockRef block;  // meaningful for commits
  };
  std::vector<DecidedSlot> decided;

  // Delivered marks with round >= horizon (Committer::delivered_snapshot).
  std::vector<std::pair<Digest, Round>> delivered;

  // Live DAG suffix: round >= max(horizon, 1), ascending by round (genesis
  // is excluded — every validator constructs it locally).
  std::vector<BlockPtr> blocks;

  // Opaque application snapshot (driver-owned; e.g. app/kv_store.h contents)
  // plus the state digest the restored application must reproduce.
  Bytes app_state;
  Digest app_digest;
};

// One CRC-framed record; decode throws serde::SerdeError on any mismatch
// (torn file, CRC failure, malformed payload).
Bytes encode_checkpoint(const CheckpointData& data);
CheckpointData decode_checkpoint(BytesView encoded);

// Semantic checks beyond the CRC, run before installing a checkpoint that
// came off the wire: block shape + (per `validation`) batched coin/signature
// verification, round-ascending suffix at or above the horizon, a decided
// log that is EXACTLY the slot-successor chain from `options.first_slot_round`
// to `head` (a fabricated head with a thin or empty log is rejected), and
// every committed slot at or above the horizon backed by a block in the
// suffix. Returns an empty string when acceptable, else a reason.
// Thread-safe (workers verify off-loop).
//
// Known trust gap: decisions BELOW the horizon are unverifiable without the
// pruned history — the receiver trusts the serving committee member for
// them (mitigated by only requesting when provably stuck, and only from
// committee peers). Threshold-certified cuts (checkpoint/cert.h) close it:
// a chain whose every link carries a 2f+1 certificate over the cut's
// decided-log and app digests needs no below-horizon trust. This check
// remains the structural floor both paths share.
std::string verify_checkpoint(const CheckpointData& data, const Committee& committee,
                              const CommitterOptions& options,
                              const ValidationOptions& validation,
                              VerifierCache* cache = nullptr);

// Directory of `ckpt-<sequence>.ckpt` base files, `dlta-<sequence>.dlta`
// delta links (checkpoint/delta.h) and `cert-<sequence>.cert` certificate
// sidecars (checkpoint/cert.h), with crash-atomic writes and corruption
// fallback on load. One store typically shares the segmented WAL's
// directory. Sequences are writer-global: a chain is one base plus the
// contiguous run of delta sequences after it, up to the next base.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir);

  // Writes `encoded` (an encode_checkpoint result) as base checkpoint
  // `sequence`: tmp file, fsync, rename. Throws on I/O failure.
  void write(std::uint64_t sequence, BytesView encoded);
  // Same contract for a delta link (encode_checkpoint_delta) and a
  // certificate sidecar (encode_checkpoint_certificate).
  void write_delta(std::uint64_t sequence, BytesView encoded);
  void write_cert(std::uint64_t sequence, BytesView encoded);

  struct ChainLink {
    std::uint64_t sequence = 0;
    Bytes record;  // base (first link) or delta record bytes
    Bytes cert;    // certificate sidecar bytes; empty = none on disk
  };
  // The newest base that decodes cleanly plus the contiguous run of
  // decoding, correctly linking deltas after it. A torn or corrupt delta
  // truncates the chain there (recovery falls back to a shorter chain and
  // more WAL replay); a corrupt base falls back to the previous base's
  // chain. Empty when no base loads.
  std::vector<ChainLink> newest_valid_chain() const;

  // Newest reconstructable cut: the newest valid chain with its deltas
  // applied. nullopt when none.
  std::optional<CheckpointData> load_newest_valid() const;

  // Raw encoded bytes of the newest valid BASE checkpoint (ignores deltas),
  // for serving legacy single-record catch-up without a re-encode.
  std::optional<std::pair<std::uint64_t, Bytes>> newest_valid_bytes() const;

  // Keeps the newest `keep` CHAINS (base + its deltas + their cert
  // sidecars), deletes older ones (at least one whole fallback chain
  // survives with keep >= 2). Within a retired chain the delta links are
  // unlinked before their base, so a crash mid-retire can never leave live
  // deltas whose base is gone; the directory is fsynced at the end
  // (common/fsio) so the unlinks are durable.
  void retire(std::size_t keep = 2);

  static std::vector<std::uint64_t> list(const std::string& dir);
  static std::vector<std::uint64_t> list_deltas(const std::string& dir);
  static std::string checkpoint_path(const std::string& dir, std::uint64_t sequence);
  static std::string delta_path(const std::string& dir, std::uint64_t sequence);
  static std::string cert_path(const std::string& dir, std::uint64_t sequence);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace mahimahi
