// Threshold-certified checkpoint cuts: the trust root for catch-up.
//
// verify_checkpoint (checkpoint.h) validates everything it can see, but
// decisions BELOW the horizon are unverifiable without the pruned history —
// the documented trust gap. Certified cuts close it:
//
//   * Cuts are CANONICAL: every validator cuts at the same boundary slots
//     B_k = first leader slot at or after round k * checkpoint_interval
//     (cut_boundary_slot). A capture is truncated back to head == B_k
//     (delta.h truncate_checkpoint), so the cut's decided log — the agreed
//     sequence — is identical across honest validators, and its app digest
//     is the digest at exactly that prefix.
//   * Each validator signs the cut payload (cut index, boundary head,
//     decided-log digest, app digest) and broadcasts the share (kCertShare).
//     2f+1 distinct shares aggregate into a CheckpointCertificate
//     (crypto/multisig.h): at least f+1 honest validators executed that
//     exact prefix to that exact state.
//   * A catch-up chain whose every link carries a valid certificate is a
//     TRUST ROOT: nothing below the horizon is taken on one peer's word.
//     Uncertified chains still install under the legacy f+1-horizon path
//     (the requester only asks when provably stuck), with a counter
//     recording the downgrade.
//
// The decided-log digest is an incremental fold (DecidedLogHasher) so the
// writer pays O(new slots) per cut and a chain verifier extends the base's
// digest across deltas instead of rehashing the whole log per link. `via` is
// excluded from the fold: a slot may legitimately be decided directly in one
// view and indirectly in another (core/decision.h same_outcome); only the
// outcome is agreement-critical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint/delta.h"
#include "crypto/blake2b.h"
#include "crypto/multisig.h"
#include "types/committee.h"

namespace mahimahi {

// The canonical boundary slot of cut k (k >= 1): the first leader slot at or
// after round k * interval. Every validator maps k to the same slot, which
// is what lets independent shares aggregate.
SlotId cut_boundary_slot(std::uint64_t cut_index, Round interval,
                         const CommitterOptions& options);

// Incremental canonical digest over a decided-log prefix. Folding the same
// entries in the same order yields the same digest on every validator
// (the entries are the agreed sequence; `via` and the resolved block pointer
// are excluded). Copy-cheap: snapshot the running digest at a boundary by
// value.
class DecidedLogHasher {
 public:
  DecidedLogHasher();

  void fold(const CheckpointData::DecidedSlot& entry);
  template <typename It>
  void fold(It first, It last) {
    for (; first != last; ++first) fold(*first);
  }

  std::uint64_t count() const { return count_; }
  Digest digest() const;  // finalizes a copy; the fold can continue

 private:
  crypto::Blake2b hasher_;
  std::uint64_t count_ = 0;
};

// What a certificate share signs. The encoding is domain-tagged, so these
// signatures can never collide with block or coin signatures.
struct CutPayload {
  std::uint64_t cut_index = 0;  // k: head == cut_boundary_slot(k)
  SlotId head;
  Digest decided_digest;  // DecidedLogHasher over the cut's full decided log
  Digest app_digest;      // app state digest at the cut (zero without an app)

  bool operator==(const CutPayload&) const = default;
};

// The signed message (domain tag + fields) and its digest (collector keying).
Bytes encode_cut_payload(const CutPayload& payload);
Digest cut_payload_digest(const CutPayload& payload);

// One validator's signature share over a cut payload.
struct CutShare {
  CutPayload payload;
  ValidatorId author = 0;
  crypto::Ed25519Signature signature;
};

CutShare sign_cut(const CutPayload& payload, ValidatorId author,
                  const crypto::Ed25519PrivateKey& key);
// Author in range + signature valid over the payload encoding.
bool verify_cut_share(const CutShare& share, const Committee& committee);

// kCertShare wire payload (self-authenticating: carries author + signature).
Bytes encode_cut_share(const CutShare& share);
CutShare decode_cut_share(BytesView payload);  // throws serde::SerdeError

// 2f+1 shares over one payload.
struct CheckpointCertificate {
  CutPayload payload;
  crypto::Multisig multisig;
};

Bytes encode_checkpoint_certificate(const CheckpointCertificate& cert);
CheckpointCertificate decode_checkpoint_certificate(BytesView encoded);

// Empty string when `cert` carries a 2f+1 quorum of valid committee
// signatures over its payload; else the reason.
std::string verify_checkpoint_certificate(const CheckpointCertificate& cert,
                                          const Committee& committee);

// --- Chain verification ------------------------------------------------------

struct ChainVerifyResult {
  CheckpointData data;     // the reconstructed newest cut
  bool certified = false;  // every link carried a valid certificate
  std::size_t links = 0;
  std::string error;       // non-empty = refuse the chain
};

// Decodes, reconstructs and verifies a received base+delta chain:
//
//   * every record decodes and links (sequence/head continuity, monotone
//     horizon, app-delta replay);
//   * every link's app digest matches its reconstructed app state (a
//     content-vs-claim mismatch is refused even before certificates);
//   * any PRESENT certificate must be valid AND bind its link exactly
//     (boundary head, cut index, decided-log digest, app digest) — a
//     certified-but-mismatched link is refused, never downgraded;
//   * the final cut passes verify_checkpoint (structure + block crypto).
//
// `certified` is true only when EVERY link carried a valid certificate; the
// caller routes uncertified chains through the legacy-trust path.
ChainVerifyResult verify_checkpoint_chain(const CheckpointChainFrame& frame,
                                          const Committee& committee,
                                          const CommitterOptions& options,
                                          Round checkpoint_interval,
                                          const ValidationOptions& validation,
                                          VerifierCache* cache = nullptr);

}  // namespace mahimahi
