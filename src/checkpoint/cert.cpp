#include "checkpoint/cert.h"

#include <stdexcept>

#include "serde/serde.h"

namespace mahimahi {

namespace {

// Domain separation for everything this file hashes or signs.
constexpr std::string_view kDecidedDomain = "mm-ckpt-decided-v1";
constexpr std::string_view kCertDomain = "mm-ckpt-cert-v1";

void write_slot(serde::Writer& w, SlotId slot) {
  w.varint(slot.round);
  w.u32(slot.leader_offset);
}

SlotId read_slot(serde::Reader& r) {
  SlotId slot;
  slot.round = r.varint();
  slot.leader_offset = r.u32();
  return slot;
}

BytesView domain_view(std::string_view domain) {
  return {reinterpret_cast<const std::uint8_t*>(domain.data()), domain.size()};
}

}  // namespace

SlotId cut_boundary_slot(std::uint64_t cut_index, Round interval,
                         const CommitterOptions& options) {
  return options.first_slot_at_or_after(cut_index * interval);
}

DecidedLogHasher::DecidedLogHasher() : hasher_(32) {
  hasher_.update(domain_view(kDecidedDomain));
}

void DecidedLogHasher::fold(const CheckpointData::DecidedSlot& entry) {
  serde::Writer w;
  write_slot(w, entry.slot);
  w.u32(entry.leader);
  w.u8(static_cast<std::uint8_t>(entry.kind));
  // `via` deliberately excluded (see header).
  if (entry.kind == SlotDecision::Kind::kCommit) {
    w.varint(entry.block.round);
    w.u32(entry.block.author);
    w.digest(entry.block.digest);
  }
  hasher_.update({w.data().data(), w.data().size()});
  ++count_;
}

Digest DecidedLogHasher::digest() const {
  crypto::Blake2b copy = hasher_;  // streaming state is copy-cheap
  Digest out;
  copy.finish(out.bytes.data());
  return out;
}

Bytes encode_cut_payload(const CutPayload& payload) {
  serde::Writer w;
  w.raw(domain_view(kCertDomain));
  w.u64(payload.cut_index);
  write_slot(w, payload.head);
  w.digest(payload.decided_digest);
  w.digest(payload.app_digest);
  return std::move(w).take();
}

Digest cut_payload_digest(const CutPayload& payload) {
  const Bytes encoded = encode_cut_payload(payload);
  return crypto::Blake2b::hash256({encoded.data(), encoded.size()});
}

CutShare sign_cut(const CutPayload& payload, ValidatorId author,
                  const crypto::Ed25519PrivateKey& key) {
  const Bytes message = encode_cut_payload(payload);
  return CutShare{payload, author,
                  crypto::ed25519_sign(key, {message.data(), message.size()})};
}

bool verify_cut_share(const CutShare& share, const Committee& committee) {
  if (!committee.contains(share.author)) return false;
  const Bytes message = encode_cut_payload(share.payload);
  return crypto::ed25519_verify(committee.public_key(share.author),
                                {message.data(), message.size()}, share.signature);
}

Bytes encode_cut_share(const CutShare& share) {
  serde::Writer w;
  w.u64(share.payload.cut_index);
  write_slot(w, share.payload.head);
  w.digest(share.payload.decided_digest);
  w.digest(share.payload.app_digest);
  w.u32(share.author);
  w.raw({share.signature.bytes.data(), share.signature.bytes.size()});
  return std::move(w).take();
}

CutShare decode_cut_share(BytesView payload) {
  serde::Reader r(payload);
  CutShare share;
  share.payload.cut_index = r.u64();
  share.payload.head = read_slot(r);
  share.payload.decided_digest = r.digest();
  share.payload.app_digest = r.digest();
  share.author = r.u32();
  const BytesView sig = r.raw(share.signature.bytes.size());
  std::copy(sig.begin(), sig.end(), share.signature.bytes.begin());
  r.expect_done();
  return share;
}

Bytes encode_checkpoint_certificate(const CheckpointCertificate& cert) {
  serde::Writer w;
  w.u64(cert.payload.cut_index);
  write_slot(w, cert.payload.head);
  w.digest(cert.payload.decided_digest);
  w.digest(cert.payload.app_digest);
  w.varint(cert.multisig.shares.size());
  for (const auto& share : cert.multisig.shares) {
    w.u32(share.signer);
    w.raw({share.signature.bytes.data(), share.signature.bytes.size()});
  }
  return std::move(w).take();
}

CheckpointCertificate decode_checkpoint_certificate(BytesView encoded) {
  serde::Reader r(encoded);
  CheckpointCertificate cert;
  cert.payload.cut_index = r.u64();
  cert.payload.head = read_slot(r);
  cert.payload.decided_digest = r.digest();
  cert.payload.app_digest = r.digest();
  const std::uint64_t count = r.varint();
  constexpr std::size_t kShareBytes = 68;  // signer(4) + signature(64)
  if (count > r.remaining() / kShareBytes) {
    throw serde::SerdeError("certificate: share count exceeds payload");
  }
  cert.multisig.shares.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    crypto::MultisigShare share;
    share.signer = r.u32();
    const BytesView sig = r.raw(share.signature.bytes.size());
    std::copy(sig.begin(), sig.end(), share.signature.bytes.begin());
    cert.multisig.shares.push_back(share);
  }
  r.expect_done();
  return cert;
}

std::string verify_checkpoint_certificate(const CheckpointCertificate& cert,
                                          const Committee& committee) {
  std::vector<crypto::Ed25519PublicKey> keys;
  keys.reserve(committee.size());
  for (ValidatorId id = 0; id < committee.size(); ++id) {
    keys.push_back(committee.public_key(id));
  }
  const Bytes message = encode_cut_payload(cert.payload);
  if (!crypto::multisig_verify(cert.multisig, {message.data(), message.size()},
                               keys, committee.quorum_threshold())) {
    return "certificate: no valid 2f+1 quorum over the payload";
  }
  return {};
}

// --- Chain verification ------------------------------------------------------

namespace {

// Binds one link's certificate to the link's reconstructed content.
std::string check_cert_binding(const CheckpointCertificate& cert,
                               const CheckpointData& link,
                               const DecidedLogHasher& hasher, Round interval,
                               const CommitterOptions& options,
                               std::uint64_t& last_cut_index) {
  if (cert.payload.head != link.head) return "certificate head mismatch";
  if (cut_boundary_slot(cert.payload.cut_index, interval, options) != link.head) {
    return "certificate cut index does not map to the link head";
  }
  if (cert.payload.cut_index <= last_cut_index) {
    return "certificate cut indices not increasing";
  }
  last_cut_index = cert.payload.cut_index;
  if (cert.payload.decided_digest != hasher.digest()) {
    return "certificate decided-log digest mismatch";
  }
  if (cert.payload.app_digest != link.app_digest) {
    return "certificate app digest mismatch";
  }
  return {};
}

// The link's own content claim: app_state must hash to app_digest (or both
// be absent). This holds certified AND uncertified chains to their word.
std::string check_app_binding(const CheckpointData& link) {
  if (link.app_state.empty()) {
    if (link.app_digest != Digest{}) return "app digest without app state";
    return {};
  }
  if (crypto::Blake2b::hash256({link.app_state.data(), link.app_state.size()}) !=
      link.app_digest) {
    return "app state does not hash to its digest";
  }
  return {};
}

}  // namespace

ChainVerifyResult verify_checkpoint_chain(const CheckpointChainFrame& frame,
                                          const Committee& committee,
                                          const CommitterOptions& options,
                                          Round checkpoint_interval,
                                          const ValidationOptions& validation,
                                          VerifierCache* cache) {
  ChainVerifyResult result;
  result.links = frame.links.size();
  if (frame.links.empty()) {
    result.error = "empty chain";
    return result;
  }

  DecidedLogHasher hasher;
  std::uint64_t last_cut_index = 0;
  bool all_certified = checkpoint_interval > 0;

  try {
    for (std::size_t i = 0; i < frame.links.size(); ++i) {
      const auto& link = frame.links[i];
      if (i == 0) {
        result.data = decode_checkpoint({link.record.data(), link.record.size()});
        hasher.fold(result.data.decided.begin(), result.data.decided.end());
      } else {
        const CheckpointDelta delta =
            decode_checkpoint_delta({link.record.data(), link.record.size()});
        apply_checkpoint_delta(result.data, delta);
        hasher.fold(delta.decided_suffix.begin(), delta.decided_suffix.end());
      }

      if (std::string err = check_app_binding(result.data); !err.empty()) {
        result.error = "link " + std::to_string(i) + ": " + err;
        return result;
      }

      if (link.cert.empty()) {
        all_certified = false;
        continue;
      }
      // A present-but-bad certificate is an attack artifact: refuse the
      // whole chain rather than fall back to the legacy trust path.
      const CheckpointCertificate cert =
          decode_checkpoint_certificate({link.cert.data(), link.cert.size()});
      if (std::string err =
              check_cert_binding(cert, result.data, hasher, checkpoint_interval,
                                 options, last_cut_index);
          !err.empty()) {
        result.error = "link " + std::to_string(i) + ": " + err;
        return result;
      }
      if (std::string err = verify_checkpoint_certificate(cert, committee);
          !err.empty()) {
        result.error = "link " + std::to_string(i) + ": " + err;
        return result;
      }
    }
  } catch (const std::exception& error) {
    result.error = std::string("chain reconstruction failed: ") + error.what();
    return result;
  }

  result.error = verify_checkpoint(result.data, committee, options, validation, cache);
  if (!result.error.empty()) return result;

  result.certified = all_certified;
  return result;
}

}  // namespace mahimahi
