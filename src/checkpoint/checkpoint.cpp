#include "checkpoint/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <unordered_set>

#include "checkpoint/cert.h"
#include "checkpoint/delta.h"
#include "common/crc32.h"
#include "common/fsio.h"
#include "common/log.h"
#include "serde/serde.h"
#include "validator/crypto_stage.h"
#include "wal/wal.h"

namespace mahimahi {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4d4d434b;  // "MMCK"
constexpr std::uint8_t kCheckpointVersion = 1;

void write_slot(serde::Writer& w, SlotId slot) {
  w.varint(slot.round);
  w.u32(slot.leader_offset);
}

SlotId read_slot(serde::Reader& r) {
  SlotId slot;
  slot.round = r.varint();
  slot.leader_offset = r.u32();
  return slot;
}

void write_ref(serde::Writer& w, const BlockRef& ref) {
  w.varint(ref.round);
  w.u32(ref.author);
  w.digest(ref.digest);
}

BlockRef read_ref(serde::Reader& r) {
  BlockRef ref;
  ref.round = r.varint();
  ref.author = r.u32();
  ref.digest = r.digest();
  return ref;
}

}  // namespace

Bytes encode_checkpoint(const CheckpointData& data) {
  serde::Writer w;
  w.u32(kCheckpointMagic);
  w.u8(kCheckpointVersion);
  w.u64(data.sequence);
  w.u32(data.author);
  w.varint(data.horizon);
  write_slot(w, data.head);
  w.varint(data.last_proposed_round);

  w.varint(data.decided.size());
  for (const auto& d : data.decided) {
    write_slot(w, d.slot);
    w.u32(d.leader);
    w.u8(static_cast<std::uint8_t>(d.kind));
    w.u8(static_cast<std::uint8_t>(d.via));
    if (d.kind == SlotDecision::Kind::kCommit) write_ref(w, d.block);
  }

  w.varint(data.delivered.size());
  for (const auto& [digest, round] : data.delivered) {
    w.digest(digest);
    w.varint(round);
  }

  w.varint(data.blocks.size());
  for (const BlockPtr& block : data.blocks) {
    const Bytes encoded = block->serialize();
    w.bytes({encoded.data(), encoded.size()});
  }

  w.bytes({data.app_state.data(), data.app_state.size()});
  w.digest(data.app_digest);

  return wal_frame_record({w.data().data(), w.data().size()});
}

CheckpointData decode_checkpoint(BytesView encoded) {
  serde::Reader framing(encoded);
  const std::uint32_t len = framing.u32();
  const std::uint32_t crc = framing.u32();
  if (len != framing.remaining()) {
    throw serde::SerdeError("checkpoint: frame length mismatch");
  }
  const BytesView payload = framing.raw(len);
  if (crc32(payload) != crc) throw serde::SerdeError("checkpoint: CRC mismatch");

  serde::Reader r(payload);
  if (r.u32() != kCheckpointMagic) throw serde::SerdeError("checkpoint: bad magic");
  if (r.u8() != kCheckpointVersion) throw serde::SerdeError("checkpoint: bad version");

  CheckpointData data;
  data.sequence = r.u64();
  data.author = r.u32();
  data.horizon = r.varint();
  data.head = read_slot(r);
  data.last_proposed_round = r.varint();

  // Element counts come off the wire (snapshot catch-up), so they are
  // attacker-controlled: bound each against the bytes actually present
  // (count * minimum encoded element size must fit in what remains) BEFORE
  // reserving. A claimed 2^60 elements must be a SerdeError the caller
  // already handles, not a std::length_error out of vector::reserve.
  const std::uint64_t decided_count = r.varint();
  constexpr std::size_t kMinDecidedBytes = 11;  // slot(1+4) + leader(4) + kind + via
  if (decided_count > r.remaining() / kMinDecidedBytes) {
    throw serde::SerdeError("checkpoint: decided count exceeds payload");
  }
  data.decided.reserve(decided_count);
  for (std::uint64_t i = 0; i < decided_count; ++i) {
    CheckpointData::DecidedSlot d;
    d.slot = read_slot(r);
    d.leader = r.u32();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(SlotDecision::Kind::kSkip)) {
      throw serde::SerdeError("checkpoint: bad decision kind");
    }
    d.kind = static_cast<SlotDecision::Kind>(kind);
    const std::uint8_t via = r.u8();
    if (via > static_cast<std::uint8_t>(SlotDecision::Via::kIndirect)) {
      throw serde::SerdeError("checkpoint: bad decision via");
    }
    d.via = static_cast<SlotDecision::Via>(via);
    if (d.kind == SlotDecision::Kind::kCommit) d.block = read_ref(r);
    data.decided.push_back(d);
  }

  const std::uint64_t delivered_count = r.varint();
  constexpr std::size_t kMinDeliveredBytes = 33;  // digest(32) + round varint(1)
  if (delivered_count > r.remaining() / kMinDeliveredBytes) {
    throw serde::SerdeError("checkpoint: delivered count exceeds payload");
  }
  data.delivered.reserve(delivered_count);
  for (std::uint64_t i = 0; i < delivered_count; ++i) {
    const Digest digest = r.digest();
    data.delivered.emplace_back(digest, r.varint());
  }

  const std::uint64_t block_count = r.varint();
  if (block_count > r.remaining()) {  // each block costs at least its length varint
    throw serde::SerdeError("checkpoint: block count exceeds payload");
  }
  data.blocks.reserve(block_count);
  for (std::uint64_t i = 0; i < block_count; ++i) {
    const std::uint64_t block_len = r.varint();
    if (block_len > r.remaining()) {
      throw serde::SerdeError("checkpoint: block length exceeds payload");
    }
    data.blocks.push_back(std::make_shared<const Block>(
        Block::deserialize(r.raw(static_cast<std::size_t>(block_len)))));
  }

  data.app_state = r.bytes();
  data.app_digest = r.digest();
  r.expect_done();
  return data;
}

std::string verify_checkpoint(const CheckpointData& data, const Committee& committee,
                              const CommitterOptions& options,
                              const ValidationOptions& validation,
                              VerifierCache* cache) {
  // The decided log must be EXACTLY the slot-successor chain from the first
  // slot to the head — a head the log does not account for slot-by-slot is
  // fabricated. (What each decision SAYS below the horizon is the trust gap
  // documented in the header; its shape at least cannot lie.)
  SlotId expected{options.first_slot_round, 0};
  for (const auto& d : data.decided) {
    if (d.kind == SlotDecision::Kind::kUndecided) return "undecided slot in log";
    if (d.slot != expected) return "log is not the contiguous slot chain";
    expected = d.slot.leader_offset + 1 < options.leaders_per_round
                   ? SlotId{d.slot.round, d.slot.leader_offset + 1}
                   : SlotId{d.slot.round + options.wave_stride, 0};
  }
  if (expected != data.head) return "decided log does not reach the head";

  // The suffix: round-ascending, at or above the horizon, structurally valid.
  Round previous = 0;
  for (const BlockPtr& block : data.blocks) {
    if (block->round() < data.horizon || block->round() == 0) {
      return "suffix block below horizon";
    }
    if (block->round() < previous) return "suffix not round-ascending";
    previous = block->round();
    const BlockValidity structural = validate_block_structure(*block, committee);
    if (structural != BlockValidity::kValid) {
      return "suffix block invalid: " + to_string(structural);
    }
  }

  // Every committed slot at or above the horizon must be backed by a block
  // in the suffix — the analogue of checking the snapshot against the
  // committed chain: an installed committer must be able to point at the
  // agreed leader blocks it claims were committed.
  std::unordered_set<Digest, DigestHasher> suffix;
  for (const BlockPtr& block : data.blocks) suffix.insert(block->digest());
  for (const auto& d : data.decided) {
    if (d.kind != SlotDecision::Kind::kCommit) continue;
    if (d.block.round >= data.horizon && !suffix.contains(d.block.digest)) {
      return "committed block missing from suffix";
    }
  }

  // Crypto last (the expensive part): batched coin/signature verification of
  // the whole suffix, exactly what live ingestion would have paid.
  const CryptoStageResult stage =
      run_crypto_stage(data.blocks, committee, validation, cache);
  for (std::size_t i = 0; i < data.blocks.size(); ++i) {
    if (stage.verdicts[i] != BlockValidity::kValid) {
      return "suffix block failed crypto: " + to_string(stage.verdicts[i]);
    }
  }
  return {};
}

// --- CheckpointStore ---------------------------------------------------------

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string CheckpointStore::checkpoint_path(const std::string& dir,
                                             std::uint64_t sequence) {
  char name[40];
  std::snprintf(name, sizeof(name), "ckpt-%012" PRIu64 ".ckpt", sequence);
  return (std::filesystem::path(dir) / name).string();
}

std::string CheckpointStore::delta_path(const std::string& dir,
                                        std::uint64_t sequence) {
  char name[40];
  std::snprintf(name, sizeof(name), "dlta-%012" PRIu64 ".dlta", sequence);
  return (std::filesystem::path(dir) / name).string();
}

std::string CheckpointStore::cert_path(const std::string& dir,
                                       std::uint64_t sequence) {
  char name[40];
  std::snprintf(name, sizeof(name), "cert-%012" PRIu64 ".cert", sequence);
  return (std::filesystem::path(dir) / name).string();
}

namespace {

std::vector<std::uint64_t> list_indexed(const std::string& dir,
                                        std::string_view prefix,
                                        std::string_view suffix) {
  std::vector<std::uint64_t> sequences;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const auto sequence = parse_indexed_name(entry.path().filename().string(),
                                             prefix, suffix, /*pad_width=*/12);
    if (sequence.has_value()) sequences.push_back(*sequence);
  }
  std::sort(sequences.begin(), sequences.end());
  return sequences;
}

std::optional<Bytes> read_whole_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  Bytes bytes(size > 0 ? static_cast<std::size_t>(size) : 0);
  const bool read_ok =
      std::fread(bytes.data(), 1, bytes.size(), file) == bytes.size();
  std::fclose(file);
  if (!read_ok) return std::nullopt;
  return bytes;
}

}  // namespace

std::vector<std::uint64_t> CheckpointStore::list(const std::string& dir) {
  return list_indexed(dir, "ckpt-", ".ckpt");
}

std::vector<std::uint64_t> CheckpointStore::list_deltas(const std::string& dir) {
  return list_indexed(dir, "dlta-", ".dlta");
}

void CheckpointStore::write(std::uint64_t sequence, BytesView encoded) {
  // The rename inside is the commit point: a crash before it leaves at most
  // a tmp file, which no reader ever looks at. The helper also fsyncs the
  // directory, so the rename itself survives power loss — the subsequent
  // retirement of older checkpoints and WAL segments relies on it.
  write_file_atomic(checkpoint_path(dir_, sequence), encoded, "CheckpointStore");
}

void CheckpointStore::write_delta(std::uint64_t sequence, BytesView encoded) {
  write_file_atomic(delta_path(dir_, sequence), encoded, "CheckpointStore");
}

void CheckpointStore::write_cert(std::uint64_t sequence, BytesView encoded) {
  write_file_atomic(cert_path(dir_, sequence), encoded, "CheckpointStore");
}

std::optional<std::pair<std::uint64_t, Bytes>> CheckpointStore::newest_valid_bytes()
    const {
  auto sequences = list(dir_);
  for (auto it = sequences.rbegin(); it != sequences.rend(); ++it) {
    auto bytes = read_whole_file(checkpoint_path(dir_, *it));
    if (!bytes.has_value()) continue;
    // std::exception, not just SerdeError: a corrupt file can also surface
    // as an allocation failure (e.g. Block::deserialize on garbage), and
    // recovery must fall back a checkpoint, not die.
    try {
      decode_checkpoint({bytes->data(), bytes->size()});  // CRC + shape gate
    } catch (const std::exception& error) {
      MM_LOG(kWarn) << "CheckpointStore: falling back past corrupt checkpoint "
                    << *it << ": " << error.what();
      continue;
    }
    return std::make_pair(*it, std::move(*bytes));
  }
  return std::nullopt;
}

std::vector<CheckpointStore::ChainLink> CheckpointStore::newest_valid_chain()
    const {
  const auto bases = list(dir_);
  const auto deltas = list_deltas(dir_);
  const auto load_cert = [&](std::uint64_t sequence) -> Bytes {
    auto bytes = read_whole_file(cert_path(dir_, sequence));
    if (!bytes.has_value()) return {};
    try {
      decode_checkpoint_certificate({bytes->data(), bytes->size()});
    } catch (const std::exception&) {
      return {};  // a corrupt sidecar degrades to "uncertified", never fails
    }
    return std::move(*bytes);
  };

  for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
    auto base_bytes = read_whole_file(checkpoint_path(dir_, *it));
    if (!base_bytes.has_value()) continue;
    std::uint64_t prev_sequence = *it;
    SlotId prev_head;
    try {
      prev_head = decode_checkpoint({base_bytes->data(), base_bytes->size()}).head;
    } catch (const std::exception& error) {
      MM_LOG(kWarn) << "CheckpointStore: falling back past corrupt checkpoint "
                    << *it << ": " << error.what();
      continue;
    }

    std::vector<ChainLink> chain;
    chain.push_back({*it, std::move(*base_bytes), load_cert(*it)});
    for (std::uint64_t seq = *it + 1;
         std::binary_search(deltas.begin(), deltas.end(), seq); ++seq) {
      auto delta_bytes = read_whole_file(delta_path(dir_, seq));
      if (!delta_bytes.has_value()) break;
      try {
        const CheckpointDelta delta =
            decode_checkpoint_delta({delta_bytes->data(), delta_bytes->size()});
        if (delta.base_sequence != *it || delta.prev_sequence != prev_sequence ||
            delta.prev_head != prev_head) {
          break;  // stray link from another lineage
        }
        prev_head = delta.head;
      } catch (const std::exception& error) {
        // A torn delta tail truncates the chain here: the shorter chain plus
        // WAL segment replay still reconstructs a consistent state.
        MM_LOG(kWarn) << "CheckpointStore: truncating chain at corrupt delta "
                      << seq << ": " << error.what();
        break;
      }
      prev_sequence = seq;
      chain.push_back({seq, std::move(*delta_bytes), load_cert(seq)});
    }
    return chain;
  }
  return {};
}

std::optional<CheckpointData> CheckpointStore::load_newest_valid() const {
  auto chain = newest_valid_chain();
  while (!chain.empty()) {
    try {
      CheckpointData data =
          decode_checkpoint({chain[0].record.data(), chain[0].record.size()});
      for (std::size_t i = 1; i < chain.size(); ++i) {
        apply_checkpoint_delta(
            data, decode_checkpoint_delta(
                      {chain[i].record.data(), chain[i].record.size()}));
      }
      return data;
    } catch (const std::exception& error) {
      // Linkage passed but replay failed (e.g. malformed app delta): drop
      // the newest link and retry with the shorter chain.
      MM_LOG(kWarn) << "CheckpointStore: chain replay failed, shortening: "
                    << error.what();
      chain.pop_back();
    }
  }
  return std::nullopt;
}

void CheckpointStore::retire(std::size_t keep) {
  const auto bases = list(dir_);
  if (bases.size() <= keep) return;
  const auto deltas = list_deltas(dir_);
  // Chains are grouped by base: every delta sequence below the oldest kept
  // base belongs to a retired chain. Unlink retired deltas (newest first)
  // BEFORE any base: at every intermediate crash point the newest surviving
  // chain is still loadable — a base whose delta tail is gone is a valid
  // one-link chain, and no live delta ever outlives its base.
  const std::uint64_t keep_from = bases[bases.size() - keep];
  const auto unlink = [](const std::string& path) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  };
  for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
    if (*it >= keep_from) continue;
    unlink(delta_path(dir_, *it));
    unlink(cert_path(dir_, *it));
  }
  for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
    if (*it >= keep_from) continue;
    unlink(checkpoint_path(dir_, *it));
    unlink(cert_path(dir_, *it));
  }
  // One directory fsync covers the whole batch of unlinks (common/fsio):
  // after power loss either view is consistent, since unlink order above
  // keeps every prefix loadable.
  fsync_dir(dir_);
}

}  // namespace mahimahi
