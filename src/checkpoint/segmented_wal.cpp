#include "checkpoint/segmented_wal.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <filesystem>
#include <stdexcept>

#include "common/fsio.h"
#include "common/log.h"
#include "serde/serde.h"
#include "wal/wal_ring.h"

namespace mahimahi {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr std::uint32_t kManifestMagic = 0x4d4d5347;  // "MMSG"

}  // namespace

std::string SegmentedWal::segment_path(const std::string& dir, std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08" PRIu64 ".wal", index);
  return (std::filesystem::path(dir) / name).string();
}

std::uint64_t SegmentedWal::read_manifest(const std::string& dir) {
  const auto path = std::filesystem::path(dir) / kManifestName;
  std::FILE* file = std::fopen(path.string().c_str(), "rb");
  if (file == nullptr) return 0;
  std::uint8_t buffer[64];
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer), file);
  std::fclose(file);
  try {
    serde::Reader r({buffer, n});
    if (r.u32() != kManifestMagic) return 0;
    return r.varint();
  } catch (const serde::SerdeError&) {
    return 0;  // a torn manifest rewrite: fall back to "everything is live"
  }
}

std::vector<std::uint64_t> SegmentedWal::list_segments(const std::string& dir) {
  std::vector<std::uint64_t> indexes;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const auto index = parse_indexed_name(entry.path().filename().string(), "seg-",
                                          ".wal", /*pad_width=*/8);
    if (index.has_value()) indexes.push_back(*index);
  }
  std::sort(indexes.begin(), indexes.end());
  return indexes;
}

SegmentedWal::SegmentedWal(std::string dir, SegmentedWalOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::filesystem::create_directories(dir_);
  std::lock_guard<std::mutex> lock(mutex_);
  base_index_ = read_manifest(dir_);
  const auto existing = list_segments(dir_);
  std::uint64_t active = base_index_;
  for (const std::uint64_t index : existing) active = std::max(active, index);
  open_active_locked(active);
}

SegmentedWal::~SegmentedWal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void SegmentedWal::open_active_locked(std::uint64_t index) {
  const std::string path = segment_path(dir_, index);
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) throw std::runtime_error("SegmentedWal: cannot open " + path);
  active_index_ = index;
  active_records_ = 0;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  active_bytes_ = ec ? 0 : size;
}

void SegmentedWal::seal_active_locked() {
  std::fflush(file_);
  if (options_.fsync_on_sync) ::fsync(::fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
}

void SegmentedWal::roll_if_over_budget_locked(std::size_t incoming_bytes) {
  if (active_bytes_ == 0) return;  // never roll an empty segment
  const bool over_bytes = active_bytes_ + incoming_bytes > options_.segment_bytes;
  const bool over_records =
      options_.segment_records > 0 && active_records_ >= options_.segment_records;
  if (!over_bytes && !over_records) return;
  seal_active_locked();
  open_active_locked(active_index_ + 1);
}

void SegmentedWal::write_locked(BytesView framed) {
  roll_if_over_budget_locked(framed.size());
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    throw std::runtime_error("SegmentedWal: short write to " +
                             segment_path(dir_, active_index_));
  }
  active_bytes_ += framed.size();
  ++active_records_;
  bytes_written_ += framed.size();
}

void SegmentedWal::append_framed(BytesView framed) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_locked(framed);
}

void SegmentedWal::append_block(const Block& block, bool own) {
  const Bytes framed = wal_encode_block_record(block, own);
  append_framed({framed.data(), framed.size()});
}

void SegmentedWal::append_commit(SlotId slot) {
  const Bytes framed = wal_encode_commit_record(slot);
  append_framed({framed.data(), framed.size()});
}

void SegmentedWal::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fflush(file_);
  if (options_.fsync_on_sync) ::fsync(::fileno(file_));
}

void SegmentedWal::attach_wal_ring(WalUring* ring) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_ = ring;
}

bool SegmentedWal::wal_ring_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_ != nullptr && options_.fsync_on_sync;
}

void SegmentedWal::append_group_durable(BytesView group) {
  // Held across the I/O, like sync(): the checkpoint writer must not roll or
  // retire segments under a landing group.
  std::lock_guard<std::mutex> lock(mutex_);
  groups_durable_.fetch_add(1, std::memory_order_relaxed);
  if (ring_ != nullptr && options_.fsync_on_sync) {
    roll_if_over_budget_locked(group.size());
    std::fflush(file_);  // order stdio-buffered bytes ahead of the ring write
    const std::uint64_t spent = ring_->append_fsync(::fileno(file_), group);
    group_flush_syscalls_.fetch_add(spent, std::memory_order_relaxed);
    active_bytes_ += group.size();
    ++active_records_;
    bytes_written_ += group.size();
    return;
  }
  write_locked(group);
  std::fflush(file_);
  if (options_.fsync_on_sync) ::fsync(::fileno(file_));
  group_flush_syscalls_.fetch_add(options_.fsync_on_sync ? 2 : 1,
                                  std::memory_order_relaxed);
}

std::uint64_t SegmentedWal::roll_segment() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_bytes_ > 0) {
    seal_active_locked();
    open_active_locked(active_index_ + 1);
  }
  return active_index_;
}

void SegmentedWal::retire_segments_below(std::uint64_t keep_from) {
  std::lock_guard<std::mutex> lock(mutex_);
  keep_from = std::min(keep_from, active_index_);
  if (keep_from <= base_index_) return;
  // Manifest first: once it is durable, replay never looks below keep_from,
  // so a crash between here and the unlinks only strands dead files.
  write_manifest_locked(keep_from);
  bool removed_any = false;
  for (std::uint64_t index = base_index_; index < keep_from; ++index) {
    std::error_code ec;
    if (std::filesystem::remove(segment_path(dir_, index), ec)) {
      ++segments_retired_;
      removed_any = true;
    }
    if (ec) {
      MM_LOG(kWarn) << "SegmentedWal: failed to retire segment " << index << ": "
                    << ec.message();
    }
  }
  // Persist the unlinks too (the manifest rename above is already durable):
  // a resurrected dead segment would be harmless to replay, but repeatedly
  // losing the removals would defeat the disk-bound the retirement exists
  // for.
  if (removed_any) fsync_dir(dir_);
  base_index_ = keep_from;
}

void SegmentedWal::write_manifest_locked(std::uint64_t base) {
  serde::Writer w;
  w.u32(kManifestMagic);
  w.varint(base);
  // The shared helper fsyncs file AND directory: the manifest must be
  // durably in place before any segment it retires is unlinked.
  write_file_atomic((std::filesystem::path(dir_) / kManifestName).string(),
                    {w.data().data(), w.data().size()}, "SegmentedWal");
}

std::uint64_t SegmentedWal::active_segment() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_index_;
}

std::uint64_t SegmentedWal::base_segment() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_index_;
}

std::uint64_t SegmentedWal::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_written_;
}

std::uint64_t SegmentedWal::segments_retired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_retired_;
}

SegmentedWal::ReplayResult SegmentedWal::replay(const std::string& dir,
                                                const FileWal::Visitor& visitor,
                                                bool truncate_corrupt_tail) {
  ReplayResult result;
  const std::uint64_t base = read_manifest(dir);
  std::vector<std::uint64_t> indexes = list_segments(dir);
  std::erase_if(indexes, [base](std::uint64_t index) { return index < base; });
  if (indexes.empty()) return result;

  Bytes scratch;  // shared across segments: one warm buffer for the whole log
  std::uint64_t expected = indexes.front();
  for (std::size_t i = 0; i < indexes.size(); ++i, ++expected) {
    if (indexes[i] != expected) {
      // A hole in the sequence: everything past it is unreachable history
      // (mid-log damage, not a crash artifact — crashes only tear the tail).
      MM_LOG(kWarn) << "SegmentedWal: segment " << expected << " missing in " << dir;
      result.corrupt_tail = true;
      return result;
    }
    const bool last = i + 1 == indexes.size();
    const auto file_result = FileWal::replay_with_scratch(
        segment_path(dir, indexes[i]), visitor,
        /*truncate_corrupt_tail=*/last && truncate_corrupt_tail, scratch);
    result.records += file_result.records;
    ++result.segments;
    if (file_result.corrupt_tail) {
      result.corrupt_tail = true;
      if (!last) {
        MM_LOG(kWarn) << "SegmentedWal: corrupt record mid-log in segment "
                      << indexes[i] << " of " << dir;
        return result;  // do not replay past the damage
      }
    }
  }
  return result;
}

}  // namespace mahimahi
