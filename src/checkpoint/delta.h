// Incremental checkpoints: base + per-cut deltas.
//
// A monolithic checkpoint (checkpoint.h) re-serializes the FULL decided log
// and app snapshot at every cut, so write amplification and catch-up
// transfer size grow linearly with history. A delta cut instead carries only
// what changed since the previous cut in the same chain:
//
//   * the decided-log suffix (slots in [prev_head, head));
//   * the DAG-suffix blocks not already in the previous cut (blocks the new
//     horizon pruned are reconstructed by filtering, not listed);
//   * the delivered marks, replaced wholesale (they are bounded by the live
//     suffix, unlike the log);
//   * the touched app keys since the previous cut (app/kv_store.h
//     delta_bytes), not the full store.
//
// A chain is one base checkpoint plus deltas in sequence order, re-based
// after ValidatorConfig::checkpoint_max_deltas links. Applying the deltas
// onto the base reconstructs the newest cut byte-identically (decided log
// and state_digest) to a monolithic capture at the same head — the property
// test in tests/test_checkpoint.cpp holds recovery to that.
//
// Encoding: one CRC-framed record per delta (same wal_frame_record framing
// as checkpoints, distinct magic), written crash-atomically next to its base
// by CheckpointStore. Decoding is bounds-checked against the payload like
// decode_checkpoint: these records also arrive off the wire (catch-up).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/checkpoint.h"

namespace mahimahi {

struct CheckpointDelta {
  std::uint64_t sequence = 0;       // this link's store sequence
  std::uint64_t prev_sequence = 0;  // the link it applies on top of
  std::uint64_t base_sequence = 0;  // the chain's base (retirement grouping)
  ValidatorId author = 0;
  Round horizon = 0;               // horizon AFTER applying this link
  SlotId prev_head;                // must equal the previous link's head
  SlotId head;                     // head AFTER applying this link
  Round last_proposed_round = 0;

  // Decided slots in [prev_head, head), in slot order.
  std::vector<CheckpointData::DecidedSlot> decided_suffix;

  // Full replacement of the delivered marks (round >= the new horizon).
  std::vector<std::pair<Digest, Round>> delivered;

  // Suffix blocks not present in the previous cut, round-ascending.
  std::vector<BlockPtr> blocks_added;

  // app::KvStore::delta_bytes() since the previous cut; empty when the
  // writer runs no app.
  Bytes app_delta;
  Digest app_digest;  // full app digest AFTER applying this link
};

Bytes encode_checkpoint_delta(const CheckpointDelta& delta);
// Throws serde::SerdeError on any mismatch (torn file, CRC, malformed).
CheckpointDelta decode_checkpoint_delta(BytesView encoded);

// True iff `encoded` frames a delta record (vs a base checkpoint): peeks the
// magic behind the CRC framing without a full decode.
bool is_checkpoint_delta(BytesView encoded);

// Builds the delta taking `prev` to `next` (two cuts of the SAME validator,
// `next` captured after `prev`). `base_sequence` is the chain's base (the
// caller tracks it; `prev` may itself be a delta-extended cut). `app_delta`
// is the store's touched-key record for the window (the caller owns the app;
// CheckpointData's app_state is opaque here). Throws std::invalid_argument
// when `next` does not extend `prev` (different author, regressed head, or a
// decided log that is not an extension) — the caller falls back to a re-base.
CheckpointDelta make_checkpoint_delta(const CheckpointData& prev,
                                      const CheckpointData& next,
                                      std::uint64_t base_sequence,
                                      Bytes app_delta);

// Applies one delta onto `data` in place: extends the decided log, advances
// head/horizon, drops pruned suffix blocks and appends the new ones, replaces
// the delivered marks, and replays the app delta onto the carried app_state.
// Throws std::invalid_argument on linkage mismatch (wrong prev sequence or
// head, non-monotone horizon) and serde::SerdeError on a malformed app
// delta. Structural validity of the result is verify_checkpoint's job.
void apply_checkpoint_delta(CheckpointData& data, const CheckpointDelta& delta);

// Truncates a freshly captured cut back to `boundary` (a canonical cut
// slot <= the captured head): drops decided entries at or past the boundary,
// repositions the head, and removes the delivered marks in
// `delivered_after_boundary` (the blocks delivered by this batch's sub-DAGs
// at or past the boundary — the caller has them in Actions::committed). The
// DAG suffix and proposer round stay: they describe live per-validator
// state, not the agreed prefix, and verify_checkpoint accepts blocks above
// the head. Requires data.horizon <= boundary.round (the caller skips the
// cut otherwise — truncation must never cross the GC edge).
void truncate_checkpoint(CheckpointData& data, SlotId boundary,
                         std::span<const Digest> delivered_after_boundary);

// --- Chain wire frame --------------------------------------------------------
//
// kCheckpointChain payload: the full base+delta chain, each link's encoded
// record with its (optional) encoded certificate (checkpoint/cert.h). The
// receiver reconstructs and verifies the chain off-loop.

struct CheckpointChainFrame {
  struct Link {
    Bytes record;  // encode_checkpoint() or encode_checkpoint_delta()
    Bytes cert;    // encode_checkpoint_certificate(); empty = uncertified
  };
  std::vector<Link> links;  // base first, deltas in sequence order
};

Bytes encode_checkpoint_chain_frame(
    const std::vector<std::pair<BytesView, BytesView>>& links);
// Bounds-checked decode; throws serde::SerdeError.
CheckpointChainFrame decode_checkpoint_chain_frame(BytesView payload);

}  // namespace mahimahi
