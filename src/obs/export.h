// Renderers for MetricsSnapshot: Prometheus text exposition format and JSON.
//
// Both renderers are pure functions of the snapshot — deterministic output
// for deterministic input (the exporter golden tests and the sim harness rely
// on this). The admin endpoint (net/admin.h) serves them over HTTP; benches
// and the sim consume dump()/render directly with no socket involved.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace mahimahi::obs {

// Prometheus text exposition format, version 0.0.4.
//
//   # HELP mm_committed_blocks_total Blocks committed...
//   # TYPE mm_committed_blocks_total counter
//   mm_committed_blocks_total{validator="3"} 1234
//
// Histograms emit cumulative le buckets with exact integer bounds (2^i - 1),
// trimmed after the last non-empty bucket, then the +Inf bucket, _sum and
// _count. snapshot.labels is rendered into every sample line.
std::string render_prometheus(const MetricsSnapshot& snapshot);

// One JSON object: {"labels":{...},"counters":{...},"gauges":{...},
// "histograms":{name:{"count":..,"sum":..,"buckets":[[le,count],...]}}}.
// Keys are sorted (snapshot order); buckets list only non-empty buckets as
// [inclusive upper bound, per-bucket count] pairs.
std::string render_json(const MetricsSnapshot& snapshot);

}  // namespace mahimahi::obs
