#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace mahimahi::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

// `{validator="3"}` or empty; `{validator="3",le="7"}` with an extra pair.
std::string label_block(const std::string& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Index one past the last non-empty bucket (0 for an all-empty histogram).
std::size_t trimmed_bucket_count(const HistogramSnapshot& h) {
  std::size_t end = h.buckets.size();
  while (end > 0 && h.buckets[end - 1] == 0) --end;
  return end;
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& entry : snapshot.entries) {
    if (!entry.help.empty()) {
      out += "# HELP ";
      out += entry.name;
      out += " ";
      out += entry.help;
      out += "\n";
    }
    out += "# TYPE ";
    out += entry.name;
    switch (entry.kind) {
      case MetricKind::kCounter: {
        out += " counter\n";
        out += entry.name;
        out += label_block(snapshot.labels);
        out += " ";
        append_u64(out, entry.value);
        out += "\n";
        break;
      }
      case MetricKind::kGauge: {
        out += " gauge\n";
        out += entry.name;
        out += label_block(snapshot.labels);
        out += " ";
        append_i64(out, entry.gauge_value);
        out += "\n";
        break;
      }
      case MetricKind::kHistogram: {
        out += " histogram\n";
        const HistogramSnapshot& h = entry.histogram;
        const std::size_t end = trimmed_bucket_count(h);
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < end; ++i) {
          cumulative += h.buckets[i];
          std::string le = "le=\"";
          append_u64(le, bucket_upper_bound(i));
          le += "\"";
          out += entry.name;
          out += "_bucket";
          out += label_block(snapshot.labels, le);
          out += " ";
          append_u64(out, cumulative);
          out += "\n";
        }
        out += entry.name;
        out += "_bucket";
        out += label_block(snapshot.labels, "le=\"+Inf\"");
        out += " ";
        append_u64(out, cumulative);
        out += "\n";
        out += entry.name;
        out += "_sum";
        out += label_block(snapshot.labels);
        out += " ";
        append_u64(out, h.sum);
        out += "\n";
        out += entry.name;
        out += "_count";
        out += label_block(snapshot.labels);
        out += " ";
        append_u64(out, cumulative);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::string render_json(const MetricsSnapshot& snapshot) {
  std::string counters, gauges, histograms;
  for (const auto& entry : snapshot.entries) {
    switch (entry.kind) {
      case MetricKind::kCounter: {
        if (!counters.empty()) counters += ",";
        counters += "\"" + json_escape(entry.name) + "\":";
        append_u64(counters, entry.value);
        break;
      }
      case MetricKind::kGauge: {
        if (!gauges.empty()) gauges += ",";
        gauges += "\"" + json_escape(entry.name) + "\":";
        append_i64(gauges, entry.gauge_value);
        break;
      }
      case MetricKind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const HistogramSnapshot& h = entry.histogram;
        histograms += "\"" + json_escape(entry.name) + "\":{\"count\":";
        append_u64(histograms, h.count());
        histograms += ",\"sum\":";
        append_u64(histograms, h.sum);
        histograms += ",\"buckets\":[";
        bool first = true;
        const std::size_t end = trimmed_bucket_count(h);
        for (std::size_t i = 0; i < end; ++i) {
          if (h.buckets[i] == 0) continue;
          if (!first) histograms += ",";
          first = false;
          histograms += "[";
          append_u64(histograms, bucket_upper_bound(i));
          histograms += ",";
          append_u64(histograms, h.buckets[i]);
          histograms += "]";
        }
        histograms += "]}";
        break;
      }
    }
  }
  std::string out = "{\"labels\":\"" + json_escape(snapshot.labels) + "\"";
  out += ",\"counters\":{" + counters + "}";
  out += ",\"gauges\":{" + gauges + "}";
  out += ",\"histograms\":{" + histograms + "}}";
  return out;
}

}  // namespace mahimahi::obs
