// Unified metrics registry: named counters, gauges, and log2-scale latency
// histograms shared by every thread of a validator.
//
// Design constraints, in order:
//
//   * The hot path is one relaxed atomic add. Counters and histograms stripe
//     their cells across kMetricShards cache-line-padded shards indexed by a
//     per-thread stripe id, so the loop thread, verify/scan workers, and the
//     WAL writer never contend on the same line. There is no lock anywhere on
//     the write path.
//   * Reads merge. value()/snapshot() sum the shards; they are approximate
//     under concurrent writes (each cell is read atomically, the sum is not a
//     consistent cut) — exactly the semantics a scraper wants.
//   * Histograms are fixed-bucket log2 scale: bucket i counts values v with
//     std::bit_width(v) == i, i.e. bucket 0 holds v == 0 and bucket i >= 1
//     holds v in [2^(i-1), 2^i). Upper bounds are exact integers (2^i - 1),
//     merging two snapshots is element-wise addition, and recording is a
//     bit_width + two relaxed adds. Values are opaque integers; by convention
//     latency histograms record microseconds.
//   * Metrics are created once at setup time through the Registry (mutex on
//     the name map, never on the hot path) and referenced by stable pointer
//     thereafter. Callback metrics bridge pre-existing bespoke atomics
//     (io-plane stats, mempool stats, WAL counters) into the same scrape
//     without migrating their storage.
//
// dump() produces a MetricsSnapshot — plain copyable data, sorted by name —
// consumed by the exporters (obs/export.h), the sim harness (deterministic:
// sim stamps use sim time), and benches.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mahimahi::obs {

// Power of two; 16 stripes is enough that the handful of threads a validator
// runs (loop, 2-4 verify/scan workers, WAL writer, checkpoint writer) rarely
// share a stripe, at 1 KiB per counter.
inline constexpr std::size_t kMetricShards = 16;

// Buckets 0..39 cover 0 .. 2^39-1; microsecond latencies above ~6.4 days
// saturate into the last bucket.
inline constexpr std::size_t kHistogramBuckets = 40;

namespace detail {

// Stable per-thread stripe index in [0, kMetricShards).
std::size_t shard_index();

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

// Monotonic counter. add() is one relaxed fetch_add on this thread's stripe.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::ShardCell, kMetricShards> cells_;
};

// Point-in-time signed value. set() is a single atomic store (last writer
// wins — gauges are not sharded because "set" does not commute); update_max()
// ratchets upward, for high-water marks like the worst loop stall.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void update_max(std::int64_t v) {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen && !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Merged, plain-data view of one histogram. buckets[i] counts recorded values
// with bit_width == i (see bucket_upper_bound). Copyable; merge() is
// element-wise addition, so per-validator snapshots aggregate to a fleet view.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t sum = 0;  // sum of value*weight, for mean()

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (std::uint64_t b : buckets) total += b;
    return total;
  }
  void merge(const HistogramSnapshot& other) {
    for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
    sum += other.sum;
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
  }
  // Upper bound of the bucket holding the p-th percentile (p in [0,1]); the
  // true value is <= this. Chosen semantics, pinned by test_obs:
  //   * Empty histogram: 0 for every p (there is nothing to rank; callers
  //     must check count() if they need to distinguish "empty" from "fast").
  //   * Mass only in bucket 0 (all samples were 0, e.g. sub-microsecond
  //     latencies): 0 for every p — bucket 0's upper bound is exactly 0.
  //   * p <= 0 returns the first non-empty bucket's bound; p >= 1 returns
  //     the last non-empty bucket's bound (p100 of a single-sample histogram
  //     is that sample's bucket bound, never the histogram's max range).
  std::uint64_t percentile(double p) const;
};

// Inclusive upper bound of bucket i: 0, 1, 3, 7, 15, ... (2^i - 1).
constexpr std::uint64_t bucket_upper_bound(std::size_t i) {
  return i == 0 ? 0 : (i >= 64 ? ~0ull : (1ull << i) - 1);
}

// Fixed-bucket log2 histogram. record() costs a bit_width and two relaxed
// adds on this thread's stripe; weight folds in multiplicity (e.g. a finality
// sample weighted by the batch's transaction count) without a loop.
class Histogram {
 public:
  void record(std::int64_t value, std::uint64_t weight = 1) {
    if (weight == 0) return;
    const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    Shard& shard = shards_[detail::shard_index()];
    shard.buckets[bucket_of(v)].fetch_add(weight, std::memory_order_relaxed);
    shard.sum.fetch_add(v * weight, std::memory_order_relaxed);
  }
  static std::size_t bucket_of(std::uint64_t v) {
    const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
    return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
  }
  HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    for (const Shard& shard : shards_) {
      for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        out.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
      out.sum += shard.sum.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// Plain-data dump of a whole registry, sorted by metric name (std::map order
// — deterministic, which the exporter golden tests rely on).
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    // kCounter: value is the count. kGauge: gauge_value. kHistogram: histogram.
    std::uint64_t value = 0;
    std::int64_t gauge_value = 0;
    HistogramSnapshot histogram;
  };
  std::string labels;  // e.g. `validator="3"`, rendered into every line
  std::vector<Entry> entries;

  const Entry* find(std::string_view name) const;
  // Convenience thin reads; 0 / empty when the metric is absent.
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;
  HistogramSnapshot histogram(std::string_view name) const;
};

// Owner of all metrics for one validator (or one sim run). Creation takes a
// mutex and returns a stable reference; re-requesting a name returns the same
// object (kind must match — a kind clash is a programming error and throws).
class Registry {
 public:
  // labels: Prometheus label pairs without braces, e.g. `validator="3"`.
  explicit Registry(std::string labels = "");
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "");

  // Callback metrics: evaluated at dump() time on the dumping thread. They
  // bridge existing bespoke counters (io-plane atomics, mempool stats, WAL
  // introspection) into the scrape as thin reads; fn must stay valid for the
  // registry's lifetime. counter_fn renders as a Prometheus counter (the
  // callback must be monotonic), gauge_fn as a gauge.
  void counter_fn(const std::string& name, std::function<std::uint64_t()> fn,
                  const std::string& help = "");
  void gauge_fn(const std::string& name, std::function<std::int64_t()> fn,
                const std::string& help = "");

  // Merged snapshot of every metric, sorted by name. Callback metrics are
  // invoked here — dump from a thread that may touch their backing state.
  MetricsSnapshot dump() const;

  const std::string& labels() const { return labels_; }

 private:
  struct Metric {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> counter_callback;
    std::function<std::int64_t()> gauge_callback;
  };
  Metric& emplace(const std::string& name, MetricKind kind, const std::string& help);

  std::string labels_;
  mutable std::mutex mutex_;
  std::map<std::string, Metric> metrics_;
};

}  // namespace mahimahi::obs
