// Flight recorder: always-on, per-thread lock-free ring buffers of compact
// structured events, stamped on the pipeline handoffs and dumped on demand —
// the "what was this node doing in the two seconds before it stalled"
// answer that aggregate histograms cannot give.
//
// Design constraints, in order:
//
//   * Recording is wait-free and costs well under 50 ns (gated by
//     bench_obs): claim a slot with one relaxed fetch_add on the calling
//     thread's own ring head, then four relaxed stores and one release
//     store. No lock, no branch on a shared cache line, no allocation.
//   * One ring per recording thread. A thread's first record registers a
//     ring (mutex, once) and caches the pointer in a small thread-local
//     table, so steady-state recording never synchronizes with other
//     threads. Rings are never destroyed before the recorder, so a cached
//     pointer can never dangle.
//   * Snapshots from any thread, at any time, without stopping writers.
//     Each slot carries its claim sequence in a release-published tag; the
//     reader drops slots whose tag does not match the index it expects
//     (mid-overwrite), so a snapshot is a consistent-enough view for
//     forensics without ever blocking the pipeline. Every access is through
//     std::atomic — the recorder stays clean under TSan with writers live.
//   * The binary dump path (write_to_fd) is async-signal-safe: no
//     allocation, no locks, only ::write on a caller-supplied fd — so a
//     fatal-signal handler (install_crash_handler) can leave a
//     flightrec-*.bin artifact on the way down.
//
// scripts/render_flightrec.py merges a dump's per-thread rings into one
// chronological timeline; FlightRecorder::decode does the same in-process
// for tests and tools.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/time.h"

namespace mahimahi::obs {

// Compact event vocabulary; `a`/`b` payload meaning per type (the renderer
// knows these too):
//   kFrameRx       a = peer id,        b = payload bytes
//   kFrameTx       a = peer id (or ~0 for broadcast), b = payload bytes
//   kBlockAdmit    a = author,         b = round     (frame admitted to verify)
//   kBlockInsert   a = author,         b = round     (DAG insert)
//   kCommit        a = leader author,  b = slot round
//   kWalFlush      a = records,        b = bytes (0 when unknown)
//   kCheckpointCut a = cut round,      b = cut index
//   kStall         a = busy micros,    b = stall budget micros
//   kSnapshot      a = reason (0 = on-demand, 1 = stall, 2 = signal)
enum class FlightEventType : std::uint8_t {
  kNone = 0,
  kFrameRx = 1,
  kFrameTx = 2,
  kBlockAdmit = 3,
  kBlockInsert = 4,
  kCommit = 5,
  kWalFlush = 6,
  kCheckpointCut = 7,
  kStall = 8,
  kSnapshot = 9,
};

// Stable short name for rendering ("frame_rx", "commit", ...).
std::string_view flight_event_name(FlightEventType type);

// One decoded event, as returned by snapshot()/decode().
struct FlightEvent {
  TimeMicros at = 0;
  FlightEventType type = FlightEventType::kNone;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t ring = 0;         // ring (thread) index within the recorder
  std::uint64_t thread_tag = 0;   // OS thread id of the ring's owner
  std::string label;              // thread label, when one was set
};

class FlightRecorder {
 public:
  struct Options {
    // Slots per thread ring; rounded up to a power of two. 4096 32-byte
    // slots = 128 KiB per recording thread — minutes of steady-state
    // pipeline events, seconds under overload.
    std::size_t ring_capacity = 4096;
  };

  // (Separate default constructor: GCC rejects `Options = {}` default
  // arguments for nested aggregates with deferred member initializers.)
  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(Options options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // The hot path: stamps an event into the calling thread's ring. `at` is
  // the caller's clock (steady micros in the runtime) so events slot into
  // the same timeline as the tracer spans.
  void record(FlightEventType type, TimeMicros at, std::uint64_t a = 0, std::uint64_t b = 0);

  // Convenience overload that self-stamps with steady_now_micros().
  void record_now(FlightEventType type, std::uint64_t a = 0, std::uint64_t b = 0);

  // Names the calling thread's ring in dumps ("loop", "verify0", "wal", …).
  // Truncated to 15 chars. Call once, before or after the first record.
  void label_thread(std::string_view label);

  // Merged chronological view of every ring (oldest surviving event first).
  // Any thread; writers keep writing.
  std::vector<FlightEvent> snapshot() const;

  // The dump file format (magic "MMFR", version 1), as bytes — what the
  // /flightrec admin endpoint serves and dump_to_file writes.
  Bytes snapshot_binary() const;

  // Writes the binary dump to `path` (O_TRUNC). Returns false on I/O error.
  bool dump_to_file(const std::string& path) const;

  // Async-signal-safe dump: only ::write(fd) — no locks, no allocation.
  // Returns 0 on success, -1 on a short or failed write.
  int write_to_fd(int fd) const;

  // Parses a binary dump back into chronological events (renderer/tests).
  // Throws std::runtime_error on a malformed dump.
  static std::vector<FlightEvent> decode(BytesView data);

  // Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump `recorder`
  // to directory/flightrec-crash-<pid>.bin and re-raise. One recorder
  // process-wide (last install wins); pass nullptr to disarm.
  static void install_crash_handler(FlightRecorder* recorder, std::string directory);

  // Number of rings registered so far (one per recording thread).
  std::size_t ring_count() const { return ring_count_.load(std::memory_order_acquire); }

 private:
  // A slot is four atomic words. The writer publishes `tag` last (release)
  // holding (sequence << 8) | type; a reader that acquires a tag whose
  // sequence matches the index it expects gets the matching payload words.
  struct Slot {
    std::atomic<std::uint64_t> tag{0};
    std::atomic<std::uint64_t> time{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::atomic<std::uint64_t> head{0};
    std::uint64_t thread_tag = 0;
    std::array<char, 16> label{};  // NUL-terminated; written before events
    std::vector<Slot> slots;
  };

  // Fixed upper bound on recording threads; registration past it reuses
  // rings round-robin (multi-writer rings stay correct, merely mixed).
  static constexpr std::size_t kMaxRings = 64;

  Ring& ring_for_this_thread();
  Ring* register_thread();
  void append_ring_events(const Ring& ring, std::uint32_t index,
                          std::vector<FlightEvent>& out) const;

  std::size_t capacity_;  // power of two
  std::uint64_t mask_;
  mutable std::mutex register_mutex_;
  std::array<std::unique_ptr<Ring>, kMaxRings> rings_;
  std::atomic<std::size_t> ring_count_{0};
  // Registration-time map so a thread evicted from the TLS cache re-finds
  // its ring instead of registering a duplicate. Mutex-guarded, cold path.
  std::unordered_map<std::uint64_t, Ring*> ring_by_thread_;
};

}  // namespace mahimahi::obs
