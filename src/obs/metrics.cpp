#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace mahimahi::obs {

namespace detail {

std::size_t shard_index() {
  // Threads take stripes round-robin; the mask keeps the id in range once
  // more threads than stripes have been born (they then share).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return index;
}

}  // namespace detail

std::uint64_t HistogramSnapshot::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target sample, 1-based; p=0 maps to the first sample.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(n) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(buckets.size() - 1);
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(std::string_view name) const {
  for (const Entry& entry : entries)
    if (entry.name == name) return &entry;
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const Entry* entry = find(name);
  return entry != nullptr && entry->kind == MetricKind::kCounter ? entry->value : 0;
}

std::int64_t MetricsSnapshot::gauge_value(std::string_view name) const {
  const Entry* entry = find(name);
  return entry != nullptr && entry->kind == MetricKind::kGauge ? entry->gauge_value : 0;
}

HistogramSnapshot MetricsSnapshot::histogram(std::string_view name) const {
  const Entry* entry = find(name);
  return entry != nullptr && entry->kind == MetricKind::kHistogram ? entry->histogram
                                                                   : HistogramSnapshot{};
}

Registry::Registry(std::string labels) : labels_(std::move(labels)) {}

Registry::Metric& Registry::emplace(const std::string& name, MetricKind kind,
                                    const std::string& help) {
  auto [it, inserted] = metrics_.try_emplace(name);
  Metric& metric = it->second;
  if (inserted) {
    metric.kind = kind;
    metric.help = help;
  } else if (metric.kind != kind) {
    throw std::logic_error("obs: metric '" + name + "' re-registered with a different kind");
  }
  return metric;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Metric& metric = emplace(name, MetricKind::kCounter, help);
  if (metric.counter_callback)
    throw std::logic_error("obs: metric '" + name + "' is a callback counter");
  if (!metric.counter) metric.counter = std::make_unique<Counter>();
  return *metric.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Metric& metric = emplace(name, MetricKind::kGauge, help);
  if (metric.gauge_callback)
    throw std::logic_error("obs: metric '" + name + "' is a callback gauge");
  if (!metric.gauge) metric.gauge = std::make_unique<Gauge>();
  return *metric.gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Metric& metric = emplace(name, MetricKind::kHistogram, help);
  if (!metric.histogram) metric.histogram = std::make_unique<Histogram>();
  return *metric.histogram;
}

void Registry::counter_fn(const std::string& name, std::function<std::uint64_t()> fn,
                          const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Metric& metric = emplace(name, MetricKind::kCounter, help);
  if (metric.counter)
    throw std::logic_error("obs: metric '" + name + "' is already a plain counter");
  metric.counter_callback = std::move(fn);
}

void Registry::gauge_fn(const std::string& name, std::function<std::int64_t()> fn,
                        const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Metric& metric = emplace(name, MetricKind::kGauge, help);
  if (metric.gauge) throw std::logic_error("obs: metric '" + name + "' is already a plain gauge");
  metric.gauge_callback = std::move(fn);
}

MetricsSnapshot Registry::dump() const {
  MetricsSnapshot out;
  out.labels = labels_;
  std::lock_guard<std::mutex> lock(mutex_);
  out.entries.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {  // std::map: sorted by name
    MetricsSnapshot::Entry entry;
    entry.name = name;
    entry.help = metric.help;
    entry.kind = metric.kind;
    switch (metric.kind) {
      case MetricKind::kCounter:
        entry.value = metric.counter_callback ? metric.counter_callback()
                      : metric.counter       ? metric.counter->value()
                                             : 0;
        break;
      case MetricKind::kGauge:
        entry.gauge_value = metric.gauge_callback ? metric.gauge_callback()
                            : metric.gauge        ? metric.gauge->value()
                                                  : 0;
        break;
      case MetricKind::kHistogram:
        if (metric.histogram) entry.histogram = metric.histogram->snapshot();
        break;
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

}  // namespace mahimahi::obs
