// Loop-stall watchdog: per-tick busy-time histogram, a max-stall high-water
// gauge, and a rate-limited warning when one event-loop tick exceeds its
// budget.
//
// The event loop calls observe_tick() once per iteration with the busy slice
// (time spent outside the poll wait) — the single number that tells you
// whether some callback is squatting on the I/O thread. observe_tick() is a
// histogram record plus two relaxed loads on the happy path; the warn branch
// only fires past the budget and is rate-limited so a pathological workload
// warns once a second instead of flooding stderr.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/time.h"
#include "obs/metrics.h"

namespace mahimahi::obs {

struct LoopWatchdogOptions {
  // A tick busier than this is a stall. 50-validator cluster smokes run whole
  // commit batches through callbacks, so the default is generous; latency
  // deployments tighten it.
  TimeMicros stall_budget = millis(250);
  // Minimum spacing between MM_LOG(kWarn) lines.
  TimeMicros warn_interval = seconds(1);
  // Fired on a stall, rate-limited together with the warn line (at most one
  // call per warn_interval) so a wedged loop triggers one forensic action —
  // the runtime dumps its flight recorder here — not one per tick.
  std::function<void(TimeMicros busy_micros, TimeMicros now)> on_stall;
};

class LoopWatchdog {
 public:
  // `tag` names the loop in the warn line (e.g. "v3"). Metrics registered:
  // mm_loop_tick_busy_micros (histogram), mm_loop_max_stall_micros (gauge),
  // mm_loop_stalls_total (counter).
  LoopWatchdog(Registry& registry, LoopWatchdogOptions options, std::string tag);

  // Called by the observed loop after each iteration; `now` is the tick's end
  // stamp in the driver's clock domain.
  void observe_tick(TimeMicros busy_micros, TimeMicros now);

  std::uint64_t stalls() const { return stalls_->value(); }

 private:
  LoopWatchdogOptions options_;
  std::string tag_;
  Histogram* tick_busy_micros_;
  Gauge* max_stall_micros_;
  Counter* stalls_;
  TimeMicros last_warn_ = 0;
  bool warned_ = false;
};

}  // namespace mahimahi::obs
