#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/log.h"

namespace mahimahi::obs {

namespace {

// Dump file layout (all integers little-endian):
//   "MMFR" u32-version
//   u32 ring_count
//   per ring: u32 ring_index, u64 thread_tag, char label[16], u32 count,
//             count * { u64 time, u64 type, u64 a, u64 b }
constexpr char kMagic[4] = {'M', 'M', 'F', 'R'};
constexpr std::uint32_t kVersion = 1;

// Small per-thread cache of (recorder -> ring) so a thread recording into a
// handful of recorders (co-located validators in one process) stays off the
// registration mutex. Ring pointers outlive the recorder's last record call,
// but a destroyed recorder's address can be reused — entries are invalidated
// by the recorder's destructor.
struct TlsEntry {
  const void* owner = nullptr;
  void* ring = nullptr;
};
thread_local std::array<TlsEntry, 4> tls_rings{};
thread_local std::size_t tls_next = 0;

std::uint64_t this_thread_tag() {
  return static_cast<std::uint64_t>(::gettid());
}

void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// --- crash-handler state (process-global, signal-safe) -----------------------

std::atomic<FlightRecorder*> g_crash_recorder{nullptr};
char g_crash_dir[256] = ".";

// Appends the decimal rendering of v to buf at pos (no snprintf: the crash
// path must stay async-signal-safe).
void append_decimal(char* buf, std::size_t& pos, std::size_t cap, std::uint64_t v) {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos + 1 < cap) buf[pos++] = digits[--n];
}

void crash_handler(int signo) {
  FlightRecorder* recorder = g_crash_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) {
    char path[320];
    std::size_t pos = 0;
    const char* dir = g_crash_dir;
    while (*dir != '\0' && pos + 1 < sizeof(path)) path[pos++] = *dir++;
    const char prefix[] = "/flightrec-crash-";
    for (const char* p = prefix; *p != '\0' && pos + 1 < sizeof(path); ++p) path[pos++] = *p;
    append_decimal(path, pos, sizeof(path), static_cast<std::uint64_t>(::getpid()));
    const char suffix[] = ".bin";
    for (const char* p = suffix; *p != '\0' && pos + 1 < sizeof(path); ++p) path[pos++] = *p;
    path[pos] = '\0';
    const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder->write_to_fd(fd);
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // still dies with the original signal (core dumps and exit codes intact).
  ::raise(signo);
}

// Writes all of `size` bytes, retrying short writes. Signal-safe.
int write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n <= 0) return -1;
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return 0;
}

}  // namespace

std::string_view flight_event_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::kNone: return "none";
    case FlightEventType::kFrameRx: return "frame_rx";
    case FlightEventType::kFrameTx: return "frame_tx";
    case FlightEventType::kBlockAdmit: return "block_admit";
    case FlightEventType::kBlockInsert: return "block_insert";
    case FlightEventType::kCommit: return "commit";
    case FlightEventType::kWalFlush: return "wal_flush";
    case FlightEventType::kCheckpointCut: return "checkpoint_cut";
    case FlightEventType::kStall: return "stall";
    case FlightEventType::kSnapshot: return "snapshot";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(Options options)
    : capacity_(std::bit_ceil(std::max<std::size_t>(options.ring_capacity, 8))),
      mask_(capacity_ - 1) {}

FlightRecorder::~FlightRecorder() {
  if (g_crash_recorder.load(std::memory_order_relaxed) == this) {
    g_crash_recorder.store(nullptr, std::memory_order_release);
  }
  // Drop any TLS cache entries pointing at this recorder on the destroying
  // thread. Other threads' stale entries are harmless as long as callers
  // stop recording before destruction (the runtime joins its threads first);
  // the owner-pointer check alone cannot save a use-after-free, this just
  // keeps the common single-threaded test pattern clean across recorders.
  for (TlsEntry& entry : tls_rings) {
    if (entry.owner == this) entry = TlsEntry{};
  }
}

void FlightRecorder::record(FlightEventType type, TimeMicros at, std::uint64_t a,
                            std::uint64_t b) {
  Ring& ring = ring_for_this_thread();
  const std::uint64_t seq = ring.head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[seq & mask_];
  slot.time.store(static_cast<std::uint64_t>(at), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // Publish last: a reader that acquires a tag matching its expected
  // sequence observes the payload stores above.
  slot.tag.store((seq << 8) | static_cast<std::uint64_t>(type), std::memory_order_release);
}

void FlightRecorder::record_now(FlightEventType type, std::uint64_t a, std::uint64_t b) {
  record(type, steady_now_micros(), a, b);
}

void FlightRecorder::label_thread(std::string_view label) {
  Ring& ring = ring_for_this_thread();
  const std::size_t n = std::min(label.size(), ring.label.size() - 1);
  std::memcpy(ring.label.data(), label.data(), n);
  ring.label[n] = '\0';
}

FlightRecorder::Ring& FlightRecorder::ring_for_this_thread() {
  for (const TlsEntry& entry : tls_rings) {
    if (entry.owner == this) return *static_cast<Ring*>(entry.ring);
  }
  return *register_thread();
}

FlightRecorder::Ring* FlightRecorder::register_thread() {
  const std::uint64_t tag = this_thread_tag();
  Ring* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(register_mutex_);
    auto it = ring_by_thread_.find(tag);
    if (it != ring_by_thread_.end()) {
      ring = it->second;
    } else {
      const std::size_t count = ring_count_.load(std::memory_order_relaxed);
      if (count < kMaxRings) {
        rings_[count] = std::make_unique<Ring>(capacity_);
        ring = rings_[count].get();
        ring->thread_tag = tag;
        // Publish after the ring is fully constructed: snapshot() and the
        // signal handler iterate [0, ring_count) against this release.
        ring_count_.store(count + 1, std::memory_order_release);
      } else {
        // Past the cap, threads share rings round-robin; fetch_add heads
        // keep multi-writer rings correct, events just interleave.
        ring = rings_[tag % kMaxRings].get();
      }
      ring_by_thread_[tag] = ring;
    }
  }
  // Rotate into the TLS cache (evicts the oldest of 4 entries).
  tls_rings[tls_next % tls_rings.size()] = TlsEntry{this, ring};
  ++tls_next;
  return ring;
}

void FlightRecorder::append_ring_events(const Ring& ring, std::uint32_t index,
                                        std::vector<FlightEvent>& out) const {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t start = head > capacity_ ? head - capacity_ : 0;
  const std::string label(ring.label.data());
  for (std::uint64_t seq = start; seq < head; ++seq) {
    const Slot& slot = ring.slots[seq & mask_];
    const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    // A mismatched sequence means the slot is mid-overwrite (or was lapped
    // between the head load and here): drop it rather than misreport.
    if ((tag >> 8) != seq) continue;
    FlightEvent event;
    event.at = static_cast<TimeMicros>(slot.time.load(std::memory_order_relaxed));
    event.type = static_cast<FlightEventType>(tag & 0xff);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    event.ring = index;
    event.thread_tag = ring.thread_tag;
    event.label = label;
    out.push_back(std::move(event));
  }
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  const std::size_t count = ring_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) append_ring_events(*rings_[i], i, out);
  // Chronological merge; stable so same-stamp events keep per-ring order.
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) { return x.at < y.at; });
  return out;
}

Bytes FlightRecorder::snapshot_binary() const {
  Bytes out;
  out.insert(out.end(), kMagic, kMagic + 4);
  append_u32(out, kVersion);
  const std::size_t count = ring_count_.load(std::memory_order_acquire);
  append_u32(out, static_cast<std::uint32_t>(count));
  std::vector<FlightEvent> events;
  for (std::size_t i = 0; i < count; ++i) {
    events.clear();
    append_ring_events(*rings_[i], static_cast<std::uint32_t>(i), events);
    append_u32(out, static_cast<std::uint32_t>(i));
    append_u64(out, rings_[i]->thread_tag);
    out.insert(out.end(), rings_[i]->label.begin(), rings_[i]->label.end());
    append_u32(out, static_cast<std::uint32_t>(events.size()));
    for (const FlightEvent& event : events) {
      append_u64(out, static_cast<std::uint64_t>(event.at));
      append_u64(out, static_cast<std::uint64_t>(event.type));
      append_u64(out, event.a);
      append_u64(out, event.b);
    }
  }
  return out;
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    MM_LOG(kWarn) << "flight recorder: cannot open dump file " << path;
    return false;
  }
  const int rc = write_to_fd(fd);
  ::close(fd);
  if (rc != 0) MM_LOG(kWarn) << "flight recorder: short write to " << path;
  return rc == 0;
}

int FlightRecorder::write_to_fd(int fd) const {
  // Stack-only serialization in ring-sized chunks: this runs inside fatal
  // signal handlers, so no allocation and no locks.
  unsigned char header[12];
  std::memcpy(header, kMagic, 4);
  for (int i = 0; i < 4; ++i) header[4 + i] = static_cast<unsigned char>(kVersion >> (8 * i));
  const std::size_t count = ring_count_.load(std::memory_order_acquire);
  for (int i = 0; i < 4; ++i) header[8 + i] = static_cast<unsigned char>(count >> (8 * i));
  if (write_all(fd, header, sizeof(header)) != 0) return -1;

  for (std::size_t r = 0; r < count; ++r) {
    const Ring& ring = *rings_[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t start = head > capacity_ ? head - capacity_ : 0;
    // First pass counts survivors so the ring header is exact; the window
    // between passes can drop a survivor (lapped meanwhile) — pad with
    // kNone events rather than lie about the count.
    std::uint32_t survivors = 0;
    for (std::uint64_t seq = start; seq < head; ++seq) {
      if ((ring.slots[seq & mask_].tag.load(std::memory_order_acquire) >> 8) == seq) ++survivors;
    }
    unsigned char ring_header[4 + 8 + 16 + 4];
    std::size_t pos = 0;
    for (int i = 0; i < 4; ++i) ring_header[pos++] = static_cast<unsigned char>(r >> (8 * i));
    for (int i = 0; i < 8; ++i)
      ring_header[pos++] = static_cast<unsigned char>(ring.thread_tag >> (8 * i));
    std::memcpy(ring_header + pos, ring.label.data(), 16);
    pos += 16;
    for (int i = 0; i < 4; ++i)
      ring_header[pos++] = static_cast<unsigned char>(survivors >> (8 * i));
    if (write_all(fd, ring_header, sizeof(ring_header)) != 0) return -1;

    std::uint32_t written = 0;
    unsigned char record[32];
    for (std::uint64_t seq = start; seq < head && written < survivors; ++seq) {
      const Slot& slot = ring.slots[seq & mask_];
      const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
      if ((tag >> 8) != seq) continue;
      const std::uint64_t words[4] = {slot.time.load(std::memory_order_relaxed), tag & 0xff,
                                      slot.a.load(std::memory_order_relaxed),
                                      slot.b.load(std::memory_order_relaxed)};
      for (int w = 0; w < 4; ++w) {
        for (int i = 0; i < 8; ++i)
          record[w * 8 + i] = static_cast<unsigned char>(words[w] >> (8 * i));
      }
      if (write_all(fd, record, sizeof(record)) != 0) return -1;
      ++written;
    }
    std::memset(record, 0, sizeof(record));  // kNone padding
    for (; written < survivors; ++written) {
      if (write_all(fd, record, sizeof(record)) != 0) return -1;
    }
  }
  return 0;
}

std::vector<FlightEvent> FlightRecorder::decode(BytesView data) {
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (data.size() - pos < n) throw std::runtime_error("flightrec dump truncated");
  };
  const auto read_u32 = [&]() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = v << 8 | data[pos + static_cast<std::size_t>(i)];
    pos += 4;
    return v;
  };
  const auto read_u64 = [&]() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = v << 8 | data[pos + static_cast<std::size_t>(i)];
    pos += 8;
    return v;
  };

  need(4);
  if (std::memcmp(data.data(), kMagic, 4) != 0)
    throw std::runtime_error("flightrec dump: bad magic");
  pos += 4;
  if (read_u32() != kVersion) throw std::runtime_error("flightrec dump: unknown version");
  const std::uint32_t ring_count = read_u32();
  std::vector<FlightEvent> out;
  for (std::uint32_t r = 0; r < ring_count; ++r) {
    const std::uint32_t ring_index = read_u32();
    const std::uint64_t thread_tag = read_u64();
    need(16);
    char label[17];
    std::memcpy(label, data.data() + pos, 16);
    label[16] = '\0';
    pos += 16;
    const std::uint32_t event_count = read_u32();
    for (std::uint32_t e = 0; e < event_count; ++e) {
      FlightEvent event;
      event.at = static_cast<TimeMicros>(read_u64());
      event.type = static_cast<FlightEventType>(read_u64() & 0xff);
      event.a = read_u64();
      event.b = read_u64();
      event.ring = ring_index;
      event.thread_tag = thread_tag;
      event.label = label;
      if (event.type != FlightEventType::kNone) out.push_back(std::move(event));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) { return x.at < y.at; });
  return out;
}

void FlightRecorder::install_crash_handler(FlightRecorder* recorder, std::string directory) {
  if (!directory.empty()) {
    const std::size_t n = std::min(directory.size(), sizeof(g_crash_dir) - 1);
    std::memcpy(g_crash_dir, directory.data(), n);
    g_crash_dir[n] = '\0';
  }
  g_crash_recorder.store(recorder, std::memory_order_release);
  if (recorder == nullptr) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &crash_handler;
  // One shot: the handler dumps, the default disposition then kills us on
  // the re-raise (no handler recursion if the dump itself faults).
  action.sa_flags = SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  for (const int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(signo, &action, nullptr);
  }
}

}  // namespace mahimahi::obs
