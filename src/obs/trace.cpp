#include "obs/trace.h"

#include "types/block.h"

namespace mahimahi::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kDecode: return "decode";
    case Stage::kStructural: return "structural";
    case Stage::kCryptoVerify: return "crypto_verify";
    case Stage::kInsertQueue: return "insert_queue";
    case Stage::kDagInsert: return "dag_insert";
    case Stage::kCommitScan: return "commit_scan";
    case Stage::kCommitWait: return "commit_wait";
    case Stage::kApply: return "apply";
    case Stage::kWalDurable: return "wal_durable";
    case Stage::kExecute: return "execute";
    case Stage::kCount: break;
  }
  return "unknown";
}

LifecycleTracer::LifecycleTracer(Registry& registry) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    stage_micros_[i] = &registry.histogram(
        std::string("mm_stage_") + stage_name(static_cast<Stage>(i)) + "_micros",
        std::string("Per-block latency of the ") + stage_name(static_cast<Stage>(i)) +
            " pipeline stage, microseconds");
  }
  finality_micros_ = &registry.histogram(
      "mm_finality_micros",
      "End-to-end finality: batch submit stamp to commit, weighted by transactions");
  nonmonotonic_ = &registry.counter(
      "mm_trace_nonmonotonic_total",
      "Lifecycle deltas that came out negative (clamped to 0); should be zero");
  finality_skipped_ = &registry.counter(
      "mm_trace_finality_unstamped_total",
      "Committed batches without a submit stamp, excluded from mm_finality_micros");
}

void LifecycleTracer::block_inserted(const Digest& digest, TimeMicros now) {
  auto [it, inserted] = inserted_at_.try_emplace(digest, now);
  if (!inserted) return;  // replay/duplicate insert keeps the first stamp
  insert_order_.push_back(digest);
  while (insert_order_.size() > kMaxTrackedBlocks) {
    inserted_at_.erase(insert_order_.front());
    insert_order_.pop_front();
  }
}

void LifecycleTracer::sub_dag_committed(const CommittedSubDag& sub_dag, TimeMicros now,
                                        bool record_finality) {
  for (const BlockPtr& block : sub_dag.blocks) {
    auto it = inserted_at_.find(block->digest());
    if (it != inserted_at_.end()) {
      record_stage(Stage::kCommitWait, now - it->second);
      // Leave the stamp in place: other paths (e.g. the FIFO) clean it up.
      // Erasing here keeps the table small on the common path, and a block
      // commits exactly once, so the stamp is spent.
      inserted_at_.erase(it);
    }
    if (!record_finality) continue;
    for (const TxBatch& batch : block->batches()) {
      batch_delivered(batch.submitted_at, batch.count, now);
    }
  }
}

void LifecycleTracer::batch_delivered(TimeMicros submitted_at, std::uint32_t count,
                                      TimeMicros now) {
  const std::uint64_t weight = count == 0 ? 1 : count;
  if (submitted_at <= 0) {
    finality_skipped_->add(weight);
    return;
  }
  if (now < submitted_at) {
    nonmonotonic_->add(weight);
    finality_micros_->record(0, weight);
  } else {
    finality_micros_->record(now - submitted_at, weight);
  }
}

}  // namespace mahimahi::obs
