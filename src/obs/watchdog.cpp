#include "obs/watchdog.h"

#include "common/log.h"

namespace mahimahi::obs {

LoopWatchdog::LoopWatchdog(Registry& registry, LoopWatchdogOptions options, std::string tag)
    : options_(options),
      tag_(std::move(tag)),
      tick_busy_micros_(&registry.histogram("mm_loop_tick_busy_micros",
                                            "Busy time per event-loop tick, microseconds")),
      max_stall_micros_(&registry.gauge("mm_loop_max_stall_micros",
                                        "Longest single event-loop tick seen, microseconds")),
      stalls_(&registry.counter("mm_loop_stalls_total",
                                "Event-loop ticks that exceeded the stall budget")) {}

void LoopWatchdog::observe_tick(TimeMicros busy_micros, TimeMicros now) {
  tick_busy_micros_->record(busy_micros);
  max_stall_micros_->update_max(busy_micros);
  if (busy_micros <= options_.stall_budget) return;
  stalls_->add();
  if (warned_ && now - last_warn_ < options_.warn_interval) return;
  warned_ = true;
  last_warn_ = now;
  MM_LOG(kWarn) << "loop stall: " << tag_ << " tick busy " << busy_micros << "us exceeds budget "
                << options_.stall_budget << "us (" << stalls_->value() << " stalls total)";
  if (options_.on_stall) options_.on_stall(busy_micros, now);
}

}  // namespace mahimahi::obs
