// Block lifecycle tracing: TimeMicros stamps at every pipeline handoff,
// folded into per-stage log2 histograms.
//
// The pipeline stages, in wire-to-state order:
//
//   ingress decode -> structural check -> crypto verify -> insert queue ->
//   DAG insert -> commit scan -> commit wait -> apply/linearize ->
//   WAL durable -> execution
//
// plus an end-to-end finality histogram (client submit stamp -> commit on
// this validator) weighted by transaction count, the distribution the
// ROADMAP's million-client front door reads its SLO from.
//
// Stamping discipline: the driver (NodeRuntime or the sim harness) supplies
// every timestamp — steady-clock micros in the real runtime, virtual time in
// the sim, so sim spans are deterministic. record_stage() is histogram
// recording only (thread-safe, lock-free); the per-block insert-stamp table
// behind block_inserted()/sub_dag_committed() is NOT thread-safe and must be
// touched from one thread only (the loop thread / the sim thread), which is
// where inserts and commits already live.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/time.h"
#include "core/decision.h"
#include "crypto/digest.h"
#include "obs/metrics.h"

namespace mahimahi::obs {

// Indexes into the per-stage histogram table; kCount is not a stage.
enum class Stage : std::size_t {
  kDecode = 0,     // ingress frame received -> block decoded (incl. queue wait)
  kStructural,     // structural validation of a decoded block
  kCryptoVerify,   // signature verification (batch-amortized per block)
  kInsertQueue,    // verified on worker -> picked up by the loop thread
  kDagInsert,      // core on_blocks step (DAG insert + block production)
  kCommitScan,     // off-loop commit-rule scan duration
  kCommitWait,     // DAG insert -> commit decision applied (per committed block)
  kApply,          // apply_commit_decisions / linearization duration
  kWalDurable,     // WAL append -> group-commit durability ack
  kExecute,        // committed sub-dag handed to execution -> applied
  kCount,
};

const char* stage_name(Stage stage);
constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

class LifecycleTracer {
 public:
  explicit LifecycleTracer(Registry& registry);

  // Fold one per-stage delta into the stage histogram. weight > 1 amortizes a
  // batch-level measurement over its blocks (value should then be the
  // per-item mean). Negative deltas clamp to 0 and bump the nonmonotonic
  // counter — the sim monotonicity test asserts that counter stays 0.
  void record_stage(Stage stage, TimeMicros delta, std::uint64_t weight = 1) {
    if (delta < 0) {
      nonmonotonic_->add(weight);
      delta = 0;
    }
    stage_micros_[static_cast<std::size_t>(stage)]->record(delta, weight);
  }

  // Loop-thread only: remember when `digest` entered the DAG; consumed by
  // sub_dag_committed to produce the kCommitWait breakdown. The table is
  // FIFO-bounded — blocks that never commit (equivocators, pruned forks) age
  // out instead of leaking.
  void block_inserted(const Digest& digest, TimeMicros now);

  // Loop-thread only: one committed sub-dag. Records kCommitWait per block
  // (for blocks whose insert stamp is still tracked) and — unless the driver
  // owns an execution engine (record_finality = false) — the end-to-end
  // finality histogram from each batch's submitted_at stamp, weighted by the
  // batch's transaction count. Batches with submitted_at == 0 (unstamped
  // drivers) are skipped. With an engine, finality moves to delivery time:
  // batch_delivered() fires per retired execution wave instead.
  void sub_dag_committed(const CommittedSubDag& sub_dag, TimeMicros now,
                         bool record_finality = true);

  // Thread-safe (histogram and counter records only — no stamp-table
  // access): one batch's finality stamp at execution-delivery time. Called
  // from the execution engine's delivery context, which is the merge thread
  // when execution_threads > 0 — that is why this path must not touch
  // inserted_at_.
  void batch_delivered(TimeMicros submitted_at, std::uint32_t count,
                       TimeMicros now);

  std::uint64_t nonmonotonic() const { return nonmonotonic_->value(); }

 private:
  static constexpr std::size_t kMaxTrackedBlocks = 1 << 16;

  std::array<Histogram*, kStageCount> stage_micros_{};
  Histogram* finality_micros_;
  Counter* nonmonotonic_;
  Counter* finality_skipped_;

  std::unordered_map<Digest, TimeMicros, DigestHasher> inserted_at_;
  std::deque<Digest> insert_order_;
};

}  // namespace mahimahi::obs
