#include "serde/serde.h"

namespace mahimahi::serde {

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw SerdeError("varint too long");
    const std::uint8_t byte = u8();
    // The 10th byte may only contribute the single remaining bit.
    if (shift == 63 && (byte & 0x7e) != 0) throw SerdeError("varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace mahimahi::serde
