// Binary serialization: little-endian fixed-width integers, LEB128 varints,
// and length-prefixed byte strings.
//
// This is the wire format for blocks (network frames and WAL records) and the
// preimage format for block digests, so encoding must be deterministic: the
// same value always serializes to the same bytes.
//
// Readers are bounds-checked and throw SerdeError on malformed input; the
// network layer catches at the message boundary and drops the peer's frame.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace mahimahi::serde {

class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v, 2); }
  void u32(std::uint32_t v) { append_le(v, 4); }
  void u64(std::uint64_t v) { append_le(v, 8); }

  // Unsigned LEB128; compact for small counts/rounds.
  void varint(std::uint64_t v);

  // Raw bytes, no length prefix.
  void raw(BytesView data) { out_.insert(out_.end(), data.begin(), data.end()); }

  // varint length followed by the bytes.
  void bytes(BytesView data) {
    varint(data.size());
    raw(data);
  }

  void digest(const Digest& d) { raw(d.view()); }

  const Bytes& data() const& { return out_; }
  Bytes take() && { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  void append_le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  Bytes out_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(read_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(read_le(4)); }
  std::uint64_t u64() { return read_le(8); }

  std::uint64_t varint();

  BytesView raw(std::size_t count) { return take(count); }

  Bytes bytes() {
    const std::uint64_t len = varint();
    // A length prefix can never legitimately exceed what remains.
    if (len > remaining()) throw SerdeError("length prefix exceeds input");
    const BytesView view = take(static_cast<std::size_t>(len));
    return Bytes(view.begin(), view.end());
  }

  Digest digest() {
    const BytesView view = take(32);
    Digest d;
    std::copy(view.begin(), view.end(), d.bytes.begin());
    return d;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  // Call at the end of a top-level decode to reject trailing garbage.
  void expect_done() const {
    if (!done()) throw SerdeError("trailing bytes after message");
  }

 private:
  BytesView take(std::size_t count) {
    if (count > remaining()) throw SerdeError("unexpected end of input");
    const BytesView view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }

  std::uint64_t read_le(int width) {
    const BytesView view = take(width);
    std::uint64_t v = 0;
    for (int i = width - 1; i >= 0; --i) v = v << 8 | view[i];
    return v;
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace mahimahi::serde
