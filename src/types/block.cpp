#include "types/block.h"

#include "crypto/blake2b.h"

namespace mahimahi {

namespace {
// v2 added the author creation timestamp to the digested content.
constexpr std::string_view kDigestDomain = "mahi-mahi/block/v2";
}

Block Block::make(ValidatorId author, Round round, std::vector<BlockRef> parents,
                  std::vector<TxBatch> batches, crypto::CoinShare coin_share,
                  const crypto::Ed25519PrivateKey& key, TimeMicros created_at) {
  Block b;
  b.author_ = author;
  b.round_ = round;
  b.created_at_ = created_at < 0 ? 0 : created_at;
  b.parents_ = std::move(parents);
  b.batches_ = std::move(batches);
  b.coin_share_ = coin_share;
  b.finalize_digest();
  b.signature_ = crypto::ed25519_sign(key, b.digest_.view());
  return b;
}

Block Block::genesis(ValidatorId author, const crypto::ThresholdCoin& coin) {
  Block b;
  b.author_ = author;
  b.round_ = 0;
  b.coin_share_ = coin.share(author, 0);
  b.finalize_digest();
  // Genesis carries no signature; it is constructed locally by everyone.
  return b;
}

std::uint64_t Block::transaction_count() const {
  std::uint64_t total = 0;
  for (const auto& batch : batches_) total += batch.count;
  return total;
}

std::uint64_t Block::wire_bytes() const {
  // Header approximation: author, round, timestamp, parents, coin share,
  // signature.
  std::uint64_t total = 4 + 9 + 9 + parents_.size() * 44 + 32 + 64;
  for (const auto& batch : batches_) total += 24 + batch.wire_bytes();
  return total;
}

Bytes Block::content_bytes() const {
  serde::Writer w(256 + batches_.size() * 32 + parents_.size() * 48);
  w.raw(as_bytes_view(kDigestDomain));
  w.u32(author_);
  w.varint(round_);
  w.varint(static_cast<std::uint64_t>(created_at_));
  w.varint(parents_.size());
  for (const auto& parent : parents_) {
    w.varint(parent.round);
    w.u32(parent.author);
    w.digest(parent.digest);
  }
  w.digest(coin_share_);
  w.varint(batches_.size());
  for (const auto& batch : batches_) batch.serialize(w);
  return std::move(w).take();
}

void Block::finalize_digest() {
  const Bytes content = content_bytes();
  digest_ = crypto::Blake2b::hash256({content.data(), content.size()});
}

Bytes Block::serialize() const {
  serde::Writer w;
  const Bytes content = content_bytes();
  w.raw({content.data(), content.size()});
  w.raw({signature_.bytes.data(), signature_.bytes.size()});
  return std::move(w).take();
}

Block Block::deserialize(BytesView data) {
  serde::Reader r(data);
  const BytesView domain = r.raw(kDigestDomain.size());
  if (!std::equal(domain.begin(), domain.end(), kDigestDomain.begin(),
                  kDigestDomain.end())) {
    throw serde::SerdeError("bad block domain tag");
  }
  Block b;
  b.author_ = r.u32();
  b.round_ = r.varint();
  b.created_at_ = static_cast<TimeMicros>(r.varint());
  const std::uint64_t parent_count = r.varint();
  if (parent_count > 1 << 20) throw serde::SerdeError("absurd parent count");
  b.parents_.reserve(parent_count);
  for (std::uint64_t i = 0; i < parent_count; ++i) {
    BlockRef ref;
    ref.round = r.varint();
    ref.author = r.u32();
    ref.digest = r.digest();
    b.parents_.push_back(ref);
  }
  b.coin_share_ = r.digest();
  const std::uint64_t batch_count = r.varint();
  if (batch_count > 1 << 24) throw serde::SerdeError("absurd batch count");
  b.batches_.reserve(batch_count);
  for (std::uint64_t i = 0; i < batch_count; ++i) b.batches_.push_back(TxBatch::deserialize(r));
  const BytesView sig = r.raw(64);
  std::copy(sig.begin(), sig.end(), b.signature_.bytes.begin());
  r.expect_done();
  b.finalize_digest();
  return b;
}

}  // namespace mahimahi
