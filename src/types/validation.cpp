#include "types/validation.h"

#include <unordered_set>

namespace mahimahi {

std::string to_string(BlockValidity validity) {
  switch (validity) {
    case BlockValidity::kValid: return "valid";
    case BlockValidity::kUnknownAuthor: return "unknown author";
    case BlockValidity::kBadSignature: return "bad signature";
    case BlockValidity::kBadCoinShare: return "bad coin share";
    case BlockValidity::kGenesisFromNetwork: return "genesis block from network";
    case BlockValidity::kDuplicateParents: return "duplicate parent references";
    case BlockValidity::kParentFromFuture: return "parent from same or future round";
    case BlockValidity::kParentUnknownAuthor: return "parent by unknown author";
    case BlockValidity::kInsufficientParentQuorum: return "fewer than 2f+1 parents at R-1";
  }
  return "?";
}

BlockValidity validate_block_structure(const Block& block, const Committee& committee) {
  if (!committee.contains(block.author())) return BlockValidity::kUnknownAuthor;
  if (block.round() == 0) return BlockValidity::kGenesisFromNetwork;

  std::unordered_set<Digest, DigestHasher> seen;
  std::unordered_set<ValidatorId> previous_round_authors;
  for (const auto& parent : block.parents()) {
    if (!committee.contains(parent.author)) return BlockValidity::kParentUnknownAuthor;
    if (parent.round >= block.round()) return BlockValidity::kParentFromFuture;
    if (!seen.insert(parent.digest).second) return BlockValidity::kDuplicateParents;
    if (parent.round == block.round() - 1) previous_round_authors.insert(parent.author);
  }
  if (previous_round_authors.size() < committee.quorum_threshold()) {
    return BlockValidity::kInsufficientParentQuorum;
  }
  return BlockValidity::kValid;
}

BlockValidity validate_block_crypto(const Block& block, const Committee& committee,
                                    const ValidationOptions& options) {
  if (options.verify_coin_share &&
      !committee.coin().verify_share(block.author(), block.round(), block.coin_share())) {
    return BlockValidity::kBadCoinShare;
  }

  if (options.verify_signature &&
      !crypto::ed25519_verify(committee.public_key(block.author()),
                              block.digest().view(), block.signature())) {
    return BlockValidity::kBadSignature;
  }

  return BlockValidity::kValid;
}

std::vector<BlockValidity> validate_blocks_crypto(std::span<const BlockPtr> blocks,
                                                  const Committee& committee,
                                                  const ValidationOptions& options) {
  std::vector<BlockValidity> verdicts(blocks.size(), BlockValidity::kValid);
  if (blocks.empty()) return verdicts;

  if (options.verify_coin_share) {
    std::vector<crypto::ThresholdCoin::ShareQuery> queries;
    queries.reserve(blocks.size());
    for (const auto& block : blocks) {
      queries.push_back({block->author(), block->round(), block->coin_share()});
    }
    const auto ok = committee.coin().verify_shares(queries);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (!ok[i]) verdicts[i] = BlockValidity::kBadCoinShare;
    }
  }

  if (options.verify_signature) {
    // Only blocks that survived the coin stage reach the signature batch;
    // indices map batch positions back to block positions.
    std::vector<crypto::Ed25519BatchItem> items;
    std::vector<std::size_t> indices;
    items.reserve(blocks.size());
    indices.reserve(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (verdicts[i] != BlockValidity::kValid) continue;
      items.push_back({committee.public_key(blocks[i]->author()),
                       blocks[i]->digest().view(), blocks[i]->signature()});
      indices.push_back(i);
    }
    const auto ok = crypto::ed25519_verify_each(items);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      if (!ok[j]) verdicts[indices[j]] = BlockValidity::kBadSignature;
    }
  }

  return verdicts;
}

BlockValidity validate_block(const Block& block, const Committee& committee,
                             const ValidationOptions& options) {
  const BlockValidity structural = validate_block_structure(block, committee);
  if (structural != BlockValidity::kValid) return structural;
  return validate_block_crypto(block, committee, options);
}

}  // namespace mahimahi
