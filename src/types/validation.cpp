#include "types/validation.h"

#include <unordered_set>

namespace mahimahi {

std::string to_string(BlockValidity validity) {
  switch (validity) {
    case BlockValidity::kValid: return "valid";
    case BlockValidity::kUnknownAuthor: return "unknown author";
    case BlockValidity::kBadSignature: return "bad signature";
    case BlockValidity::kBadCoinShare: return "bad coin share";
    case BlockValidity::kGenesisFromNetwork: return "genesis block from network";
    case BlockValidity::kDuplicateParents: return "duplicate parent references";
    case BlockValidity::kParentFromFuture: return "parent from same or future round";
    case BlockValidity::kParentUnknownAuthor: return "parent by unknown author";
    case BlockValidity::kInsufficientParentQuorum: return "fewer than 2f+1 parents at R-1";
  }
  return "?";
}

BlockValidity validate_block(const Block& block, const Committee& committee,
                             const ValidationOptions& options) {
  if (!committee.contains(block.author())) return BlockValidity::kUnknownAuthor;
  if (block.round() == 0) return BlockValidity::kGenesisFromNetwork;

  std::unordered_set<Digest, DigestHasher> seen;
  std::unordered_set<ValidatorId> previous_round_authors;
  for (const auto& parent : block.parents()) {
    if (!committee.contains(parent.author)) return BlockValidity::kParentUnknownAuthor;
    if (parent.round >= block.round()) return BlockValidity::kParentFromFuture;
    if (!seen.insert(parent.digest).second) return BlockValidity::kDuplicateParents;
    if (parent.round == block.round() - 1) previous_round_authors.insert(parent.author);
  }
  if (previous_round_authors.size() < committee.quorum_threshold()) {
    return BlockValidity::kInsufficientParentQuorum;
  }

  if (options.verify_coin_share &&
      !committee.coin().verify_share(block.author(), block.round(), block.coin_share())) {
    return BlockValidity::kBadCoinShare;
  }

  if (options.verify_signature &&
      !crypto::ed25519_verify(committee.public_key(block.author()),
                              block.digest().view(), block.signature())) {
    return BlockValidity::kBadSignature;
  }

  return BlockValidity::kValid;
}

}  // namespace mahimahi
