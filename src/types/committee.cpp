#include "types/committee.h"

#include <cstring>
#include <stdexcept>

#include "crypto/blake2b.h"
#include "serde/serde.h"

namespace mahimahi {

Committee::Committee(std::vector<crypto::Ed25519PublicKey> public_keys, Digest epoch_seed)
    : public_keys_(std::move(public_keys)),
      epoch_seed_(epoch_seed),
      coin_(static_cast<std::uint32_t>(public_keys_.size()),
            (static_cast<std::uint32_t>(public_keys_.size()) - 1) / 3, epoch_seed) {
  if (public_keys_.empty()) throw std::invalid_argument("empty committee");
}

Committee::TestSetup Committee::make_test(std::uint32_t n, std::uint64_t seed) {
  std::vector<crypto::Ed25519Keypair> keypairs;
  std::vector<crypto::Ed25519PublicKey> public_keys;
  keypairs.reserve(n);
  public_keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    // Seed each validator key from (seed, i); deterministic and distinct.
    serde::Writer w;
    w.raw(as_bytes_view("mahi-mahi/test-key/v1"));
    w.u64(seed);
    w.u32(i);
    const Bytes material = std::move(w).take();
    const Digest d = crypto::Blake2b::hash256({material.data(), material.size()});
    keypairs.push_back(crypto::ed25519_keypair_from_seed(d.bytes));
    public_keys.push_back(keypairs.back().public_key);
  }

  serde::Writer w;
  w.raw(as_bytes_view("mahi-mahi/test-epoch/v1"));
  w.u64(seed);
  const Bytes material = std::move(w).take();
  const Digest epoch_seed = crypto::Blake2b::hash256({material.data(), material.size()});

  return TestSetup{Committee(std::move(public_keys), epoch_seed), std::move(keypairs)};
}

}  // namespace mahimahi
