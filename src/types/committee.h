// The validator committee: n = 3f+1 identities, quorum thresholds, and the
// shared coin setup (§2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/coin.h"
#include "crypto/ed25519.h"
#include "types/ids.h"

namespace mahimahi {

class Committee {
 public:
  // `public_keys[i]` authenticates validator i. The epoch seed parameterizes
  // the shared coin (stand-in for the DKG transcript; see crypto/coin.h).
  Committee(std::vector<crypto::Ed25519PublicKey> public_keys, Digest epoch_seed);

  std::uint32_t size() const { return static_cast<std::uint32_t>(public_keys_.size()); }
  // Maximum tolerated Byzantine validators: f = floor((n-1)/3).
  std::uint32_t f() const { return (size() - 1) / 3; }
  // 2f+1: blocks required to advance a round, votes for a certificate,
  // certificates for a direct commit, shares to open the coin.
  std::uint32_t quorum_threshold() const { return 2 * f() + 1; }
  // f+1: at least one honest validator.
  std::uint32_t validity_threshold() const { return f() + 1; }

  bool contains(ValidatorId id) const { return id < size(); }
  const crypto::Ed25519PublicKey& public_key(ValidatorId id) const {
    return public_keys_[id];
  }

  const Digest& epoch_seed() const { return epoch_seed_; }
  const crypto::ThresholdCoin& coin() const { return coin_; }

  struct TestSetup;
  // Deterministic test committee: n keypairs derived from `seed`. Returns the
  // committee and each validator's private key.
  static TestSetup make_test(std::uint32_t n, std::uint64_t seed = 42);

 private:
  std::vector<crypto::Ed25519PublicKey> public_keys_;
  Digest epoch_seed_;
  crypto::ThresholdCoin coin_;
};

struct Committee::TestSetup {
  Committee committee;
  std::vector<crypto::Ed25519Keypair> keypairs;
};

}  // namespace mahimahi
