// Identifiers shared across the protocol stack.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "crypto/digest.h"

namespace mahimahi {

// Index of a validator within the committee, in [0, n).
using ValidatorId = std::uint32_t;

// DAG round number. Round 0 holds the genesis blocks.
using Round = std::uint64_t;

// A hash reference to a block: enough to identify it globally (digest) and to
// index it structurally (round, author) without fetching it.
struct BlockRef {
  Round round = 0;
  ValidatorId author = 0;
  Digest digest;

  auto operator<=>(const BlockRef&) const = default;

  std::string to_string() const {
    return "B(v" + std::to_string(author) + ",r" + std::to_string(round) + "," +
           digest.short_hex() + ")";
  }
};

struct BlockRefHasher {
  std::size_t operator()(const BlockRef& ref) const {
    return DigestHasher{}(ref.digest);
  }
};

// A leader slot: (round, offset among the leaders of that round). The coin
// maps a slot to a validator; the slot may be empty, hold one block, or hold
// several equivocating blocks (§3.1).
struct SlotId {
  Round round = 0;
  std::uint32_t leader_offset = 0;

  auto operator<=>(const SlotId&) const = default;

  std::string to_string() const {
    return "L(r" + std::to_string(round) + "," + std::to_string(leader_offset) + ")";
  }
};

}  // namespace mahimahi
