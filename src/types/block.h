// Blocks: the single message type of the protocol (§2.3).
//
// A block carries (1) author and signature, (2) round number, (3) a list of
// transaction batches, (4) hash references to parent blocks — at least 2f+1
// distinct authors from round R-1, by convention the author's own previous
// block first — (5) a share of the global perfect coin for round R, and
// (6) the author's creation timestamp, the anchor for receive-side lag
// forensics (mm_peer_rx_lag_micros). The timestamp is advisory: it is in
// the author's clock domain, consumers clamp, and consensus never reads it.
//
// The digest commits to everything except the signature; the signature signs
// the digest. Blocks are immutable after construction.
#pragma once

#include <memory>
#include <vector>

#include "common/time.h"
#include "crypto/coin.h"
#include "crypto/ed25519.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace mahimahi {

class Block {
 public:
  // Constructs and signs a block. `parents` must already satisfy the
  // structural rules (the proposer guarantees this; validation re-checks).
  // `created_at` is the author-clock creation stamp (0 = unstamped; lag
  // consumers skip unstamped blocks).
  static Block make(ValidatorId author, Round round, std::vector<BlockRef> parents,
                    std::vector<TxBatch> batches, crypto::CoinShare coin_share,
                    const crypto::Ed25519PrivateKey& key, TimeMicros created_at = 0);

  // The deterministic genesis block of `author` (round 0, no parents, no
  // transactions, zero signature). Never transmitted: every validator
  // constructs the same genesis locally.
  static Block genesis(ValidatorId author, const crypto::ThresholdCoin& coin);

  ValidatorId author() const { return author_; }
  Round round() const { return round_; }
  const std::vector<BlockRef>& parents() const { return parents_; }
  const std::vector<TxBatch>& batches() const { return batches_; }
  const crypto::CoinShare& coin_share() const { return coin_share_; }
  const crypto::Ed25519Signature& signature() const { return signature_; }
  const Digest& digest() const { return digest_; }
  // Author-clock creation stamp in micros; 0 when the author did not stamp
  // (genesis, old tooling). Advisory only — never read by consensus rules.
  TimeMicros created_at() const { return created_at_; }

  BlockRef ref() const { return BlockRef{round_, author_, digest_}; }

  // Total transactions across batches.
  std::uint64_t transaction_count() const;
  // Approximate wire size (header + batches); used for bandwidth modelling.
  std::uint64_t wire_bytes() const;

  // Wire codec. deserialize() recomputes the digest from the received
  // content; it performs structural decoding only (no semantic validation —
  // see types/validation.h).
  Bytes serialize() const;
  static Block deserialize(BytesView data);

  bool operator==(const Block& other) const { return digest_ == other.digest_; }

 private:
  Block() = default;

  // Digest preimage: all fields except the signature, domain-separated.
  Bytes content_bytes() const;
  void finalize_digest();

  ValidatorId author_ = 0;
  Round round_ = 0;
  TimeMicros created_at_ = 0;
  std::vector<BlockRef> parents_;
  std::vector<TxBatch> batches_;
  crypto::CoinShare coin_share_;
  crypto::Ed25519Signature signature_;
  Digest digest_;
};

// Blocks are shared widely (DAG store, pending buffers, commit outputs);
// they are reference-counted and immutable.
using BlockPtr = std::shared_ptr<const Block>;

}  // namespace mahimahi
