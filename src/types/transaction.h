// Transactions are carried in batches.
//
// The paper's benchmarks submit 512-byte opaque transactions in an open loop.
// Carrying hundreds of thousands of individual 512-byte payloads through the
// simulator would dominate memory and time without changing protocol
// behaviour, so the unit of carriage is a batch: `count` transactions of
// `tx_bytes` each, submitted together at `submitted_at`. The real payload is
// optional (examples and the TCP path carry actual bytes; the high-rate
// simulator leaves it empty and accounts `count * tx_bytes` for bandwidth).
// Latency metrics weight each batch sample by `count`.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/time.h"
#include "serde/serde.h"

namespace mahimahi {

struct TxBatch {
  std::uint64_t id = 0;            // unique per submitting client
  TimeMicros submitted_at = 0;     // client submit timestamp
  std::uint32_t count = 1;         // transactions represented by this batch
  std::uint32_t tx_bytes = 512;    // bytes per transaction
  Bytes payload;                   // optional real payload

  bool operator==(const TxBatch&) const = default;

  // Bytes this batch occupies on the wire (used for bandwidth modelling and
  // block size caps).
  std::uint64_t wire_bytes() const {
    return payload.empty() ? static_cast<std::uint64_t>(count) * tx_bytes
                           : payload.size();
  }

  void serialize(serde::Writer& w) const {
    w.u64(id);
    w.u64(static_cast<std::uint64_t>(submitted_at));
    w.u32(count);
    w.u32(tx_bytes);
    w.bytes({payload.data(), payload.size()});
  }

  static TxBatch deserialize(serde::Reader& r) {
    TxBatch b;
    b.id = r.u64();
    b.submitted_at = static_cast<TimeMicros>(r.u64());
    b.count = r.u32();
    b.tx_bytes = r.u32();
    b.payload = r.bytes();
    return b;
  }
};

}  // namespace mahimahi
