// Transactions are carried in batches.
//
// The paper's benchmarks submit 512-byte opaque transactions in an open loop.
// Carrying hundreds of thousands of individual 512-byte payloads through the
// simulator would dominate memory and time without changing protocol
// behaviour, so the unit of carriage is a batch: `count` transactions of
// `tx_bytes` each, submitted together at `submitted_at`. The real payload is
// optional (examples and the TCP path carry actual bytes; the high-rate
// simulator leaves it empty and accounts `count * tx_bytes` for bandwidth).
// Latency metrics weight each batch sample by `count`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/time.h"
#include "serde/serde.h"

namespace mahimahi {

struct TxBatch {
  std::uint64_t id = 0;            // unique per submitting client
  TimeMicros submitted_at = 0;     // client submit timestamp
  std::uint32_t count = 1;         // transactions represented by this batch
  std::uint32_t tx_bytes = 512;    // bytes per transaction
  Bytes payload;                   // optional real payload

  // Declared access sets for conflict-aware parallel execution (exec/).
  // A client that knows which keys its commands touch declares them here so
  // the execution scheduler can place the batch without decoding the payload
  // first. Both empty = undeclared: the executor derives the sets itself for
  // KV payloads and treats any other non-empty payload as conflicting with
  // everything (exec/access.h). Declared sets are enforced at execution time
  // — a KV batch whose commands escape its declaration is demoted to the
  // conservative conflict class, never executed in parallel.
  std::vector<std::string> read_keys;
  std::vector<std::string> write_keys;

  bool operator==(const TxBatch&) const = default;

  // Bytes this batch occupies on the wire (used for bandwidth modelling and
  // block size caps).
  std::uint64_t wire_bytes() const {
    return payload.empty() ? static_cast<std::uint64_t>(count) * tx_bytes
                           : payload.size();
  }

  void serialize(serde::Writer& w) const {
    w.u64(id);
    w.u64(static_cast<std::uint64_t>(submitted_at));
    w.u32(count);
    w.u32(tx_bytes);
    w.bytes({payload.data(), payload.size()});
    serialize_keys(w, read_keys);
    serialize_keys(w, write_keys);
  }

  static TxBatch deserialize(serde::Reader& r) {
    TxBatch b;
    b.id = r.u64();
    b.submitted_at = static_cast<TimeMicros>(r.u64());
    b.count = r.u32();
    b.tx_bytes = r.u32();
    b.payload = r.bytes();
    b.read_keys = deserialize_keys(r);
    b.write_keys = deserialize_keys(r);
    return b;
  }

 private:
  static void serialize_keys(serde::Writer& w, const std::vector<std::string>& keys) {
    w.varint(keys.size());
    for (const std::string& key : keys) w.bytes(as_bytes_view(key));
  }

  static std::vector<std::string> deserialize_keys(serde::Reader& r) {
    const std::uint64_t n = r.varint();
    std::vector<std::string> keys;
    // Reserve is capped: a hostile length prefix must not pre-allocate
    // unbounded memory (the loop below still fails fast on truncated input).
    keys.reserve(std::min<std::uint64_t>(n, 1024));
    for (std::uint64_t i = 0; i < n; ++i) {
      const Bytes raw = r.bytes();
      keys.emplace_back(raw.begin(), raw.end());
    }
    return keys;
  }
};

}  // namespace mahimahi
