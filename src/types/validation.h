// Block validity rules (§2.3), staged for the ingestion pipeline.
//
// A block is valid if: (1) the signature is valid and the author is in the
// validator set; (2) parent references are distinct, point strictly to
// earlier rounds, and include at least 2f+1 distinct authors from round R-1;
// (3) the coin share is valid. The remaining rule — "the causal history has
// been downloaded and validated" — is enforced by the synchronizer before a
// block is admitted to the DAG, not here.
//
// Validation is split into two stages so drivers can pipeline them:
//   * the STRUCTURAL stage (validate_block_structure) is pure integer work —
//     author range, round, parent shape — and costs nanoseconds;
//   * the CRYPTO stage (validate_block_crypto) pays for coin-share and
//     ed25519 verification, the dominant per-block CPU cost on ingestion,
//     and is batchable across blocks (validate_blocks_crypto) to amortize
//     point decompression and fixed-base scalar multiplication.
// validate_block composes both for callers that ingest one block at a time.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "types/block.h"
#include "types/committee.h"

namespace mahimahi {

enum class BlockValidity {
  kValid,
  kUnknownAuthor,
  kBadSignature,
  kBadCoinShare,
  kGenesisFromNetwork,   // round-0 blocks are never accepted off the wire
  kDuplicateParents,
  kParentFromFuture,     // parent.round >= block.round
  kParentUnknownAuthor,
  kInsufficientParentQuorum,  // fewer than 2f+1 distinct authors at R-1
};

std::string to_string(BlockValidity validity);

struct ValidationOptions {
  // Signature verification can be skipped (simulator fast path, or a driver
  // that already verified off-thread). The validator core additionally
  // consults a digest-keyed verification cache (validator/verifier_cache.h)
  // before paying for ed25519, when one is configured
  // (ValidatorConfig::signature_cache).
  bool verify_signature = true;
  bool verify_coin_share = true;
};

// Stage 1: structural checks only — no crypto, no allocation-heavy work
// beyond the parent-set scan. Returns kValid when the block's shape is
// acceptable.
BlockValidity validate_block_structure(const Block& block, const Committee& committee);

// Stage 2: coin-share and signature verification, assuming the structural
// stage already passed (author is in range).
BlockValidity validate_block_crypto(const Block& block, const Committee& committee,
                                    const ValidationOptions& options = {});

// Stage 2, batched: one verdict per block, identical to calling
// validate_block_crypto per block. Coin shares verify through the coin's
// batch API; signatures verify as a single random-linear-combination batch
// with per-item fallback on failure (crypto/ed25519.h).
std::vector<BlockValidity> validate_blocks_crypto(std::span<const BlockPtr> blocks,
                                                  const Committee& committee,
                                                  const ValidationOptions& options = {});

// Both stages in order: structure first, crypto only if the shape passes.
BlockValidity validate_block(const Block& block, const Committee& committee,
                             const ValidationOptions& options = {});

}  // namespace mahimahi
