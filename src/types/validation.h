// Block validity rules (§2.3).
//
// A block is valid if: (1) the signature is valid and the author is in the
// validator set; (2) parent references are distinct, point strictly to
// earlier rounds, and include at least 2f+1 distinct authors from round R-1;
// (3) the coin share is valid. The remaining rule — "the causal history has
// been downloaded and validated" — is enforced by the synchronizer before a
// block is admitted to the DAG, not here.
#pragma once

#include <string>

#include "types/block.h"
#include "types/committee.h"

namespace mahimahi {

enum class BlockValidity {
  kValid,
  kUnknownAuthor,
  kBadSignature,
  kBadCoinShare,
  kGenesisFromNetwork,   // round-0 blocks are never accepted off the wire
  kDuplicateParents,
  kParentFromFuture,     // parent.round >= block.round
  kParentUnknownAuthor,
  kInsufficientParentQuorum,  // fewer than 2f+1 distinct authors at R-1
};

std::string to_string(BlockValidity validity);

struct ValidationOptions {
  // Signature verification can be skipped (simulator fast path). The
  // validator core additionally consults a digest-keyed verification cache
  // (validator/verifier_cache.h) before paying for ed25519, when one is
  // configured (ValidatorConfig::signature_cache).
  bool verify_signature = true;
  bool verify_coin_share = true;
};

BlockValidity validate_block(const Block& block, const Committee& committee,
                             const ValidationOptions& options = {});

}  // namespace mahimahi
