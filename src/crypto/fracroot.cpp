#include "crypto/fracroot.h"

namespace mahimahi::crypto {

namespace {

// Minimal 256-bit unsigned integer: four 64-bit limbs, little-endian.
struct U256 {
  std::uint64_t w[4] = {0, 0, 0, 0};
};

bool less_equal(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) return a.w[i] < b.w[i];
  }
  return true;
}

// a * b for small multiplicands; asserts no overflow past 256 bits is
// required by construction (inputs bounded by the callers).
U256 mul(const U256& a, const U256& b) {
  U256 out;
  for (int i = 0; i < 4; ++i) {
    if (a.w[i] == 0) continue;
    unsigned __int128 carry = 0;
    for (int j = 0; i + j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.w[i]) * b.w[j] +
                              out.w[i + j] + carry;
      out.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
  }
  return out;
}

U256 shifted(std::uint64_t v, int bit_shift) {
  U256 out;
  const int limb = bit_shift / 64;
  const int rem = bit_shift % 64;
  out.w[limb] = v << rem;
  if (rem != 0 && limb + 1 < 4) out.w[limb + 1] = v >> (64 - rem);
  return out;
}

void set_bit(U256& v, int bit) { v.w[bit / 64] |= std::uint64_t{1} << (bit % 64); }
void clear_bit(U256& v, int bit) { v.w[bit / 64] &= ~(std::uint64_t{1} << (bit % 64)); }

}  // namespace

std::uint64_t frac_sqrt64(std::uint64_t n) {
  // r = floor(sqrt(n * 2^128)); the low 64 bits of r are the fractional bits.
  const U256 target = shifted(n, 128);
  U256 r;
  for (int bit = 96; bit >= 0; --bit) {  // sqrt(n * 2^128) < 2^97 for n < 2^66
    set_bit(r, bit);
    if (!less_equal(mul(r, r), target)) clear_bit(r, bit);
  }
  return r.w[0];
}

std::uint64_t frac_cbrt64(std::uint64_t n) {
  // r = floor(cbrt(n * 2^192)); the low 64 bits of r are the fractional bits.
  const U256 target = shifted(n, 192);
  U256 r;
  for (int bit = 67; bit >= 0; --bit) {  // cbrt(p * 2^192) < 2^68 for p < 4096
    set_bit(r, bit);
    if (!less_equal(mul(mul(r, r), r), target)) clear_bit(r, bit);
  }
  return r.w[0];
}

}  // namespace mahimahi::crypto
