// HMAC-SHA-256 (RFC 2104).
//
// Used by the simulated threshold coin's share function. BLAKE2b has a native
// keyed mode (Blake2b::mac256); HMAC is provided for the SHA-256 path and as
// an independently testable primitive.
#pragma once

#include "common/bytes.h"
#include "crypto/digest.h"

namespace mahimahi::crypto {

Digest hmac_sha256(BytesView key, BytesView message);

}  // namespace mahimahi::crypto
