// Chaum-Pedersen proofs of discrete-log equality (DLEQ).
//
// A DLEQ proof convinces a verifier that two group elements P = [x]G and
// S = [x]H share the same (secret) discrete log x, without revealing x. The
// threshold VRF coin (crypto/threshold_vrf.h) attaches one to every coin
// share: the share σ_i = [sk_i]H(round) is valid iff it has the same
// discrete log as the public share-key PK_i = [sk_i]B, which is exactly what
// the proof certifies. This is the standard share-verification mechanism of
// threshold BLS/VRF schemes without pairings.
//
// Non-interactive via Fiat-Shamir over SHA-512; the nonce is derived
// deterministically from the witness and statement (no RNG, no nonce-reuse
// hazard), mirroring RFC 6979 / Ed25519 practice.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "crypto/curve25519.h"

namespace mahimahi::crypto {

struct DleqProof {
  // Fiat-Shamir challenge c and response z = k + c·x (mod L).
  curve::Scalar c;
  curve::Scalar z;

  static constexpr std::size_t kWireBytes = 64;
  std::array<std::uint8_t, kWireBytes> to_bytes() const;
  // Rejects non-canonical scalar encodings.
  static std::optional<DleqProof> from_bytes(
      const std::array<std::uint8_t, kWireBytes>& bytes);

  bool operator==(const DleqProof&) const = default;
};

// Proves log_G(p) = log_h(s) = x, where p = [x]G and s = [x]h. `context`
// domain-separates proofs across uses (it is hashed into the challenge).
DleqProof dleq_prove(const curve::Scalar& x, const curve::GroupElement& g,
                     const curve::GroupElement& h, const curve::GroupElement& p,
                     const curve::GroupElement& s, BytesView context);

bool dleq_verify(const DleqProof& proof, const curve::GroupElement& g,
                 const curve::GroupElement& h, const curve::GroupElement& p,
                 const curve::GroupElement& s, BytesView context);

}  // namespace mahimahi::crypto
