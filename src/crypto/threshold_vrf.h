// Threshold verifiable random function — the production-grade instantiation
// of the paper's global perfect coin (§2.1, §2.3).
//
// The paper constructs the coin from an adaptively-secure threshold signature
// scheme with an asynchronous DKG [1,2,20,21,30]. This module implements the
// pairing-free equivalent over the Ed25519 group:
//
//   * a dealer (standing in for the DKG; see DESIGN.md §3) Shamir-shares a
//     master secret a₀ with a degree-2f polynomial, so any 2f+1 shares
//     reconstruct and any 2f collude-and-learn-nothing;
//   * validator i's coin share for input m is σ_i = [sk_i]·H(m), where H is
//     hash-to-curve, accompanied by a Chaum-Pedersen DLEQ proof binding σ_i
//     to the public share-key PK_i = [sk_i]·B — shares are individually
//     verifiable, exactly the property footnote 5 of the paper requires;
//   * any 2f+1 valid shares combine via Lagrange interpolation in the
//     exponent to σ = [a₀]·H(m); the coin value is a hash of σ.
//
// Every validator reconstructs the same σ regardless of which 2f+1 shares it
// used, the output is unpredictable without 2f+1 shares, and shares reveal
// nothing about other inputs' outputs — the "global perfect coin" contract.
//
// The protocol simulation defaults to the cheaper keyed-hash coin
// (crypto/coin.h) because its 32-byte shares ride inside blocks; this module
// is the drop-in for deployments that need real unpredictability, and the
// randomness_beacon example runs it end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/curve25519.h"
#include "crypto/digest.h"
#include "crypto/dleq.h"

namespace mahimahi::crypto {

// Deterministic hash-to-curve (try-and-increment over compressed encodings,
// cofactor cleared). Never returns the identity. Exposed for tests.
curve::GroupElement vrf_hash_to_point(BytesView input);

// One validator's contribution to the VRF evaluation of some input.
struct VrfShare {
  std::uint32_t author = 0;
  curve::CompressedPoint sigma{};  // [sk_author] H(input)
  DleqProof proof;

  static constexpr std::size_t kWireBytes = 4 + 32 + DleqProof::kWireBytes;
  Bytes to_bytes() const;
  // Structural decode only (canonical scalars, size); cryptographic validity
  // is checked by ThresholdVrfPublic::verify_share.
  static std::optional<VrfShare> from_bytes(BytesView data);

  bool operator==(const VrfShare&) const = default;
};

// The combined evaluation: a group element plus its hash, which is the
// protocol-visible random value.
struct VrfOutput {
  curve::CompressedPoint point{};
  Digest digest;  // H(point): uniform 32 bytes

  // The leader-election seed: first 8 bytes of the digest, little-endian.
  std::uint64_t value() const;

  bool operator==(const VrfOutput&) const = default;
};

// Public verification state: share keys and the group key. Copyable; every
// validator (and any external verifier) holds one.
class ThresholdVrfPublic {
 public:
  ThresholdVrfPublic(std::uint32_t n, std::uint32_t f,
                     curve::CompressedPoint group_key,
                     std::vector<curve::CompressedPoint> share_keys);

  std::uint32_t n() const { return n_; }
  std::uint32_t f() const { return f_; }
  // Shares needed to combine: 2f+1.
  std::uint32_t threshold() const { return 2 * f_ + 1; }

  const curve::CompressedPoint& group_key() const { return group_key_; }
  const curve::CompressedPoint& share_key(std::uint32_t author) const {
    return share_keys_[author];
  }

  // Checks the DLEQ proof of `share` against share_key(share.author) for
  // `input`. False for unknown authors, off-curve points, or bad proofs.
  bool verify_share(BytesView input, const VrfShare& share) const;

  // Combines shares into the VRF output for `input`. Invalid shares and
  // duplicate authors are ignored; returns nullopt if fewer than 2f+1
  // distinct valid shares remain. Any qualifying subset yields the same
  // output (Lagrange interpolation of a degree-2f polynomial).
  std::optional<VrfOutput> combine(BytesView input,
                                   std::span<const VrfShare> shares) const;

 private:
  std::uint32_t n_;
  std::uint32_t f_;
  curve::CompressedPoint group_key_;
  std::vector<curve::CompressedPoint> share_keys_;
};

// Dealer output: public state plus each validator's secret share. The dealer
// is trusted setup standing in for the paper's asynchronous DKG.
struct ThresholdVrfSetup {
  ThresholdVrfPublic public_state;
  std::vector<curve::Scalar> secret_shares;  // secret_shares[i] belongs to validator i
  // The master secret a₀ — retained for tests (oracle evaluation); a real
  // deployment's DKG never materializes it anywhere.
  curve::Scalar master_secret;
};

// Deterministically deals an (n, f) setup from `seed` (polynomial degree 2f,
// threshold 2f+1). Requires n >= 3f+1 and n >= 1.
ThresholdVrfSetup threshold_vrf_deal(std::uint32_t n, std::uint32_t f,
                                     const Digest& seed);

// Validator `author`'s share for `input` under its secret share `sk`.
VrfShare threshold_vrf_share(std::uint32_t author, const curve::Scalar& sk,
                             BytesView input);

// Oracle evaluation from the master secret (tests / beacons only).
VrfOutput threshold_vrf_eval(const curve::Scalar& master_secret, BytesView input);

}  // namespace mahimahi::crypto
