#include "crypto/threshold_vrf.h"

#include <cstring>
#include <stdexcept>

#include "crypto/sha512.h"

namespace mahimahi::crypto {

namespace {

using curve::ge_add;
using curve::ge_compressed;
using curve::ge_decompress;
using curve::ge_identity;
using curve::ge_is_identity;
using curve::ge_mul_cofactor;
using curve::ge_scalar_mult;
using curve::GroupElement;
using curve::Scalar;
using curve::sc_from_bytes64;
using curve::sc_from_u64;
using curve::sc_invert;
using curve::sc_is_zero;
using curve::sc_mul;
using curve::sc_mul_add;
using curve::sc_sub;

constexpr char kHashToPointDomain[] = "mahimahi.vrf.h2p.v1";
constexpr char kDealerDomain[] = "mahimahi.vrf.dealer.v1";
constexpr char kOutputDomain[] = "mahimahi.vrf.output.v1";
constexpr char kShareContext[] = "mahimahi.vrf.share.v1";

BytesView domain(const char* literal, std::size_t sizeof_literal) {
  return {reinterpret_cast<const std::uint8_t*>(literal), sizeof_literal - 1};
}

// Lagrange coefficient at zero for index set `xs` (1-based share indices),
// for the element at position `i`: λ_i = Π_{j≠i} x_j / (x_j − x_i) mod L.
Scalar lagrange_at_zero(std::span<const std::uint32_t> xs, std::size_t i) {
  Scalar num = curve::sc_one();
  Scalar den = curve::sc_one();
  const Scalar xi = sc_from_u64(xs[i]);
  for (std::size_t j = 0; j < xs.size(); ++j) {
    if (j == i) continue;
    const Scalar xj = sc_from_u64(xs[j]);
    num = sc_mul(num, xj);
    den = sc_mul(den, sc_sub(xj, xi));
  }
  return sc_mul(num, sc_invert(den));
}

VrfOutput output_from_point(const GroupElement& point) {
  VrfOutput out;
  out.point = ge_compressed(point);
  Sha512 h;
  h.update(domain(kOutputDomain, sizeof(kOutputDomain)));
  h.update({out.point.data(), out.point.size()});
  const auto wide = h.finish();
  std::memcpy(out.digest.bytes.data(), wide.data(), out.digest.bytes.size());
  return out;
}

}  // namespace

GroupElement vrf_hash_to_point(BytesView input) {
  // Try-and-increment: hash (domain ‖ input ‖ counter), interpret the first
  // 32 bytes as a compressed point, clear the cofactor. Succeeds for ~half
  // of all counters; the loop bound is unreachable in practice.
  for (std::uint32_t counter = 0; counter < 1000; ++counter) {
    Sha512 h;
    h.update(domain(kHashToPointDomain, sizeof(kHashToPointDomain)));
    h.update(input);
    std::uint8_t ctr_bytes[4];
    std::memcpy(ctr_bytes, &counter, 4);
    h.update({ctr_bytes, 4});
    const auto candidate = h.finish();
    const auto point = ge_decompress(candidate.data());
    if (!point) continue;
    const GroupElement cleared = ge_mul_cofactor(*point);
    // Small-order candidates collapse to the identity; skip them so the
    // result generates the full order-L subgroup.
    if (ge_is_identity(cleared)) continue;
    return cleared;
  }
  throw std::logic_error("vrf_hash_to_point: no curve point found (unreachable)");
}

Bytes VrfShare::to_bytes() const {
  Bytes out(kWireBytes);
  std::memcpy(out.data(), &author, 4);
  std::memcpy(out.data() + 4, sigma.data(), sigma.size());
  const auto proof_bytes = proof.to_bytes();
  std::memcpy(out.data() + 4 + 32, proof_bytes.data(), proof_bytes.size());
  return out;
}

std::optional<VrfShare> VrfShare::from_bytes(BytesView data) {
  if (data.size() != kWireBytes) return std::nullopt;
  VrfShare share;
  std::memcpy(&share.author, data.data(), 4);
  std::memcpy(share.sigma.data(), data.data() + 4, 32);
  std::array<std::uint8_t, DleqProof::kWireBytes> proof_bytes;
  std::memcpy(proof_bytes.data(), data.data() + 4 + 32, proof_bytes.size());
  const auto proof = DleqProof::from_bytes(proof_bytes);
  if (!proof) return std::nullopt;
  share.proof = *proof;
  return share;
}

std::uint64_t VrfOutput::value() const {
  std::uint64_t v;
  std::memcpy(&v, digest.bytes.data(), sizeof(v));
  return v;
}

ThresholdVrfPublic::ThresholdVrfPublic(std::uint32_t n, std::uint32_t f,
                                       curve::CompressedPoint group_key,
                                       std::vector<curve::CompressedPoint> share_keys)
    : n_(n), f_(f), group_key_(group_key), share_keys_(std::move(share_keys)) {
  if (share_keys_.size() != n_) {
    throw std::invalid_argument("ThresholdVrfPublic: share key count != n");
  }
  if (n_ < 3 * f_ + 1) {
    throw std::invalid_argument("ThresholdVrfPublic: n < 3f+1");
  }
}

bool ThresholdVrfPublic::verify_share(BytesView input, const VrfShare& share) const {
  if (share.author >= n_) return false;
  const auto sigma = ge_decompress(share.sigma.data());
  if (!sigma) return false;
  const auto pk = ge_decompress(share_keys_[share.author].data());
  if (!pk) return false;
  const GroupElement h = vrf_hash_to_point(input);
  return dleq_verify(share.proof, curve::ge_base(), h, *pk, *sigma,
                     domain(kShareContext, sizeof(kShareContext)));
}

std::optional<VrfOutput> ThresholdVrfPublic::combine(
    BytesView input, std::span<const VrfShare> shares) const {
  // Collect the first `threshold()` distinct-author valid shares.
  std::vector<std::uint32_t> xs;          // 1-based Shamir indices
  std::vector<GroupElement> sigmas;
  std::vector<bool> seen(n_, false);
  for (const VrfShare& share : shares) {
    if (share.author >= n_ || seen[share.author]) continue;
    if (!verify_share(input, share)) continue;
    seen[share.author] = true;
    xs.push_back(share.author + 1);
    sigmas.push_back(*ge_decompress(share.sigma.data()));
    if (xs.size() == threshold()) break;
  }
  if (xs.size() < threshold()) return std::nullopt;

  // σ = Σ [λ_i] σ_i — interpolation of [p(x)]·H(input) at x = 0.
  GroupElement combined = ge_identity();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Scalar lambda = lagrange_at_zero(xs, i);
    combined = ge_add(combined, ge_scalar_mult(lambda, sigmas[i]));
  }
  return output_from_point(combined);
}

ThresholdVrfSetup threshold_vrf_deal(std::uint32_t n, std::uint32_t f,
                                     const Digest& seed) {
  if (n == 0 || n < 3 * f + 1) {
    throw std::invalid_argument("threshold_vrf_deal: need n >= max(1, 3f+1)");
  }
  // Polynomial p of degree 2f: coefficients derived from the seed.
  const std::uint32_t degree = 2 * f;
  std::vector<Scalar> coeffs(degree + 1);
  for (std::uint32_t j = 0; j <= degree; ++j) {
    Sha512 h;
    h.update(domain(kDealerDomain, sizeof(kDealerDomain)));
    h.update(seed.view());
    std::uint8_t j_bytes[4];
    std::memcpy(j_bytes, &j, 4);
    h.update({j_bytes, 4});
    coeffs[j] = sc_from_bytes64(h.finish().data());
    // A zero coefficient is astronomically unlikely but would weaken the
    // sharing (degree drop); nudge deterministically.
    if (sc_is_zero(coeffs[j])) coeffs[j] = curve::sc_one();
  }

  ThresholdVrfSetup setup{
      .public_state = ThresholdVrfPublic(
          n, f, ge_compressed(ge_scalar_mult(coeffs[0], curve::ge_base())),
          std::vector<curve::CompressedPoint>(n)),
      .secret_shares = std::vector<Scalar>(n),
      .master_secret = coeffs[0],
  };

  // sk_i = p(i+1) by Horner; PK_i = [sk_i] B.
  std::vector<curve::CompressedPoint> share_keys(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Scalar x = sc_from_u64(i + 1);
    Scalar acc = coeffs[degree];
    for (int j = static_cast<int>(degree) - 1; j >= 0; --j) {
      acc = sc_mul_add(acc, x, coeffs[j]);
    }
    setup.secret_shares[i] = acc;
    share_keys[i] = ge_compressed(ge_scalar_mult(acc, curve::ge_base()));
  }
  setup.public_state = ThresholdVrfPublic(
      n, f, ge_compressed(ge_scalar_mult(coeffs[0], curve::ge_base())),
      std::move(share_keys));
  return setup;
}

VrfShare threshold_vrf_share(std::uint32_t author, const Scalar& sk, BytesView input) {
  const GroupElement h = vrf_hash_to_point(input);
  const GroupElement sigma = ge_scalar_mult(sk, h);
  const GroupElement pk = ge_scalar_mult(sk, curve::ge_base());
  VrfShare share;
  share.author = author;
  share.sigma = ge_compressed(sigma);
  share.proof = dleq_prove(sk, curve::ge_base(), h, pk, sigma,
                           domain(kShareContext, sizeof(kShareContext)));
  return share;
}

VrfOutput threshold_vrf_eval(const Scalar& master_secret, BytesView input) {
  return output_from_point(ge_scalar_mult(master_secret, vrf_hash_to_point(input)));
}

}  // namespace mahimahi::crypto
