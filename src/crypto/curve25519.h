// Curve25519 arithmetic shared by Ed25519 signatures (crypto/ed25519.h) and
// the threshold VRF coin (crypto/threshold_vrf.h).
//
// Three layers, each a value type with free functions:
//   * FieldElement — GF(2^255 - 19), four 64-bit little-endian limbs, kept
//     canonical (< p) between operations;
//   * GroupElement — the twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 in
//     extended coordinates (X : Y : Z : T) with the complete addition law;
//   * Scalar — integers mod the prime group order L = 2^252 + δ.
//
// The implementation favours auditability over speed and is NOT constant
// time; it authenticates blocks and coin shares in a research/simulation
// system, not secrets on a production boundary.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace mahimahi::crypto::curve {

// ---------------------------------------------------------------------------
// Field GF(2^255 - 19)
// ---------------------------------------------------------------------------

struct FieldElement {
  std::uint64_t v[4] = {0, 0, 0, 0};
};

FieldElement fe_zero();
FieldElement fe_one();
bool fe_eq(const FieldElement& a, const FieldElement& b);
bool fe_is_zero(const FieldElement& a);
bool fe_is_odd(const FieldElement& a);
FieldElement fe_add(const FieldElement& a, const FieldElement& b);
FieldElement fe_sub(const FieldElement& a, const FieldElement& b);
FieldElement fe_mul(const FieldElement& a, const FieldElement& b);
FieldElement fe_sq(const FieldElement& a);
FieldElement fe_neg(const FieldElement& a);
// a^e for a 256-bit little-endian limb exponent.
FieldElement fe_pow(const FieldElement& a, const std::uint64_t e[4]);
FieldElement fe_invert(const FieldElement& a);
// Little-endian decode; the caller is responsible for canonicality checks
// where they matter (ge_decompress performs them).
FieldElement fe_from_bytes(const std::uint8_t bytes[32]);
void fe_to_bytes(std::uint8_t out[32], const FieldElement& a);

// ---------------------------------------------------------------------------
// Group: extended twisted Edwards coordinates, x = X/Z, y = Y/Z, T = XY/Z.
// ---------------------------------------------------------------------------

struct GroupElement {
  FieldElement x, y, z, t;
};

// Compressed encoding: 32 bytes, y with the sign of x in the top bit.
using CompressedPoint = std::array<std::uint8_t, 32>;

GroupElement ge_identity();
bool ge_is_identity(const GroupElement& p);
// Projective equality: x1 z2 == x2 z1 and y1 z2 == y2 z1.
bool ge_eq(const GroupElement& p, const GroupElement& q);
// Complete addition law (valid for all inputs including doubling).
GroupElement ge_add(const GroupElement& p, const GroupElement& q);
GroupElement ge_sub(const GroupElement& p, const GroupElement& q);
GroupElement ge_neg(const GroupElement& p);
// MSB-first double-and-add; scalar is 32 little-endian bytes. Not constant
// time (see file comment).
GroupElement ge_scalar_mult(const std::uint8_t scalar_le[32], const GroupElement& p);
void ge_compress(std::uint8_t out[32], const GroupElement& p);
CompressedPoint ge_compressed(const GroupElement& p);
// Rejects non-canonical y and non-curve points; accepts any valid point,
// including small-order ones (callers clear the cofactor where needed).
std::optional<GroupElement> ge_decompress(const std::uint8_t in[32]);
// The Ed25519 base point B (y = 4/5, even x), order L.
const GroupElement& ge_base();
// [8] p — clears the cofactor, landing in the order-L subgroup.
GroupElement ge_mul_cofactor(const GroupElement& p);

// ---------------------------------------------------------------------------
// Scalars mod L = 2^252 + 27742317777372353535851937790883648493 (prime).
// ---------------------------------------------------------------------------

struct Scalar {
  std::uint64_t v[4] = {0, 0, 0, 0};

  bool operator==(const Scalar& other) const;
};

Scalar sc_zero();
Scalar sc_one();
Scalar sc_from_u64(std::uint64_t x);
bool sc_is_zero(const Scalar& a);
Scalar sc_add(const Scalar& a, const Scalar& b);
Scalar sc_sub(const Scalar& a, const Scalar& b);
Scalar sc_neg(const Scalar& a);
Scalar sc_mul(const Scalar& a, const Scalar& b);
// a * b + c mod L.
Scalar sc_mul_add(const Scalar& a, const Scalar& b, const Scalar& c);
// Multiplicative inverse via Fermat (L is prime). Precondition: a != 0
// (returns 0 for 0, which no caller should rely on).
Scalar sc_invert(const Scalar& a);
// Reduce 64 little-endian bytes mod L (the RFC 8032 wide reduction).
Scalar sc_from_bytes64(const std::uint8_t bytes[64]);
// Reduce 32 little-endian bytes mod L.
Scalar sc_from_bytes32(const std::uint8_t bytes[32]);
// Strict decode: nullopt when the encoding is >= L (non-canonical).
std::optional<Scalar> sc_from_bytes32_strict(const std::uint8_t bytes[32]);
void sc_to_bytes(std::uint8_t out[32], const Scalar& s);
// [s] p for a Scalar (convenience over the raw-bytes overload).
GroupElement ge_scalar_mult(const Scalar& s, const GroupElement& p);

}  // namespace mahimahi::crypto::curve
