#include "crypto/curve25519.h"

#include <cstdlib>
#include <cstring>

namespace mahimahi::crypto::curve {

namespace {

constexpr FieldElement kP = {{0xffffffffffffffedULL, 0xffffffffffffffffULL,
                              0xffffffffffffffffULL, 0x7fffffffffffffffULL}};
constexpr FieldElement kZero = {};
constexpr FieldElement kOne = {{1, 0, 0, 0}};

bool fe_gte(const FieldElement& a, const FieldElement& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.v[i] != b.v[i]) return a.v[i] > b.v[i];
  }
  return true;
}

// a - b, assuming a >= b; returns borrow-free difference.
FieldElement raw_sub(const FieldElement& a, const FieldElement& b) {
  FieldElement out;
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(a.v[i]) - b.v[i] - borrow;
    out.v[i] = static_cast<std::uint64_t>(cur);
    borrow = (cur >> 64) & 1;  // 1 if the subtraction wrapped
  }
  return out;
}

// a + b as a 257-bit value: returns low 256 bits, carry out-param.
FieldElement raw_add(const FieldElement& a, const FieldElement& b,
                     std::uint64_t& carry_out) {
  FieldElement out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(a.v[i]) + b.v[i] + carry;
    out.v[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  carry_out = static_cast<std::uint64_t>(carry);
  return out;
}

FieldElement fe_canonicalize(FieldElement a, std::uint64_t carry) {
  // Value is a + carry * 2^256 with carry <= 1; 2^256 ≡ 38 (mod p).
  while (carry != 0) {
    const FieldElement c38 = {{carry * 38, 0, 0, 0}};
    a = raw_add(a, c38, carry);
  }
  while (fe_gte(a, kP)) a = raw_sub(a, kP);
  return a;
}

// Curve constants, computed once from their definitions.
struct CurveConstants {
  FieldElement d;        // -121665/121666
  FieldElement two_d;    // 2d
  FieldElement sqrt_m1;  // sqrt(-1) = 2^((p-1)/4)
};

const CurveConstants& constants() {
  static const CurveConstants c = [] {
    CurveConstants out;
    const FieldElement n121665 = {{121665, 0, 0, 0}};
    const FieldElement n121666 = {{121666, 0, 0, 0}};
    out.d = fe_mul(fe_neg(n121665), fe_invert(n121666));
    out.two_d = fe_add(out.d, out.d);
    // (p - 1) / 4 = 2^253 - 5.
    static constexpr std::uint64_t kExp[4] = {0xfffffffffffffffbULL, 0xffffffffffffffffULL,
                                              0xffffffffffffffffULL, 0x1fffffffffffffffULL};
    const FieldElement two = {{2, 0, 0, 0}};
    out.sqrt_m1 = fe_pow(two, kExp);
    return out;
  }();
  return c;
}

// L, little-endian limbs.
constexpr std::uint64_t kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                                 0x1000000000000000ULL};

bool sc_gte_l(const Scalar& a) {
  for (int i = 3; i >= 0; --i) {
    if (a.v[i] != kL[i]) return a.v[i] > kL[i];
  }
  return true;
}

Scalar sc_sub_l(const Scalar& a) {
  Scalar out;
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(a.v[i]) - kL[i] - borrow;
    out.v[i] = static_cast<std::uint64_t>(cur);
    borrow = (cur >> 64) & 1;
  }
  return out;
}

// Reduce a 512-bit little-endian value mod L by binary long division.
Scalar sc_reduce512(const std::uint64_t x[8]) {
  Scalar r;
  for (int bit = 511; bit >= 0; --bit) {
    // r = (r << 1) | x_bit   (r stays < 2L < 2^254, so no overflow)
    std::uint64_t carry = (x[bit / 64] >> (bit % 64)) & 1;
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t top = r.v[i] >> 63;
      r.v[i] = (r.v[i] << 1) | carry;
      carry = top;
    }
    if (sc_gte_l(r)) r = sc_sub_l(r);
  }
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Field
// ---------------------------------------------------------------------------

FieldElement fe_zero() { return kZero; }
FieldElement fe_one() { return kOne; }

bool fe_eq(const FieldElement& a, const FieldElement& b) {
  return std::memcmp(a.v, b.v, sizeof(a.v)) == 0;
}

bool fe_is_zero(const FieldElement& a) { return fe_eq(a, kZero); }

bool fe_is_odd(const FieldElement& a) { return (a.v[0] & 1) != 0; }

FieldElement fe_add(const FieldElement& a, const FieldElement& b) {
  std::uint64_t carry;
  FieldElement out = raw_add(a, b, carry);
  return fe_canonicalize(out, carry);
}

FieldElement fe_sub(const FieldElement& a, const FieldElement& b) {
  if (fe_gte(a, b)) return raw_sub(a, b);
  // a - b + p. Inputs are canonical, so a + p < 2^256 (no carry) and the
  // result lands in (0, p) directly.
  std::uint64_t carry;
  const FieldElement sum = raw_add(a, kP, carry);
  return raw_sub(sum, b);
}

FieldElement fe_mul(const FieldElement& a, const FieldElement& b) {
  // Schoolbook 4x4 -> 8 limbs.
  std::uint64_t z[8] = {};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a.v[i]) * b.v[j] + z[i + j] + carry;
      z[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    z[i + 4] = static_cast<std::uint64_t>(carry);
  }

  // Fold hi * 2^256 ≡ hi * 38.
  std::uint64_t r[5] = {z[0], z[1], z[2], z[3], 0};
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(z[4 + i]) * 38 + r[i] + carry;
    r[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  r[4] = static_cast<std::uint64_t>(carry);

  // Second fold: r[4] <= 38.
  FieldElement out = {{r[0], r[1], r[2], r[3]}};
  std::uint64_t c2;
  const FieldElement fold = {{r[4] * 38, 0, 0, 0}};
  out = raw_add(out, fold, c2);
  return fe_canonicalize(out, c2);
}

FieldElement fe_sq(const FieldElement& a) { return fe_mul(a, a); }

FieldElement fe_pow(const FieldElement& a, const std::uint64_t e[4]) {
  FieldElement result = kOne;
  bool started = false;
  for (int limb = 3; limb >= 0; --limb) {
    for (int bit = 63; bit >= 0; --bit) {
      if (started) result = fe_sq(result);
      if ((e[limb] >> bit) & 1) {
        result = fe_mul(result, a);
        started = true;
      }
    }
  }
  return result;
}

FieldElement fe_invert(const FieldElement& a) {
  // p - 2 = 2^255 - 21.
  static constexpr std::uint64_t kExp[4] = {0xffffffffffffffebULL, 0xffffffffffffffffULL,
                                            0xffffffffffffffffULL, 0x7fffffffffffffffULL};
  return fe_pow(a, kExp);
}

FieldElement fe_neg(const FieldElement& a) { return fe_sub(kZero, a); }

FieldElement fe_from_bytes(const std::uint8_t bytes[32]) {
  FieldElement out;
  std::memcpy(out.v, bytes, 32);  // little-endian host
  return out;
}

void fe_to_bytes(std::uint8_t out[32], const FieldElement& a) {
  std::memcpy(out, a.v, 32);
}

// ---------------------------------------------------------------------------
// Group
// ---------------------------------------------------------------------------

GroupElement ge_identity() { return GroupElement{kZero, kOne, kOne, kZero}; }

bool ge_is_identity(const GroupElement& p) {
  // x/z == 0 and y/z == 1  ⟺  x == 0 and y == z.
  return fe_is_zero(p.x) && fe_eq(p.y, p.z);
}

bool ge_eq(const GroupElement& p, const GroupElement& q) {
  return fe_eq(fe_mul(p.x, q.z), fe_mul(q.x, p.z)) &&
         fe_eq(fe_mul(p.y, q.z), fe_mul(q.y, p.z));
}

// Complete addition (add-2008-hwcd-3 shape, a = -1).
GroupElement ge_add(const GroupElement& p, const GroupElement& q) {
  const FieldElement a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const FieldElement b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const FieldElement c = fe_mul(fe_mul(p.t, constants().two_d), q.t);
  const FieldElement d = fe_mul(fe_add(p.z, p.z), q.z);
  const FieldElement e = fe_sub(b, a);
  const FieldElement f = fe_sub(d, c);
  const FieldElement g = fe_add(d, c);
  const FieldElement h = fe_add(b, a);
  GroupElement out;
  out.x = fe_mul(e, f);
  out.y = fe_mul(g, h);
  out.t = fe_mul(e, h);
  out.z = fe_mul(f, g);
  return out;
}

GroupElement ge_sub(const GroupElement& p, const GroupElement& q) {
  return ge_add(p, ge_neg(q));
}

GroupElement ge_neg(const GroupElement& p) {
  return GroupElement{fe_neg(p.x), p.y, p.z, fe_neg(p.t)};
}

GroupElement ge_scalar_mult(const std::uint8_t scalar_le[32], const GroupElement& p) {
  GroupElement result = ge_identity();
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = ge_add(result, result);
      if ((scalar_le[byte] >> bit) & 1) {
        result = ge_add(result, p);
        started = true;
      }
    }
  }
  return result;
}

void ge_compress(std::uint8_t out[32], const GroupElement& p) {
  const FieldElement z_inv = fe_invert(p.z);
  const FieldElement x = fe_mul(p.x, z_inv);
  const FieldElement y = fe_mul(p.y, z_inv);
  fe_to_bytes(out, y);
  if (fe_is_odd(x)) out[31] |= 0x80;
}

CompressedPoint ge_compressed(const GroupElement& p) {
  CompressedPoint out;
  ge_compress(out.data(), p);
  return out;
}

std::optional<GroupElement> ge_decompress(const std::uint8_t in[32]) {
  std::uint8_t y_bytes[32];
  std::memcpy(y_bytes, in, 32);
  const bool sign = (y_bytes[31] & 0x80) != 0;
  y_bytes[31] &= 0x7f;

  const FieldElement y = fe_from_bytes(y_bytes);
  if (fe_gte(y, kP)) return std::nullopt;  // non-canonical y

  // x^2 = (y^2 - 1) / (d y^2 + 1)
  const FieldElement y2 = fe_sq(y);
  const FieldElement u = fe_sub(y2, kOne);
  const FieldElement v = fe_add(fe_mul(constants().d, y2), kOne);

  // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8).
  const FieldElement v3 = fe_mul(fe_sq(v), v);
  const FieldElement v7 = fe_mul(fe_sq(v3), v);
  static constexpr std::uint64_t kExp[4] = {0xfffffffffffffffdULL, 0xffffffffffffffffULL,
                                            0xffffffffffffffffULL, 0x0fffffffffffffffULL};
  FieldElement x = fe_mul(fe_mul(u, v3), fe_pow(fe_mul(u, v7), kExp));

  const FieldElement vx2 = fe_mul(v, fe_sq(x));
  if (fe_eq(vx2, u)) {
    // x is a root.
  } else if (fe_eq(vx2, fe_neg(u))) {
    x = fe_mul(x, constants().sqrt_m1);
  } else {
    return std::nullopt;  // not a curve point
  }

  if (fe_is_zero(x) && sign) return std::nullopt;  // -0 is not a valid encoding
  if (fe_is_odd(x) != sign) x = fe_neg(x);

  GroupElement out;
  out.x = x;
  out.y = y;
  out.z = kOne;
  out.t = fe_mul(x, y);
  return out;
}

const GroupElement& ge_base() {
  static const GroupElement b = [] {
    // y = 4/5, sign bit 0.
    const FieldElement four = {{4, 0, 0, 0}};
    const FieldElement five = {{5, 0, 0, 0}};
    const FieldElement y = fe_mul(four, fe_invert(five));
    std::uint8_t enc[32];
    fe_to_bytes(enc, y);
    const auto decoded = ge_decompress(enc);
    if (!decoded) std::abort();  // unreachable: 4/5 is a valid y coordinate
    return *decoded;
  }();
  return b;
}

GroupElement ge_mul_cofactor(const GroupElement& p) {
  GroupElement r = ge_add(p, p);
  r = ge_add(r, r);
  return ge_add(r, r);
}

// ---------------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------------

bool Scalar::operator==(const Scalar& other) const {
  return std::memcmp(v, other.v, sizeof(v)) == 0;
}

Scalar sc_zero() { return Scalar{}; }
Scalar sc_one() { return Scalar{{1, 0, 0, 0}}; }

Scalar sc_from_u64(std::uint64_t x) { return Scalar{{x, 0, 0, 0}}; }

bool sc_is_zero(const Scalar& a) { return a == Scalar{}; }

Scalar sc_add(const Scalar& a, const Scalar& b) {
  Scalar out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(a.v[i]) + b.v[i] + carry;
    out.v[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  // Inputs are < L < 2^253, so the sum is < 2^254: no carry out, and at most
  // one subtraction of L is needed.
  if (sc_gte_l(out)) out = sc_sub_l(out);
  return out;
}

Scalar sc_sub(const Scalar& a, const Scalar& b) { return sc_add(a, sc_neg(b)); }

Scalar sc_neg(const Scalar& a) {
  if (sc_is_zero(a)) return a;
  Scalar l = {{kL[0], kL[1], kL[2], kL[3]}};
  unsigned __int128 borrow = 0;
  Scalar out;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(l.v[i]) - a.v[i] - borrow;
    out.v[i] = static_cast<std::uint64_t>(cur);
    borrow = (cur >> 64) & 1;
  }
  return out;
}

Scalar sc_mul(const Scalar& a, const Scalar& b) { return sc_mul_add(a, b, Scalar{}); }

Scalar sc_mul_add(const Scalar& a, const Scalar& b, const Scalar& c) {
  // a*b + c as a 512-bit value, then reduce.
  std::uint64_t z[8] = {};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a.v[i]) * b.v[j] + z[i + j] + carry;
      z[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    z[i + 4] = static_cast<std::uint64_t>(carry);
  }
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(z[i]) + c.v[i] + carry;
    z[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  for (int i = 4; i < 8 && carry != 0; ++i) {
    unsigned __int128 cur = static_cast<unsigned __int128>(z[i]) + carry;
    z[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  return sc_reduce512(z);
}

Scalar sc_invert(const Scalar& a) {
  // Fermat: a^(L-2). L - 2 differs from L only in the low limb.
  static constexpr std::uint64_t kExp[4] = {0x5812631a5cf5d3ebULL, 0x14def9dea2f79cd6ULL,
                                            0ULL, 0x1000000000000000ULL};
  Scalar result = sc_one();
  bool started = false;
  for (int limb = 3; limb >= 0; --limb) {
    for (int bit = 63; bit >= 0; --bit) {
      if (started) result = sc_mul(result, result);
      if ((kExp[limb] >> bit) & 1) {
        result = sc_mul(result, a);
        started = true;
      }
    }
  }
  return result;
}

Scalar sc_from_bytes64(const std::uint8_t bytes[64]) {
  std::uint64_t x[8];
  std::memcpy(x, bytes, 64);
  return sc_reduce512(x);
}

Scalar sc_from_bytes32(const std::uint8_t bytes[32]) {
  std::uint64_t x[8] = {};
  std::memcpy(x, bytes, 32);
  return sc_reduce512(x);
}

std::optional<Scalar> sc_from_bytes32_strict(const std::uint8_t bytes[32]) {
  Scalar s;
  std::memcpy(s.v, bytes, 32);
  if (sc_gte_l(s)) return std::nullopt;
  return s;
}

void sc_to_bytes(std::uint8_t out[32], const Scalar& s) { std::memcpy(out, s.v, 32); }

GroupElement ge_scalar_mult(const Scalar& s, const GroupElement& p) {
  std::uint8_t bytes[32];
  sc_to_bytes(bytes, s);
  return ge_scalar_mult(bytes, p);
}

}  // namespace mahimahi::crypto::curve
