#include "crypto/coin.h"

#include <cstring>
#include <unordered_set>

#include "crypto/blake2b.h"

namespace mahimahi::crypto {

namespace {

Bytes round_message(std::uint64_t round) {
  Bytes msg(8);
  std::memcpy(msg.data(), &round, 8);  // little-endian host
  return msg;
}

}  // namespace

ThresholdCoin::ThresholdCoin(std::uint32_t n, std::uint32_t f, const Digest& epoch_seed)
    : n_(n), f_(f), epoch_seed_(epoch_seed) {}

Digest ThresholdCoin::share_key(std::uint32_t author) const {
  Bytes input(epoch_seed_.bytes.begin(), epoch_seed_.bytes.end());
  input.push_back('s');
  input.push_back('k');
  input.insert(input.end(), reinterpret_cast<const std::uint8_t*>(&author),
               reinterpret_cast<const std::uint8_t*>(&author) + 4);
  return Blake2b::hash256({input.data(), input.size()});
}

CoinShare ThresholdCoin::share(std::uint32_t author, std::uint64_t round) const {
  const Digest key = share_key(author);
  const Bytes msg = round_message(round);
  return Blake2b::mac256(key.view(), {msg.data(), msg.size()});
}

bool ThresholdCoin::verify_share(std::uint32_t author, std::uint64_t round,
                                 const CoinShare& share_in) const {
  if (author >= n_) return false;
  const CoinShare expected = share(author, round);
  return ct_equal(expected.view(), share_in.view());
}

std::vector<std::uint8_t> ThresholdCoin::verify_shares(
    std::span<const ShareQuery> queries) const {
  std::vector<std::uint8_t> ok(queries.size(), 0);
  // Share keys depend only on the author; derive each at most once per batch.
  // Committees are small, so a linear scan beats a hash map.
  std::vector<std::pair<std::uint32_t, Digest>> keys;
  keys.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& query = queries[i];
    if (query.author >= n_) continue;
    const Digest* key = nullptr;
    for (const auto& [author, cached] : keys) {
      if (author == query.author) {
        key = &cached;
        break;
      }
    }
    if (key == nullptr) {
      keys.emplace_back(query.author, share_key(query.author));
      key = &keys.back().second;
    }
    const Bytes msg = round_message(query.round);
    const CoinShare expected = Blake2b::mac256(key->view(), {msg.data(), msg.size()});
    ok[i] = ct_equal(expected.view(), query.share.view()) ? 1 : 0;
  }
  return ok;
}

std::optional<std::uint64_t> ThresholdCoin::combine(
    std::uint64_t round,
    std::span<const std::pair<std::uint32_t, CoinShare>> shares) const {
  std::unordered_set<std::uint32_t> seen;
  for (const auto& [author, share_value] : shares) {
    if (seen.contains(author)) continue;
    if (!verify_share(author, round, share_value)) continue;
    seen.insert(author);
  }
  if (seen.size() < threshold()) return std::nullopt;
  return value(round);
}

std::uint64_t ThresholdCoin::value(std::uint64_t round) const {
  Bytes input(epoch_seed_.bytes.begin(), epoch_seed_.bytes.end());
  input.push_back('c');
  input.push_back('v');
  input.insert(input.end(), reinterpret_cast<const std::uint8_t*>(&round),
               reinterpret_cast<const std::uint8_t*>(&round) + 8);
  const Digest d = Blake2b::hash256({input.data(), input.size()});
  std::uint64_t v;
  std::memcpy(&v, d.bytes.data(), 8);
  return v;
}

}  // namespace mahimahi::crypto
