#include "crypto/sha512.h"

#include <bit>
#include <cstring>

#include "crypto/fracroot.h"

namespace mahimahi::crypto {

namespace {

// H0 = first 64 fractional bits of sqrt of the first 8 primes. (These same
// words serve as the BLAKE2b IV; the test suite checks both derivations.)
constexpr std::array<std::uint64_t, 8> kInitState = {
    0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
    0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
    0x1f83d9abfb41bd6bULL, 0x5be0cd19137e2179ULL};

std::array<std::uint64_t, 80> build_round_constants() {
  const auto primes = first_primes<80>();
  std::array<std::uint64_t, 80> k{};
  for (std::size_t i = 0; i < 80; ++i) k[i] = frac_cbrt64(primes[i]);
  return k;
}

inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | p[i];
  return v;
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

inline std::uint64_t rotr(std::uint64_t x, int n) { return std::rotr(x, n); }

}  // namespace

const std::array<std::uint64_t, 80>& sha512_round_constants() {
  static const auto k = build_round_constants();
  return k;
}

Sha512::Sha512() : state_(kInitState) {}

void Sha512::compress(const std::uint8_t* block) {
  const auto& kc = sha512_round_constants();
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be64(block + 8 * i);
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 = rotr(w[i - 15], 1) ^ rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 = rotr(w[i - 2], 19) ^ rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint64_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint64_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 80; ++i) {
    const std::uint64_t s1 = rotr(e, 14) ^ rotr(e, 18) ^ rotr(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = h + s1 + ch + kc[i] + w[i];
    const std::uint64_t s0 = rotr(a, 28) ^ rotr(a, 34) ^ rotr(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha512::update(BytesView data) {
  // An empty span's data() may be null, and memcpy's source is declared
  // nonnull even for zero sizes (UBSan flags it; empty-message signing hits
  // this path).
  if (data.empty()) return;
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kBlockSize) {
      compress(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    compress(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

Sha512::Digest64 Sha512::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update({&pad_byte, 1});
  const std::uint8_t zero = 0x00;
  while (buffered_ != kBlockSize - 16) update({&zero, 1});

  std::uint8_t length_be[16] = {};
  store_be64(length_be + 8, bit_length);  // upper 64 bits stay zero
  update({length_be, 16});

  Digest64 out;
  for (int i = 0; i < 8; ++i) store_be64(out.data() + 8 * i, state_[i]);
  return out;
}

Sha512::Digest64 Sha512::hash(BytesView data) {
  Sha512 h;
  h.update(data);
  return h.finish();
}

}  // namespace mahimahi::crypto
