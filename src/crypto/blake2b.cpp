#include "crypto/blake2b.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace mahimahi::crypto {

namespace {

constexpr std::array<std::uint64_t, 8> kIv = {
    0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
    0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
    0x1f83d9abfb41bd6bULL, 0x5be0cd19137e2179ULL};

constexpr std::uint8_t kSigma[10][16] = {
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
    {14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
    {11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
    {7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
    {9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
    {2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
    {12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
    {13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
    {6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
    {10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0}};

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));  // little-endian host assumed (x86-64)
  return v;
}

inline void g(std::uint64_t& a, std::uint64_t& b, std::uint64_t& c, std::uint64_t& d,
              std::uint64_t x, std::uint64_t y) {
  a = a + b + x;
  d = std::rotr(d ^ a, 32);
  c = c + d;
  b = std::rotr(b ^ c, 24);
  a = a + b + y;
  d = std::rotr(d ^ a, 16);
  c = c + d;
  b = std::rotr(b ^ c, 63);
}

}  // namespace

Blake2b::Blake2b(std::size_t digest_size, BytesView key) : digest_size_(digest_size) {
  assert(digest_size_ >= 1 && digest_size_ <= kMaxDigestSize);
  assert(key.size() <= 64);
  h_ = kIv;
  // Parameter block word 0: digest length, key length, fanout = depth = 1.
  h_[0] ^= 0x01010000ULL ^ (static_cast<std::uint64_t>(key.size()) << 8) ^
           static_cast<std::uint64_t>(digest_size_);
  if (!key.empty()) {
    std::array<std::uint8_t, kBlockSize> key_block{};
    std::memcpy(key_block.data(), key.data(), key.size());
    update({key_block.data(), key_block.size()});
  }
}

void Blake2b::compress(bool last) {
  std::uint64_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le64(buffer_.data() + 8 * i);

  std::uint64_t v[16];
  for (int i = 0; i < 8; ++i) v[i] = h_[i];
  for (int i = 0; i < 8; ++i) v[8 + i] = kIv[i];
  v[12] ^= counter_;  // low word of the byte counter; high word is zero
  if (last) v[14] = ~v[14];

  for (int round = 0; round < 12; ++round) {
    const std::uint8_t* s = kSigma[round % 10];
    g(v[0], v[4], v[8], v[12], m[s[0]], m[s[1]]);
    g(v[1], v[5], v[9], v[13], m[s[2]], m[s[3]]);
    g(v[2], v[6], v[10], v[14], m[s[4]], m[s[5]]);
    g(v[3], v[7], v[11], v[15], m[s[6]], m[s[7]]);
    g(v[0], v[5], v[10], v[15], m[s[8]], m[s[9]]);
    g(v[1], v[6], v[11], v[12], m[s[10]], m[s[11]]);
    g(v[2], v[7], v[8], v[13], m[s[12]], m[s[13]]);
    g(v[3], v[4], v[9], v[14], m[s[14]], m[s[15]]);
  }

  for (int i = 0; i < 8; ++i) h_[i] ^= v[i] ^ v[8 + i];
}

void Blake2b::update(BytesView data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    if (buffered_ == kBlockSize) {
      // A full buffer is only compressed once more input arrives: the final
      // block must be compressed with the `last` flag set in finish().
      counter_ += kBlockSize;
      compress(/*last=*/false);
      buffered_ = 0;
    }
    const std::size_t take = std::min(kBlockSize - buffered_, data.size() - offset);
    std::memcpy(buffer_.data() + buffered_, data.data() + offset, take);
    buffered_ += take;
    offset += take;
  }
}

void Blake2b::finish(std::uint8_t* out) {
  counter_ += buffered_;
  std::memset(buffer_.data() + buffered_, 0, kBlockSize - buffered_);
  compress(/*last=*/true);
  std::uint8_t full[kMaxDigestSize];
  for (int i = 0; i < 8; ++i) std::memcpy(full + 8 * i, &h_[i], 8);
  std::memcpy(out, full, digest_size_);
}

Digest Blake2b::hash256(BytesView data) {
  Blake2b h(32);
  h.update(data);
  Digest d;
  h.finish(d.bytes.data());
  return d;
}

std::array<std::uint8_t, 64> Blake2b::hash512(BytesView data) {
  Blake2b h(64);
  h.update(data);
  std::array<std::uint8_t, 64> d;
  h.finish(d.data());
  return d;
}

Digest Blake2b::mac256(BytesView key, BytesView data) {
  Blake2b h(32, key);
  h.update(data);
  Digest d;
  h.finish(d.bytes.data());
  return d;
}

}  // namespace mahimahi::crypto
