// Fractional bits of integer roots.
//
// The SHA-2 family defines its magic constants as "the first N bits of the
// fractional part of the square/cube roots of the first primes". Rather than
// transcribing 80 opaque 64-bit constants for SHA-512, we compute them with
// exact 256-bit integer arithmetic:
//
//   frac_sqrt64(p) = floor(sqrt(p) * 2^64) mod 2^64
//   frac_cbrt64(p) = floor(cbrt(p) * 2^64) mod 2^64
//
// The same routine regenerates the (hardcoded) SHA-256 constants, which the
// test suite uses to cross-validate both the table and this code.
#pragma once

#include <array>
#include <cstdint>

namespace mahimahi::crypto {

std::uint64_t frac_sqrt64(std::uint64_t n);
std::uint64_t frac_cbrt64(std::uint64_t n);

inline std::uint32_t frac_sqrt32(std::uint64_t n) {
  return static_cast<std::uint32_t>(frac_sqrt64(n) >> 32);
}
inline std::uint32_t frac_cbrt32(std::uint64_t n) {
  return static_cast<std::uint32_t>(frac_cbrt64(n) >> 32);
}

// First `N` primes (compile-time), for the SHA-2 constant schedules.
template <std::size_t N>
constexpr std::array<std::uint32_t, N> first_primes() {
  std::array<std::uint32_t, N> primes{};
  std::size_t count = 0;
  for (std::uint32_t candidate = 2; count < N; ++candidate) {
    bool prime = true;
    for (std::uint32_t d = 2; d * d <= candidate; ++d) {
      if (candidate % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes[count++] = candidate;
  }
  return primes;
}

}  // namespace mahimahi::crypto
