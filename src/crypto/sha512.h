// SHA-512 (FIPS 180-4), implemented from scratch.
//
// Required by Ed25519 (RFC 8032). The 80 round constants are not transcribed;
// they are regenerated at startup from their definition (fractional cube-root
// bits of the first 80 primes) using exact integer arithmetic (see
// crypto/fracroot.h), and validated by test vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace mahimahi::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  using Digest64 = std::array<std::uint8_t, 64>;

  Sha512();

  void update(BytesView data);
  Digest64 finish();

  static Digest64 hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  // 128-bit message length is overkill for our uses; 64 bits of bytes is
  // plenty (the upper 64 bits of the length field are always zero).
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
};

const std::array<std::uint64_t, 80>& sha512_round_constants();

}  // namespace mahimahi::crypto
