// Global perfect coin (simulated threshold scheme).
//
// The paper constructs the coin from an adaptively-secure threshold signature
// with asynchronous DKG (§2.1). This repository substitutes a keyed-hash
// scheme that preserves every property the protocol observes:
//
//   * each validator contributes one share per round, carried in its block;
//   * any 2f+1 valid shares from distinct validators reconstruct the coin;
//   * every validator reconstructs the same value;
//   * shares are individually verifiable.
//
// What it does NOT provide is cryptographic unpredictability against a party
// holding the setup seed (all validators can precompute future coins). Our
// in-repo adversaries never exploit this; see DESIGN.md §3.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace mahimahi::crypto {

using CoinShare = Digest;

class ThresholdCoin {
 public:
  // All validators construct the coin from the same epoch seed (standing in
  // for the DKG transcript) and learn their own share key. `n` validators,
  // tolerating `f` faults; reconstruction threshold is 2f+1.
  ThresholdCoin(std::uint32_t n, std::uint32_t f, const Digest& epoch_seed);

  std::uint32_t n() const { return n_; }
  std::uint32_t threshold() const { return 2 * f_ + 1; }

  // The share validator `author` embeds in its round-`round` block.
  CoinShare share(std::uint32_t author, std::uint64_t round) const;

  // Verifies that `share` is author's valid share for `round`.
  bool verify_share(std::uint32_t author, std::uint64_t round,
                    const CoinShare& share) const;

  // Batched share verification: one verdict per query, identical to calling
  // verify_share per query. Amortizes the per-author key derivation across
  // the batch — a block batch from an n-validator committee re-derives each
  // author's share key once instead of once per block.
  struct ShareQuery {
    std::uint32_t author;
    std::uint64_t round;
    CoinShare share;
  };
  std::vector<std::uint8_t> verify_shares(std::span<const ShareQuery> queries) const;

  // Reconstructs the coin for `round` from shares. Input pairs are
  // (author, share); invalid or duplicate-author shares are ignored. Returns
  // nullopt if fewer than 2f+1 distinct valid shares remain.
  std::optional<std::uint64_t> combine(
      std::uint64_t round,
      std::span<const std::pair<std::uint32_t, CoinShare>> shares) const;

  // The reconstructed value (only meaningful once combine() would succeed;
  // exposed for tests and for the simulator's oracle mode).
  std::uint64_t value(std::uint64_t round) const;

 private:
  Digest share_key(std::uint32_t author) const;

  std::uint32_t n_;
  std::uint32_t f_;
  Digest epoch_seed_;
};

}  // namespace mahimahi::crypto
