#include "crypto/hmac.h"

#include <array>

#include "crypto/sha256.h"

namespace mahimahi::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;

  std::array<std::uint8_t, kBlock> key_block{};
  if (key.size() > kBlock) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.bytes.begin(), hashed.bytes.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlock> ipad, opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update({ipad.data(), ipad.size()});
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update({opad.data(), opad.size()});
  outer.update(inner_digest.view());
  return outer.finish();
}

}  // namespace mahimahi::crypto
