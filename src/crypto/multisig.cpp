#include "crypto/multisig.h"

#include <algorithm>

namespace mahimahi::crypto {

bool multisig_verify(const Multisig& multisig, BytesView message,
                     std::span<const Ed25519PublicKey> keys,
                     std::uint32_t threshold) {
  if (multisig.shares.size() < threshold) return false;
  std::vector<Ed25519BatchItem> items;
  items.reserve(multisig.shares.size());
  std::uint32_t previous = 0;
  bool first = true;
  for (const auto& share : multisig.shares) {
    if (share.signer >= keys.size()) return false;
    // Sorted-and-distinct doubles as the duplicate check: any repeat or
    // out-of-order share makes the certificate non-canonical.
    if (!first && share.signer <= previous) return false;
    previous = share.signer;
    first = false;
    items.push_back({keys[share.signer], message, share.signature});
  }
  const std::vector<std::uint8_t> verdicts =
      ed25519_verify_each({items.data(), items.size()});
  return std::all_of(verdicts.begin(), verdicts.end(),
                     [](std::uint8_t ok) { return ok != 0; });
}

bool MultisigCollector::add(std::uint32_t signer,
                            const Ed25519Signature& signature) {
  const auto it = std::lower_bound(
      shares_.begin(), shares_.end(), signer,
      [](const MultisigShare& s, std::uint32_t id) { return s.signer < id; });
  if (it != shares_.end() && it->signer == signer) return false;  // duplicate
  const bool was_complete = complete();
  shares_.insert(it, MultisigShare{signer, signature});
  return !was_complete && complete();
}

Multisig MultisigCollector::certificate() const { return Multisig{shares_}; }

}  // namespace mahimahi::crypto
