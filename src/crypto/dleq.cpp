#include "crypto/dleq.h"

#include <cstring>

#include "crypto/sha512.h"

namespace mahimahi::crypto {

namespace {

using curve::ge_add;
using curve::ge_compressed;
using curve::ge_scalar_mult;
using curve::ge_sub;
using curve::GroupElement;
using curve::Scalar;
using curve::sc_from_bytes32_strict;
using curve::sc_from_bytes64;
using curve::sc_mul_add;
using curve::sc_to_bytes;

constexpr char kChallengeDomain[] = "mahimahi.dleq.challenge.v1";
constexpr char kNonceDomain[] = "mahimahi.dleq.nonce.v1";

void absorb_point(Sha512& h, const GroupElement& p) {
  const auto enc = ge_compressed(p);
  h.update({enc.data(), enc.size()});
}

// c = H(domain ‖ context ‖ G ‖ H ‖ P ‖ S ‖ A ‖ B) mod L.
Scalar challenge(const GroupElement& g, const GroupElement& h_point,
                 const GroupElement& p, const GroupElement& s, const GroupElement& a,
                 const GroupElement& b, BytesView context) {
  Sha512 h;
  h.update({reinterpret_cast<const std::uint8_t*>(kChallengeDomain),
            sizeof(kChallengeDomain) - 1});
  h.update(context);
  absorb_point(h, g);
  absorb_point(h, h_point);
  absorb_point(h, p);
  absorb_point(h, s);
  absorb_point(h, a);
  absorb_point(h, b);
  return sc_from_bytes64(h.finish().data());
}

}  // namespace

std::array<std::uint8_t, DleqProof::kWireBytes> DleqProof::to_bytes() const {
  std::array<std::uint8_t, kWireBytes> out;
  sc_to_bytes(out.data(), c);
  sc_to_bytes(out.data() + 32, z);
  return out;
}

std::optional<DleqProof> DleqProof::from_bytes(
    const std::array<std::uint8_t, kWireBytes>& bytes) {
  const auto c = sc_from_bytes32_strict(bytes.data());
  const auto z = sc_from_bytes32_strict(bytes.data() + 32);
  if (!c || !z) return std::nullopt;
  return DleqProof{*c, *z};
}

DleqProof dleq_prove(const Scalar& x, const GroupElement& g, const GroupElement& h,
                     const GroupElement& p, const GroupElement& s, BytesView context) {
  // Deterministic nonce k = H(domain ‖ x ‖ context ‖ H ‖ S) mod L.
  Sha512 nonce_hash;
  nonce_hash.update({reinterpret_cast<const std::uint8_t*>(kNonceDomain),
                     sizeof(kNonceDomain) - 1});
  std::uint8_t x_bytes[32];
  sc_to_bytes(x_bytes, x);
  nonce_hash.update({x_bytes, 32});
  nonce_hash.update(context);
  absorb_point(nonce_hash, h);
  absorb_point(nonce_hash, s);
  const Scalar k = sc_from_bytes64(nonce_hash.finish().data());

  const GroupElement a = ge_scalar_mult(k, g);
  const GroupElement b = ge_scalar_mult(k, h);

  DleqProof proof;
  proof.c = challenge(g, h, p, s, a, b, context);
  proof.z = sc_mul_add(proof.c, x, k);  // z = k + c·x
  return proof;
}

bool dleq_verify(const DleqProof& proof, const GroupElement& g, const GroupElement& h,
                 const GroupElement& p, const GroupElement& s, BytesView context) {
  // A = [z]G - [c]P, B = [z]H - [c]S; accept iff c == H(..., A, B).
  const GroupElement a = ge_sub(ge_scalar_mult(proof.z, g), ge_scalar_mult(proof.c, p));
  const GroupElement b = ge_sub(ge_scalar_mult(proof.z, h), ge_scalar_mult(proof.c, s));
  return challenge(g, h, p, s, a, b, context) == proof.c;
}

}  // namespace mahimahi::crypto
