// BLAKE2b (RFC 7693), implemented from scratch.
//
// The paper's implementation hashes blocks with blake2; we do the same. The
// default output is 32 bytes (block digests); a 64-byte variant and keyed
// hashing (MAC mode) are also provided.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace mahimahi::crypto {

class Blake2b {
 public:
  static constexpr std::size_t kBlockSize = 128;
  static constexpr std::size_t kMaxDigestSize = 64;

  // digest_size in [1, 64]; key at most 64 bytes (empty = unkeyed).
  explicit Blake2b(std::size_t digest_size = 32, BytesView key = {});

  void update(BytesView data);

  // Writes digest_size bytes into `out`.
  void finish(std::uint8_t* out);

  // One-shot 32-byte digest (the library-wide Digest type).
  static Digest hash256(BytesView data);
  // One-shot 64-byte digest.
  static std::array<std::uint8_t, 64> hash512(BytesView data);
  // Keyed 32-byte MAC.
  static Digest mac256(BytesView key, BytesView data);

 private:
  void compress(bool last);

  std::array<std::uint64_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t counter_ = 0;  // bytes compressed so far (fits 64 bits here)
  std::size_t digest_size_;
};

}  // namespace mahimahi::crypto
