// 32-byte digest type used throughout the library (block ids, WAL hashes).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "common/hex.h"

namespace mahimahi {

struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Digest&) const = default;

  BytesView view() const { return {bytes.data(), bytes.size()}; }
  std::string hex() const { return to_hex(view()); }
  // First 4 bytes as hex; handy for logs.
  std::string short_hex() const { return to_hex({bytes.data(), 4}); }

  static Digest from_bytes(BytesView data) {
    Digest d;
    std::memcpy(d.bytes.data(), data.data(),
                data.size() < 32 ? data.size() : 32);
    return d;
  }
};

struct DigestHasher {
  std::size_t operator()(const Digest& d) const {
    // Digests are uniform; the first 8 bytes are a fine hash.
    std::uint64_t h;
    std::memcpy(&h, d.bytes.data(), sizeof(h));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace mahimahi
