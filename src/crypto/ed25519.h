// Ed25519 (RFC 8032) signatures, implemented from scratch.
//
// Field arithmetic over GF(2^255 - 19) uses four 64-bit limbs with schoolbook
// multiplication and 2^256 ≡ 38 folding; group arithmetic uses extended
// twisted-Edwards coordinates with the complete (unified) addition law, which
// is valid for Ed25519 because a = -1 is a square mod p and d is not.
//
// This implementation favours auditability over speed and is NOT constant
// time; it authenticates blocks in a research/simulation system, not secrets
// on a production boundary.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"

namespace mahimahi::crypto {

struct Ed25519PublicKey {
  std::array<std::uint8_t, 32> bytes{};
  auto operator<=>(const Ed25519PublicKey&) const = default;
};

struct Ed25519PrivateKey {
  std::array<std::uint8_t, 32> seed{};
};

struct Ed25519Signature {
  std::array<std::uint8_t, 64> bytes{};
  auto operator<=>(const Ed25519Signature&) const = default;
};

struct Ed25519Keypair {
  Ed25519PrivateKey private_key;
  Ed25519PublicKey public_key;
};

// Deterministic: the keypair is a pure function of the 32-byte seed.
Ed25519Keypair ed25519_keypair_from_seed(const std::array<std::uint8_t, 32>& seed);

Ed25519Signature ed25519_sign(const Ed25519PrivateKey& key, BytesView message);

// Strict-ish verification: rejects non-canonical scalars (s >= L) and points
// that fail decompression. Uses the COFACTORED group equation
// [8]([s]B - R - [k]A) == O (RFC 8032 §5.1.7), so the verdict is identical
// to the batch path below on every input — including adversarial signatures
// with small-order torsion components, which a cofactorless check would
// accept or reject depending on how the driver happened to batch them.
bool ed25519_verify(const Ed25519PublicKey& key, BytesView message,
                    const Ed25519Signature& signature);

// --- Batch verification -----------------------------------------------------
//
// Amortized verification of many signatures at once via a random linear
// combination: accept iff
//
//     [sum z_i s_i] B  ==  sum [z_i] R_i  +  sum_A [sum_{i: key_i = A} z_i k_i] A
//
// with independent 128-bit coefficients z_i (z_0 = 1). Three savings over
// per-item verification:
//   * the fixed-base term collapses to ONE scalar multiplication per batch
//     (instead of one [s]B per signature);
//   * the public-key terms collapse to one multiplication per DISTINCT key —
//     in a DAG committee a 64-block batch spans only n authors;
//   * the per-item [z_i]R_i multiplications use half-width (128-bit) scalars.
// Decompression of repeated public keys is also cached across the batch.
//
// The z_i are derived by hashing the whole batch (Fiat-Shamir style): the
// signatures are fixed before the coefficients are known, so a batch that
// passes implies every member passes ed25519_verify except with probability
// ~2^-128. Both paths check the COFACTORED equation, which is what makes
// that equivalence hold in both directions: cofactor clearing annihilates
// small-order torsion components before the random coefficients touch them,
// so the remaining defects live in the prime-order subgroup where a nonzero
// z_i-weighted sum vanishes only with ~2^-128 probability. A failed batch
// does not say WHICH item is bad — callers fall back to per-item
// verification.

struct Ed25519BatchItem {
  Ed25519PublicKey key;
  BytesView message;  // must stay alive for the duration of the call
  Ed25519Signature signature;
};

// True iff every item verifies (w.h.p.; see above). Empty batches verify.
bool ed25519_verify_batch(std::span<const Ed25519BatchItem> items);

// Per-item verdicts: one batch check first; on failure the batch bisects
// recursively, so k offenders cost O(k log n) sub-batch checks rather than
// n single verifications. The result always agrees with ed25519_verify item
// by item (modulo the 2^-128 soundness error of the accept path).
std::vector<std::uint8_t> ed25519_verify_each(std::span<const Ed25519BatchItem> items);

}  // namespace mahimahi::crypto
