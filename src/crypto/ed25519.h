// Ed25519 (RFC 8032) signatures, implemented from scratch.
//
// Field arithmetic over GF(2^255 - 19) uses four 64-bit limbs with schoolbook
// multiplication and 2^256 ≡ 38 folding; group arithmetic uses extended
// twisted-Edwards coordinates with the complete (unified) addition law, which
// is valid for Ed25519 because a = -1 is a square mod p and d is not.
//
// This implementation favours auditability over speed and is NOT constant
// time; it authenticates blocks in a research/simulation system, not secrets
// on a production boundary.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace mahimahi::crypto {

struct Ed25519PublicKey {
  std::array<std::uint8_t, 32> bytes{};
  auto operator<=>(const Ed25519PublicKey&) const = default;
};

struct Ed25519PrivateKey {
  std::array<std::uint8_t, 32> seed{};
};

struct Ed25519Signature {
  std::array<std::uint8_t, 64> bytes{};
  auto operator<=>(const Ed25519Signature&) const = default;
};

struct Ed25519Keypair {
  Ed25519PrivateKey private_key;
  Ed25519PublicKey public_key;
};

// Deterministic: the keypair is a pure function of the 32-byte seed.
Ed25519Keypair ed25519_keypair_from_seed(const std::array<std::uint8_t, 32>& seed);

Ed25519Signature ed25519_sign(const Ed25519PrivateKey& key, BytesView message);

// Strict-ish verification: rejects non-canonical scalars (s >= L) and points
// that fail decompression.
bool ed25519_verify(const Ed25519PublicKey& key, BytesView message,
                    const Ed25519Signature& signature);

}  // namespace mahimahi::crypto
