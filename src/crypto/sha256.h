// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for the HMAC underlying the simulated threshold coin and available as
// a general-purpose hash. Incremental (init/update/final) and one-shot APIs.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace mahimahi::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  void update(BytesView data);
  Digest finish();

  static Digest hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
};

// The round-constant table; exposed so tests can cross-check it against the
// fracroot generator (first 32 fractional bits of cbrt of first 64 primes).
const std::array<std::uint32_t, 64>& sha256_round_constants();

}  // namespace mahimahi::crypto
