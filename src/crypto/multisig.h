// Threshold multisignatures over ed25519: M-of-N share collection and
// aggregate verification.
//
// Not an aggregate-signature scheme (no key or signature compression): a
// "multisig" here is the explicit set of per-signer ed25519 signatures over
// one message, carried with the signer indices. That is exactly what the
// checkpoint certificates need — the committee is small (n = 3f+1), the
// verifier holds every public key, and the batch verifier
// (ed25519_verify_each) amortizes the per-share cost — without inventing new
// cryptography. A scheme with compression (BLS, MuSig2) could replace the
// representation behind this interface without touching callers.
//
// The collector is plain bookkeeping: callers verify each share's signature
// BEFORE adding it (verification needs the message and key context the
// collector deliberately does not hold). Duplicate signers are ignored, so a
// Byzantine validator re-sending its share cannot inflate the count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/ed25519.h"

namespace mahimahi::crypto {

struct MultisigShare {
  std::uint32_t signer = 0;
  Ed25519Signature signature;
  auto operator<=>(const MultisigShare&) const = default;
};

// An aggregate: at least `threshold` shares from distinct signers, sorted by
// signer index (the canonical encoding order).
struct Multisig {
  std::vector<MultisigShare> shares;
};

// True iff `multisig` carries >= threshold shares from distinct in-range
// signers and EVERY carried share verifies over `message` against
// keys[signer]. All-or-nothing on purpose: a certificate padded with junk
// shares is an attack artifact, not a degraded certificate — reject it
// rather than count the valid subset.
bool multisig_verify(const Multisig& multisig, BytesView message,
                     std::span<const Ed25519PublicKey> keys,
                     std::uint32_t threshold);

// Accumulates verified shares for one message until a threshold is reached.
class MultisigCollector {
 public:
  explicit MultisigCollector(std::uint32_t threshold) : threshold_(threshold) {}

  // Records a (caller-verified) share. Returns true exactly once: on the add
  // that reaches the threshold. Duplicate signers are ignored.
  bool add(std::uint32_t signer, const Ed25519Signature& signature);

  bool complete() const { return count() >= threshold_; }
  std::size_t count() const { return shares_.size(); }
  std::uint32_t threshold() const { return threshold_; }

  // The aggregate (shares sorted by signer). Meaningful once complete().
  Multisig certificate() const;

 private:
  std::uint32_t threshold_;
  std::vector<MultisigShare> shares_;  // kept sorted by signer
};

}  // namespace mahimahi::crypto
