#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/curve25519.h"
#include "crypto/sha512.h"

namespace mahimahi::crypto {

namespace {

using curve::ge_add;
using curve::ge_base;
using curve::ge_compress;
using curve::ge_decompress;
using curve::ge_neg;
using curve::ge_scalar_mult;
using curve::Scalar;
using curve::sc_from_bytes32;
using curve::sc_from_bytes32_strict;
using curve::sc_from_bytes64;
using curve::sc_mul_add;
using curve::sc_to_bytes;

struct ExpandedKey {
  std::uint8_t scalar[32];  // clamped a
  std::uint8_t prefix[32];
};

ExpandedKey expand_seed(const std::array<std::uint8_t, 32>& seed) {
  const auto h = Sha512::hash({seed.data(), seed.size()});
  ExpandedKey out;
  std::memcpy(out.scalar, h.data(), 32);
  std::memcpy(out.prefix, h.data() + 32, 32);
  out.scalar[0] &= 0xf8;
  out.scalar[31] &= 0x7f;
  out.scalar[31] |= 0x40;
  return out;
}

}  // namespace

Ed25519Keypair ed25519_keypair_from_seed(const std::array<std::uint8_t, 32>& seed) {
  const ExpandedKey key = expand_seed(seed);
  const auto a_point = ge_scalar_mult(key.scalar, ge_base());
  Ed25519Keypair out;
  out.private_key.seed = seed;
  ge_compress(out.public_key.bytes.data(), a_point);
  return out;
}

Ed25519Signature ed25519_sign(const Ed25519PrivateKey& key, BytesView message) {
  const ExpandedKey expanded = expand_seed(key.seed);
  const auto a_point = ge_scalar_mult(expanded.scalar, ge_base());
  std::uint8_t pub[32];
  ge_compress(pub, a_point);

  Sha512 h1;
  h1.update({expanded.prefix, 32});
  h1.update(message);
  const auto r_hash = h1.finish();
  const Scalar r = sc_from_bytes64(r_hash.data());

  std::uint8_t r_scalar[32];
  sc_to_bytes(r_scalar, r);
  const auto r_point = ge_scalar_mult(r_scalar, ge_base());

  Ed25519Signature sig;
  ge_compress(sig.bytes.data(), r_point);

  Sha512 h2;
  h2.update({sig.bytes.data(), 32});
  h2.update({pub, 32});
  h2.update(message);
  const auto k_hash = h2.finish();
  const Scalar k = sc_from_bytes64(k_hash.data());

  const Scalar a = sc_from_bytes32(expanded.scalar);
  const Scalar s = sc_mul_add(k, a, r);
  sc_to_bytes(sig.bytes.data() + 32, s);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& key, BytesView message,
                    const Ed25519Signature& signature) {
  const auto a_point = ge_decompress(key.bytes.data());
  if (!a_point) return false;

  const auto s = sc_from_bytes32_strict(signature.bytes.data() + 32);
  if (!s) return false;

  Sha512 h;
  h.update({signature.bytes.data(), 32});
  h.update({key.bytes.data(), key.bytes.size()});
  h.update(message);
  const auto k_hash = h.finish();
  const Scalar k = sc_from_bytes64(k_hash.data());

  // Check enc([s]B + [k](-A)) == R.
  std::uint8_t s_bytes[32], k_bytes[32];
  sc_to_bytes(s_bytes, *s);
  sc_to_bytes(k_bytes, k);

  const auto sb = ge_scalar_mult(s_bytes, ge_base());
  const auto ka = ge_scalar_mult(k_bytes, ge_neg(*a_point));
  const auto r_point = ge_add(sb, ka);

  std::uint8_t r_enc[32];
  ge_compress(r_enc, r_point);
  return std::memcmp(r_enc, signature.bytes.data(), 32) == 0;
}

}  // namespace mahimahi::crypto
