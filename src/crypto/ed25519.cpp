#include "crypto/ed25519.h"

#include <algorithm>
#include <cstring>

#include "crypto/curve25519.h"
#include "crypto/sha512.h"

namespace mahimahi::crypto {

namespace {

using curve::ge_add;
using curve::ge_base;
using curve::ge_compress;
using curve::ge_decompress;
using curve::ge_neg;
using curve::ge_scalar_mult;
using curve::Scalar;
using curve::sc_from_bytes32;
using curve::sc_from_bytes32_strict;
using curve::sc_from_bytes64;
using curve::sc_mul_add;
using curve::sc_to_bytes;

struct ExpandedKey {
  std::uint8_t scalar[32];  // clamped a
  std::uint8_t prefix[32];
};

ExpandedKey expand_seed(const std::array<std::uint8_t, 32>& seed) {
  const auto h = Sha512::hash({seed.data(), seed.size()});
  ExpandedKey out;
  std::memcpy(out.scalar, h.data(), 32);
  std::memcpy(out.prefix, h.data() + 32, 32);
  out.scalar[0] &= 0xf8;
  out.scalar[31] &= 0x7f;
  out.scalar[31] |= 0x40;
  return out;
}

}  // namespace

Ed25519Keypair ed25519_keypair_from_seed(const std::array<std::uint8_t, 32>& seed) {
  const ExpandedKey key = expand_seed(seed);
  const auto a_point = ge_scalar_mult(key.scalar, ge_base());
  Ed25519Keypair out;
  out.private_key.seed = seed;
  ge_compress(out.public_key.bytes.data(), a_point);
  return out;
}

Ed25519Signature ed25519_sign(const Ed25519PrivateKey& key, BytesView message) {
  const ExpandedKey expanded = expand_seed(key.seed);
  const auto a_point = ge_scalar_mult(expanded.scalar, ge_base());
  std::uint8_t pub[32];
  ge_compress(pub, a_point);

  Sha512 h1;
  h1.update({expanded.prefix, 32});
  h1.update(message);
  const auto r_hash = h1.finish();
  const Scalar r = sc_from_bytes64(r_hash.data());

  std::uint8_t r_scalar[32];
  sc_to_bytes(r_scalar, r);
  const auto r_point = ge_scalar_mult(r_scalar, ge_base());

  Ed25519Signature sig;
  ge_compress(sig.bytes.data(), r_point);

  Sha512 h2;
  h2.update({sig.bytes.data(), 32});
  h2.update({pub, 32});
  h2.update(message);
  const auto k_hash = h2.finish();
  const Scalar k = sc_from_bytes64(k_hash.data());

  const Scalar a = sc_from_bytes32(expanded.scalar);
  const Scalar s = sc_mul_add(k, a, r);
  sc_to_bytes(sig.bytes.data() + 32, s);
  return sig;
}

namespace {

// The RFC 8032 challenge k = H(R || A || M) reduced mod L.
Scalar challenge_scalar(const Ed25519Signature& signature, const Ed25519PublicKey& key,
                        BytesView message) {
  Sha512 h;
  h.update({signature.bytes.data(), 32});
  h.update({key.bytes.data(), key.bytes.size()});
  h.update(message);
  const auto k_hash = h.finish();
  return sc_from_bytes64(k_hash.data());
}

}  // namespace

bool ed25519_verify(const Ed25519PublicKey& key, BytesView message,
                    const Ed25519Signature& signature) {
  const auto a_point = ge_decompress(key.bytes.data());
  if (!a_point) return false;
  const auto r_point = ge_decompress(signature.bytes.data());
  if (!r_point) return false;

  const auto s = sc_from_bytes32_strict(signature.bytes.data() + 32);
  if (!s) return false;

  const Scalar k = challenge_scalar(signature, key, message);

  // Cofactored group equation (RFC 8032 §5.1.7): [8]([s]B - R - [k]A) == O.
  // Clearing the cofactor makes the verdict identical whether a signature is
  // checked alone or inside a random-linear-combination batch: any
  // small-order torsion component of R or A is annihilated in BOTH paths,
  // instead of flipping the batch verdict with the parity of a random
  // coefficient. A consensus protocol needs every honest validator to reach
  // the same verdict regardless of how its driver happened to batch.
  std::uint8_t s_bytes[32], k_bytes[32];
  sc_to_bytes(s_bytes, *s);
  sc_to_bytes(k_bytes, k);

  const auto sb = ge_scalar_mult(s_bytes, ge_base());
  const auto ka = ge_scalar_mult(k_bytes, ge_neg(*a_point));
  const auto difference = curve::ge_sub(ge_add(sb, ka), *r_point);
  return curve::ge_is_identity(curve::ge_mul_cofactor(difference));
}

namespace {

using curve::ge_identity;
using curve::GroupElement;
using curve::sc_zero;

// Derives the batch coefficients z_1..z_{n-1} (z_0 is fixed to 1) by hashing
// the whole batch. Each z_i is 128 bits: half-width scalars halve the cost of
// the per-item [z_i]R_i multiplication while keeping the forgery probability
// at ~2^-128.
std::vector<Scalar> batch_coefficients(std::span<const Ed25519BatchItem> items) {
  Sha512 transcript;
  transcript.update(as_bytes_view("mahimahi.ed25519.batch.v1"));
  for (const auto& item : items) {
    transcript.update({item.key.bytes.data(), item.key.bytes.size()});
    transcript.update({item.signature.bytes.data(), item.signature.bytes.size()});
    // Hash each message down first so variable lengths cannot alias across
    // item boundaries in the transcript.
    const auto m_hash = Sha512::hash(item.message);
    transcript.update({m_hash.data(), m_hash.size()});
  }
  const auto seed = transcript.finish();

  std::vector<Scalar> z(items.size());
  if (!items.empty()) z[0] = curve::sc_one();
  for (std::size_t i = 1; i < items.size(); ++i) {
    Sha512 h;
    h.update({seed.data(), seed.size()});
    std::uint8_t index[8];
    for (int b = 0; b < 8; ++b) index[b] = static_cast<std::uint8_t>(i >> (8 * b));
    h.update({index, sizeof(index)});
    const auto digest = h.finish();
    std::uint8_t z_bytes[32] = {};
    std::memcpy(z_bytes, digest.data(), 16);  // 128-bit coefficient
    if (std::count(z_bytes, z_bytes + 16, 0) == 16) z_bytes[0] = 1;  // never zero
    z[i] = sc_from_bytes32(z_bytes);
  }
  return z;
}

}  // namespace

bool ed25519_verify_batch(std::span<const Ed25519BatchItem> items) {
  if (items.empty()) return true;
  if (items.size() == 1) {
    return ed25519_verify(items[0].key, items[0].message, items[0].signature);
  }

  const std::vector<Scalar> z = batch_coefficients(items);

  // Distinct public keys: decompressed once, with their accumulated
  // challenge coefficients sum z_i k_i. Committees are small, so a linear
  // scan beats hashing the 32-byte keys.
  struct KeyTerm {
    Ed25519PublicKey key;
    GroupElement point;
    Scalar coefficient = sc_zero();
  };
  std::vector<KeyTerm> key_terms;
  key_terms.reserve(items.size());

  Scalar b_coefficient = sc_zero();     // sum z_i s_i
  GroupElement r_sum = ge_identity();   // sum [z_i] R_i

  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];

    const auto s = sc_from_bytes32_strict(item.signature.bytes.data() + 32);
    if (!s) return false;
    const auto r_point = ge_decompress(item.signature.bytes.data());
    if (!r_point) return false;

    KeyTerm* term = nullptr;
    for (auto& candidate : key_terms) {
      if (candidate.key == item.key) {
        term = &candidate;
        break;
      }
    }
    if (term == nullptr) {
      const auto a_point = ge_decompress(item.key.bytes.data());
      if (!a_point) return false;
      key_terms.push_back(KeyTerm{item.key, *a_point, sc_zero()});
      term = &key_terms.back();
    }

    const Scalar k = challenge_scalar(item.signature, item.key, item.message);
    b_coefficient = sc_mul_add(z[i], *s, b_coefficient);
    term->coefficient = sc_mul_add(z[i], k, term->coefficient);

    std::uint8_t z_bytes[32];
    sc_to_bytes(z_bytes, z[i]);
    r_sum = ge_add(r_sum, ge_scalar_mult(z_bytes, *r_point));
  }

  GroupElement rhs = r_sum;
  for (const auto& term : key_terms) {
    rhs = ge_add(rhs, ge_scalar_mult(term.coefficient, term.point));
  }
  const GroupElement lhs = ge_scalar_mult(b_coefficient, ge_base());
  // Cofactored, like ed25519_verify: torsion components never decide the
  // verdict, so batch and single verification agree deterministically.
  const GroupElement difference = curve::ge_sub(lhs, rhs);
  return curve::ge_is_identity(curve::ge_mul_cofactor(difference));
}

namespace {

// Binary-search the offenders: a failed batch splits in half and recurses,
// so k bad signatures cost O(k log n) batch checks instead of n single
// verifications. Without this, one Byzantine validator spraying garbage
// signatures would tax every mixed batch with a full per-item fallback —
// an adversary-controlled performance downgrade.
void verify_each_bisect(std::span<const Ed25519BatchItem> items,
                        std::span<std::uint8_t> ok) {
  if (items.empty()) return;
  if (ed25519_verify_batch(items)) {
    std::fill(ok.begin(), ok.end(), 1);
    return;
  }
  if (items.size() == 1) {
    ok[0] = 0;  // a batch of one IS the single (cofactored) verification
    return;
  }
  const std::size_t half = items.size() / 2;
  verify_each_bisect(items.first(half), ok.first(half));
  verify_each_bisect(items.subspan(half), ok.subspan(half));
}

}  // namespace

std::vector<std::uint8_t> ed25519_verify_each(std::span<const Ed25519BatchItem> items) {
  std::vector<std::uint8_t> ok(items.size(), 0);
  verify_each_bisect(items, ok);
  return ok;
}

}  // namespace mahimahi::crypto
