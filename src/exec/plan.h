// Execution planning: from a committed sub-DAG to dependency waves.
//
// The plan is built in two stages with very different concurrency contracts:
//
//   decode_batch()  — pure function of the batch bytes (payload decode,
//                     content-identity hash, access-set derivation and
//                     declared-set enforcement). Safe to run per-batch on a
//                     worker pool; the engine fans it out.
//   build_plan()    — serial and deterministic: deduplicates in committed
//                     order against the replica's executed-batch set, then
//                     partitions the survivors into waves.
//
// Wave invariants (tests/test_execution.cpp asserts these against the
// pairwise exec::conflicts() ground truth):
//
//   1. Two transactions in the same wave never conflict (no write/write or
//      read/write overlap; opaque transactions sit in singleton barriers).
//   2. If transaction A precedes B in committed order and they conflict,
//      A's wave is strictly smaller than B's.
//
// Together these make wave-ordered apply serial-equivalent: every effect a
// transaction can observe (a write to one of its keys by a committed
// predecessor) lands in an earlier wave, and reorderings within a wave are
// invisible because same-wave transactions touch disjoint state. That is the
// early-delivery safety argument: a transaction's inputs are settled the
// moment its wave is reached, so its finality ack may fire when the wave
// retires, before later waves of the same commit batch execute.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "app/kv_command.h"
#include "core/decision.h"
#include "crypto/digest.h"
#include "exec/access.h"
#include "types/transaction.h"

namespace mahimahi::exec {

// Why a batch carries no commands into the merge. Skipped batches are still
// delivered (they get a finality stamp with their wave); they just apply
// nothing — exactly the branches app::ReplicatedKv takes on the same bytes.
enum class Skip : std::uint8_t {
  kNone = 0,
  kFiller,     // empty payload: bandwidth-accounting filler, no identity
  kDuplicate,  // content identity already executed (client resubmission)
  kMalformed,  // KV magic but corrupt payload (counted, never poisons state)
};

struct ExecTxn {
  // Borrowed from the sub-DAG's blocks; the plan must not outlive them.
  const TxBatch* batch = nullptr;
  Digest identity{};  // app::batch_identity; meaningless for kFiller
  std::vector<app::KvCommand> commands;
  AccessSet access;
  Skip skip = Skip::kNone;
  std::uint32_t wave = 0;
  // Declared sets did not cover the decoded commands: demoted to opaque.
  bool access_violation = false;
};

struct Plan {
  std::vector<ExecTxn> txns;                      // committed order
  std::vector<std::vector<std::uint32_t>> waves;  // txn indices, wave order
  // Batches whose wave was pushed past the earliest admissible one by a
  // conflict with a committed predecessor.
  std::uint64_t conflict_delayed = 0;
};

// Stage 1 (parallel-safe): decode, hash, derive + enforce access.
// Never sets Skip::kDuplicate — dedup needs committed order (stage 2).
ExecTxn decode_batch(const TxBatch& batch);

// Serial convenience: every batch of every block, sub-DAG order.
std::vector<ExecTxn> decode_subdag(const CommittedSubDag& subdag);

// Stage 2 (serial, deterministic): dedup against — and extend — `executed`,
// then assign waves. `txns` must be in committed order.
Plan build_plan(std::vector<ExecTxn> txns,
                std::unordered_set<Digest, DigestHasher>& executed);

}  // namespace mahimahi::exec
