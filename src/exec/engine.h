// Execution engine: applies committed sub-DAGs to the KV state machine on a
// worker pool, delivering finality per dependency wave.
//
// Two layers:
//
//   SerialExecutor   — the deterministic core: plan (decode + dedup + waves)
//                      and wave-ordered apply on one thread. Used directly by
//                      the simulator (virtual-time wave events), by WAL
//                      replay, and as the `execution_threads = 0` fallback.
//                      Byte-identical in state_digest() to app::ReplicatedKv
//                      over the same committed stream (property-tested).
//
//   ExecutionEngine  — the threaded wrapper, following the runtime's
//                      single-drain pattern: execute() enqueues a sub-DAG; a
//                      dedicated merge thread drains the queue in commit
//                      order. Per sub-DAG it fans the pure per-batch decode
//                      out to the worker pool, builds the plan serially, then
//                      for each wave fans out per-transaction effect
//                      preparation (workers read the quiescent store
//                      concurrently and pre-resolve each command's
//                      state-change outcome), barriers, and merges the wave's
//                      effects into the store in committed order. The merge
//                      is the only writer the store ever sees, so the result
//                      is byte-identical to serial apply by construction of
//                      the wave invariants (exec/plan.h).
//
// Early delivery: the delivery handler fires after each wave's merge, before
// later waves of the same sub-DAG execute. A wave's transactions have all
// their inputs settled at that point (every conflicting predecessor sits in
// an earlier wave), so acking them early never exposes unsettled state.
//
// Handler context: the merge thread when threads > 0, the caller of
// execute() when threads == 0. Everything the NodeRuntime does in it
// (histogram records, counter adds) is thread-safe by design.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "app/kv_store.h"
#include "core/decision.h"
#include "exec/plan.h"
#include "net/worker_pool.h"

namespace mahimahi::exec {

struct ExecStats {
  std::uint64_t subdags = 0;           // sub-DAGs fully retired
  std::uint64_t waves = 0;             // waves merged
  std::uint64_t batches_executed = 0;  // batches that applied commands
  std::uint64_t commands_applied = 0;  // state-machine commands applied
  std::uint64_t parallel_batches = 0;  // executed in a wave with company
  std::uint64_t conflict_delayed = 0;  // pushed past the earliest wave
  std::uint64_t early_deliveries = 0;  // delivered before their sub-DAG retired
  std::uint64_t deduplicated = 0;
  std::uint64_t malformed = 0;
  std::uint64_t opaque = 0;            // conservative-class batches executed
  std::uint64_t access_violations = 0; // declared sets the payload escaped
};

// One batch's finality notification.
struct Delivery {
  std::uint64_t batch_id = 0;
  TimeMicros submitted_at = 0;
  std::uint32_t count = 1;   // transaction weight for the finality histogram
  std::uint32_t wave = 0;
  bool early = false;        // fired before the sub-DAG's last wave
};

// One retired wave's notifications, plus sub-DAG bookkeeping for the
// kExecute lifecycle span.
struct WaveDelivery {
  std::vector<Delivery> batches;
  bool subdag_complete = false;
  TimeMicros enqueued_at = 0;     // driver stamp passed to execute()
  std::uint32_t block_count = 0;  // kExecute span weight
  SlotId slot;                    // the sub-DAG's committed leader slot
};

using DeliveryHandler = std::function<void(const WaveDelivery&)>;

// The single-threaded deterministic core. Not thread-safe: one caller.
class SerialExecutor {
 public:
  // Decode + dedup + wave partition for one sub-DAG (updates dedup state and
  // the plan-side stats). Accepts pre-decoded txns so the engine can fan the
  // decode out before handing the serial part back.
  Plan plan(const CommittedSubDag& subdag);
  Plan plan_decoded(std::vector<ExecTxn> txns);

  // Merge one wave in committed order; returns the wave's deliveries.
  // `last_wave` marks the sub-DAG as retired (bumps the subdag counter).
  std::vector<Delivery> apply_wave(const Plan& plan, std::size_t wave,
                                   bool last_wave);

  // Plan + all waves, discarding deliveries: the WAL-replay path.
  void apply_subdag(const CommittedSubDag& subdag);

  // A committed sub-DAG that carried no batches still retires.
  void note_empty_subdag();

  // Checkpoint support: the store's full-state encoding, and its inverse.
  // Installing clears the dedup horizon — a snapshot jump leaves no basis
  // for recognizing resubmissions from before the cut (same trust horizon
  // as the checkpoint itself).
  Bytes snapshot_bytes() const { return store_.snapshot_bytes(); }
  void install_snapshot(BytesView snapshot) {
    store_ = app::KvStore::restore(snapshot);
    executed_.clear();
  }

  // Delta-cut support: the store's touched-key record since the last take,
  // consumed (the window restarts empty). checkpoint/delta.h carries it as
  // the app_delta of an incremental cut.
  Bytes take_app_delta() {
    Bytes delta = store_.delta_bytes();
    store_.clear_delta_window();
    return delta;
  }

  const app::KvStore& store() const { return store_; }
  Digest state_digest() const { return store_.state_digest(); }
  const ExecStats& stats() const { return stats_; }

 private:
  friend class ExecutionEngine;

  // Shared merge body: `resolved_opaque`, when non-null, points to the
  // engine's worker-prepared per-command outcomes (ResolvedWave in
  // engine.cpp) and switches the store writes to apply_resolved().
  std::vector<Delivery> apply_wave_impl(const Plan& plan, std::size_t wave,
                                        bool last_wave,
                                        const void* resolved_opaque);

  app::KvStore store_;
  std::unordered_set<Digest, DigestHasher> executed_;
  ExecStats stats_;
};

class ExecutionEngine {
 public:
  struct Options {
    // Worker threads for decode fan-out and per-wave effect preparation.
    // 0 = no threads at all: execute() applies inline on the caller.
    std::size_t threads = 0;
  };

  explicit ExecutionEngine(Options options, DeliveryHandler on_delivery = {});
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  // Thread-safe. Copies the sub-DAG header (block pointers, not blocks) onto
  // the merge queue; inline serial apply + delivery when threads == 0.
  void execute(const CommittedSubDag& subdag, TimeMicros enqueued_at);

  // Serial inline apply with no delivery callbacks: the recovery path. Only
  // valid while no execute() calls are in flight (the runtime replays before
  // its loop starts).
  void replay(const CommittedSubDag& subdag);

  // Blocks until every enqueued sub-DAG has fully retired.
  void drain();

  // drain() + digest of the resulting state.
  Digest state_digest();

  // drain() + full-store snapshot, for checkpoint cuts on the commit thread:
  // the engine was fed exactly the decided prefix of the cut, so the drained
  // store is the cut's app state.
  Bytes app_snapshot();

  // drain() + consume the touched-key window (delta cuts). The drain
  // barrier makes the window exactly the keys the decided prefix touched
  // since the previous take.
  Bytes app_delta_snapshot();

  // drain() + restart the touched-key window without reading it (base cuts:
  // the full snapshot subsumes the window).
  void clear_app_delta_window();

  // drain() + replace the store from a checkpoint's app snapshot (recovery
  // and snapshot catch-up installs).
  void install_snapshot(BytesView snapshot);

  ExecStats stats() const;
  std::size_t threads() const { return pool_ ? pool_->thread_count() : 0; }

 private:
  struct Pending {
    CommittedSubDag subdag;
    TimeMicros enqueued_at = 0;
  };

  void merge_main();
  void process(const Pending& pending);
  void deliver(std::vector<Delivery> batches, bool complete,
               const Pending& pending);

  DeliveryHandler on_delivery_;
  SerialExecutor serial_;  // merge-thread-owned while running

  std::unique_ptr<net::WorkerPool> pool_;
  std::thread merge_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;   // merge thread: work available / stop
  std::condition_variable idle_;   // drain(): queue empty and not busy
  std::deque<Pending> queue_;
  ExecStats stats_snapshot_;       // guarded by mutex_; scrape-safe copy
  bool busy_ = false;
  bool stopping_ = false;
};

}  // namespace mahimahi::exec
