#include "exec/engine.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "types/block.h"

namespace mahimahi::exec {

namespace {

// Per-command pre-resolved state-change outcomes for the transactions of one
// wave, indexed [position within wave][command]. Filled by workers, consumed
// by the merge.
using ResolvedWave = std::vector<std::vector<std::uint8_t>>;

// Pre-resolves one transaction's commands against the pre-wave store state.
// Safe to run concurrently with other transactions of the same wave: their
// write sets are disjoint from this transaction's keys (wave invariant 1),
// so presence/absence of *these* keys is fixed for the whole wave — only the
// transaction's own earlier commands can change it, tracked in the overlay.
std::vector<std::uint8_t> resolve_effects(const app::KvStore& store,
                                          const ExecTxn& txn) {
  std::vector<std::uint8_t> resolved(txn.commands.size(), 0);
  std::unordered_map<std::string, bool> overlay;  // key -> present after own cmds
  for (std::size_t i = 0; i < txn.commands.size(); ++i) {
    const app::KvCommand& cmd = txn.commands[i];
    switch (cmd.op) {
      case app::KvCommand::Op::kPut:
        resolved[i] = 1;
        overlay[cmd.key] = true;
        break;
      case app::KvCommand::Op::kDelete: {
        const auto it = overlay.find(cmd.key);
        const bool present =
            it != overlay.end() ? it->second : store.get(cmd.key).has_value();
        resolved[i] = present ? 1 : 0;
        overlay[cmd.key] = false;
        break;
      }
      case app::KvCommand::Op::kNoop:
        break;
    }
  }
  return resolved;
}

// Stack-allocated completion barrier for a fan-out. notify under the lock:
// the waiter may destroy the fence the moment the predicate holds.
class Fence {
 public:
  explicit Fence(std::size_t remaining) : remaining_(remaining) {}
  void done() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t remaining_;
};

}  // namespace

// ---------------------------------------------------------------------------
// SerialExecutor
// ---------------------------------------------------------------------------

Plan SerialExecutor::plan(const CommittedSubDag& subdag) {
  return plan_decoded(decode_subdag(subdag));
}

Plan SerialExecutor::plan_decoded(std::vector<ExecTxn> txns) {
  Plan plan = build_plan(std::move(txns), executed_);
  stats_.conflict_delayed += plan.conflict_delayed;
  for (const ExecTxn& txn : plan.txns) {
    switch (txn.skip) {
      case Skip::kDuplicate: ++stats_.deduplicated; break;
      case Skip::kMalformed: ++stats_.malformed; break;
      case Skip::kNone:
        if (txn.access.opaque) ++stats_.opaque;
        break;
      case Skip::kFiller: break;
    }
    if (txn.access_violation) ++stats_.access_violations;
  }
  return plan;
}

std::vector<Delivery> SerialExecutor::apply_wave(const Plan& plan,
                                                 std::size_t wave,
                                                 bool last_wave) {
  return apply_wave_impl(plan, wave, last_wave, nullptr);
}

std::vector<Delivery> SerialExecutor::apply_wave_impl(const Plan& plan,
                                                      std::size_t wave,
                                                      bool last_wave,
                                                      const void* resolved_opaque) {
  const auto* resolved = static_cast<const ResolvedWave*>(resolved_opaque);
  const std::vector<std::uint32_t>& members = plan.waves[wave];

  std::size_t executable = 0;
  for (const std::uint32_t index : members) {
    const ExecTxn& txn = plan.txns[index];
    if (txn.skip == Skip::kNone && !txn.commands.empty()) ++executable;
  }

  std::vector<Delivery> deliveries;
  deliveries.reserve(members.size());
  for (std::size_t pos = 0; pos < members.size(); ++pos) {
    const ExecTxn& txn = plan.txns[members[pos]];
    if (txn.skip == Skip::kNone && !txn.commands.empty()) {
      for (std::size_t i = 0; i < txn.commands.size(); ++i) {
        if (resolved) {
          store_.apply_resolved(txn.commands[i], (*resolved)[pos][i] != 0);
        } else {
          store_.apply(txn.commands[i]);
        }
      }
      stats_.commands_applied += txn.commands.size();
      ++stats_.batches_executed;
      if (executable > 1) ++stats_.parallel_batches;
    }
    const TxBatch& batch = *txn.batch;
    deliveries.push_back(Delivery{
        .batch_id = batch.id,
        .submitted_at = batch.submitted_at,
        .count = batch.count == 0 ? 1 : batch.count,
        .wave = txn.wave,
        .early = !last_wave,
    });
  }
  ++stats_.waves;
  if (!last_wave) stats_.early_deliveries += members.size();
  if (last_wave) ++stats_.subdags;
  return deliveries;
}

void SerialExecutor::note_empty_subdag() { ++stats_.subdags; }

void SerialExecutor::apply_subdag(const CommittedSubDag& subdag) {
  const Plan p = plan(subdag);
  if (p.waves.empty()) {
    note_empty_subdag();
    return;
  }
  for (std::size_t w = 0; w < p.waves.size(); ++w) {
    apply_wave(p, w, w + 1 == p.waves.size());
  }
}

// ---------------------------------------------------------------------------
// ExecutionEngine
// ---------------------------------------------------------------------------

ExecutionEngine::ExecutionEngine(Options options, DeliveryHandler on_delivery)
    : on_delivery_(std::move(on_delivery)) {
  if (options.threads > 0) {
    pool_ = std::make_unique<net::WorkerPool>(options.threads, "exec");
    merge_ = std::thread([this] { merge_main(); });
  }
}

ExecutionEngine::~ExecutionEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (merge_.joinable()) merge_.join();
  pool_.reset();
}

void ExecutionEngine::execute(const CommittedSubDag& subdag,
                              TimeMicros enqueued_at) {
  if (!merge_.joinable()) {
    // threads == 0: serial inline apply on the caller, deliveries included.
    process(Pending{subdag, enqueued_at});
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(Pending{subdag, enqueued_at});
  }
  wake_.notify_one();
}

void ExecutionEngine::replay(const CommittedSubDag& subdag) {
  // Pre-loop recovery only: no execute() in flight, so the merge thread (if
  // any) is idle and the first post-replay enqueue publishes this state to it
  // through the queue mutex.
  serial_.apply_subdag(subdag);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_snapshot_ = serial_.stats();
}

void ExecutionEngine::drain() {
  if (!merge_.joinable()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] { return (queue_.empty() && !busy_) || stopping_; });
}

Digest ExecutionEngine::state_digest() {
  drain();
  std::lock_guard<std::mutex> lock(mutex_);  // memory fence vs the merge thread
  return serial_.state_digest();
}

Bytes ExecutionEngine::app_snapshot() {
  drain();
  std::lock_guard<std::mutex> lock(mutex_);
  return serial_.snapshot_bytes();
}

Bytes ExecutionEngine::app_delta_snapshot() {
  drain();
  std::lock_guard<std::mutex> lock(mutex_);
  return serial_.take_app_delta();
}

void ExecutionEngine::clear_app_delta_window() {
  drain();
  std::lock_guard<std::mutex> lock(mutex_);
  serial_.store_.clear_delta_window();
}

void ExecutionEngine::install_snapshot(BytesView snapshot) {
  drain();
  std::lock_guard<std::mutex> lock(mutex_);
  serial_.install_snapshot(snapshot);
  stats_snapshot_ = serial_.stats();
}

ExecStats ExecutionEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_snapshot_;
}

void ExecutionEngine::merge_main() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        idle_.notify_all();
        return;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    process(pending);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_ = false;
      if (queue_.empty()) idle_.notify_all();
    }
  }
}

void ExecutionEngine::process(const Pending& pending) {
  // Stage 1 — decode fan-out: pure per-batch work (payload decode, identity
  // hash, access derivation), chunked across the pool.
  std::vector<const TxBatch*> batches;
  for (const BlockPtr& block : pending.subdag.blocks) {
    for (const TxBatch& batch : block->batches()) batches.push_back(&batch);
  }
  std::vector<ExecTxn> txns(batches.size());
  const std::size_t workers = pool_ ? pool_->thread_count() : 0;
  if (workers > 0 && batches.size() > 1) {
    const std::size_t chunks = std::min(workers, batches.size());
    const std::size_t stride = (batches.size() + chunks - 1) / chunks;
    Fence fence(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * stride;
      const std::size_t end = std::min(begin + stride, batches.size());
      pool_->submit([&, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          txns[i] = decode_batch(*batches[i]);
        }
        fence.done();
      });
    }
    fence.wait();
  } else {
    for (std::size_t i = 0; i < batches.size(); ++i) {
      txns[i] = decode_batch(*batches[i]);
    }
  }

  // Stage 2 — serial plan: dedup in committed order, wave partition.
  const Plan plan = serial_.plan_decoded(std::move(txns));
  if (plan.waves.empty()) {
    serial_.note_empty_subdag();
    deliver({}, true, pending);
    return;
  }

  // Stage 3 — per wave: workers pre-resolve each member transaction's
  // effects against the quiescent store (concurrent reads only), then the
  // merge applies them in committed order and the wave delivers. Conflicting
  // transactions are separated by the wave barrier; non-conflicting ones
  // resolve concurrently.
  for (std::size_t w = 0; w < plan.waves.size(); ++w) {
    const std::vector<std::uint32_t>& members = plan.waves[w];
    ResolvedWave resolved(members.size());
    const bool fan_out = workers > 0 && members.size() > 1;
    if (fan_out) {
      const std::size_t chunks = std::min(workers, members.size());
      const std::size_t stride = (members.size() + chunks - 1) / chunks;
      Fence fence(chunks);
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * stride;
        const std::size_t end = std::min(begin + stride, members.size());
        pool_->submit([&, begin, end] {
          for (std::size_t pos = begin; pos < end; ++pos) {
            const ExecTxn& txn = plan.txns[members[pos]];
            if (txn.skip == Skip::kNone && !txn.commands.empty()) {
              resolved[pos] = resolve_effects(serial_.store(), txn);
            }
          }
          fence.done();
        });
      }
      fence.wait();
    } else {
      for (std::size_t pos = 0; pos < members.size(); ++pos) {
        const ExecTxn& txn = plan.txns[members[pos]];
        if (txn.skip == Skip::kNone && !txn.commands.empty()) {
          resolved[pos] = resolve_effects(serial_.store(), txn);
        }
      }
    }
    const bool last = w + 1 == plan.waves.size();
    deliver(serial_.apply_wave_impl(plan, w, last, &resolved), last, pending);
  }
}

void ExecutionEngine::deliver(std::vector<Delivery> batches, bool complete,
                              const Pending& pending) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_snapshot_ = serial_.stats();
  }
  if (!on_delivery_) return;
  WaveDelivery wave;
  wave.batches = std::move(batches);
  wave.subdag_complete = complete;
  wave.enqueued_at = pending.enqueued_at;
  wave.block_count = static_cast<std::uint32_t>(pending.subdag.blocks.size());
  wave.slot = pending.subdag.slot;
  on_delivery_(wave);
}

}  // namespace mahimahi::exec
