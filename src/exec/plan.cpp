#include "exec/plan.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "app/replicated_kv.h"
#include "serde/serde.h"
#include "types/block.h"

namespace mahimahi::exec {

ExecTxn decode_batch(const TxBatch& batch) {
  ExecTxn txn;
  txn.batch = &batch;
  if (batch.payload.empty()) {
    // Benchmark filler: no commands, no identity (ReplicatedKv skips these
    // before dedup, so they must not consume an identity slot here either).
    txn.skip = Skip::kFiller;
    return txn;
  }
  txn.identity = app::batch_identity(batch);

  std::vector<app::KvCommand> commands;
  try {
    commands =
        app::decode_kv_payload({batch.payload.data(), batch.payload.size()});
  } catch (const serde::SerdeError&) {
    // Byzantine garbage: the batch still occupies its identity slot (a
    // resubmitted copy deduplicates instead of double-counting as malformed)
    // but contributes no commands and conflicts with nothing.
    txn.skip = Skip::kMalformed;
    return txn;
  }

  const bool declared = !batch.read_keys.empty() || !batch.write_keys.empty();
  if (declared) {
    txn.access.reads = batch.read_keys;
    txn.access.writes = batch.write_keys;
    if (!declared_covers(txn.access, commands)) {
      // The payload escaped its declaration: executing it in a parallel wave
      // could race an undeclared key, so demote to the conservative class.
      // Still executed — in its own barrier wave, at its serial position.
      txn.access = AccessSet{.opaque = true};
      txn.access_violation = true;
    }
  } else if (commands.empty()) {
    // Non-empty payload that is not a KV command list and declares nothing:
    // unknown content, conservatively conflicts with everything.
    txn.access.opaque = true;
  } else {
    txn.access = derive_kv_access(commands);
  }
  txn.commands = std::move(commands);
  return txn;
}

std::vector<ExecTxn> decode_subdag(const CommittedSubDag& subdag) {
  std::vector<ExecTxn> txns;
  for (const BlockPtr& block : subdag.blocks) {
    for (const TxBatch& batch : block->batches()) {
      txns.push_back(decode_batch(batch));
    }
  }
  return txns;
}

Plan build_plan(std::vector<ExecTxn> txns,
                std::unordered_set<Digest, DigestHasher>& executed) {
  Plan plan;
  plan.txns = std::move(txns);

  // Per-key high-water marks: the last wave that wrote / read each key so
  // far. Lookup-only usage — unordered iteration order never observed, so
  // the plan is deterministic.
  std::unordered_map<std::string, std::uint32_t> last_write_wave;
  std::unordered_map<std::string, std::uint32_t> last_read_wave;
  std::uint32_t floor = 0;       // earliest admissible wave (opaque barriers)
  std::uint32_t next_wave = 0;   // == max assigned wave + 1

  auto place = [&](std::size_t index, std::uint32_t wave) {
    if (plan.waves.size() <= wave) plan.waves.resize(wave + 1);
    plan.waves[wave].push_back(static_cast<std::uint32_t>(index));
    plan.txns[index].wave = wave;
    next_wave = std::max(next_wave, wave + 1);
  };

  for (std::size_t i = 0; i < plan.txns.size(); ++i) {
    ExecTxn& txn = plan.txns[i];

    // Dedup in committed order — the same branch ReplicatedKv takes, so both
    // apply paths agree on which copy of a resubmitted batch executes.
    if (txn.skip == Skip::kNone || txn.skip == Skip::kMalformed) {
      if (!executed.insert(txn.identity).second) {
        txn.skip = Skip::kDuplicate;
        txn.commands.clear();
      }
    }

    // Non-executing batches (filler, duplicates, malformed) ride along in
    // the earliest admissible wave: they apply nothing, so they constrain
    // nothing — but they still need a wave to be delivered with.
    if (txn.skip != Skip::kNone) {
      txn.access = AccessSet{};
      place(i, floor);
      continue;
    }

    if (txn.access.opaque) {
      // Barrier: after everything assigned so far, before everything later.
      const std::uint32_t wave = std::max(floor, next_wave);
      plan.conflict_delayed += wave > floor ? 1 : 0;
      place(i, wave);
      floor = wave + 1;
      continue;
    }

    std::uint32_t wave = floor;
    for (const std::string& key : txn.access.writes) {
      if (auto it = last_write_wave.find(key); it != last_write_wave.end()) {
        wave = std::max(wave, it->second + 1);
      }
      if (auto it = last_read_wave.find(key); it != last_read_wave.end()) {
        wave = std::max(wave, it->second + 1);
      }
    }
    for (const std::string& key : txn.access.reads) {
      if (auto it = last_write_wave.find(key); it != last_write_wave.end()) {
        wave = std::max(wave, it->second + 1);
      }
    }
    plan.conflict_delayed += wave > floor ? 1 : 0;
    place(i, wave);
    for (const std::string& key : txn.access.writes) {
      auto [it, inserted] = last_write_wave.try_emplace(key, wave);
      if (!inserted) it->second = std::max(it->second, wave);
    }
    for (const std::string& key : txn.access.reads) {
      auto [it, inserted] = last_read_wave.try_emplace(key, wave);
      if (!inserted) it->second = std::max(it->second, wave);
    }
  }
  return plan;
}

}  // namespace mahimahi::exec
