// Access sets: the conflict vocabulary of the parallel execution subsystem.
//
// Two committed transactions may execute in the same wave (exec/plan.h) only
// if their access sets are disjoint in the read/write sense: neither writes a
// key the other reads or writes. The set is *declared* by the client on the
// TxBatch when it knows its keys, *derived* from the payload for KV command
// lists, and *opaque* — conservatively conflicting with everything — for any
// non-empty payload the executor cannot interpret. Opaque is always safe:
// an opaque transaction forms its own wave, so its effects land in exactly
// the serial position the commit order gave it.
#pragma once

#include <string>
#include <vector>

#include "app/kv_command.h"
#include "types/transaction.h"

namespace mahimahi::exec {

struct AccessSet {
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  // Conservative class: conflicts with every other transaction (unknown
  // payload, or a declared set the payload escaped). reads/writes are
  // ignored while set.
  bool opaque = false;

  bool touches_nothing() const { return !opaque && reads.empty() && writes.empty(); }
};

// Derives the access set of a decoded KV command list: every Put/Delete key
// is a write (KV commands are blind writes — they read nothing).
inline AccessSet derive_kv_access(const std::vector<app::KvCommand>& commands) {
  AccessSet access;
  access.writes.reserve(commands.size());
  for (const app::KvCommand& cmd : commands) {
    if (cmd.op == app::KvCommand::Op::kNoop) continue;
    access.writes.push_back(cmd.key);
  }
  return access;
}

// True when every non-noop command key is covered by `declared.writes` — the
// enforcement check that keeps a mis-declared batch out of a parallel wave.
inline bool declared_covers(const AccessSet& declared,
                            const std::vector<app::KvCommand>& commands) {
  if (declared.opaque) return true;
  for (const app::KvCommand& cmd : commands) {
    if (cmd.op == app::KvCommand::Op::kNoop) continue;
    bool covered = false;
    for (const std::string& key : declared.writes) {
      if (key == cmd.key) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

// Pairwise conflict test (the scheduler uses per-key index maps instead of
// calling this n^2 times; tests use it as the ground truth for the wave
// invariant).
inline bool conflicts(const AccessSet& a, const AccessSet& b) {
  if (a.opaque || b.opaque) return true;
  auto intersects = [](const std::vector<std::string>& xs,
                       const std::vector<std::string>& ys) {
    for (const std::string& x : xs) {
      for (const std::string& y : ys) {
        if (x == y) return true;
      }
    }
    return false;
  };
  return intersects(a.writes, b.writes) || intersects(a.writes, b.reads) ||
         intersects(a.reads, b.writes);
}

}  // namespace mahimahi::exec
