#include "validator/crypto_stage.h"

namespace mahimahi {

CryptoStageResult run_crypto_stage(std::span<const BlockPtr> blocks,
                                   const Committee& committee,
                                   const ValidationOptions& options,
                                   VerifierCache* cache) {
  CryptoStageResult result;
  result.verdicts.assign(blocks.size(), BlockValidity::kValid);
  result.cache_hit.assign(blocks.size(), 0);
  if (blocks.empty()) return result;

  const bool cacheable = cache != nullptr && options.verify_signature;
  std::vector<BlockPtr> hits, misses;
  std::vector<std::size_t> hit_index, miss_index;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (cacheable && cache->check_and_count(blocks[i]->digest())) {
      result.cache_hit[i] = 1;
      hits.push_back(blocks[i]);
      hit_index.push_back(i);
    } else {
      misses.push_back(blocks[i]);
      miss_index.push_back(i);
    }
  }

  // Cache hits: the signature is vouched for, the coin share is not.
  ValidationOptions hit_options = options;
  hit_options.verify_signature = false;
  const auto hit_verdicts = validate_blocks_crypto(hits, committee, hit_options);
  for (std::size_t j = 0; j < hit_index.size(); ++j) {
    result.verdicts[hit_index[j]] = hit_verdicts[j];
  }

  const auto miss_verdicts = validate_blocks_crypto(misses, committee, options);
  for (std::size_t j = 0; j < miss_index.size(); ++j) {
    result.verdicts[miss_index[j]] = miss_verdicts[j];
    if (cacheable && miss_verdicts[j] == BlockValidity::kValid) {
      cache->insert(misses[j]->digest());
    }
  }
  return result;
}

}  // namespace mahimahi
