// Outputs of a validator step.
//
// The validator core is sans-IO: every input handler returns the I/O the
// driver (simulator or TCP runtime) must perform. Handlers never touch
// sockets or clocks.
#pragma once

#include <vector>

#include "core/decision.h"
#include "types/block.h"

namespace mahimahi {

struct Actions {
  // Own new block(s) to broadcast to every peer. More than one entry only
  // for a Byzantine equivocator (the driver splits delivery).
  std::vector<BlockPtr> broadcast;

  // Missing ancestors to request, per peer.
  struct FetchRequest {
    ValidatorId peer;
    std::vector<BlockRef> refs;
  };
  std::vector<FetchRequest> fetch_requests;

  // Blocks to send to a specific peer (responses to its fetch requests).
  struct BlockResponse {
    ValidatorId peer;
    std::vector<BlockPtr> blocks;
  };
  std::vector<BlockResponse> responses;

  // Newly committed sub-DAGs, in commit order.
  std::vector<CommittedSubDag> committed;

  // Every block admitted to the DAG by this step, in insertion (= causal)
  // order: received blocks, unblocked pending blocks, and own proposals.
  // Drivers append these to the write-ahead log.
  std::vector<BlockPtr> inserted;

  // A peer asked for ancestors we garbage-collected: tell it our GC horizon
  // so it can stop retrying and switch to snapshot catch-up (the fetch path
  // alone would stall it forever — nobody past the horizon can serve those
  // refs).
  struct HorizonNotice {
    ValidatorId peer;
    Round horizon;
  };
  std::vector<HorizonNotice> horizon_notices;

  // We are stuck below a peer's GC horizon: ask it for its latest
  // checkpoint. The driver answers with the serialized snapshot, verifies it
  // and feeds it back through ValidatorCore::install_checkpoint.
  std::vector<ValidatorId> checkpoint_requests;

  void merge(Actions&& other) {
    for (auto& b : other.broadcast) broadcast.push_back(std::move(b));
    for (auto& f : other.fetch_requests) fetch_requests.push_back(std::move(f));
    for (auto& r : other.responses) responses.push_back(std::move(r));
    for (auto& c : other.committed) committed.push_back(std::move(c));
    for (auto& i : other.inserted) inserted.push_back(std::move(i));
    for (auto& h : other.horizon_notices) horizon_notices.push_back(h);
    for (auto& p : other.checkpoint_requests) checkpoint_requests.push_back(p);
  }

  bool empty() const {
    return broadcast.empty() && fetch_requests.empty() && responses.empty() &&
           committed.empty() && inserted.empty() && horizon_notices.empty() &&
           checkpoint_requests.empty();
  }
};

}  // namespace mahimahi
