// Validator configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/committer_base.h"
#include "core/options.h"
#include "mempool/mempool.h"
#include "types/committee.h"
#include "types/validation.h"
#include "validator/verifier_cache.h"

namespace mahimahi {

struct ValidatorConfig {
  ValidatorId id = 0;

  // Commit-rule options for the default (Mahi-Mahi) committer. Also covers
  // the Cordial Miners shape via cordial_miners_shape().
  CommitterOptions committer;

  // Override to plug a different commit rule (e.g. the Tusk baseline). When
  // set, `committer` is ignored.
  std::function<std::unique_ptr<CommitterBase>(const Dag&, const Committee&)>
      committer_factory;

  // Block construction caps (per-drain budgets on the mempool).
  std::size_t max_block_batches = 4096;
  std::uint64_t max_block_payload_bytes = 8 * 1024 * 1024;

  // Sharded-mempool shape (mempool/mempool.h): shard count, admission
  // quotas, capacity caps. Ignored when `mempool_instance` is set.
  MempoolConfig mempool;

  // Optional pre-built pool shared with the driver. The TCP runtime creates
  // one so client submission is admitted off the loop thread (any thread may
  // submit; only the proposal-path drain runs on the loop thread). Null =
  // the core builds a private pool from `mempool`.
  std::shared_ptr<ShardedMempool> mempool_instance;

  // Adaptive ingest batching (drivers' drain policy, not the core's): one
  // verify/ingest drain takes at most `max_ingest_batch` queued blocks
  // (0 = unbounded), shrunk further so a batch's estimated verification time
  // stays within `ingest_latency_budget` (0 = no budget). Keeps a single
  // straggler block from waiting behind a 64-block burst at low load while
  // preserving batched-crypto amortization under sustained load.
  std::size_t max_ingest_batch = 64;
  TimeMicros ingest_latency_budget = millis(2);

  // Write-side offload (drivers' policy, like the ingest knobs above).
  //
  // wal_group_commit: WAL appends stage into a buffer and a dedicated writer
  // thread lands whole groups as one write + sync (wal/group_commit_wal.h in
  // the TCP runtime; a deterministic deferred flush event in the simulator).
  // Own proposals broadcast only after their durability ack — the recovery
  // contract (no post-restart equivocation) is unchanged, the loop thread
  // just stops paying disk latency for it. Off = the classic inline
  // append + sync per insertion batch.
  bool wal_group_commit = false;
  // Longest a staged WAL record waits before its group flushes (also the
  // added proposal-broadcast latency ceiling when the log is idle). 0 = the
  // writer flushes as soon as it is free, grouping only what accumulates
  // during the previous write + sync.
  TimeMicros wal_flush_interval = millis(1);
  // Upgrade WAL sync() from fflush (survives a process crash) to
  // fflush + fsync (survives a machine crash). On real disks fsync costs
  // milliseconds — inline, that lands on the loop thread per insertion
  // batch; with wal_group_commit it is one fsync per group on the writer
  // thread. Off by default: tests and the simulator model process crashes.
  bool wal_fsync = false;
  // Encode outbound block frames (proposal broadcasts, fetch responses,
  // anti-entropy offers) on the worker pool instead of the loop thread; each
  // block is encoded once into a shared immutable frame and every per-peer
  // send holds a refcounted view. Forced off when the driver has no worker
  // pool (NodeRuntimeConfig::verify_threads = 0).
  bool egress_offload = true;

  // --- Checkpoint & state sync (checkpoint/) --------------------------------
  //
  // Cut a checkpoint every time the GC horizon advances this many rounds
  // past the previous cut (requires committer.gc_depth > 0 — without GC
  // there is no horizon to cut at, and the log already bounds nothing).
  // 0 = no checkpointing: drivers keep the monolithic WAL layout.
  // Nonzero (with persistence configured) switches the driver to the
  // segmented WAL + checkpoint store layout and enables snapshot catch-up
  // serving.
  Round checkpoint_interval = 0;
  // Segment-roll byte budget of the segmented WAL layout (see
  // checkpoint/segmented_wal.h); ignored while checkpoint_interval is 0.
  std::uint64_t wal_segment_bytes = 4 << 20;
  // Minimum spacing between snapshot catch-up requests, so a validator deep
  // below everyone's horizon asks one peer at a time instead of fanning a
  // multi-megabyte download out to the whole committee.
  TimeMicros catchup_retry_delay = seconds(1);
  // Delta-chain length bound: after a base cut, up to this many incremental
  // delta cuts (checkpoint/delta.h) ride on it before the writer re-bases
  // with a fresh full checkpoint. 0 = every cut is a base (the monolithic
  // pre-delta behaviour). Bounds both catch-up transfer length and the
  // recovery replay chain.
  std::size_t checkpoint_max_deltas = 4;
  // Threshold-certify canonical cuts (checkpoint/cert.h): sign and broadcast
  // a share per boundary crossing, aggregate 2f+1 into certificates, and
  // serve certified base+delta chains for catch-up. Off = cuts stay
  // horizon-triggered and uncertified (legacy trust path only).
  bool checkpoint_certify = true;

  // Off-loop commit evaluation. When set (and no committer_factory
  // overrides the default committer), input handlers stop running the
  // commit-rule scan inline: the driver owns a core/commit_scanner.h replica
  // fed from Actions::inserted, runs Committer::scan() off the core's thread
  // (worker pool in the TCP runtime, deferred event in the simulator), and
  // posts the decisions back through ValidatorCore::apply_commit_decisions().
  // Drivers without that plumbing must leave this off — blocks would insert
  // but never commit. WAL replay (recover_block) always commits inline: it
  // runs single-threaded before any driver thread exists.
  bool parallel_commit = false;

  // --- Execution (exec/) ---------------------------------------------------
  //
  // Drivers' policy, like the offload knobs above: when set, the driver owns
  // a deterministic KV execution engine fed by the commit stream — committed
  // batches apply to the replicated state machine, finality stamps move from
  // commit time to execution-delivery time, and `mm_exec_*` counters appear
  // in the registry. Off = commits are handed to the commit handler only
  // (the pre-execution behaviour).
  bool execute_app = false;
  // Worker threads for conflict-aware parallel execution: per-batch decode
  // and per-wave effect preparation fan out to this many workers while a
  // dedicated merge thread applies waves in committed order (exec/engine.h).
  // 0 = serial inline apply on the commit path — always the WAL-replay path
  // regardless of this setting.
  std::size_t execution_threads = 0;

  // Minimum spacing between own proposals. 0 = advance as soon as a 2f+1
  // quorum for the previous round exists (pure asynchronous pace).
  TimeMicros min_round_delay = 0;

  // Semantic validation toggles (see types/validation.h). The simulator's
  // high-rate benches disable signature checks: all validators share a
  // process, and crypto cost is measured separately by the micro benches.
  ValidationOptions validation;

  // Optional digest-keyed signature-verification cache consulted before the
  // ed25519 check. Useful when several validator cores share one process
  // (the simulator, in-memory test clusters): each block then pays ed25519
  // once per process instead of once per validator. A single isolated node
  // gains nothing — its duplicate deliveries are dropped before validation.
  // Null = verify every time.
  std::shared_ptr<VerifierCache> signature_cache;

  // Byzantine behaviour knob for fault-injection tests: produce two
  // equivocating blocks per round. The transport layer decides which peers
  // receive which block.
  bool byzantine_equivocate = false;

  // Observer mode: validate, insert and commit but never propose — a read
  // replica that follows consensus without participating. Also used by tests
  // to compare drivers: without proposals, the DAG (and thus the commit
  // sequence) is a pure function of the delivered blocks.
  bool observer = false;

  // Synchronizer limits.
  std::size_t max_pending_blocks = 100'000;
  TimeMicros fetch_retry_delay = 500 * kMicrosPerMilli;
};

}  // namespace mahimahi
