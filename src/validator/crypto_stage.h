// The shared crypto stage of the ingestion pipeline.
//
// Both drivers of ValidatorCore ingestion run the same stage — the core
// itself (inline verification) and NodeRuntime's verify workers (off-thread
// verification) — so the cache-consult protocol lives here once:
//
//   1. partition blocks into verifier-cache hits (signature already proven
//      for this digest; possibly by a co-located validator sharing the
//      cache) and misses;
//   2. batch-verify coin shares for everything and signatures for the
//      misses (types/validation.h);
//   3. record newly proven digests back into the cache.
//
// Cache hits still pay the (cheap) coin-share check: the cache witnesses the
// signature only.
#pragma once

#include <span>
#include <vector>

#include "types/validation.h"
#include "validator/verifier_cache.h"

namespace mahimahi {

struct CryptoStageResult {
  // One verdict per block: kValid, kBadCoinShare or kBadSignature.
  std::vector<BlockValidity> verdicts;
  // cache_hit[i] != 0 iff block i's signature was vouched by the cache.
  std::vector<char> cache_hit;
};

// `cache` may be null (no caching). Thread-safe iff its inputs are: the
// committee is immutable and VerifierCache is internally locked, so workers
// may call this concurrently with the core.
CryptoStageResult run_crypto_stage(std::span<const BlockPtr> blocks,
                                   const Committee& committee,
                                   const ValidationOptions& options,
                                   VerifierCache* cache);

}  // namespace mahimahi
