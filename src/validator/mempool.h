// FIFO transaction-batch mempool with byte accounting.
#pragma once

#include <cstdint>
#include <deque>

#include "types/transaction.h"

namespace mahimahi {

class Mempool {
 public:
  void push(TxBatch batch) {
    bytes_ += batch.wire_bytes();
    queue_.push_back(std::move(batch));
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  std::uint64_t bytes() const { return bytes_; }

  // Drains up to max_batches / max_bytes worth of batches, FIFO.
  std::vector<TxBatch> drain(std::size_t max_batches, std::uint64_t max_bytes) {
    std::vector<TxBatch> out;
    std::uint64_t taken_bytes = 0;
    while (!queue_.empty() && out.size() < max_batches) {
      const std::uint64_t batch_bytes = queue_.front().wire_bytes();
      if (!out.empty() && taken_bytes + batch_bytes > max_bytes) break;
      taken_bytes += batch_bytes;
      bytes_ -= batch_bytes;
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return out;
  }

 private:
  std::deque<TxBatch> queue_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mahimahi
