// The sans-IO validator core.
//
// Owns the local DAG, the committer, the synchronizer and the mempool, and
// implements the proposal rule of §2.3: once 2f+1 distinct authors are known
// for round r, propose a block at round r+1 referencing them (own previous
// block first) together with any still-unreferenced tips, carrying fresh
// transactions and the round's coin share.
//
// Drivers (the discrete-event simulator, the TCP runtime, tests) feed inputs
// and perform the returned Actions. The core never reads a clock and never
// does I/O, so the same binary logic runs identically under both transports.
#pragma once

#include <optional>
#include <set>

#include "checkpoint/checkpoint.h"
#include "client/metrics.h"
#include "core/committer.h"
#include "mempool/mempool.h"
#include "validator/actions.h"
#include "validator/config.h"
#include "validator/synchronizer.h"

namespace mahimahi {

// One unit of work for the batch ingestion entry point.
struct IngestBlock {
  BlockPtr block;
  ValidatorId from = 0;  // author or relayer (fetch-response sender)
  // The driver already ran the crypto stage off the core's thread (e.g. the
  // TCP runtime's verify workers); the core skips coin/signature checks.
  bool crypto_verified = false;
  // Refinement of crypto_verified: the driver's signature check was a
  // verifier-cache hit rather than a paid verification (keeps the core's
  // IngestStats truthful about where crypto cycles went).
  bool cache_hit = false;
};

class ValidatorCore {
 public:
  ValidatorCore(const Committee& committee, crypto::Ed25519PrivateKey key,
                ValidatorConfig config);

  // --- Inputs ---------------------------------------------------------------

  // A block received from `from` (author or relayer). Equivalent to a
  // one-element on_blocks call.
  Actions on_block(BlockPtr block, ValidatorId from, TimeMicros now);

  // Batch entry point: runs the staged ingestion pipeline
  //   dedup → structural validation → batched crypto verification →
  //   DAG insert → propose/commit/GC (once per batch)
  // over all items. Crypto verification is amortized across the batch
  // (types/validation.h); proposal and commit evaluation run once instead of
  // once per block. Output is deterministic in the item order.
  Actions on_blocks(std::vector<IngestBlock> items, TimeMicros now);

  // Client transactions: admits each batch through the sharded mempool's
  // front door (rejects are counted in mempool().stats()), then re-checks
  // the proposal rule. Same-thread convenience path — drivers that admit
  // off-thread submit to the shared pool directly and call
  // on_mempool_ready() from the core's thread instead.
  Actions on_transactions(std::vector<TxBatch> batches, TimeMicros now);

  // Notification that the shared mempool gained transactions through a
  // side-channel (off-loop admission): re-checks the proposal rule only.
  Actions on_mempool_ready(TimeMicros now);

  // Parallel-commit apply step: consumes commit decisions produced by the
  // driver-owned scanner (core/commit_scanner.h) — linearizes committed
  // sub-DAGs against the full local DAG, advances the consumption head, and
  // garbage-collects off the new head. Decisions must arrive in scan order;
  // already-consumed slots are skipped. No-op unless parallel_commit_active().
  Actions apply_commit_decisions(const std::vector<SlotDecision>& decisions,
                                 TimeMicros now);

  // A peer requests blocks we may hold.
  Actions on_fetch_request(const std::vector<BlockRef>& refs, ValidatorId from,
                           TimeMicros now);

  // Timer tick: retries outstanding fetches, re-checks proposal pacing.
  Actions on_tick(TimeMicros now);

  // WAL replay path: admits a logged block directly (its parents are already
  // in the DAG — the log preserves insertion order). Own blocks restore the
  // proposer round so the validator does not re-propose (and thus
  // equivocate) after a restart. Call before any live input; returns any
  // commits that replaying reproduces.
  Actions recover_block(BlockPtr block);

  // --- Checkpoint & state sync (checkpoint/) --------------------------------

  // A peer told us its GC horizon after we requested ancestors below it.
  // The claim is treated as hostile until corroborated: it is clamped to the
  // highest round f+1 distinct authors have reached in blocks we validated
  // (an honest peer's horizon trails its head, and its head cannot outrun
  // every honest author we hear from), and it only counts as a refusal when
  // some ancestor we asked THIS peer for sits below the clamped horizon.
  // When we are then genuinely stuck (no one whose horizon passed the
  // ancestor can ever serve the fetch), emits a rate-limited
  // Actions::checkpoint_requests entry.
  Actions on_peer_horizon(ValidatorId peer, Round horizon, TimeMicros now);

  // Serializes the consistent cut at the current GC horizon: consumption
  // head, decided log, delivered marks, live DAG suffix, proposer round.
  // The driver adds sequence and the application snapshot before encoding.
  // Requires checkpoint_capable().
  CheckpointData capture_checkpoint() const;

  // Installs a verified checkpoint: prunes local state below its horizon,
  // inserts the DAG suffix (returned via Actions::inserted so the driver
  // logs it), adopts the decided log + head, and restores the proposer round
  // from any own blocks it contains. Used both for recovery (newest local
  // checkpoint before segment replay) and snapshot catch-up (a peer's
  // checkpoint received off the wire — run checkpoint/checkpoint.h
  // verify_checkpoint first). No-op when the checkpoint is not ahead of this
  // validator or a custom committer_factory rule is active. In
  // parallel-commit mode the driver must rebuild its scanner afterwards: the
  // replica it fed no longer matches the installed DAG.
  Actions install_checkpoint(const CheckpointData& data, TimeMicros now);

  // Can this core capture/install checkpoints? True for the default
  // (Mahi-Mahi) committer; custom committer_factory rules (e.g. the Tusk
  // baseline) have no restore path.
  bool checkpoint_capable() const { return default_committer_ != nullptr; }

  // Checkpoints installed into this core (the recovery-path install and any
  // snapshot catch-ups).
  std::uint64_t checkpoints_installed() const { return checkpoints_installed_; }

  // --- Introspection ----------------------------------------------------------

  ValidatorId id() const { return config_.id; }
  const Dag& dag() const { return dag_; }
  const CommitterBase& committer() const { return *committer_; }
  // Is commit evaluation delegated to a driver-owned scanner? True when
  // config.parallel_commit is set and the default (split-capable) committer
  // is in use; custom committer_factory rules always evaluate inline.
  bool parallel_commit_active() const { return split_committer_ != nullptr; }
  const ValidatorConfig& config() const { return config_; }
  Round last_proposed_round() const { return last_proposed_round_; }
  // Is this digest in the DAG or parked in the synchronizer? Drivers use it
  // as a dedup hint ("safe to drop re-deliveries"); the core's own
  // ingestion-time dedup remains authoritative.
  bool knows_block(const Digest& digest) const {
    return dag_.contains(digest) || synchronizer_.is_pending(digest);
  }
  std::size_t mempool_size() const { return mempool_->size(); }
  const ShardedMempool& mempool() const { return *mempool_; }
  // The pool itself, for drivers that admit submissions off the core's
  // thread (net/node_runtime.h). Thread-safe by construction.
  const std::shared_ptr<ShardedMempool>& mempool_handle() const { return mempool_; }
  std::uint64_t blocks_rejected() const { return blocks_rejected_; }
  // Stage counters of the ingestion pipeline (client/metrics.h).
  const IngestStats& ingest_stats() const { return ingest_stats_; }

 private:
  // Pipeline stage: admits one crypto-cleared block through the
  // synchronizer, collecting fetch requests and insertions into `actions`.
  void admit(BlockPtr block, ValidatorId from, TimeMicros now, Actions& actions);
  // Inline commit + GC after insertions — the serial path. In parallel-
  // commit mode this is a no-op: the driver's scanner runs the scan and
  // commits land through apply_commit_decisions() instead.
  void commit_and_gc(Actions& actions);
  // Proposes if the advance condition holds; appends to `actions`.
  void maybe_propose(TimeMicros now, Actions& actions);
  BlockPtr build_own_block(Round round, TimeMicros now);
  void note_inserted(const BlockPtr& block);
  // Prunes DAG + committer + synchronizer state below the GC horizon
  // derived from the consumed-slot head (CommitterOptions::gc_depth; no-op
  // when 0). Blocks unblocked by the horizon move are appended to
  // `actions.inserted` so the driver logs them.
  void maybe_gc(Actions& actions);
  // Records `round` as reached by `author` (structurally + crypto valid
  // blocks only, parked or inserted) for credible_peer_horizon().
  void note_author_round(ValidatorId author, Round round);
  // The highest round at least f+1 distinct authors have reached: an upper
  // bound on any honest peer's GC horizon that a lone Byzantine author
  // minting far-future blocks cannot inflate.
  Round credible_peer_horizon() const;

  const Committee& committee_;
  crypto::Ed25519PrivateKey key_;
  ValidatorConfig config_;

  Dag dag_;
  std::unique_ptr<CommitterBase> committer_;
  // Non-null iff no committer_factory override is set: the owned committer_,
  // downcast to the default type, for the split/restore APIs.
  Committer* default_committer_ = nullptr;
  // Non-null iff parallel commit is active (default committer + the
  // parallel_commit flag): apply_commit_decisions() consumes through it.
  Committer* split_committer_ = nullptr;
  Synchronizer synchronizer_;
  std::shared_ptr<ShardedMempool> mempool_;

  Round last_proposed_round_ = 0;  // genesis counts as round 0
  // Time of the last own proposal; empty until the first one. An optional
  // (rather than a 0 sentinel) so a proposal made at t=0 still arms the
  // min_round_delay pacing gate.
  std::optional<TimeMicros> last_proposal_time_;
  BlockPtr own_last_block_;

  // Blocks nobody references yet (candidate parents beyond the quorum).
  std::set<BlockRef> tips_;

  // Fetch bookkeeping: digest -> (peer asked, time asked).
  struct FetchState {
    ValidatorId peer;
    TimeMicros asked_at;
  };
  std::unordered_map<Digest, FetchState, DigestHasher> inflight_fetches_;

  // Highest round seen per author across validated blocks (parked or
  // inserted); feeds credible_peer_horizon().
  std::vector<Round> author_highest_seen_;

  std::uint64_t blocks_rejected_ = 0;
  std::uint64_t equivocation_counter_ = 0;
  IngestStats ingest_stats_;

  // Snapshot catch-up bookkeeping: last request time (rate limiting) and the
  // number of live installs.
  std::optional<TimeMicros> last_catchup_request_;
  std::uint64_t checkpoints_installed_ = 0;
};

}  // namespace mahimahi
