#include "validator/validator.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/log.h"
#include "validator/crypto_stage.h"

namespace mahimahi {

ValidatorCore::ValidatorCore(const Committee& committee, crypto::Ed25519PrivateKey key,
                             ValidatorConfig config)
    : committee_(committee),
      key_(key),
      config_(config),
      dag_(committee),
      committer_(config.committer_factory
                     ? config.committer_factory(dag_, committee)
                     : std::make_unique<Committer>(dag_, committee, config.committer)),
      synchronizer_(dag_, config.max_pending_blocks),
      mempool_(config.mempool_instance
                   ? config.mempool_instance
                   : std::make_shared<ShardedMempool>(config.mempool)) {
  if (!config.committer_factory) {
    // Without a factory override the committer is the split/restore-capable
    // default built above; custom commit rules keep the inline path and
    // cannot checkpoint.
    default_committer_ = static_cast<Committer*>(committer_.get());
    if (config_.parallel_commit) split_committer_ = default_committer_;
  }
  own_last_block_ = dag_.slot(0, config_.id).front();  // own genesis
  // Genesis blocks of every validator start as tips.
  for (const auto& block : dag_.blocks_at(0)) tips_.insert(block->ref());
  author_highest_seen_.assign(committee_.size(), 0);
}

void ValidatorCore::note_author_round(ValidatorId author, Round round) {
  if (author < author_highest_seen_.size()) {
    author_highest_seen_[author] = std::max(author_highest_seen_[author], round);
  }
}

Round ValidatorCore::credible_peer_horizon() const {
  std::vector<Round> tops(author_highest_seen_);
  const std::size_t f = committee_.f();
  std::nth_element(tops.begin(), tops.begin() + f, tops.end(), std::greater<Round>());
  return tops[f];  // the (f+1)-th largest: at least one honest author reached it
}

void ValidatorCore::note_inserted(const BlockPtr& block) {
  // A block stays a tip until referenced by one of OUR OWN proposals (not
  // merely by someone else's block): every honest proposal must pull all
  // locally-known-but-unreferenced blocks into its causal history, so that
  // stragglers from slow links still reach the vote round in time. Removing
  // tips on third-party references would leave a slow validator's blocks
  // reachable only through its own (equally slow) chain, starving them of
  // votes — observable as spurious skips of far-region leaders at wave
  // length 4.
  tips_.insert(block->ref());
  note_author_round(block->author(), block->round());
}

Actions ValidatorCore::on_block(BlockPtr block, ValidatorId from, TimeMicros now) {
  std::vector<IngestBlock> items;
  items.push_back({std::move(block), from, false});
  return on_blocks(std::move(items), now);
}

Actions ValidatorCore::recover_block(BlockPtr block) {
  Actions actions;
  if (dag_.contains(block->digest())) return actions;
  if (block->author() == config_.id) {
    // Restore the proposer round even if the block itself cannot be
    // re-inserted: never re-propose (equivocate on) a logged round.
    if (block->round() > last_proposed_round_) {
      last_proposed_round_ = block->round();
      own_last_block_ = block;
    }
  }
  if (block->round() < dag_.pruned_below()) {
    // Below the horizon of a checkpoint installed before this replay: the
    // record predates the cut and the checkpoint already summarizes it.
    // Inserting it would plant a round below the pruned horizon that no
    // later prune can reach.
    return actions;
  }
  if (!dag_.parents_present(*block)) {
    // Possible when the pre-crash validator admitted this block through the
    // GC exemption (a parent below its pruned horizon was never inserted,
    // so it is not in the log either). Skip it: the commit sequence never
    // needs sub-horizon history, and the live synchronizer re-fetches
    // anything still relevant.
    MM_LOG(kInfo) << "v" << config_.id << " WAL replay skipped "
                  << block->ref().to_string() << " (parents beyond the GC horizon)";
    return actions;
  }
  dag_.insert(block);
  note_inserted(block);
  actions.inserted.push_back(block);
  // Replay always commits inline, even in parallel-commit mode: recovery is
  // single-threaded and runs before the driver's scanner exists (drivers
  // seed the scanner from the recovered DAG + head afterwards).
  auto committed = committer_->try_commit();
  for (auto& sub_dag : committed) actions.committed.push_back(std::move(sub_dag));
  maybe_gc(actions);
  return actions;
}

Actions ValidatorCore::on_blocks(std::vector<IngestBlock> items, TimeMicros now) {
  Actions actions;

  // --- Stage 1: dedup + structural validation -------------------------------
  // Cheap integer work; everything rejected here never touches crypto.
  std::vector<IngestBlock> batch;
  batch.reserve(items.size());
  std::unordered_set<Digest, DigestHasher> in_batch;
  for (auto& item : items) {
    const Digest& digest = item.block->digest();
    if (dag_.contains(digest) || synchronizer_.is_pending(digest)) continue;
    if (!in_batch.insert(digest).second) continue;  // duplicate within batch
    if (item.block->round() < dag_.pruned_below()) {
      continue;  // stale: below the GC horizon, can never be delivered
    }
    const BlockValidity structural = validate_block_structure(*item.block, committee_);
    if (structural != BlockValidity::kValid) {
      ++blocks_rejected_;
      ++ingest_stats_.structurally_rejected;
      MM_LOG(kDebug) << "v" << config_.id << " rejected block from v" << item.from
                     << ": " << to_string(structural);
      continue;
    }
    batch.push_back(std::move(item));
  }

  // --- Stage 2: crypto verification, batched --------------------------------
  // The shared crypto stage (validator/crypto_stage.h): verifier-cache
  // consult, batched coin-share checks, one random-linear-combination
  // signature batch with bisecting fallback. Blocks the driver preverified
  // off-thread skip the stage entirely.
  std::vector<char> rejected(batch.size(), 0);
  const auto& cache = config_.signature_cache;
  const bool cacheable = cache != nullptr && config_.validation.verify_signature;

  std::vector<BlockPtr> to_verify;
  std::vector<std::size_t> verify_index;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].crypto_verified) continue;
    to_verify.push_back(batch[i].block);
    verify_index.push_back(i);
  }
  const CryptoStageResult stage =
      run_crypto_stage(to_verify, committee_, config_.validation, cache.get());
  for (std::size_t j = 0; j < verify_index.size(); ++j) {
    const std::size_t i = verify_index[j];
    if (stage.verdicts[j] != BlockValidity::kValid) {
      rejected[i] = 1;
      ++blocks_rejected_;
      ++ingest_stats_.crypto_rejected;
      MM_LOG(kDebug) << "v" << config_.id << " rejected block from v" << batch[i].from
                     << ": " << to_string(stage.verdicts[j]);
    } else if (stage.cache_hit[j]) {
      ++ingest_stats_.cache_hits;
    } else if (config_.validation.verify_signature) {
      ++ingest_stats_.verified;
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (rejected[i] || !batch[i].crypto_verified) continue;
    if (batch[i].cache_hit) {
      // The driver's signature check was itself a cache hit: count it as
      // one, and the digest is already cached.
      ++ingest_stats_.cache_hits;
      continue;
    }
    ++ingest_stats_.preverified;
    // The driver's verification is as good as ours: seed the cache so
    // co-located cores skip the work too.
    if (cacheable) cache->insert(batch[i].block->digest());
  }

  // --- Stage 3: DAG insert via the synchronizer -----------------------------
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (rejected[i]) continue;
    admit(std::move(batch[i].block), batch[i].from, now, actions);
  }

  // --- Stage 4: propose / commit / GC, once per batch -----------------------
  if (!actions.inserted.empty()) {
    maybe_propose(now, actions);
    commit_and_gc(actions);
  }
  return actions;
}

void ValidatorCore::commit_and_gc(Actions& actions) {
  // In parallel-commit mode the scan belongs to the driver's scanner; the
  // commits land later through apply_commit_decisions().
  if (split_committer_ != nullptr) return;
  auto committed = committer_->try_commit();
  for (auto& sub_dag : committed) actions.committed.push_back(std::move(sub_dag));
  maybe_gc(actions);
}

Actions ValidatorCore::apply_commit_decisions(const std::vector<SlotDecision>& decisions,
                                              TimeMicros now) {
  (void)now;  // commits are clock-free; the signature matches the other inputs
  Actions actions;
  if (split_committer_ == nullptr) return actions;
  for (auto& sub_dag : split_committer_->apply(decisions)) {
    actions.committed.push_back(std::move(sub_dag));
  }
  maybe_gc(actions);
  return actions;
}

void ValidatorCore::admit(BlockPtr block, ValidatorId from, TimeMicros now,
                          Actions& actions) {
  // An earlier block of this batch may have cascade-inserted this one (it
  // was parked in the synchronizer); re-check before offering.
  if (dag_.contains(block->digest()) || synchronizer_.is_pending(block->digest())) {
    return;
  }
  // Parked blocks count toward the per-author round watermark too: a late
  // joiner's view of the cluster head is EXACTLY its parked suffix.
  note_author_round(block->author(), block->round());
  auto outcome = synchronizer_.offer(std::move(block));
  for (const auto& inserted : outcome.inserted) note_inserted(inserted);

  // Request missing ancestors from the sender (it referenced them, so it
  // must hold them — Lemma 8).
  if (!outcome.missing.empty()) {
    Actions::FetchRequest request;
    request.peer = from;
    for (const auto& ref : outcome.missing) {
      const auto [it, fresh] = inflight_fetches_.try_emplace(
          ref.digest, FetchState{from, now});
      if (fresh || now - it->second.asked_at >= config_.fetch_retry_delay) {
        it->second = FetchState{from, now};
        request.refs.push_back(ref);
      }
    }
    if (!request.refs.empty()) actions.fetch_requests.push_back(std::move(request));
  }

  for (const auto& inserted : outcome.inserted) {
    inflight_fetches_.erase(inserted->digest());
    actions.inserted.push_back(inserted);
  }
}

void ValidatorCore::maybe_gc(Actions& actions) {
  const Round depth = config_.committer.gc_depth;
  if (depth == 0) return;
  const Round head = committer_->next_pending_slot().round;
  if (head <= depth) return;
  const Round horizon = head - depth;
  if (horizon <= dag_.pruned_below()) return;
  // Safe by the deterministic delivery cut: every slot below `head` is
  // consumed, and any future leader (round >= head) delivers only blocks
  // with round >= head - gc_depth, so rounds below `horizon` are dead.
  dag_.prune_below(horizon);
  committer_->prune_below(horizon);
  std::erase_if(tips_, [horizon](const BlockRef& ref) { return ref.round < horizon; });
  // Pending blocks waiting only on sub-horizon parents unblock now; they
  // must reach the WAL (actions.inserted) like any other insertion.
  for (BlockPtr& unblocked : synchronizer_.prune_below(horizon)) {
    inflight_fetches_.erase(unblocked->digest());
    note_inserted(unblocked);
    actions.inserted.push_back(std::move(unblocked));
  }
}

Actions ValidatorCore::on_transactions(std::vector<TxBatch> batches, TimeMicros now) {
  Actions actions;
  for (const AdmitResult verdict : mempool_->submit_all(std::move(batches))) {
    if (!admitted(verdict)) {
      MM_LOG(kDebug) << "v" << config_.id << " mempool rejected batch: "
                     << to_string(verdict);
    }
  }
  maybe_propose(now, actions);
  return actions;
}

Actions ValidatorCore::on_mempool_ready(TimeMicros now) {
  Actions actions;
  maybe_propose(now, actions);
  return actions;
}

Actions ValidatorCore::on_fetch_request(const std::vector<BlockRef>& refs,
                                        ValidatorId from, TimeMicros) {
  Actions actions;
  Actions::BlockResponse response;
  response.peer = from;
  bool below_horizon = false;
  for (const auto& ref : refs) {
    if (const BlockPtr block = dag_.get(ref.digest)) {
      if (block->round() > 0) response.blocks.push_back(block);
    } else if (ref.round < dag_.pruned_below()) {
      // We garbage-collected that history; no amount of retrying will ever
      // get it from us. Tell the requester where our horizon stands so it
      // can switch to snapshot catch-up instead of stalling forever.
      below_horizon = true;
    }
  }
  if (!response.blocks.empty()) actions.responses.push_back(std::move(response));
  if (below_horizon) {
    actions.horizon_notices.push_back({from, dag_.pruned_below()});
  }
  return actions;
}

Actions ValidatorCore::on_peer_horizon(ValidatorId peer, Round horizon,
                                       TimeMicros now) {
  Actions actions;
  if (default_committer_ == nullptr) return actions;  // cannot install → don't ask
  // The notice is a bare claim any peer can send. Clamp it to the highest
  // round f+1 distinct authors have shown us: an honest peer's horizon
  // trails its committed head, which cannot be ahead of every honest author
  // we have validated blocks from — so the excess of a fabricated horizon is
  // discarded rather than believed.
  horizon = std::min(horizon, credible_peer_horizon());
  if (horizon <= dag_.pruned_below()) return actions;  // peer not ahead of us
  // Only worth a snapshot when we are actually stuck, and only on a refusal
  // of one of OUR fetches: some ancestor we asked THIS peer for must sit
  // below its horizon — then neither this peer nor anyone whose horizon also
  // passed it can ever serve the fetch. A peer we never fetched from has
  // nothing to refuse and cannot talk us into requesting its snapshot.
  bool stuck = false;
  for (const auto& ref : synchronizer_.outstanding()) {
    if (ref.round >= horizon) continue;
    const auto it = inflight_fetches_.find(ref.digest);
    if (it != inflight_fetches_.end() && it->second.peer == peer) {
      stuck = true;
      break;
    }
  }
  if (!stuck) return actions;
  if (last_catchup_request_.has_value() &&
      now - *last_catchup_request_ < config_.catchup_retry_delay) {
    return actions;
  }
  last_catchup_request_ = now;
  actions.checkpoint_requests.push_back(peer);
  return actions;
}

CheckpointData ValidatorCore::capture_checkpoint() const {
  CheckpointData data;
  data.author = config_.id;
  data.horizon = dag_.pruned_below();
  data.head = committer_->next_pending_slot();
  data.last_proposed_round = last_proposed_round_;
  for (const SlotDecision& decision : committer_->decided_sequence()) {
    data.decided.push_back({decision.slot, decision.leader, decision.kind,
                            decision.via, decision.ref});
  }
  if (default_committer_ != nullptr) {
    data.delivered = default_committer_->delivered_snapshot(data.horizon);
  }
  // The live suffix, round-ascending so installation inserts parents before
  // children (a parent's round is strictly below its child's). Genesis is
  // excluded: every validator constructs it locally.
  for (Round r = std::max<Round>(1, data.horizon); r <= dag_.highest_round(); ++r) {
    for (const BlockPtr& block : dag_.blocks_at(r)) data.blocks.push_back(block);
  }
  return data;
}

Actions ValidatorCore::install_checkpoint(const CheckpointData& data, TimeMicros now) {
  Actions actions;
  if (default_committer_ == nullptr) return actions;  // no restore path
  if (data.head <= committer_->next_pending_slot()) return actions;  // not ahead

  // Drop local state below the checkpoint's horizon. Pending blocks whose
  // only missing parents fall below it unblock and insert, like any other
  // horizon move.
  if (data.horizon > dag_.pruned_below()) {
    dag_.prune_below(data.horizon);
    committer_->prune_below(data.horizon);
    std::erase_if(tips_,
                  [&data](const BlockRef& ref) { return ref.round < data.horizon; });
    for (BlockPtr& unblocked : synchronizer_.prune_below(data.horizon)) {
      inflight_fetches_.erase(unblocked->digest());
      note_inserted(unblocked);
      actions.inserted.push_back(std::move(unblocked));
    }
  }

  // Install the DAG suffix through the synchronizer so parked descendants
  // cascade. The suffix is round-ascending and the horizon is set, so
  // nothing can report missing parents.
  for (const BlockPtr& block : data.blocks) {
    if (dag_.contains(block->digest())) continue;
    if (block->author() == config_.id && block->round() > last_proposed_round_) {
      // Our own pre-crash history, coming back to us via a peer's snapshot:
      // restore the proposer round before anything can trigger a proposal.
      last_proposed_round_ = block->round();
      own_last_block_ = block;
    }
    auto outcome = synchronizer_.offer(block);
    for (BlockPtr& inserted : outcome.inserted) {
      inflight_fetches_.erase(inserted->digest());
      note_inserted(inserted);
      actions.inserted.push_back(std::move(inserted));
    }
  }

  // Adopt the consumption state: the decided log with blocks re-resolved
  // against the (just installed) DAG — commits below the horizon keep only
  // their ref.
  std::vector<SlotDecision> decided;
  decided.reserve(data.decided.size());
  for (const auto& d : data.decided) {
    SlotDecision decision;
    decision.slot = d.slot;
    decision.leader = d.leader;
    decision.kind = d.kind;
    decision.via = d.via;
    decision.final_decision = true;
    if (d.kind == SlotDecision::Kind::kCommit) {
      decision.ref = d.block;
      decision.block = dag_.get(d.block.digest);
    }
    decided.push_back(std::move(decision));
  }
  default_committer_->restore(std::move(decided), data.head, data.delivered);

  if (data.author == config_.id && data.last_proposed_round > last_proposed_round_) {
    // Recovering from our own checkpoint: the proposer round it recorded may
    // exceed the highest own block in the suffix (a proposal below the
    // horizon with no successor above it).
    last_proposed_round_ = data.last_proposed_round;
  }

  // Fetch bookkeeping for ancestry the install made moot (resolved by the
  // suffix, or pruned with the horizon) would linger forever otherwise.
  std::unordered_set<Digest, DigestHasher> still_missing;
  for (const auto& ref : synchronizer_.outstanding()) still_missing.insert(ref.digest);
  std::erase_if(inflight_fetches_, [&still_missing](const auto& entry) {
    return !still_missing.contains(entry.first);
  });

  ++checkpoints_installed_;
  last_catchup_request_.reset();  // a fresh stall may legitimately re-request

  // The installed suffix may already decide slots past the head. Deliberately
  // NO maybe_propose here: during the recovery-path install the driver
  // discards these actions, and a proposal minted now would enter the DAG
  // without ever being logged or broadcast — the next tick or input proposes
  // instead, through the normal logged path.
  (void)now;
  commit_and_gc(actions);
  return actions;
}

Actions ValidatorCore::on_tick(TimeMicros now) {
  Actions actions;
  // Retry stale fetches (the original peer may have failed).
  std::unordered_map<ValidatorId, std::vector<BlockRef>> retries;
  for (const auto& ref : synchronizer_.outstanding()) {
    const auto it = inflight_fetches_.find(ref.digest);
    if (it == inflight_fetches_.end()) continue;
    if (now - it->second.asked_at < config_.fetch_retry_delay) continue;
    // Rotate to the block's author, then round-robin across the committee.
    const ValidatorId next_peer =
        it->second.peer == ref.author
            ? static_cast<ValidatorId>((it->second.peer + 1) % committee_.size())
            : ref.author;
    it->second = FetchState{next_peer, now};
    retries[next_peer].push_back(ref);
  }
  for (auto& [peer, refs] : retries) {
    actions.fetch_requests.push_back({peer, std::move(refs)});
  }

  maybe_propose(now, actions);
  return actions;
}

void ValidatorCore::maybe_propose(TimeMicros now, Actions& actions) {
  if (config_.observer) return;  // read replicas follow, never propose
  // Advance rule: propose at r*+1 where r* is the highest round with a 2f+1
  // distinct-author quorum. Skipping ahead lets a lagging validator rejoin.
  Round quorum_round = 0;
  for (Round r = dag_.highest_round();; --r) {
    if (dag_.distinct_authors_at(r) >= committee_.quorum_threshold()) {
      quorum_round = r;
      break;
    }
    if (r == 0) break;
  }
  const Round target = quorum_round + 1;
  if (target <= last_proposed_round_) return;
  if (last_proposal_time_.has_value() &&
      now - *last_proposal_time_ < config_.min_round_delay) {
    return;
  }

  const BlockPtr block = build_own_block(target, now);
  last_proposed_round_ = target;
  last_proposal_time_ = now;
  own_last_block_ = block;
  dag_.insert(block);
  note_inserted(block);
  actions.broadcast.push_back(block);
  actions.inserted.push_back(block);

  if (config_.byzantine_equivocate) {
    // A second, conflicting block for the same round: marker batch plus the
    // same parents. The driver decides which peers see which block.
    TxBatch marker;
    marker.id = 0xe001'0000'0000'0000ULL + ++equivocation_counter_;
    marker.count = 0;
    marker.tx_bytes = 0;
    auto twin = std::make_shared<const Block>(
        Block::make(config_.id, target, own_last_block_->parents(), {marker},
                    committee_.coin().share(config_.id, target), key_, now));
    dag_.insert(twin);
    actions.broadcast.push_back(twin);
    actions.inserted.push_back(twin);
  }

  // Committing may be possible immediately (our block may complete a wave).
  commit_and_gc(actions);

  // Chain proposals: our own block may complete the quorum for the next
  // round only if others' blocks arrive, so no recursion is needed here.
}

BlockPtr ValidatorCore::build_own_block(Round round, TimeMicros now) {
  // Parents: own previous block first (§2.3), then one block per distinct
  // author of round-1, then any remaining unreferenced tips below `round`.
  std::vector<BlockRef> parents;
  std::set<Digest> chosen;
  const auto add_parent = [&](const BlockRef& ref) {
    if (ref.round >= round) return;
    if (chosen.insert(ref.digest).second) parents.push_back(ref);
  };

  add_parent(own_last_block_->ref());
  for (ValidatorId author = 0; author < committee_.size(); ++author) {
    const auto& cell = dag_.slot(round - 1, author);
    if (!cell.empty()) add_parent(cell.front()->ref());
  }
  for (const auto& tip : tips_) add_parent(tip);
  // Everything below `round` is now referenced by this proposal; only
  // same-or-future-round tips remain for the next one.
  std::erase_if(tips_, [round](const BlockRef& ref) { return ref.round < round; });

  std::vector<TxBatch> batches =
      mempool_->drain(config_.max_block_batches, config_.max_block_payload_bytes);

  // `now` is the driver's clock (steady micros live, virtual in the sim):
  // the created_at stamp peers fold into their rx-lag forensics.
  return std::make_shared<const Block>(
      Block::make(config_.id, round, std::move(parents), std::move(batches),
                  committee_.coin().share(config_.id, round), key_, now));
}

}  // namespace mahimahi
