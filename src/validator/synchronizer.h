// Causal-completeness enforcement (§2.3, Lemma 8).
//
// Honest validators only admit a block to the DAG once its entire causal
// history is present and valid. Blocks whose parents are missing wait in a
// bounded buffer while the missing ancestors are fetched from the sender
// (who, having referenced them, must hold them).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dag/dag.h"
#include "types/block.h"

namespace mahimahi {

class Synchronizer {
 public:
  Synchronizer(Dag& dag, std::size_t max_pending) : dag_(dag), max_pending_(max_pending) {}

  struct Outcome {
    // Blocks inserted into the DAG by this step (the argument block and any
    // pending blocks it unblocked), in insertion order.
    std::vector<BlockPtr> inserted;
    // Parents that are still unknown and should be fetched.
    std::vector<BlockRef> missing;
  };

  // Offers a structurally valid block. Inserts it (and cascades) when its
  // parents are present; otherwise parks it and reports what is missing.
  Outcome offer(BlockPtr block);

  bool is_pending(const Digest& digest) const { return pending_.contains(digest); }
  std::size_t pending_count() const { return pending_.size(); }

  // Refs currently being waited for (for retry logic).
  std::vector<BlockRef> outstanding() const;

  // GC: missing refs below `round` count as satisfied (their blocks can
  // never be delivered — see Dag::parents_present), so pending blocks
  // waiting only on them unblock and insert; returns the blocks inserted.
  // Pending blocks that are themselves below `round` are dropped as stale.
  std::vector<BlockPtr> prune_below(Round round);

 private:
  void insert_and_cascade(BlockPtr block, std::vector<BlockPtr>& inserted);

  Dag& dag_;
  std::size_t max_pending_;

  struct Pending {
    BlockPtr block;
    std::size_t missing_count = 0;
  };
  std::unordered_map<Digest, Pending, DigestHasher> pending_;
  // missing parent digest -> digests of pending blocks waiting on it.
  std::unordered_map<Digest, std::vector<Digest>, DigestHasher> waiters_;
  // The refs of missing parents (for outstanding()).
  std::unordered_map<Digest, BlockRef, DigestHasher> missing_refs_;
};

}  // namespace mahimahi
