#include "validator/synchronizer.h"

#include "common/log.h"

namespace mahimahi {

Synchronizer::Outcome Synchronizer::offer(BlockPtr block) {
  Outcome outcome;
  const Digest digest = block->digest();
  if (dag_.contains(digest) || pending_.contains(digest)) return outcome;

  // Collect unknown parents. References below the DAG's GC horizon are
  // satisfied by definition (they can never be delivered; see
  // Dag::parents_present) and are not fetched.
  std::vector<BlockRef> unknown;
  for (const auto& parent : block->parents()) {
    if (parent.round < dag_.pruned_below()) continue;
    if (!dag_.contains(parent.digest)) unknown.push_back(parent);
  }

  if (unknown.empty()) {
    insert_and_cascade(std::move(block), outcome.inserted);
    return outcome;
  }

  if (pending_.size() >= max_pending_) {
    // Bounded buffer: drop the offer; the block will be re-fetched later if
    // it matters (it stays referenced by descendants).
    MM_LOG(kWarn) << "synchronizer pending buffer full; dropping block";
    return outcome;
  }

  Pending entry;
  entry.block = std::move(block);
  entry.missing_count = unknown.size();
  pending_.emplace(digest, std::move(entry));
  for (const auto& parent : unknown) {
    auto& waiting = waiters_[parent.digest];
    waiting.push_back(digest);
    // Report each missing parent once per offer; the caller de-duplicates
    // in-flight fetches.
    if (waiting.size() == 1 || !missing_refs_.contains(parent.digest)) {
      missing_refs_.emplace(parent.digest, parent);
    }
    // A parent might itself be pending (known but not insertable); only ask
    // the network for parents we have never seen.
    if (!pending_.contains(parent.digest)) outcome.missing.push_back(parent);
  }
  return outcome;
}

void Synchronizer::insert_and_cascade(BlockPtr block, std::vector<BlockPtr>& inserted) {
  dag_.insert(block);
  inserted.push_back(block);

  // Iteratively resolve waiters (a queue, to avoid recursion).
  std::vector<Digest> ready{block->digest()};
  while (!ready.empty()) {
    const Digest arrived = ready.back();
    ready.pop_back();
    missing_refs_.erase(arrived);
    const auto it = waiters_.find(arrived);
    if (it == waiters_.end()) continue;
    const std::vector<Digest> dependents = std::move(it->second);
    waiters_.erase(it);
    for (const Digest& dependent : dependents) {
      const auto pending_it = pending_.find(dependent);
      if (pending_it == pending_.end()) continue;
      if (--pending_it->second.missing_count == 0) {
        BlockPtr unblocked = std::move(pending_it->second.block);
        pending_.erase(pending_it);
        dag_.insert(unblocked);
        inserted.push_back(unblocked);
        ready.push_back(unblocked->digest());
      }
    }
  }
}

std::vector<BlockPtr> Synchronizer::prune_below(Round round) {
  std::vector<BlockPtr> inserted;

  // Drop pending blocks that are themselves below the horizon.
  std::vector<Digest> stale;
  for (const auto& [digest, entry] : pending_) {
    if (entry.block->round() < round) stale.push_back(digest);
  }
  for (const Digest& digest : stale) pending_.erase(digest);

  // Missing refs below the horizon are satisfied by definition: resolve
  // their waiters exactly as if the block had arrived.
  std::vector<Digest> satisfied;
  for (const auto& [digest, ref] : missing_refs_) {
    if (ref.round < round) satisfied.push_back(digest);
  }
  for (const Digest& arrived : satisfied) {
    missing_refs_.erase(arrived);
    const auto it = waiters_.find(arrived);
    if (it == waiters_.end()) continue;
    const std::vector<Digest> dependents = std::move(it->second);
    waiters_.erase(it);
    for (const Digest& dependent : dependents) {
      const auto pending_it = pending_.find(dependent);
      if (pending_it == pending_.end()) continue;
      if (--pending_it->second.missing_count == 0) {
        BlockPtr unblocked = std::move(pending_it->second.block);
        pending_.erase(pending_it);
        insert_and_cascade(std::move(unblocked), inserted);
      }
    }
  }
  return inserted;
}

std::vector<BlockRef> Synchronizer::outstanding() const {
  std::vector<BlockRef> out;
  out.reserve(missing_refs_.size());
  for (const auto& [digest, ref] : missing_refs_) {
    if (!dag_.contains(digest) && !pending_.contains(digest)) out.push_back(ref);
  }
  return out;
}

}  // namespace mahimahi
