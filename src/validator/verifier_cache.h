// Digest-keyed signature-verification cache.
//
// A block reaches a validator several times — broadcast by its author,
// relayed in fetch responses, replayed after reconnects — and ed25519
// verification is the most expensive per-block CPU cost (see
// bench_micro_crypto). Since the signature covers the digest and the digest
// is recomputed from the received bytes on deserialization, "this digest
// verified once" is a stable fact: later copies with the same digest need no
// second verification.
//
// Bounded FIFO: the cache holds at most `capacity` digests and evicts the
// oldest. Internally locked: a cache may be shared across validator cores in
// one process (the simulator, in-memory test clusters) and, in the TCP
// runtime, consulted by the verify workers off the loop thread. The
// check-then-insert sequence is deliberately not atomic — the worst case is
// one redundant verification, never a missed one.
//
// Security note: only *successful* verifications are cached. A negative
// cache would let an attacker poison a digest before the honest author's
// block arrives; failures are rare (they cost the sender a dropped frame)
// and may stay slow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_set>

#include "crypto/digest.h"

namespace mahimahi {

class VerifierCache {
 public:
  explicit VerifierCache(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  // Has this digest's signature already been verified?
  bool contains(const Digest& digest) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.contains(digest);
  }

  // Locked lookup-and-count in one acquisition: returns true and counts a
  // hit when present, else counts a miss. The ingestion crypto stage's
  // single entry point into the cache (one lock per block, and the counter
  // always matches the lookup that actually happened).
  bool check_and_count(const Digest& digest) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.contains(digest)) {
      ++hits_;
      return true;
    }
    ++misses_;
    return false;
  }

  // Records a successful verification; evicts the oldest entry when full.
  void insert(const Digest& digest) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!index_.insert(digest).second) return;  // already cached
    order_.push_back(digest);
    if (order_.size() > capacity_) {
      index_.erase(order_.front());
      order_.pop_front();
    }
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_.size();
  }
  std::size_t capacity() const { return capacity_; }

  // Instrumentation for tests and benches.
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  void count_hit() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
  }
  void count_miss() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Digest> order_;
  std::unordered_set<Digest, DigestHasher> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mahimahi
