// Digest-keyed signature-verification cache.
//
// A block reaches a validator several times — broadcast by its author,
// relayed in fetch responses, replayed after reconnects — and ed25519
// verification is the most expensive per-block CPU cost (see
// bench_micro_crypto). Since the signature covers the digest and the digest
// is recomputed from the received bytes on deserialization, "this digest
// verified against this author's key once" is a stable fact: later copies
// with the same digest need no second verification.
//
// Bounded FIFO: the cache holds at most `capacity` digests and evicts the
// oldest. Single-threaded by design — each validator's event loop owns one
// cache (matching the one-loop-per-validator runtime architecture).
//
// Security note: only *successful* verifications are cached. A negative
// cache would let an attacker poison a digest before the honest author's
// block arrives; failures are rare (they cost the sender a dropped frame)
// and may stay slow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_set>

#include "crypto/digest.h"

namespace mahimahi {

class VerifierCache {
 public:
  explicit VerifierCache(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  // Has this digest's signature already been verified?
  bool contains(const Digest& digest) const { return index_.contains(digest); }

  // Records a successful verification; evicts the oldest entry when full.
  void insert(const Digest& digest) {
    if (capacity_ == 0) return;
    if (!index_.insert(digest).second) return;  // already cached
    order_.push_back(digest);
    if (order_.size() > capacity_) {
      index_.erase(order_.front());
      order_.pop_front();
    }
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Instrumentation for tests and benches.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void count_hit() { ++hits_; }
  void count_miss() { ++misses_; }

 private:
  std::size_t capacity_;
  std::deque<Digest> order_;
  std::unordered_set<Digest, DigestHasher> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mahimahi
