// Sharded transaction mempool with admission control and fair draining.
//
// Replaces the single-FIFO mempool that lived behind the validator core: that
// queue was touched only from the loop thread, so client submission
// serialized behind consensus I/O. Here the pool is N lock-striped shards —
// submission from any thread takes one shard mutex, never the loop thread's
// time — mirroring the Narwhal-style separation of transaction ingestion from
// the DAG layer that Mysticeti and Bullshark lean on.
//
// Sharding key: the CLIENT, not the batch. A batch's id carries the
// submitting client in its upper 32 bits (the simulator packs
// origin-validator and client index there; real deployments assign each
// client stream an id range), so one client's batches always land in one
// shard and per-client FIFO order survives sharding. Different clients spread
// across shards and contend on different mutexes.
//
// Admission control (the front door, applied per batch, first failure wins):
//   1. duplicate rejection — a digest set per shard of the batches currently
//      resident; the digest covers id + shape + payload but NOT the client
//      submit timestamp, so a client retrying the same batch dedups,
//   2. per-client byte quota — one client cannot squeeze the others out,
//   3. per-shard batch-count cap — bounds queue memory,
//   4. global byte cap — bounds pool memory across all shards.
// Every verdict is reported back to the caller (AdmitResult) so drivers can
// signal explicit backpressure to clients instead of silently dropping.
//
// Draining (the proposal path, loop thread) is round-robin across non-empty
// shards, one batch per visit, under per-drain batch/byte budgets; the cursor
// persists across drains so no shard is starved even when another always has
// traffic. Given a fixed shard state and cursor, the drain sequence is
// deterministic — block proposal stays reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/digest.h"
#include "types/transaction.h"

namespace mahimahi {

struct MempoolConfig {
  // Lock stripes. Clamped to >= 1; keep it a small power of two.
  std::size_t shards = 4;
  // Global byte cap across all shards (admission check 4).
  std::uint64_t max_pool_bytes = 512ull * 1024 * 1024;
  // Resident-byte quota per client key (admission check 2).
  std::uint64_t max_client_bytes = 128ull * 1024 * 1024;
  // Batch-count cap per shard (admission check 3).
  std::size_t max_shard_batches = 262'144;
};

// Admission verdicts, ordered by check sequence. Everything except kAccepted
// is explicit backpressure: the batch was NOT taken and the caller should
// tell the client to retry later (or, for kDuplicate, that it already got in).
enum class AdmitResult : std::uint8_t {
  kAccepted = 0,
  kDuplicate,     // identical batch already resident in the pool
  kClientQuota,   // this client's resident bytes would exceed the quota
  kShardFull,     // the client's shard is at its batch-count cap
  kPoolFull,      // the global byte cap would be exceeded
};

const char* to_string(AdmitResult result);
inline bool admitted(AdmitResult result) { return result == AdmitResult::kAccepted; }

// Cumulative admission counters (monotone; read with relaxed ordering).
struct MempoolStats {
  std::uint64_t accepted = 0;
  std::uint64_t duplicate = 0;
  std::uint64_t client_quota = 0;
  std::uint64_t shard_full = 0;
  std::uint64_t pool_full = 0;

  std::uint64_t rejected() const {
    return duplicate + client_quota + shard_full + pool_full;
  }
};

class ShardedMempool {
 public:
  // Batch ids carry the client identity in their upper bits; the low 32 bits
  // are the client's own sequence number.
  static constexpr std::uint32_t kClientKeyShift = 32;

  static std::uint64_t client_key(const TxBatch& batch) {
    return batch.id >> kClientKeyShift;
  }

  // Content digest used for duplicate rejection. Deliberately excludes
  // `submitted_at`: a client retry re-stamps the batch but is still the same
  // submission.
  static Digest batch_digest(const TxBatch& batch);

  explicit ShardedMempool(MempoolConfig config = {});

  ShardedMempool(const ShardedMempool&) = delete;
  ShardedMempool& operator=(const ShardedMempool&) = delete;

  // Shard a client key maps to. Stable for the lifetime of the pool.
  std::size_t shard_for(std::uint64_t client_key) const;

  // Thread-safe admission. On kAccepted the batch is owned by the pool;
  // every other verdict leaves the pool unchanged.
  AdmitResult submit(TxBatch batch);

  // Convenience: admit a burst, returning one verdict per batch (in order).
  std::vector<AdmitResult> submit_all(std::vector<TxBatch> batches);

  // Drains up to max_batches / max_bytes worth of batches, round-robin
  // across non-empty shards (one batch per shard per pass), resuming at the
  // cursor left by the previous drain. Per-client FIFO order is preserved
  // (a client lives in exactly one shard).
  //
  // Carry-over semantics (kept from the FIFO mempool): the FIRST batch of a
  // drain is taken even when it alone exceeds max_bytes — a batch larger
  // than the block byte budget must still be proposable, or it would wedge
  // its shard forever. Every subsequent batch respects the remaining budget;
  // the first one that would overflow it ends the drain.
  //
  // Thread-safe, but intended to be called from the proposal path only.
  std::vector<TxBatch> drain(std::size_t max_batches, std::uint64_t max_bytes);

  bool empty() const { return size() == 0; }
  std::size_t size() const { return total_batches_.load(std::memory_order_relaxed); }
  std::uint64_t bytes() const { return total_bytes_.load(std::memory_order_relaxed); }
  std::size_t shard_count() const { return shards_.size(); }
  // Batches resident in one shard (for tests and load introspection).
  std::size_t shard_size(std::size_t shard) const;

  const MempoolConfig& config() const { return config_; }
  MempoolStats stats() const;

 private:
  // A queued batch plus its admission digest, kept so the drain path can
  // maintain the resident set without re-hashing on the loop thread.
  struct Entry {
    TxBatch batch;
    Digest digest;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::deque<Entry> queue;
    // Digests of the batches currently in `queue` (duplicate rejection).
    std::unordered_set<Digest, DigestHasher> resident;
    // Resident bytes per client key (quota enforcement). Entries are erased
    // when they reach zero so the map tracks only active clients.
    std::unordered_map<std::uint64_t, std::uint64_t> client_bytes;
  };

  MempoolConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;  // unique_ptr: mutex is immovable

  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::size_t> total_batches_{0};

  // Serializes drains and guards the fairness cursor. Submissions never take
  // this mutex.
  std::mutex drain_mutex_;
  std::size_t cursor_ = 0;  // guarded by drain_mutex_

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> duplicate_{0};
  std::atomic<std::uint64_t> client_quota_{0};
  std::atomic<std::uint64_t> shard_full_{0};
  std::atomic<std::uint64_t> pool_full_{0};
};

}  // namespace mahimahi
