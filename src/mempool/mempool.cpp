#include "mempool/mempool.h"

#include "crypto/blake2b.h"

namespace mahimahi {

const char* to_string(AdmitResult result) {
  switch (result) {
    case AdmitResult::kAccepted: return "accepted";
    case AdmitResult::kDuplicate: return "duplicate";
    case AdmitResult::kClientQuota: return "client-quota";
    case AdmitResult::kShardFull: return "shard-full";
    case AdmitResult::kPoolFull: return "pool-full";
  }
  return "?";
}

Digest ShardedMempool::batch_digest(const TxBatch& batch) {
  crypto::Blake2b hasher(32);
  std::uint8_t header[16];
  for (int i = 0; i < 8; ++i) {
    header[i] = static_cast<std::uint8_t>(batch.id >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    header[8 + i] = static_cast<std::uint8_t>(batch.count >> (8 * i));
    header[12 + i] = static_cast<std::uint8_t>(batch.tx_bytes >> (8 * i));
  }
  hasher.update({header, sizeof(header)});
  hasher.update({batch.payload.data(), batch.payload.size()});
  Digest digest;
  hasher.finish(digest.bytes.data());
  return digest;
}

ShardedMempool::ShardedMempool(MempoolConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t ShardedMempool::shard_for(std::uint64_t client_key) const {
  // Fibonacci hashing: client keys are often small consecutive integers
  // (validator-id × client-index packs), which modulo alone would map to
  // consecutive shards but a committee-aligned stride would alias.
  return static_cast<std::size_t>((client_key * 0x9e3779b97f4a7c15ull) >> 32) %
         shards_.size();
}

AdmitResult ShardedMempool::submit(TxBatch batch) {
  const std::uint64_t batch_bytes = batch.wire_bytes();
  const std::uint64_t client = client_key(batch);
  const Digest digest = batch_digest(batch);
  Shard& shard = *shards_[shard_for(client)];

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.resident.contains(digest)) {
      duplicate_.fetch_add(1, std::memory_order_relaxed);
      return AdmitResult::kDuplicate;
    }
    const std::uint64_t client_resident = [&] {
      const auto it = shard.client_bytes.find(client);
      return it == shard.client_bytes.end() ? 0ull : it->second;
    }();
    if (client_resident + batch_bytes > config_.max_client_bytes) {
      client_quota_.fetch_add(1, std::memory_order_relaxed);
      return AdmitResult::kClientQuota;
    }
    if (shard.queue.size() >= config_.max_shard_batches) {
      shard_full_.fetch_add(1, std::memory_order_relaxed);
      return AdmitResult::kShardFull;
    }
    // Global cap: reserve optimistically, roll back on overflow. The
    // reservation happens under the shard lock only for accounting clarity;
    // the atomic itself is what makes the cap pool-wide.
    const std::uint64_t prior = total_bytes_.fetch_add(batch_bytes,
                                                       std::memory_order_relaxed);
    if (prior + batch_bytes > config_.max_pool_bytes) {
      total_bytes_.fetch_sub(batch_bytes, std::memory_order_relaxed);
      pool_full_.fetch_add(1, std::memory_order_relaxed);
      return AdmitResult::kPoolFull;
    }

    shard.resident.insert(digest);
    shard.client_bytes[client] = client_resident + batch_bytes;
    shard.queue.push_back(Entry{std::move(batch), digest});
    // Inside the critical section: a drain popping this batch must never
    // see its decrement land before our increment (size() would wrap).
    total_batches_.fetch_add(1, std::memory_order_relaxed);
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return AdmitResult::kAccepted;
}

std::vector<AdmitResult> ShardedMempool::submit_all(std::vector<TxBatch> batches) {
  std::vector<AdmitResult> results;
  results.reserve(batches.size());
  for (auto& batch : batches) results.push_back(submit(std::move(batch)));
  return results;
}

std::vector<TxBatch> ShardedMempool::drain(std::size_t max_batches,
                                           std::uint64_t max_bytes) {
  std::lock_guard<std::mutex> drain_lock(drain_mutex_);
  std::vector<TxBatch> out;
  std::uint64_t taken_bytes = 0;
  // One batch per non-empty shard per pass; a full lap of empty shards (or a
  // budget hit) ends the drain. The cursor is left at the first shard NOT
  // drained from, so it gets first service next time — no shard starves
  // behind a perpetually busy neighbour.
  std::size_t shard_index = cursor_ % shards_.size();
  std::size_t empty_streak = 0;
  while (out.size() < max_batches && empty_streak < shards_.size()) {
    Shard& shard = *shards_[shard_index];
    bool took = false;
    bool budget_hit = false;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (!shard.queue.empty()) {
        const std::uint64_t batch_bytes = shard.queue.front().batch.wire_bytes();
        // Carry-over: only the drain's first batch may exceed max_bytes
        // (see header). Anything later that would overflow ends the drain.
        if (!out.empty() && taken_bytes + batch_bytes > max_bytes) {
          budget_hit = true;
        } else {
          Entry entry = std::move(shard.queue.front());
          shard.queue.pop_front();
          shard.resident.erase(entry.digest);
          TxBatch batch = std::move(entry.batch);
          const std::uint64_t client = client_key(batch);
          const auto it = shard.client_bytes.find(client);
          if (it != shard.client_bytes.end()) {
            it->second -= batch_bytes;
            if (it->second == 0) shard.client_bytes.erase(it);
          }
          taken_bytes += batch_bytes;
          out.push_back(std::move(batch));
          total_bytes_.fetch_sub(batch_bytes, std::memory_order_relaxed);
          total_batches_.fetch_sub(1, std::memory_order_relaxed);
          took = true;
        }
      }
    }
    if (budget_hit) break;
    if (took) {
      empty_streak = 0;
    } else {
      ++empty_streak;
    }
    shard_index = (shard_index + 1) % shards_.size();
  }
  cursor_ = shard_index;
  return out;
}

std::size_t ShardedMempool::shard_size(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->queue.size();
}

MempoolStats ShardedMempool::stats() const {
  MempoolStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.duplicate = duplicate_.load(std::memory_order_relaxed);
  stats.client_quota = client_quota_.load(std::memory_order_relaxed);
  stats.shard_full = shard_full_.load(std::memory_order_relaxed);
  stats.pool_full = pool_full_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mahimahi
