// Framed, non-blocking TCP transport over the event loop.
//
// Wire format per frame: [u32 length][payload]; the payload's first byte is
// a message type (see node_runtime.h). Connections buffer partial reads and
// writes; oversized frames kill the connection (peer protocol violation).
//
// A connection moves its bytes through the loop's IoBackend. On the classic
// epoll backend it registers its fd and makes its own recv/sendmsg syscalls
// on readiness; on the io_uring backend it registers with the backend
// instead, which arms a multishot recv and drains the write queue via send
// SQEs — the connection then only parses ingress bytes handed to it and
// exposes its queue through the gather/retire API below. Both paths emit
// byte-identical wire frames.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "net/event_loop.h"

struct iovec;  // <sys/uio.h>

namespace mahimahi::net {

// An immutable, refcounted outbound frame payload. Encoded once (possibly on
// a worker thread), then shared by every connection sending it: a broadcast
// to n-1 peers queues n-1 views of one buffer instead of n-1 copies.
using SharedFrame = std::shared_ptr<const Bytes>;

inline SharedFrame make_shared_frame(Bytes payload) {
  return std::make_shared<const Bytes>(std::move(payload));
}

// An established connection (either accepted or dialed).
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  static constexpr std::size_t kMaxFrameBytes = 64 * 1024 * 1024;

  using FrameHandler = std::function<void(BytesView frame)>;
  using CloseHandler = std::function<void()>;
  using RawHandler = std::function<void(BytesView bytes)>;

  // One queued outbound frame: the 4-byte length prefix plus a refcounted,
  // immutable payload. `sent` counts bytes of (header + payload) already on
  // the wire, so a partial send resumes mid-frame. Public because the uring
  // backend adopts a closing connection's queue while a send completion is
  // still in flight (the SQE's iovecs point into these elements).
  // header_len is 4 for framed writes and 0 for raw-mode writes (send_raw);
  // the gather/retire paths read it instead of header.size(), which is how
  // both backends emit unframed bytes without any uring-side changes.
  struct PendingWrite {
    std::array<std::uint8_t, 4> header;
    std::uint8_t header_len = 4;
    SharedFrame payload;
    std::size_t sent = 0;
  };

  // Takes ownership of the (already non-blocking) socket fd.
  TcpConnection(EventLoop& loop, int fd);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Registers with the loop/backend; handlers fire on the loop thread.
  void start(FrameHandler on_frame, CloseHandler on_close);

  // Raw (unframed) mode: ingress bytes are delivered to on_bytes exactly as
  // received — no [u32 length] framing, no frame-size cap — and egress goes
  // through send_raw(). The admin/metrics HTTP endpoint runs on this; the
  // consensus plane never does. Choose start() or start_raw() once, before
  // any bytes move; there is no switching a live connection.
  void start_raw(RawHandler on_bytes, CloseHandler on_close);

  // Queues a frame (length prefix added). Loop thread only. The BytesView
  // overload copies the payload once; the SharedFrame overload only bumps a
  // refcount — use it when one encoded frame fans out to several peers.
  void send_frame(BytesView payload);
  void send_frame(SharedFrame payload);

  // Queues bytes with no length prefix (raw mode). Loop thread only.
  void send_raw(SharedFrame payload);

  void close();
  bool closed() const { return fd_ < 0; }
  int fd() const { return fd_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  // --- completion-backend API (loop thread; used by UringBackend) ------------

  // Fills `iov` (capacity `max`) with the queue's unsent header/payload
  // slices, exactly as the epoll gather path would. Returns the count.
  std::size_t gather_unsent(iovec* iov, std::size_t max) const;
  // Accounts `count` wire bytes as sent and pops fully-sent frames.
  void retire_sent(std::size_t count);
  bool has_pending_writes() const { return !write_queue_.empty(); }
  // Appends received bytes and parses/dispatches complete frames. May close
  // the connection (oversized frame, or the handler closes it).
  void ingress_bytes(const std::uint8_t* data, std::size_t size);
  // Hands the queue to a zombie holder so in-flight SQE iovecs stay valid
  // after the connection goes away (deque move preserves element addresses).
  std::deque<PendingWrite> release_write_queue() { return std::move(write_queue_); }

 private:
  void handle_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void update_interest();
  // Dispatches complete frames in data[offset, size); advances `offset` past
  // them. Returns false when the connection closed mid-parse.
  bool parse_frames(const std::uint8_t* data, std::size_t size, std::size_t& offset);
  // Runs parse_frames over read_buffer_/read_consumed_ and compacts.
  void parse_buffered();

  EventLoop& loop_;
  IoBackend& backend_;
  // Cached backend mode: completion-driven connections never touch epoll.
  const bool completion_driven_;
  int fd_;
  bool registered_ = false;
  bool raw_ = false;
  FrameHandler on_frame_;
  RawHandler on_raw_;
  CloseHandler on_close_;
  // Persistent ingress state: recv lands in the reusable scratch chunk (no
  // 64 KiB stack buffer, allocated once per connection), partial frames
  // accumulate in read_buffer_, and read_consumed_ tracks the parsed prefix
  // so consumption is O(1) instead of an erase-memmove per readable event.
  Bytes ingress_scratch_;
  Bytes read_buffer_;
  std::size_t read_consumed_ = 0;
  std::deque<PendingWrite> write_queue_;
  bool want_write_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

using TcpConnectionPtr = std::shared_ptr<TcpConnection>;

// Listening socket; accepts connections and hands them to the callback.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(TcpConnectionPtr connection)>;

  TcpListener(EventLoop& loop, std::uint16_t port, AcceptHandler on_accept);
  ~TcpListener();

  std::uint16_t port() const { return port_; }

 private:
  void handle_accept();

  EventLoop& loop_;
  int fd_ = -1;
  std::uint16_t port_;
  AcceptHandler on_accept_;
};

// Asynchronous dial to 127.0.0.1-style host:port; invokes the callback with
// nullptr on failure (caller schedules the retry).
void tcp_connect(EventLoop& loop, const std::string& host, std::uint16_t port,
                 std::function<void(TcpConnectionPtr)> on_done);

}  // namespace mahimahi::net
