// Framed, non-blocking TCP transport over the epoll loop.
//
// Wire format per frame: [u32 length][payload]; the payload's first byte is
// a message type (see node_runtime.h). Connections buffer partial reads and
// writes; oversized frames kill the connection (peer protocol violation).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "net/event_loop.h"

namespace mahimahi::net {

// An immutable, refcounted outbound frame payload. Encoded once (possibly on
// a worker thread), then shared by every connection sending it: a broadcast
// to n-1 peers queues n-1 views of one buffer instead of n-1 copies.
using SharedFrame = std::shared_ptr<const Bytes>;

inline SharedFrame make_shared_frame(Bytes payload) {
  return std::make_shared<const Bytes>(std::move(payload));
}

// An established connection (either accepted or dialed).
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  static constexpr std::size_t kMaxFrameBytes = 64 * 1024 * 1024;

  using FrameHandler = std::function<void(BytesView frame)>;
  using CloseHandler = std::function<void()>;

  // Takes ownership of the (already non-blocking) socket fd.
  TcpConnection(EventLoop& loop, int fd);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Registers with the loop; handlers fire on the loop thread.
  void start(FrameHandler on_frame, CloseHandler on_close);

  // Queues a frame (length prefix added). Loop thread only. The BytesView
  // overload copies the payload once; the SharedFrame overload only bumps a
  // refcount — use it when one encoded frame fans out to several peers.
  void send_frame(BytesView payload);
  void send_frame(SharedFrame payload);

  void close();
  bool closed() const { return fd_ < 0; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  // One queued outbound frame: the 4-byte length prefix plus a refcounted,
  // immutable payload. `sent` counts bytes of (header + payload) already on
  // the wire, so a partial send resumes mid-frame.
  struct PendingWrite {
    std::array<std::uint8_t, 4> header;
    SharedFrame payload;
    std::size_t sent = 0;
  };

  void handle_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void update_interest();

  EventLoop& loop_;
  int fd_;
  bool registered_ = false;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  Bytes read_buffer_;
  std::deque<PendingWrite> write_queue_;
  bool want_write_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

using TcpConnectionPtr = std::shared_ptr<TcpConnection>;

// Listening socket; accepts connections and hands them to the callback.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(TcpConnectionPtr connection)>;

  TcpListener(EventLoop& loop, std::uint16_t port, AcceptHandler on_accept);
  ~TcpListener();

  std::uint16_t port() const { return port_; }

 private:
  void handle_accept();

  EventLoop& loop_;
  int fd_ = -1;
  std::uint16_t port_;
  AcceptHandler on_accept_;
};

// Asynchronous dial to 127.0.0.1-style host:port; invokes the callback with
// nullptr on failure (caller schedules the retry).
void tcp_connect(EventLoop& loop, const std::string& host, std::uint16_t port,
                 std::function<void(TcpConnectionPtr)> on_done);

}  // namespace mahimahi::net
