// Framed, non-blocking TCP transport over the epoll loop.
//
// Wire format per frame: [u32 length][payload]; the payload's first byte is
// a message type (see node_runtime.h). Connections buffer partial reads and
// writes; oversized frames kill the connection (peer protocol violation).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "net/event_loop.h"

namespace mahimahi::net {

// An established connection (either accepted or dialed).
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  static constexpr std::size_t kMaxFrameBytes = 64 * 1024 * 1024;

  using FrameHandler = std::function<void(BytesView frame)>;
  using CloseHandler = std::function<void()>;

  // Takes ownership of the (already non-blocking) socket fd.
  TcpConnection(EventLoop& loop, int fd);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Registers with the loop; handlers fire on the loop thread.
  void start(FrameHandler on_frame, CloseHandler on_close);

  // Queues a frame (length prefix added). Loop thread only.
  void send_frame(BytesView payload);

  void close();
  bool closed() const { return fd_ < 0; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  void handle_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void update_interest();

  EventLoop& loop_;
  int fd_;
  bool registered_ = false;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  Bytes read_buffer_;
  Bytes write_buffer_;
  std::size_t write_offset_ = 0;
  bool want_write_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

using TcpConnectionPtr = std::shared_ptr<TcpConnection>;

// Listening socket; accepts connections and hands them to the callback.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(TcpConnectionPtr connection)>;

  TcpListener(EventLoop& loop, std::uint16_t port, AcceptHandler on_accept);
  ~TcpListener();

  std::uint16_t port() const { return port_; }

 private:
  void handle_accept();

  EventLoop& loop_;
  int fd_ = -1;
  std::uint16_t port_;
  AcceptHandler on_accept_;
};

// Asynchronous dial to 127.0.0.1-style host:port; invokes the callback with
// nullptr on failure (caller schedules the retry).
void tcp_connect(EventLoop& loop, const std::string& host, std::uint16_t port,
                 std::function<void(TcpConnectionPtr)> on_done);

}  // namespace mahimahi::net
