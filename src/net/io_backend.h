// Pluggable I/O backend for the event loop's socket data plane.
//
// The loop itself stays an epoll reactor either way — timers, cross-thread
// posts, listener accepts, and async connects always ride epoll readiness.
// What the backend decides is how CONNECTION BYTES move:
//
//   EpollBackend  readiness-driven (the classic path, always available).
//                 TcpConnection registers its fd with epoll and pays one
//                 recv()/sendmsg() syscall per operation.
//   UringBackend  completion-driven (net/uring_backend.h, compiled behind
//                 MAHIMAHI_IOURING). Connections get NO epoll registration:
//                 ingress is a multishot recv into a registered-buffer pool,
//                 egress is send SQEs, and everything queued during one loop
//                 iteration reaches the kernel through a single
//                 io_uring_enter at the tick boundary. The ring fd itself is
//                 the only thing epoll watches.
//
// Both backends move byte-identical wire frames (equivalence-tested); the
// difference is syscalls per operation, which both count into IoPlaneStats —
// the counter pair (submit_syscalls vs ops) behind the syscalls-per-
// committed-block metric in NodeRuntime and bench_io_plane.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits.h>
#include <memory>

struct iovec;  // <sys/uio.h>

namespace mahimahi::net {

class EventLoop;
class TcpConnection;

enum class IoBackendKind {
  kEpoll,  // readiness: one data-plane syscall per operation
  kUring,  // completion: one io_uring_enter per tick's worth of operations
  kAuto,   // kUring when compiled in and the kernel cooperates, else kEpoll
};

const char* to_string(IoBackendKind kind);

// True when the uring backend is compiled in AND the running kernel passes
// the runtime probe (common/uring.h). What kAuto resolves on.
bool uring_backend_available();

// Gather cap for one batched send: the epoll path's sendmsg iovec array and
// the uring path's per-send-SQE gather both size against it. Derived from
// IOV_MAX (1024 on Linux) instead of the old hardcoded 16 — a burst of small
// frames to one peer now collapses into one operation almost regardless of
// burst size — and clamped so a pathological libc value cannot explode
// stack/flight buffers.
inline constexpr std::size_t kMaxGatherIovecs = IOV_MAX < 1024 ? IOV_MAX : 1024;

// Data-plane syscall accounting: kernel entries actually made vs logical
// operations completed. The epoll backend pays one entry per operation by
// construction; the uring backend amortizes one entry over everything a tick
// submitted. epoll_wait itself is the loop's multiplexing cost — identical
// under both backends, counted by EventLoop, deliberately NOT in here.
struct IoPlaneStats {
  std::uint64_t submit_syscalls = 0;  // recv/sendmsg calls, or io_uring_enter calls
  std::uint64_t send_ops = 0;         // gathered sends completed
  std::uint64_t recv_ops = 0;         // reads that delivered bytes
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual IoBackendKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  // True when the data plane is completion-driven: connections skip epoll
  // registration and the conn_* hooks below drive their I/O.
  virtual bool completion_driven() const = 0;

  // Called once by the owning loop after its epoll set exists; a completion
  // backend registers its ring fd here.
  virtual void attach(EventLoop& loop) { (void)loop; }

  // Tick boundary: submit everything queued since the last call (at most a
  // handful of io_uring_enter calls, usually one). The loop calls this right
  // before blocking in epoll_wait, so no prepared operation ever sleeps. A
  // readiness backend queues nothing and this is a no-op.
  virtual void flush() {}

  // --- completion-driven connection hooks (no-ops on readiness backends) ---
  // Arm ingress for a started connection / cancel its in-flight operations
  // on close / kick egress submission when its write queue became non-empty.
  virtual void conn_register(TcpConnection& conn) { (void)conn; }
  virtual void conn_unregister(TcpConnection& conn) { (void)conn; }
  virtual void conn_flush(TcpConnection& conn) { (void)conn; }

  // Counter bumps — loop thread; relaxed atomics so any thread may read.
  void note_submit_syscalls(std::uint64_t count = 1) {
    submit_syscalls_.fetch_add(count, std::memory_order_relaxed);
  }
  void note_send_op(std::uint64_t bytes) {
    send_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_recv_op(std::uint64_t bytes) {
    recv_ops_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
  }

  IoPlaneStats stats() const {
    IoPlaneStats out;
    out.submit_syscalls = submit_syscalls_.load(std::memory_order_relaxed);
    out.send_ops = send_ops_.load(std::memory_order_relaxed);
    out.recv_ops = recv_ops_.load(std::memory_order_relaxed);
    out.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  std::atomic<std::uint64_t> submit_syscalls_{0};
  std::atomic<std::uint64_t> send_ops_{0};
  std::atomic<std::uint64_t> recv_ops_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

// The classic readiness path: pure counters — TcpConnection keeps making its
// own recv/sendmsg syscalls and reports them here.
class EpollBackend final : public IoBackend {
 public:
  IoBackendKind kind() const override { return IoBackendKind::kEpoll; }
  bool completion_driven() const override { return false; }
};

// Resolves kAuto and never fails: kUring falls back to epoll (with a warn
// log) when the backend is compiled out or the kernel refuses the ring.
std::unique_ptr<IoBackend> make_io_backend(IoBackendKind kind);

}  // namespace mahimahi::net
