#include "net/admin.h"

#include <cstdio>
#include <vector>

#include "common/log.h"

namespace mahimahi::net {

namespace {

// A scrape request is one line plus a handful of headers; anything larger is
// not a scraper.
constexpr std::size_t kMaxRequestBytes = 8 * 1024;

std::string http_response(int status, const char* reason, const std::string& content_type,
                          const std::string& body) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                status, reason, content_type.c_str(), body.size());
  return std::string(head) + body;
}

}  // namespace

AdminServer::AdminServer(EventLoop& loop, std::uint16_t port, Renderer renderer)
    : loop_(loop), renderer_(std::move(renderer)) {
  listener_ = std::make_unique<TcpListener>(
      loop_, port, [this](TcpConnectionPtr connection) { on_connection(std::move(connection)); });
}

AdminServer::~AdminServer() {
  // Close every live scrape connection; close() runs the close handler,
  // which erases from connections_, so iterate over a snapshot.
  std::vector<TcpConnectionPtr> open;
  open.reserve(connections_.size());
  for (auto& [key, pending] : connections_) open.push_back(pending.connection);
  for (auto& connection : open) connection->close();
}

void AdminServer::on_connection(TcpConnectionPtr connection) {
  TcpConnection* key = connection.get();
  Pending& pending = connections_[key];
  pending.connection = connection;
  connection->start_raw(
      [this, key](BytesView bytes) { on_bytes(key, bytes); },
      [this, key]() { connections_.erase(key); });
}

void AdminServer::on_bytes(TcpConnection* key, BytesView bytes) {
  auto it = connections_.find(key);
  if (it == connections_.end()) return;
  Pending& pending = it->second;
  if (pending.responded) return;  // trailing bytes after the request: ignore
  pending.request.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  if (pending.request.size() > kMaxRequestBytes) {
    // Tell the client why instead of dropping the connection mid-request;
    // Connection: close still ends the exchange.
    const std::string response = http_response(
        413, "Content Too Large", "text/plain", "request exceeds 8 KiB\n");
    pending.responded = true;
    pending.connection->send_raw(
        make_shared_frame(Bytes(response.begin(), response.end())));
    return;
  }
  // A request is complete at the end of its header block.
  if (pending.request.find("\r\n\r\n") == std::string::npos &&
      pending.request.find("\n\n") == std::string::npos)
    return;
  const std::size_t line_end = pending.request.find_first_of("\r\n");
  const std::string response = respond(pending.request.substr(0, line_end));
  pending.responded = true;
  // Respond, then wait for the peer's close (Connection: close tells it to).
  // The peer's EOF tears the connection down through the normal close path.
  pending.connection->send_raw(make_shared_frame(Bytes(response.begin(), response.end())));
}

std::string AdminServer::respond(const std::string& request_line) {
  // "GET <path> HTTP/1.x" — method and path are all we look at.
  if (request_line.rfind("GET ", 0) != 0)
    return http_response(405, "Method Not Allowed", "text/plain", "only GET is served\n");
  const std::size_t path_start = 4;
  const std::size_t path_end = request_line.find(' ', path_start);
  const std::string path = request_line.substr(
      path_start, path_end == std::string::npos ? std::string::npos : path_end - path_start);
  std::string content_type = "text/plain; charset=utf-8";
  std::optional<std::string> body = renderer_(path, content_type);
  if (!body.has_value())
    return http_response(404, "Not Found", "text/plain", "unknown path: " + path + "\n");
  return http_response(200, "OK", content_type, *body);
}

}  // namespace mahimahi::net
