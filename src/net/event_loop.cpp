#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/log.h"

namespace mahimahi::net {

EventLoop::EventLoop(IoBackendKind backend) : backend_(make_io_backend(backend)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1 failed");
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) throw std::runtime_error("eventfd failed");
  add_fd(wakeup_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t value;
    while (::read(wakeup_fd_, &value, sizeof(value)) > 0) {
    }
  });
  // After the epoll set exists: a completion backend registers its ring fd.
  backend_->attach(*this);
}

EventLoop::~EventLoop() {
  {
    // Destroy registered callbacks while the loop is still alive and the
    // member map is already empty: a closure may hold the last shared_ptr
    // to a TcpConnection whose destructor re-enters remove_fd(). With the
    // swap, that re-entrant call sees an empty map and is a no-op instead
    // of mutating a hashtable that is mid-teardown.
    std::unordered_map<int, FdCallback> doomed;
    doomed.swap(fd_callbacks_);
  }
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback callback) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    throw std::runtime_error("epoll_ctl ADD failed");
  }
  fd_callbacks_[fd] = std::move(callback);
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    MM_LOG(kWarn) << "epoll_ctl MOD failed for fd " << fd;
  }
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  const auto it = fd_callbacks_.find(fd);
  if (it == fd_callbacks_.end()) return;
  // Defer the closure's destruction until after the erase: it may hold the
  // last shared_ptr to a TcpConnection whose destructor calls remove_fd()
  // again (which must then find a consistent map and no entry for `fd`).
  FdCallback doomed = std::move(it->second);
  fd_callbacks_.erase(it);
}

std::uint64_t EventLoop::schedule(TimeMicros delay, Task task) {
  const std::uint64_t id = next_timer_id_++;
  timers_.push(Timer{steady_now_micros() + delay, id});
  timer_tasks_.emplace(id, std::move(task));
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) { timer_tasks_.erase(id); }

void EventLoop::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto written = ::write(wakeup_fd_, &one, sizeof(one));
}

bool EventLoop::in_loop_thread() const {
  return loop_thread_id_.load(std::memory_order_relaxed) == std::this_thread::get_id();
}

void EventLoop::drain_posted() {
  std::vector<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::fire_due_timers() {
  const TimeMicros now = steady_now_micros();
  while (!timers_.empty() && timers_.top().due <= now) {
    const std::uint64_t id = timers_.top().id;
    timers_.pop();
    const auto it = timer_tasks_.find(id);
    if (it == timer_tasks_.end()) continue;  // cancelled
    Task task = std::move(it->second);
    timer_tasks_.erase(it);
    task();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return 100;
  const TimeMicros delta = timers_.top().due - steady_now_micros();
  if (delta <= 0) return 0;
  return static_cast<int>(std::min<TimeMicros>(delta / 1000 + 1, 100));
}

void EventLoop::run() {
  running_.store(true);
  stop_requested_.store(false);
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  epoll_event events[64];
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    // Tick boundary: everything the last iteration prepared (sends, recv
    // re-arms, cancels) goes to the kernel in one batched submission before
    // the loop blocks. No-op on the readiness backend.
    backend_->flush();
    const int count = ::epoll_wait(epoll_fd_, events, 64, next_timeout_ms());
    wait_syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (count < 0 && errno != EINTR) {
      MM_LOG(kError) << "epoll_wait failed: " << std::strerror(errno);
      break;
    }
    const TimeMicros busy_start = steady_now_micros();
    for (int i = 0; i < count; ++i) {
      const int fd = events[i].data.fd;
      const auto it = fd_callbacks_.find(fd);
      if (it == fd_callbacks_.end()) continue;
      // Copy: the callback may remove (and erase) itself.
      FdCallback callback = it->second;
      callback(events[i].events);
    }
    fire_due_timers();
    drain_posted();
    const TimeMicros busy_end = steady_now_micros();
    busy_micros_.fetch_add(busy_end - busy_start, std::memory_order_relaxed);
    if (tick_observer_) tick_observer_(busy_end - busy_start, busy_end);
  }
  loop_thread_id_.store(std::thread::id{}, std::memory_order_relaxed);
  running_.store(false);
}

void EventLoop::stop() {
  stop_requested_.store(true);
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto written = ::write(wakeup_fd_, &one, sizeof(one));
}

}  // namespace mahimahi::net
