// Completion-driven socket data plane over io_uring (common/uring.h).
//
// One ring per event loop, three operation kinds:
//   ingress  one multishot recv SQE per connection, armed at registration;
//            each arriving chunk completes into a registered-buffer-pool
//            slot, gets parsed via TcpConnection::ingress_bytes, and the
//            buffer is recycled to the kernel. The SQE stays armed across
//            completions (re-armed only on pool exhaustion or errors).
//   egress   at most one gathered send SQE per connection in flight; its
//            iovecs view the connection's write queue (same gather as the
//            epoll path, capped by kMaxGatherIovecs). Completion retires
//            sent bytes and re-arms while the queue is non-empty.
//   cancel   async-cancel SQEs issued when a connection closes with
//            operations still in flight.
//
// Nothing here makes a syscall per operation: prepared SQEs sit in the
// submission queue until EventLoop::run() calls flush() at the tick
// boundary — one io_uring_enter then covers every send, re-arm, and cancel
// the iteration produced. The ring fd is registered with the loop's epoll
// set, so completions wake the loop exactly like socket readiness used to.
//
// Lifetime subtlety: an in-flight send SQE points into the connection's
// PendingWrite elements. A connection closing with a send outstanding
// therefore hands its write queue to a "zombie" state the backend keeps
// until that completion lands (deque move preserves element addresses).
#pragma once

#include "net/io_backend.h"

#if MAHIMAHI_IOURING

#include <sys/socket.h>
#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/uring.h"
#include "net/tcp.h"

namespace mahimahi::net {

class UringBackend final : public IoBackend {
 public:
  struct Options {
    unsigned sq_entries = 256;     // CQ is 4x deeper (see MiniUring)
    unsigned pool_buffers = 64;    // provided-buffer pool for multishot recv
    unsigned buffer_bytes = 16 * 1024;
  };

  // Throws std::runtime_error when the ring or buffer pool cannot be set up;
  // make_io_backend catches and falls back to epoll.
  UringBackend();
  explicit UringBackend(Options options);
  ~UringBackend() override;

  IoBackendKind kind() const override { return IoBackendKind::kUring; }
  bool completion_driven() const override { return true; }
  void attach(EventLoop& loop) override;
  void flush() override;
  void conn_register(TcpConnection& conn) override;
  void conn_unregister(TcpConnection& conn) override;
  void conn_flush(TcpConnection& conn) override;

 private:
  enum class OpType { kRecv, kSend, kCancel };

  struct ConnState {
    // Strong: registration owns the connection, exactly like the epoll
    // path's fd callback capturing `self`. Released at conn_unregister
    // (close() holds its own guard ref across the teardown).
    TcpConnectionPtr conn;
    int fd = -1;
    std::uint64_t recv_op = 0;  // user_data of the armed multishot recv, 0 = none
    std::uint64_t send_op = 0;  // user_data of the in-flight send, 0 = none
    // Send SQE views: must stay alive until the completion is reaped.
    std::vector<iovec> iov;
    msghdr msg{};
    // Set when the connection unregistered with a send still in flight; the
    // adopted queue keeps the iovec targets alive until the CQE lands.
    bool zombie = false;
    std::deque<TcpConnection::PendingWrite> orphaned;
  };

  void reap_and_dispatch();
  void dispatch(const MiniUring::Cqe& cqe);
  void arm_recv(ConnState& state);
  void arm_send(ConnState& state, TcpConnection& conn);
  // Preps via `prep`, submitting once to drain a full SQ if needed.
  template <typename Prep>
  bool prep_or_submit(Prep&& prep);
  void submit_prepared();
  void destroy_zombie(ConnState* state);

  MiniUring ring_;
  // Live states keyed by connection identity; zombies keep closing states
  // alive until their in-flight send completes.
  std::unordered_map<TcpConnection*, std::unique_ptr<ConnState>> conns_;
  std::vector<std::unique_ptr<ConnState>> zombies_;
  // In-flight operations by user_data. Cancel entries carry no state.
  std::unordered_map<std::uint64_t, std::pair<ConnState*, OpType>> ops_;
  std::uint64_t next_op_id_ = 1;  // 0 reserved: "don't dispatch"
};

}  // namespace mahimahi::net

#endif  // MAHIMAHI_IOURING
