#include "net/uring_backend.h"

#if MAHIMAHI_IOURING

#include <sys/epoll.h>

#include <cerrno>
#include <stdexcept>

#include "common/log.h"
#include "net/event_loop.h"

namespace mahimahi::net {

namespace {
// user_data for operations whose completions carry no state to dispatch
// (async-cancels). Real operation ids start at 1 and never collide.
constexpr std::uint64_t kIgnoredOp = 0;
}  // namespace

UringBackend::UringBackend() : UringBackend(Options()) {}

UringBackend::UringBackend(Options options) : ring_(options.sq_entries) {
  if (!ring_.register_buffer_pool(options.pool_buffers, options.buffer_bytes)) {
    throw std::runtime_error("UringBackend: provided-buffer pool registration failed");
  }
}

UringBackend::~UringBackend() {
  // Drop the owned connections outside the maps: each destructor's close()
  // re-enters conn_unregister, which must find a valid (already-empty) map.
  std::unordered_map<TcpConnection*, std::unique_ptr<ConnState>> conns;
  conns.swap(conns_);
  ops_.clear();
  zombies_.clear();
}

void UringBackend::attach(EventLoop& loop) {
  // Completions wake the loop through the ring fd, exactly like socket
  // readiness used to. Level-triggered: stays readable while CQEs pend.
  loop.add_fd(ring_.ring_fd(), EPOLLIN, [this](std::uint32_t) { reap_and_dispatch(); });
}

void UringBackend::submit_prepared() {
  if (ring_.pending_sqes() == 0) return;
  const std::uint64_t before = ring_.enter_syscalls();
  const int rc = ring_.submit();
  note_submit_syscalls(ring_.enter_syscalls() - before);
  if (rc < 0) MM_LOG(kWarn) << "io_uring submit failed: " << (-rc);
}

template <typename Prep>
bool UringBackend::prep_or_submit(Prep&& prep) {
  if (prep()) return true;
  submit_prepared();  // SQ full: push the batch out and retry once
  return prep();
}

void UringBackend::flush() {
  // Dispatching completions can prepare follow-up SQEs (recv re-arms, the
  // next send for a still-non-empty queue), so drain to quiescence — bounded
  // defensively; anything left rides the next tick.
  for (int round = 0; round < 8 && ring_.pending_sqes() > 0; ++round) {
    submit_prepared();
    reap_and_dispatch();
  }
}

void UringBackend::conn_register(TcpConnection& conn) {
  auto state = std::make_unique<ConnState>();
  state->conn = conn.shared_from_this();
  state->fd = conn.fd();
  ConnState* raw = state.get();
  conns_.emplace(&conn, std::move(state));
  arm_recv(*raw);
  if (conn.has_pending_writes()) arm_send(*raw, conn);
}

void UringBackend::conn_unregister(TcpConnection& conn) {
  const auto it = conns_.find(&conn);
  if (it == conns_.end()) return;
  std::unique_ptr<ConnState> state = std::move(it->second);
  conns_.erase(it);
  if (state->recv_op != 0) {
    prep_or_submit([&] { return ring_.prep_cancel(state->recv_op, kIgnoredOp); });
    ops_.erase(state->recv_op);
    state->recv_op = 0;
  }
  if (state->send_op != 0) {
    // The send SQE's iovecs point into the connection's write queue: adopt
    // the queue and keep the state as a zombie until the completion lands.
    prep_or_submit([&] { return ring_.prep_cancel(state->send_op, kIgnoredOp); });
    state->zombie = true;
    state->orphaned = conn.release_write_queue();
    state->conn.reset();  // the connection is closing; only the bytes outlive it
    zombies_.push_back(std::move(state));
  }
}

void UringBackend::conn_flush(TcpConnection& conn) {
  const auto it = conns_.find(&conn);
  if (it == conns_.end()) return;
  ConnState& state = *it->second;
  if (state.send_op != 0) return;  // in flight; its completion re-arms
  arm_send(state, conn);
}

void UringBackend::arm_recv(ConnState& state) {
  const std::uint64_t op = next_op_id_++;
  if (!prep_or_submit([&] { return ring_.prep_recv_multishot(state.fd, 0, op); })) {
    MM_LOG(kWarn) << "io_uring SQ full; recv not armed on fd " << state.fd;
    return;
  }
  state.recv_op = op;
  ops_.emplace(op, std::make_pair(&state, OpType::kRecv));
}

void UringBackend::arm_send(ConnState& state, TcpConnection& conn) {
  state.iov.resize(kMaxGatherIovecs);
  const std::size_t count = conn.gather_unsent(state.iov.data(), state.iov.size());
  if (count == 0) return;
  state.msg = msghdr{};
  state.msg.msg_iov = state.iov.data();
  state.msg.msg_iovlen = count;
  const std::uint64_t op = next_op_id_++;
  if (!prep_or_submit([&] { return ring_.prep_sendmsg(state.fd, &state.msg, op); })) {
    MM_LOG(kWarn) << "io_uring SQ full; send deferred on fd " << state.fd;
    return;  // retried by the next conn_flush for this connection
  }
  state.send_op = op;
  ops_.emplace(op, std::make_pair(&state, OpType::kSend));
}

void UringBackend::destroy_zombie(ConnState* state) {
  for (auto it = zombies_.begin(); it != zombies_.end(); ++it) {
    if (it->get() == state) {
      zombies_.erase(it);
      return;
    }
  }
}

void UringBackend::reap_and_dispatch() {
  MiniUring::Cqe cqes[64];
  for (;;) {
    const std::size_t count = ring_.reap(cqes, 64);
    if (count == 0) return;
    for (std::size_t i = 0; i < count; ++i) dispatch(cqes[i]);
  }
}

void UringBackend::dispatch(const MiniUring::Cqe& cqe) {
  const bool has_buffer = MiniUring::cqe_has_buffer(cqe.flags);
  const std::uint16_t buffer_id = has_buffer ? MiniUring::cqe_buffer_id(cqe.flags) : 0;

  const auto it = ops_.find(cqe.user_data);
  if (it == ops_.end()) {
    // Cancels, and stragglers of already-unregistered connections. The pool
    // buffer goes back to the kernel regardless of who consumed it.
    if (has_buffer) ring_.recycle_buffer(buffer_id);
    return;
  }
  ConnState* state = it->second.first;
  const OpType type = it->second.second;

  if (type == OpType::kSend) {
    ops_.erase(it);
    state->send_op = 0;
    if (state->zombie) {
      destroy_zombie(state);  // drops the orphaned queue; frames are freed
      return;
    }
    const TcpConnectionPtr conn = state->conn;
    if (conn == nullptr || conn->closed()) return;
    if (cqe.res < 0) {
      if (cqe.res == -EAGAIN || cqe.res == -EINTR) {
        arm_send(*state, *conn);  // spurious; io_uring normally retries itself
        return;
      }
      conn->close();  // unregisters; no send in flight, so no zombie
      return;
    }
    if (cqe.res > 0) {
      note_send_op(static_cast<std::uint64_t>(cqe.res));
      conn->retire_sent(static_cast<std::size_t>(cqe.res));
    }
    if (conn->has_pending_writes()) arm_send(*state, *conn);
    return;
  }

  // type == OpType::kRecv
  const bool still_armed = MiniUring::cqe_has_more(cqe.flags);
  if (!still_armed) {
    // Erase before any reentrant call: `it` does not survive them.
    ops_.erase(it);
    state->recv_op = 0;
  }
  const TcpConnectionPtr conn = state->conn;
  if (cqe.res > 0) {
    note_recv_op(static_cast<std::uint64_t>(cqe.res));
    if (conn != nullptr && !conn->closed()) {
      // May reenter: the frame handler can close this connection (destroying
      // `state`) or queue sends. Only `conn` is safe to touch afterwards.
      conn->ingress_bytes(ring_.buffer(buffer_id), static_cast<std::size_t>(cqe.res));
    }
    if (has_buffer) ring_.recycle_buffer(buffer_id);
    if (!still_armed && conn != nullptr && !conn->closed()) {
      const auto live = conns_.find(conn.get());
      if (live != conns_.end()) arm_recv(*live->second);
    }
    return;
  }
  if (has_buffer) ring_.recycle_buffer(buffer_id);
  if (cqe.res == -ENOBUFS) {
    // Pool momentarily dry (it refills as this reap batch recycles); the
    // multishot terminated, so re-arm.
    if (conn != nullptr && !conn->closed()) {
      const auto live = conns_.find(conn.get());
      if (live != conns_.end()) arm_recv(*live->second);
    }
    return;
  }
  if (cqe.res == -ECANCELED) return;  // our own cancel on close
  // res == 0: orderly peer shutdown; other negatives: hard socket errors.
  if (conn != nullptr && !conn->closed()) conn->close();
}

}  // namespace mahimahi::net

#endif  // MAHIMAHI_IOURING
