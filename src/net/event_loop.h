// Minimal epoll-based event loop.
//
// Single-threaded reactor: file-descriptor callbacks, a timer heap, and a
// thread-safe task queue (eventfd wakeup) for cross-thread posts. Each
// NodeRuntime owns one loop running on its own thread — the C++ analogue of
// the paper's one-tokio-runtime-per-validator setup.
//
// The loop also owns the I/O backend (io_backend.h) that decides how
// connection bytes move. epoll_wait stays the multiplexing primitive either
// way; under the io_uring backend it watches the ring fd instead of the
// sockets, and the loop flushes the backend's submission queue once per
// iteration right before blocking — the tick boundary that batches every
// send/recv prepared this iteration into one kernel entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "net/io_backend.h"

namespace mahimahi::net {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;
  using Task = std::function<void()>;

  // `backend` defaults to the classic readiness path so raw loop users (sim,
  // tools, tests) keep seed behavior; NodeRuntime passes its configured kind
  // (kAuto resolves to io_uring when the kernel supports it).
  explicit EventLoop(IoBackendKind backend = IoBackendKind::kEpoll);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers `fd` for the given epoll events (EPOLLIN/EPOLLOUT/...).
  void add_fd(int fd, std::uint32_t events, FdCallback callback);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  // One-shot timer; returns an id usable with cancel_timer.
  std::uint64_t schedule(TimeMicros delay, Task task);
  void cancel_timer(std::uint64_t id);

  // Thread-safe: enqueue a task to run on the loop thread. Tasks always go
  // through the queue, even when posted from the loop thread itself: queue
  // order is delivery order, which callers rely on (e.g. commit handlers
  // must see sub-DAGs in consensus order — inline execution could reenter
  // and reorder them).
  void post(Task task);

  // True when called from the thread currently inside run(). For asserting
  // single-threaded invariants (e.g. "the validator core only ever runs on
  // the loop thread").
  bool in_loop_thread() const;

  // Runs until stop() is called (from any thread).
  void run();
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  // The data-plane backend (never null). Connections route their I/O through
  // it; kind() tells callers which path is live after kAuto resolution.
  IoBackend& io_backend() { return *backend_; }
  const IoBackend& io_backend() const { return *backend_; }
  IoBackendKind io_backend_kind() const { return backend_->kind(); }

  // Multiplexing cost: epoll_wait calls made by run(). Identical in kind
  // under both backends, so it is reported separately from the backend's
  // data-plane submit_syscalls.
  std::uint64_t wait_syscalls() const {
    return wait_syscalls_.load(std::memory_order_relaxed);
  }
  // Time the loop thread spent executing callbacks/timers/posted tasks (not
  // blocked in epoll_wait). The "bounded loop-thread time" metric for
  // committee-scale smoke tests.
  TimeMicros busy_micros() const { return busy_micros_.load(std::memory_order_relaxed); }

  // Observer invoked on the loop thread after every iteration with that
  // tick's busy slice and end stamp — the loop-stall watchdog's feed
  // (obs/watchdog.h). Set before run(); not thread-safe against a running
  // loop.
  using TickObserver = std::function<void(TimeMicros busy_micros, TimeMicros now)>;
  void set_tick_observer(TickObserver observer) { tick_observer_ = std::move(observer); }

 private:
  void drain_posted();
  void fire_due_timers();
  int next_timeout_ms() const;

  std::unique_ptr<IoBackend> backend_;
  std::atomic<std::uint64_t> wait_syscalls_{0};
  std::atomic<TimeMicros> busy_micros_{0};
  TickObserver tick_observer_;

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::thread::id> loop_thread_id_{};

  std::unordered_map<int, FdCallback> fd_callbacks_;

  struct Timer {
    TimeMicros due;
    std::uint64_t id;
    bool operator>(const Timer& other) const {
      return due != other.due ? due > other.due : id > other.id;
    }
  };
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::unordered_map<std::uint64_t, Task> timer_tasks_;
  std::uint64_t next_timer_id_ = 1;

  std::mutex posted_mutex_;
  std::vector<Task> posted_;
};

}  // namespace mahimahi::net
