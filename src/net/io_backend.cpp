#include "net/io_backend.h"

#include "common/log.h"
#include "common/uring.h"
#if MAHIMAHI_IOURING
#include "net/uring_backend.h"
#endif

namespace mahimahi::net {

const char* to_string(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kEpoll:
      return "epoll";
    case IoBackendKind::kUring:
      return "io_uring";
    case IoBackendKind::kAuto:
      return "auto";
  }
  return "unknown";
}

bool uring_backend_available() { return uring_runtime_supported(); }

std::unique_ptr<IoBackend> make_io_backend(IoBackendKind kind) {
  if (kind == IoBackendKind::kAuto) {
    kind = uring_backend_available() ? IoBackendKind::kUring : IoBackendKind::kEpoll;
  }
#if MAHIMAHI_IOURING
  if (kind == IoBackendKind::kUring) {
    if (uring_runtime_supported()) {
      try {
        return std::make_unique<UringBackend>();
      } catch (const std::exception& error) {
        MM_LOG(kWarn) << "io_uring backend failed to initialize (" << error.what()
                      << "); falling back to epoll";
      }
    } else {
      MM_LOG(kWarn) << "io_uring backend requested but the kernel probe failed; "
                       "falling back to epoll";
    }
  }
#else
  if (kind == IoBackendKind::kUring) {
    MM_LOG(kWarn) << "io_uring backend compiled out (MAHIMAHI_IOURING=OFF); "
                     "falling back to epoll";
  }
#endif
  return std::make_unique<EpollBackend>();
}

}  // namespace mahimahi::net
