// Lightweight admin HTTP endpoint on the validator's TCP plane.
//
// Serves GET /metrics (Prometheus text format) and GET /metrics.json from
// the loop thread, over raw-mode TcpConnections — so it works identically
// under the epoll and io_uring backends, shares the loop's lifecycle, and
// adds no thread. The HTTP dialect is deliberately minimal: parse the
// request line, ignore headers, answer with Content-Length and
// Connection: close, wait for the peer to hang up. curl, Prometheus
// scrapers, and the cluster tests all speak it.
//
// Anything beyond a well-formed GET within the size cap gets a 4xx or the
// connection dropped; the endpoint binds to loopback (like the consensus
// listener) and is for operators, not the public internet.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/tcp.h"

namespace mahimahi::net {

class AdminServer {
 public:
  // Returns the response body for `path` and may set `content_type`
  // (defaults to text/plain); std::nullopt = 404. Runs on the loop thread.
  using Renderer =
      std::function<std::optional<std::string>(std::string_view path, std::string& content_type)>;

  // port 0 binds an ephemeral port (see port()). Throws like TcpListener on
  // bind failure. Must be constructed and destroyed on the loop thread (or
  // while the loop is not running).
  AdminServer(EventLoop& loop, std::uint16_t port, Renderer renderer);
  ~AdminServer();

  std::uint16_t port() const { return listener_->port(); }

 private:
  // Per-connection accumulation state, keyed by the connection itself.
  struct Pending {
    TcpConnectionPtr connection;
    std::string request;
    bool responded = false;
  };

  void on_connection(TcpConnectionPtr connection);
  void on_bytes(TcpConnection* key, BytesView bytes);
  std::string respond(const std::string& request_line);

  EventLoop& loop_;
  Renderer renderer_;
  std::unique_ptr<TcpListener> listener_;
  std::unordered_map<TcpConnection*, Pending> connections_;
};

}  // namespace mahimahi::net
