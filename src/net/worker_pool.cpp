#include "net/worker_pool.h"

#include "common/log.h"

namespace mahimahi::net {

WorkerPool::WorkerPool(std::size_t threads, std::string log_context)
    : log_context_(std::move(log_context)) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    queue_.clear();
  }
  wake_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void WorkerPool::worker_main() {
  if (!log_context_.empty()) set_log_context(log_context_);
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace mahimahi::net
