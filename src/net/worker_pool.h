// A small fixed-size thread pool for CPU-bound pipeline stages.
//
// NodeRuntime uses it to run frame decoding and batched signature
// verification off the event-loop thread (the paper's tokio runtime pipelines
// the same way): workers consume submitted tasks, and each task posts its
// results back to the owning EventLoop. The pool itself knows nothing about
// blocks — it is a plain task queue.
//
// stop() (also run by the destructor) lets in-flight tasks finish, discards
// tasks still queued, and joins the threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mahimahi::net {

class WorkerPool {
 public:
  using Task = std::function<void()>;

  // log_context, when non-empty, becomes each worker thread's MM_LOG context
  // (see common/log.h) so cluster-test log lines are attributable.
  explicit WorkerPool(std::size_t threads, std::string log_context = "");
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Thread-safe. Tasks submitted after stop() are discarded.
  void submit(Task task);

  void stop();

  std::size_t thread_count() const { return threads_.size(); }

 private:
  void worker_main();

  std::string log_context_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace mahimahi::net
