// NodeRuntime: a deployable validator process component.
//
// Owns an event loop thread, the sans-IO ValidatorCore, the TCP mesh to all
// peers (one dialed connection per peer for sending; accepted connections
// deliver peer traffic), and optionally a write-ahead log for crash
// recovery. This mirrors the paper's networked multi-core validator (§4):
// tokio + raw TCP there, epoll + raw TCP here.
//
// Block ingestion is pipelined: the loop thread only reads frames off the
// sockets and enqueues them; a small worker pool (config.verify_threads)
// decodes and crypto-verifies them — batched, so bursts amortize ed25519
// costs (crypto/ed25519.h) — and posts the surviving blocks back to the loop
// thread, which feeds them to ValidatorCore::on_blocks. The core stays
// single-threaded and sans-IO; only decode + verification, which are pure
// functions of the frame bytes and the committee, run concurrently.
//
// With ValidatorConfig::parallel_commit, the commit-rule scan also leaves
// the loop thread: newly inserted blocks are queued (same single-drain
// discipline as the verify stage) for a worker task that maintains a replica
// DAG (core/commit_scanner.h) and evaluates candidate waves there; the
// resulting decisions are posted back and applied on the loop thread —
// linearization only, no wave scans.
//
// The write side is pipelined the same way (docs/ARCHITECTURE.md has the
// full picture):
//   * Egress (ValidatorConfig::egress_offload): outbound blocks — proposal
//     broadcasts, fetch responses, anti-entropy offers — are queued for a
//     worker that encodes each block ONCE into a shared immutable frame
//     (net/tcp.h SharedFrame); the loop thread then hands every per-peer
//     send a refcounted view. Same single-drain discipline, so frames reach
//     the sockets in enqueue order.
//   * WAL (ValidatorConfig::wal_group_commit): appends stage into
//     wal/group_commit_wal.h, whose writer thread lands whole groups as one
//     write + sync. Own proposals enter the egress path only when the WAL's
//     durability ack posts back to the loop thread, preserving the recovery
//     contract (a broadcast block is always replayable). Inline WALs ack
//     synchronously — including NullWal, so running without persistence can
//     never wedge the proposal path.
// Together these leave the loop thread as pure I/O multiplexing.
//
// Checkpointing (ValidatorConfig::checkpoint_interval, checkpoint/):
//   * with persistence, the WAL runs the segmented layout (rolling
//     seg-*.wal files + a checkpoint store in the same directory) instead of
//     one monolithic file, and recovery prefers newest-valid-chain +
//     segment-suffix replay;
//   * cuts happen at CANONICAL boundary slots (checkpoint/cert.h
//     cut_boundary_slot): when the consumption head crosses boundary k, the
//     loop thread captures the consistent cut and truncates it back to the
//     boundary, so every honest validator's cut k has the identical decided
//     log and app digest. Up to checkpoint_max_deltas cuts ride as delta
//     links (checkpoint/delta.h) on the chain's base before a re-base; a
//     worker serializes and lands each record crash-atomically, completion
//     posts back to the loop thread, which retires sealed segments one whole
//     CHAIN behind (recovery may fall back a full chain);
//   * at every boundary crossing the validator signs the cut payload and
//     broadcasts the share (kCertShare); 2f+1 matching shares aggregate into
//     a CheckpointCertificate persisted as a cert-*.cert sidecar and served
//     with the chain — a fully certified chain is a trust root
//     (checkpoint/cert.h), an uncertified one installs under the legacy
//     stuck-requester path with a counter recording the downgrade;
//   * a peer that asks for ancestors below our GC horizon gets a kHorizon
//     notice; when it is stuck below it, it sends kCheckpointRequest and we
//     answer with the base+delta chain (kCheckpointChain), which it verifies
//     off-loop (verify_checkpoint_chain) and installs — the only way a
//     validator that fell behind every peer's horizon can ever catch up.
//
// Message frames (first payload byte is the type):
//   kHandshake:          u32 validator id + 32-byte committee epoch seed
//   kBlock:              serialized block
//   kFetch:              varint count + (round, author, digest) refs
//   kHorizon:            varint GC horizon of the sender
//   kCheckpointRequest:  empty (send me your latest checkpoint)
//   kCheckpointResponse: one encode_checkpoint() record (legacy serving)
//   kCertShare:          encode_cut_share() — one cut-certificate share
//   kCheckpointChain:    encode_checkpoint_chain_frame() — base+delta chain
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "checkpoint/cert.h"
#include "checkpoint/checkpoint.h"
#include "checkpoint/segmented_wal.h"
#include "core/commit_scanner.h"
#include "core/commit_trace.h"
#include "exec/engine.h"
#include "net/admin.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "net/worker_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "validator/validator.h"
#include "wal/group_commit_wal.h"
#include "wal/wal.h"

namespace mahimahi::net {

// The latency budget never shrinks a verify drain below this many frames:
// batched RLC signature verification realizes most of its amortization by ~8
// items, so smaller batches cost MORE per block — a budget-derived cap below
// the floor is self-defeating (see ingest_batch_cap for the bistable trap it
// creates in slow environments).
inline constexpr std::size_t kVerifyAmortizationFloor = 8;

// Adaptive ingest batching (ValidatorConfig::max_ingest_batch /
// ingest_latency_budget): how many queued block frames one verify drain may
// take, given the EWMA of per-block decode+verify cost. max_batch 0 =
// unbounded; budget or ewma 0 = no latency shaping. Never returns 0, and
// latency shaping never goes below min(max_batch, kVerifyAmortizationFloor).
std::size_t ingest_batch_cap(std::size_t max_batch, TimeMicros latency_budget,
                             TimeMicros ewma_per_block);

struct NodeAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct NodeRuntimeConfig {
  ValidatorConfig validator;
  // peers[i] is validator i's listen address; peers[validator.id] is ours.
  std::vector<NodeAddress> peers;
  // Empty = no persistence. With validator.checkpoint_interval > 0 (and
  // gc_depth set) this is a DIRECTORY holding the segmented layout —
  // seg-*.wal files, MANIFEST, ckpt-*.ckpt — instead of one log file.
  std::string wal_path;
  TimeMicros tick_interval = millis(50);
  TimeMicros dial_retry = millis(200);
  // Anti-entropy: how often to re-offer our latest own block to all peers.
  // Broadcasts to a peer whose connection is down are dropped by TCP, so
  // eventual delivery (§2.1, Lemma 9) needs a push-based repair path; the
  // peer's synchronizer pulls any missing ancestry from the offered block.
  TimeMicros resync_interval = millis(500);
  // Threads decoding and crypto-verifying incoming block frames off the
  // event-loop thread. 0 = decode and verify inline on the loop thread
  // (strictly serial ingestion; useful for debugging and determinism).
  std::size_t verify_threads = 2;
  // Bound on frames queued for the verify workers. The inline path was
  // implicitly bounded by TCP flow control (the loop read one frame, then
  // verified it); the worker queue needs an explicit cap or a peer
  // outrunning verification throughput grows it without bound. Overflow
  // drops the incoming frame — safe, since anti-entropy re-offers and the
  // synchronizer's fetch path re-deliver anything that matters.
  std::size_t max_pending_verify_frames = 10'000;
  // I/O backend for the event loop's socket data plane AND (via the WAL
  // writer's own ring) group flushes. kAuto resolves to io_uring when the
  // kernel supports it and falls back to epoll otherwise — both backends
  // move byte-identical wire frames and WAL files, so this only changes
  // syscalls per operation, never behavior.
  IoBackendKind io_backend = IoBackendKind::kAuto;
  // Admin/metrics HTTP endpoint (GET /metrics Prometheus text, /metrics.json)
  // served from the loop thread on the TCP plane, loopback only. -1 =
  // disabled (default); 0 = bind an ephemeral port (read it back via
  // admin_port()); otherwise the port to bind.
  int admin_port = -1;
  // Loop-stall watchdog: an event-loop tick whose busy slice exceeds this
  // budget counts as a stall (mm_loop_stalls_total) and logs a rate-limited
  // warning. The tick histogram and max-stall gauge record regardless.
  TimeMicros loop_stall_budget = millis(250);
  // Flight-recorder auto-dump directory: when non-empty, a watchdog stall
  // writes flightrec-v<id>-<n>.bin there (rate-limited with the stall warn).
  // The recorder itself is always on; empty only disables the stall dumps.
  std::string flightrec_dir;
  // Slots per flight-recorder thread ring (power of two; 32 bytes each).
  std::size_t flightrec_ring_capacity = 4096;
  // Recent commit traces kept for /trace/commits (core/commit_trace.h).
  std::size_t commit_trace_capacity = 64;
};

class NodeRuntime {
 public:
  // Fires on the loop thread for every committed sub-DAG.
  using CommitHandler = std::function<void(const CommittedSubDag&)>;

  NodeRuntime(const Committee& committee, crypto::Ed25519PrivateKey key,
              NodeRuntimeConfig config);
  ~NodeRuntime();

  // Set before start().
  void set_commit_handler(CommitHandler handler) { commit_handler_ = std::move(handler); }

  // Replays the WAL (if any), starts the loop thread, listens and dials.
  void start();
  void stop();

  // Thread-safe client submission. Admission control (sharded mempool front
  // door) runs off the loop thread — on the worker pool when one exists,
  // inline on the calling thread otherwise; the loop thread only learns
  // "the pool has work" and drains it on the next proposal. Because the
  // worker-pool path is asynchronous, per-batch verdicts cannot be returned
  // here: rejects surface through submit_rejected() / mempool_stats() and a
  // warn-level log. A client that needs each verdict synchronously (to
  // propagate backpressure upstream) should call
  // mempool_handle()->submit() itself — thread-safe, never blocks on the
  // loop thread — then poke this wrapper with an empty vector.
  void submit(std::vector<TxBatch> batches);

  // The shared admission pool, for clients that want per-batch verdicts.
  const std::shared_ptr<ShardedMempool>& mempool_handle() const { return mempool_; }

  // The validator's metrics registry: every counter below lives in it, plus
  // the lifecycle-stage and finality histograms and the loop watchdog. Dump
  // it (thread-safe) or scrape the admin endpoint for the same view.
  obs::Registry& metrics_registry() { return registry_; }
  const obs::Registry& metrics_registry() const { return registry_; }
  // The admin endpoint's bound port once start() returned (-1 when
  // config.admin_port was -1).
  int admin_port() const { return admin_port_.load(std::memory_order_relaxed); }

  // The always-on flight recorder: per-thread event rings, snapshotted by
  // the /flightrec admin endpoint and auto-dumped on watchdog stalls
  // (config.flightrec_dir). Thread-safe.
  obs::FlightRecorder& flight_recorder() { return recorder_; }
  // Stall-triggered dump files written so far (mm_flightrec_stall_dumps_total).
  std::uint64_t flightrec_stall_dumps() const { return flightrec_stall_dumps_->value(); }

  // Thread-safe counters — thin reads of the registry metrics.
  std::uint64_t committed_transactions() const { return committed_tx_->value(); }
  std::uint64_t committed_blocks() const { return committed_blocks_->value(); }
  Round highest_round() const {
    return static_cast<Round>(highest_round_->value());
  }

  // Combined ingestion-pipeline counters: the worker stages (structural and
  // crypto rejects during off-thread verification) plus the core's own
  // stages, mirrored after every loop-thread step. Thread-safe.
  IngestStats ingest_stats() const;
  // Frames that failed to decode as blocks (malformed wire bytes).
  std::uint64_t decode_errors() const { return decode_errors_->value(); }
  // Frames dropped because the verify queue was full (overload shedding).
  std::uint64_t verify_frames_dropped() const { return verify_frames_dropped_->value(); }
  // Admission-control counters of the shared mempool (thread-safe).
  MempoolStats mempool_stats() const { return mempool_->stats(); }
  // Parallel-committer introspection (thread-safe). Scans run on the worker
  // pool; decision batches and the micros spent applying them are the only
  // commit work left on the loop thread (serial mode pays the whole scan
  // there instead, inside ValidatorCore::on_blocks).
  bool parallel_commit_active() const { return commit_scanner_ != nullptr; }
  std::uint64_t commit_scans() const { return commit_scans_->value(); }
  std::uint64_t commit_batches_applied() const { return commit_batches_applied_->value(); }
  std::uint64_t commit_apply_micros() const { return commit_apply_micros_->value(); }
  // Egress/WAL write-side introspection (thread-safe). With egress offload
  // the encode counter advances on the worker pool; inline encodes (no pool,
  // or egress_offload off) count too, so the counter always means "outbound
  // block frames encoded once and fanned out as shared views".
  bool egress_offload_active() const {
    return verify_pool_ != nullptr && config_.validator.egress_offload;
  }
  std::uint64_t egress_frames_encoded() const { return egress_frames_encoded_->value(); }
  bool wal_group_commit_active() const { return group_wal_ != nullptr; }
  std::uint64_t wal_groups_flushed() const {
    return group_wal_ ? group_wal_->groups_flushed() : 0;
  }
  std::uint64_t wal_flush_micros() const {
    return group_wal_ ? group_wal_->flush_micros() : 0;
  }
  // I/O-plane accounting (thread-safe): the syscalls-per-committed-block
  // numerator. submit_syscalls counts data-plane kernel entries
  // (recv/sendmsg on epoll, io_uring_enter on uring); wait_syscalls counts
  // the loop's epoll_wait multiplexing, identical in kind under both
  // backends; wal_flush_syscalls counts group-flush entries on the WAL
  // writer thread. Divide by committed_blocks() for the bench metric.
  struct IoPlaneReport {
    const char* backend = "";
    std::uint64_t submit_syscalls = 0;
    std::uint64_t send_ops = 0;
    std::uint64_t recv_ops = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t wait_syscalls = 0;
    std::uint64_t loop_busy_micros = 0;
    std::uint64_t wal_flush_syscalls = 0;
    std::uint64_t wal_groups = 0;
    bool wal_ring_active = false;
  };
  IoPlaneReport io_plane_report() const;
  IoBackendKind io_backend_kind() const { return loop_.io_backend_kind(); }
  // Checkpoint subsystem introspection (thread-safe).
  bool checkpointing_active() const { return checkpointing_; }
  bool segmented_wal_active() const { return seg_wal_ != nullptr; }
  std::uint64_t checkpoints_written() const { return checkpoints_written_->value(); }
  // Snapshot catch-ups completed: peer checkpoints verified and installed.
  std::uint64_t snapshot_catchups() const { return snapshot_catchups_->value(); }
  std::uint64_t checkpoints_served() const { return checkpoints_served_->value(); }
  // Delta/cert subsystem introspection (thread-safe).
  std::uint64_t checkpoint_delta_cuts() const { return checkpoint_delta_cuts_->value(); }
  std::uint64_t checkpoint_certs() const { return checkpoint_certs_->value(); }
  std::uint64_t checkpoint_cert_shares_rejected() const {
    return cert_shares_rejected_->value();
  }
  // Catch-up installs split by trust root: a fully certified chain vs the
  // legacy stuck-requester downgrade.
  std::uint64_t certified_snapshot_installs() const {
    return certified_installs_->value();
  }
  std::uint64_t uncertified_snapshot_installs() const {
    return uncertified_installs_->value();
  }
  // Batches this runtime's submit() path rejected (subset view of
  // mempool_stats(), attributable to local clients).
  std::uint64_t submit_rejected() const { return submit_rejected_->value(); }

  // --- Execution subsystem (ValidatorConfig::execute_app, exec/) ----------
  //
  // When active, every committed sub-DAG feeds a deterministic KV execution
  // engine: parallel waves with execution_threads > 0, serial inline apply
  // otherwise, and `mm_exec_*` counters in the registry. Finality stamps
  // (mm_finality_micros) then fire at execution-delivery time per retired
  // wave instead of at commit time.
  bool execution_active() const { return exec_engine_ != nullptr; }
  // Drains the engine (every commit enqueued so far fully retires) and
  // returns the replicated state digest. Thread-safe; blocks the caller,
  // never the loop thread. Digest of an empty store when inactive.
  Digest app_state_digest() {
    return exec_engine_ ? exec_engine_->state_digest() : app::KvStore{}.state_digest();
  }
  // Scrape-safe snapshot of the engine's counters (zeros when inactive).
  exec::ExecStats execution_stats() const {
    return exec_engine_ ? exec_engine_->stats() : exec::ExecStats{};
  }

  ValidatorId id() const { return config_.validator.id; }
  std::uint16_t listen_port() const { return listen_port_.load(); }

 private:
  enum class MessageType : std::uint8_t {
    kHandshake = 1,
    kBlock = 2,
    kFetch = 3,
    kHorizon = 4,
    kCheckpointRequest = 5,
    kCheckpointResponse = 6,
    kCertShare = 7,
    kCheckpointChain = 8,
  };

  struct RawFrame {
    ValidatorId peer;
    Bytes payload;  // serialized block, type byte stripped
    // Loop-thread receive stamp: start of the block's lifecycle trace.
    TimeMicros received_at = 0;
  };

  // One outbound block awaiting encode + fan-out. kAllPeers broadcasts.
  struct EgressItem {
    BlockPtr block;
    ValidatorId target;
  };

  void loop_main();
  void dial_peer(ValidatorId peer);
  void on_peer_frame(ValidatorId peer, BytesView frame);
  void on_unidentified_connection(TcpConnectionPtr connection);
  void perform(Actions&& actions);
  // Queues a block frame for the verify workers (schedules a drain when
  // none is pending) — called on the loop thread.
  void enqueue_block_frame(ValidatorId peer, Bytes payload);
  // Worker-side: loops draining the queued frames (one drain at a time, so
  // batches reach the loop thread in arrival order) until the queue is
  // empty.
  void verify_pending_frames();
  // Worker-side: decodes + structurally validates + batch-crypto-verifies
  // one drained batch and posts survivors to the loop thread. Returns how
  // many blocks reached the crypto stage (feeds the cost EWMA: cheap drops
  // must not dilute the per-block verify estimate).
  std::size_t verify_frames(std::vector<RawFrame> frames);
  void send_to_peer(ValidatorId peer, BytesView frame);
  // Hands a shared encoded frame to `target` (every peer when kAllPeers) —
  // per-peer sends only bump the frame's refcount. Loop thread.
  void send_shared(ValidatorId target, const SharedFrame& frame);
  // Routes outbound blocks to the egress encoder: the worker pool when
  // egress offload is active, inline encode + send otherwise. Loop thread.
  void dispatch_egress(std::vector<EgressItem> items);
  // Queues items for the worker-side encoder (schedules a drain when none
  // is pending) — called on the loop thread.
  void enqueue_egress(std::vector<EgressItem> items);
  // Worker-side: drains the egress queue (one drain at a time, so frames
  // reach the sockets in enqueue order), encodes each block once into a
  // SharedFrame, and posts the sends back to the loop thread.
  void encode_pending_egress();
  // Queues newly inserted blocks for the commit scanner (schedules a drain
  // when none is pending) — called on the loop thread.
  void enqueue_commit_blocks(const std::vector<BlockPtr>& blocks);
  // Worker-side: drains queued blocks into the replica, runs the commit
  // scan, and posts decision batches to the loop thread (one drain at a
  // time — the scanner is single-threaded state and decisions must arrive
  // in scan order).
  void scan_pending_commits();
  // Worker-side: drains queued client submissions (one loop at a time, so
  // admissions hit the pool in arrival order) until the queue is empty.
  void admit_pending_submissions();
  // Admits one burst into the shared pool and nudges the loop thread.
  void admit_batches(std::vector<TxBatch> batches);
  // Queues one proposal re-check on the loop thread (collapses bursts).
  void nudge_proposal();
  // --- Checkpoint writer + snapshot catch-up (loop thread unless noted) ----
  // Crosses every canonical cut boundary B_k <= watermark: signs/broadcasts
  // the cert share and starts the cut. Called per committed sub-DAG (before
  // it is fed to execution) and once per commit pass with the consumption
  // head, so skip-only boundary crossings still cut.
  void handle_cut_boundaries(SlotId watermark, const Actions& actions);
  // One boundary: fold the decided log up to it, form the payload, sign +
  // broadcast + self-collect the share, start the cut when the writer is
  // free. `actions` supplies this pass's sub-DAGs for delivered-truncation.
  void cross_cut_boundary(std::uint64_t cut_index, SlotId boundary,
                          const Actions& actions);
  // Captures the consistent cut truncated back to `boundary`, decides
  // base-vs-delta, and hands serialization + the crash-atomic file write to
  // a worker (one in flight at a time).
  void start_cut(std::uint64_t cut_index, SlotId boundary,
                 const Digest& app_digest, const Actions& actions);
  // Completion posted back by the writer task: appends the chain link,
  // caches serving state, retires segments one whole chain behind.
  void finish_checkpoint(std::uint64_t epoch, std::uint64_t cut_index,
                         bool is_base, Round horizon, std::uint64_t keep_from,
                         std::shared_ptr<const Bytes> encoded,
                         std::shared_ptr<const CheckpointData> data);
  // kCertShare ingress: window + signature + payload checks, then the
  // threshold collector; forms and persists the certificate at 2f+1.
  void on_cert_share(CutShare share);
  struct PendingCut;
  // Payload-checked admission into a boundary's collector; forms, records
  // and attaches the certificate on the threshold-crossing share.
  void collect_cut_share(std::uint64_t cut_index, PendingCut& pending,
                         const CutShare& share);
  // Attaches a freshly formed certificate to its chain link (when already
  // written) and persists the sidecar via a worker.
  void attach_cert(std::uint64_t cut_index, std::shared_ptr<const Bytes> cert);
  // Answers kCheckpointRequest: the base+delta chain with per-link certs
  // (kCheckpointChain) when links exist, else the legacy single-record
  // kCheckpointResponse.
  void serve_checkpoint(ValidatorId peer);
  // Worker-side: decodes + verifies a received checkpoint, posts the install.
  void verify_checkpoint_response(ValidatorId peer, Bytes payload);
  // Worker-side: decodes + verifies a received base+delta chain
  // (verify_checkpoint_chain), posts the install with its trust class.
  void verify_chain_response(ValidatorId peer, Bytes payload);
  // Installs a verified peer checkpoint into the core and persists it as our
  // own recovery point; rebuilds the commit scanner (its replica no longer
  // matches the installed DAG). `certified` selects the trust-root counter;
  // `final_cert` (may be null) is re-attached to the persisted base so the
  // certificate survives the re-base.
  void install_peer_checkpoint(CheckpointData data, bool certified,
                               std::shared_ptr<const Bytes> final_cert);
  // Scanner rebuild handshake: runs on the loop thread once no scan drain
  // can be touching the old scanner (immediately when idle, else posted by
  // the draining worker when it observes the stale flag).
  void rebuild_commit_scanner();
  void tick();
  Bytes encode_block(const Block& block) const;
  // Sends our latest own block to `peer` (all peers when kAllPeers); its
  // parent references let the receiver fetch anything else it is missing.
  static constexpr ValidatorId kAllPeers = ~0u;
  void offer_latest_block(ValidatorId peer);

  // Registers every callback metric that bridges pre-existing bespoke
  // counters (io-plane stats, mempool stats, WAL/loop introspection) into
  // registry_. Constructor tail, after those sources exist.
  void register_callback_metrics();

  // Folds one block's receive-side lag (local receive stamp minus the
  // author's created_at, clamped at 0) into the aggregate and per-peer
  // histograms. Unstamped blocks (created_at == 0) are skipped. Any thread.
  void record_rx_lag(const Block& block, TimeMicros received_at);
  // /status body: loop-thread node state as JSON (head, peers, mempool,
  // checkpoint chain tip). Loop thread only — it reads core state.
  std::string render_status_json();
  // Watchdog on_stall callback (loop thread, rate-limited with the warn):
  // stamps a kStall event and, with config.flightrec_dir set, dumps the
  // recorder to flightrec-v<id>-<n>.bin.
  void on_loop_stall(TimeMicros busy_micros, TimeMicros now);

  // Execution-delivery callback: finality stamps per retired wave and the
  // kExecute span when the sub-DAG completes. Runs on the engine's merge
  // thread (execution_threads > 0) or inline on the loop thread — every
  // record it makes is thread-safe (histograms/counters only, never the
  // tracer's stamp table).
  void on_wave_delivered(const exec::WaveDelivery& wave);

  const Committee& committee_;
  NodeRuntimeConfig config_;
  // Own copy of the signing key: the core holds one for block signing; this
  // one signs checkpoint-cut certificate shares (checkpoint/cert.h).
  crypto::Ed25519PrivateKey key_;
  // Declared before every consumer: the tracer, watchdog, and all the metric
  // handles below point into it. Destroyed last among them (reverse order).
  obs::Registry registry_;
  obs::LifecycleTracer tracer_;
  // Before the watchdog: its on_stall closure dumps the recorder.
  obs::FlightRecorder recorder_;
  obs::LoopWatchdog watchdog_;
  // Commit forensics (loop thread only): arrival stamps + recent commit
  // traces, served as JSON on /trace/commits.
  CommitForensics forensics_;
  // Shared with the core (ValidatorConfig::mempool_instance): submissions
  // are admitted on client/worker threads, drains happen on the loop thread.
  std::shared_ptr<ShardedMempool> mempool_;
  std::unique_ptr<ValidatorCore> core_;
  std::unique_ptr<Wal> wal_;
  // Non-null iff wal_ is a GroupCommitWal (introspection + explicit shutdown
  // before the loop object dies: the writer posts acks through loop_).
  GroupCommitWal* group_wal_ = nullptr;
  // Non-null iff the segmented layout is active: the SegmentedWal owned by
  // wal_ (directly, or inside the group-commit decorator). Its internal
  // mutex makes the loop thread's roll/retire safe against the WAL writer
  // thread's appends.
  SegmentedWal* seg_wal_ = nullptr;
  CommitHandler commit_handler_;
  // Execution engine (ValidatorConfig::execute_app): fed on the loop thread
  // from the commit path; applies on its merge thread (execution_threads > 0)
  // or inline. Its delivery callback touches only thread-safe observability
  // surfaces (see on_wave_delivered).
  std::unique_ptr<exec::ExecutionEngine> exec_engine_;

  // Checkpoint subsystem (loop-thread state unless noted).
  bool checkpointing_ = false;  // interval > 0 and the core can capture
  // Armed when the core emits a checkpoint request; records which peer was
  // asked. kCheckpointResponse frames arriving outside that window —
  // unsolicited, or from a peer other than the one asked — are dropped
  // BEFORE the (expensive) off-loop decode + verification. The window
  // closes on the FIRST response from the asked peer whatever its
  // verification outcome (the core's rate-limited re-request path recovers
  // from a bad or stale one), so one request buys at most one verification,
  // never a stream; a re-request re-arms the window at the newly asked
  // peer. Deliberately NO receive deadline: a snapshot transfer can outlast
  // any fixed timeout, and a deadline shorter than the transfer would drop
  // every retry identically — a livelock for exactly the far-behind
  // validator that needs catch-up most.
  bool catchup_request_outstanding_ = false;
  ValidatorId catchup_request_peer_ = 0;
  std::unique_ptr<CheckpointStore> checkpoint_store_;  // null without wal_path
  bool checkpoint_in_flight_ = false;
  Round last_checkpoint_horizon_ = 0;
  std::uint64_t checkpoint_seq_ = 0;
  // Segment boundary recorded at the base cut of the PREVIOUS chain.
  // Retirement lags one whole CHAIN: recovery can fall back past a torn
  // newest chain to the previous one only if the segments from that chain's
  // base boundary still exist (mirrors CheckpointStore's keep-2 policy,
  // which is also chain-granular).
  std::uint64_t chain_keep_from_ = 0;
  // Latest encoded BASE checkpoint, served on the legacy single-record path.
  // shared_ptr so the in-flight writer task and a concurrent serve never
  // copy the blob.
  std::shared_ptr<const Bytes> latest_checkpoint_bytes_;

  // --- Delta chain + threshold certification (loop-thread state) -----------
  bool certifying_ = false;  // checkpointing_ && checkpoint_certify
  // The current base+delta chain, oldest first; links[0] is the base. Cert
  // is null until 2f+1 shares aggregate (or forever, for cuts whose window
  // closed short).
  struct ChainLinkRt {
    std::uint64_t sequence = 0;
    std::uint64_t cut_index = 0;
    std::shared_ptr<const Bytes> record;
    std::shared_ptr<const Bytes> cert;
  };
  std::vector<ChainLinkRt> chain_links_;
  std::uint64_t chain_base_seq_ = 0;
  // Previous cut's full data, kept as the delta diff base. Null until the
  // first cut (or after an install, whose record becomes the new base).
  std::shared_ptr<const CheckpointData> last_cut_data_;
  // Next canonical boundary to cross (cut_boundary_slot(next_cut_index_)).
  std::uint64_t next_cut_index_ = 1;
  // Incremental fold of the decided log: entries [0, decided_folded_) of
  // committer().decided_sequence() are already in the hasher. Reset (and
  // refolded from the replayed log) on install/recovery.
  DecidedLogHasher decided_hasher_;
  std::size_t decided_folded_ = 0;
  // Bumped by every snapshot install: in-flight cut writer tasks carry the
  // epoch they started under, and their completions are dropped on mismatch
  // (the chain they belonged to no longer exists).
  std::uint64_t chain_epoch_ = 0;
  // Per-boundary share collection. Only shares matching OUR OWN payload
  // enter the collector, so a forged payload can never aggregate; shares
  // arriving before we cross the boundary wait in `early` (bounded by
  // committee size, per-author deduped).
  struct PendingCut {
    explicit PendingCut(std::uint32_t threshold) : collector(threshold) {}
    bool have_payload = false;
    CutPayload payload;
    crypto::MultisigCollector collector;
    std::vector<CutShare> early;
    std::shared_ptr<const Bytes> cert;  // set once formed
  };
  std::map<std::uint64_t, PendingCut> pending_cuts_;

  obs::Counter* checkpoints_written_;
  obs::Counter* snapshot_catchups_;
  obs::Counter* checkpoints_served_;
  obs::Counter* checkpoint_delta_cuts_;
  obs::Counter* checkpoint_certs_;
  obs::Counter* cert_shares_rejected_;
  obs::Counter* certified_installs_;
  obs::Counter* uncertified_installs_;

  EventLoop loop_;
  std::thread thread_;
  std::unique_ptr<TcpListener> listener_;
  // Admin/metrics endpoint (config.admin_port >= 0): created on the loop
  // thread before the consensus listener, torn down there too.
  std::unique_ptr<AdminServer> admin_;
  std::atomic<int> admin_port_{-1};
  std::vector<TcpConnectionPtr> outgoing_;  // index = peer id
  std::vector<TcpConnectionPtr> pending_incoming_;
  std::atomic<std::uint16_t> listen_port_{0};
  bool ticking_ = false;
  TimeMicros last_resync_ = 0;

  obs::Counter* committed_tx_;
  obs::Counter* committed_blocks_;
  obs::Gauge* highest_round_;

  // Receive-side lag forensics: created_at (author clock) -> local receive,
  // clamped at 0. One aggregate histogram plus one per peer; negative deltas
  // (clock skew) clamp and count. Recorded on verify workers or the loop
  // thread — histograms/counters are thread-safe.
  obs::Histogram* peer_rx_lag_;
  std::vector<obs::Histogram*> peer_rx_lag_by_peer_;  // index = author
  obs::Counter* peer_rx_lag_clamped_;
  obs::Counter* flightrec_stall_dumps_;
  // Sequence for stall-dump file names (loop thread only).
  std::uint64_t flightrec_dump_seq_ = 0;
  // Duration of the most recent off-loop commit scan, read when a trace is
  // built on the loop thread (0 in serial mode, where the scan is inside
  // ValidatorCore::on_blocks).
  std::atomic<TimeMicros> last_scan_micros_{0};

  // Off-loop verification pipeline.
  std::unique_ptr<WorkerPool> verify_pool_;
  std::mutex verify_mutex_;
  // A deque so the adaptive drain can take the front chunk in O(chunk)
  // while deep backlogs keep arriving at the back.
  std::deque<RawFrame> pending_frames_;    // guarded by verify_mutex_
  bool verify_scheduled_ = false;          // guarded by verify_mutex_
  // Digests of blocks the core has retained (inserted or parked): workers
  // drop re-deliveries of them — the periodic anti-entropy re-offers,
  // relayed fetch responses — before paying crypto again. Recorded on the
  // loop thread only after the core accepts a block, so anything dropped
  // (bad crypto, synchronizer back-pressure) stays re-deliverable.
  // VerifierCache is internally locked.
  VerifierCache forwarded_digests_;
  obs::Counter* decode_errors_;
  obs::Counter* verify_frames_dropped_;
  obs::Counter* submit_rejected_;
  // Client submissions awaiting worker-side admission; the single-drain
  // discipline (submit_scheduled_) keeps them in arrival order.
  std::mutex submit_mutex_;
  std::vector<TxBatch> pending_submissions_;  // guarded by submit_mutex_
  bool submit_scheduled_ = false;             // guarded by submit_mutex_
  // Collapses a burst of off-loop submissions into one queued proposal
  // re-check on the loop thread.
  std::atomic<bool> propose_nudge_pending_{false};
  // Off-loop commit evaluation (parallel committer). The scanner is touched
  // only by the single active scan drain; the queue hands it the loop
  // thread's insertion stream in order. Unbounded by design: entries are
  // BlockPtrs the core already retains, so the DAG itself is the bound, and
  // dropping one would lose commits (unlike verify frames, nothing
  // re-delivers them).
  std::unique_ptr<CommitScanner> commit_scanner_;
  std::mutex commit_mutex_;
  std::vector<BlockPtr> pending_commit_blocks_;  // guarded by commit_mutex_
  bool commit_scan_scheduled_ = false;           // guarded by commit_mutex_
  // Set (with the queue cleared) when a checkpoint install invalidated the
  // scanner's replica; the active drain observes it, stops touching the
  // scanner and posts rebuild_commit_scanner() to the loop thread.
  bool commit_scanner_stale_ = false;            // guarded by commit_mutex_
  // Off-loop egress encoding. Unbounded like the commit queue: entries are
  // blocks this node itself decided to send (proposals, offers) or already
  // holds in its DAG (fetch responses, whose volume a peer caps at
  // 10000 refs per request), so the DAG bounds the queue and dropping an
  // entry would silently lose a message the protocol expects to deliver.
  std::mutex egress_mutex_;
  std::vector<EgressItem> pending_egress_;  // guarded by egress_mutex_
  bool egress_scheduled_ = false;           // guarded by egress_mutex_
  obs::Counter* egress_frames_encoded_;
  obs::Counter* commit_scans_;
  obs::Counter* commit_batches_applied_;
  obs::Counter* commit_apply_micros_;
  // EWMA of per-block decode+verify cost (micros), written by the single
  // active verify drain, read when sizing the next batch. Stays a bespoke
  // atomic (control state, not a metric); a gauge_fn bridges it for scrapes.
  std::atomic<TimeMicros> verify_cost_ewma_{0};
  obs::Counter* worker_structurally_rejected_;
  obs::Counter* worker_crypto_rejected_;
  // Mirror of the core's IngestStats, refreshed on the loop thread after
  // every step so ingest_stats() never races the core. Gauges, not counters:
  // each refresh overwrites with the core's absolute value.
  obs::Gauge* core_structurally_rejected_;
  obs::Gauge* core_crypto_rejected_;
  obs::Gauge* core_cache_hits_;
  obs::Gauge* core_verified_;
  obs::Gauge* core_preverified_;
};

}  // namespace mahimahi::net
