// NodeRuntime: a deployable validator process component.
//
// Owns an event loop thread, the sans-IO ValidatorCore, the TCP mesh to all
// peers (one dialed connection per peer for sending; accepted connections
// deliver peer traffic), and optionally a write-ahead log for crash
// recovery. This mirrors the paper's networked multi-core validator (§4):
// tokio + raw TCP there, epoll + raw TCP here.
//
// Message frames (first payload byte is the type):
//   kHandshake: u32 validator id + 32-byte committee epoch seed
//   kBlock:     serialized block
//   kFetch:     varint count + (round, author, digest) refs
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/tcp.h"
#include "validator/validator.h"
#include "wal/wal.h"

namespace mahimahi::net {

struct NodeAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct NodeRuntimeConfig {
  ValidatorConfig validator;
  // peers[i] is validator i's listen address; peers[validator.id] is ours.
  std::vector<NodeAddress> peers;
  // Empty = no persistence.
  std::string wal_path;
  TimeMicros tick_interval = millis(50);
  TimeMicros dial_retry = millis(200);
  // Anti-entropy: how often to re-offer our latest own block to all peers.
  // Broadcasts to a peer whose connection is down are dropped by TCP, so
  // eventual delivery (§2.1, Lemma 9) needs a push-based repair path; the
  // peer's synchronizer pulls any missing ancestry from the offered block.
  TimeMicros resync_interval = millis(500);
};

class NodeRuntime {
 public:
  // Fires on the loop thread for every committed sub-DAG.
  using CommitHandler = std::function<void(const CommittedSubDag&)>;

  NodeRuntime(const Committee& committee, crypto::Ed25519PrivateKey key,
              NodeRuntimeConfig config);
  ~NodeRuntime();

  // Set before start().
  void set_commit_handler(CommitHandler handler) { commit_handler_ = std::move(handler); }

  // Replays the WAL (if any), starts the loop thread, listens and dials.
  void start();
  void stop();

  // Thread-safe client submission.
  void submit(std::vector<TxBatch> batches);

  // Thread-safe counters.
  std::uint64_t committed_transactions() const {
    return committed_tx_.load(std::memory_order_relaxed);
  }
  std::uint64_t committed_blocks() const {
    return committed_blocks_.load(std::memory_order_relaxed);
  }
  Round highest_round() const { return highest_round_.load(std::memory_order_relaxed); }

  ValidatorId id() const { return config_.validator.id; }
  std::uint16_t listen_port() const { return listen_port_.load(); }

 private:
  enum class MessageType : std::uint8_t { kHandshake = 1, kBlock = 2, kFetch = 3 };

  void loop_main();
  void dial_peer(ValidatorId peer);
  void on_peer_frame(ValidatorId peer, BytesView frame);
  void on_unidentified_connection(TcpConnectionPtr connection);
  void perform(Actions&& actions);
  void send_to_peer(ValidatorId peer, BytesView frame);
  void tick();
  Bytes encode_block(const Block& block) const;
  // Sends our latest own block to `peer` (all peers when kAllPeers); its
  // parent references let the receiver fetch anything else it is missing.
  static constexpr ValidatorId kAllPeers = ~0u;
  void offer_latest_block(ValidatorId peer);

  const Committee& committee_;
  NodeRuntimeConfig config_;
  std::unique_ptr<ValidatorCore> core_;
  std::unique_ptr<Wal> wal_;
  CommitHandler commit_handler_;

  EventLoop loop_;
  std::thread thread_;
  std::unique_ptr<TcpListener> listener_;
  std::vector<TcpConnectionPtr> outgoing_;  // index = peer id
  std::vector<TcpConnectionPtr> pending_incoming_;
  std::atomic<std::uint16_t> listen_port_{0};
  bool ticking_ = false;
  TimeMicros last_resync_ = 0;

  std::atomic<std::uint64_t> committed_tx_{0};
  std::atomic<std::uint64_t> committed_blocks_{0};
  std::atomic<Round> highest_round_{0};
};

}  // namespace mahimahi::net
