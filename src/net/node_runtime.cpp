#include "net/node_runtime.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>

#include "common/log.h"
#include "obs/export.h"
#include "serde/serde.h"
#include "validator/crypto_stage.h"

namespace mahimahi::net {

namespace {

// Cut-certificate share admission window around next_cut_index_: shares for
// boundaries further behind can no longer form a certificate this node would
// attach; indices further ahead would let a hostile peer grow per-boundary
// state without bound. The past window also bounds pending_cuts_ retention.
constexpr std::uint64_t kCertPastWindow = 16;
constexpr std::uint64_t kCertFutureWindow = 64;

// Smallest cut index whose canonical boundary slot is at or past min_slot.
std::uint64_t first_cut_index_at_or_after(SlotId min_slot, Round interval,
                                          const CommitterOptions& options) {
  std::uint64_t k = std::max<std::uint64_t>(
      std::uint64_t{1}, min_slot.round / std::max<Round>(interval, 1));
  while (k > 1 && !(cut_boundary_slot(k - 1, interval, options) < min_slot)) --k;
  while (cut_boundary_slot(k, interval, options) < min_slot) ++k;
  return k;
}

}  // namespace

std::size_t ingest_batch_cap(std::size_t max_batch, TimeMicros latency_budget,
                             TimeMicros ewma_per_block) {
  std::size_t cap = max_batch == 0 ? std::numeric_limits<std::size_t>::max() : max_batch;
  if (latency_budget > 0 && ewma_per_block > 0) {
    const auto by_budget = static_cast<std::size_t>(latency_budget / ewma_per_block);
    // The budget never shrinks a drain below the amortization floor. Most of
    // the RLC batch-verification gain is realized by ~8 signatures, so a
    // smaller batch RAISES per-block cost — and a cap derived from that
    // inflated cost is a bistable trap: one expensive single-frame drain
    // (slow environment: sanitizer build, cold caches, debug crypto) pins
    // the EWMA above the budget, the cap collapses to 1, amortization never
    // recovers, and verify throughput drops below the arrival rate for
    // good. Observed as a late-joining node whose ancestry fetch walk loses
    // the race against round production under ASan.
    cap = std::min(cap, std::max(kVerifyAmortizationFloor, by_budget));
  }
  return std::max<std::size_t>(1, cap);
}

NodeRuntime::NodeRuntime(const Committee& committee, crypto::Ed25519PrivateKey key,
                         NodeRuntimeConfig config)
    : committee_(committee),
      config_(std::move(config)),
      key_(key),
      registry_("validator=\"" + std::to_string(config_.validator.id) + "\""),
      tracer_(registry_),
      recorder_(obs::FlightRecorder::Options{config_.flightrec_ring_capacity}),
      watchdog_(registry_,
                obs::LoopWatchdogOptions{
                    .stall_budget = config_.loop_stall_budget,
                    .on_stall = [this](TimeMicros busy,
                                       TimeMicros now) { on_loop_stall(busy, now); }},
                "v" + std::to_string(config_.validator.id)),
      forensics_(CommitForensics::Options{
          .trace_capacity = config_.commit_trace_capacity}),
      loop_(config_.io_backend) {
  if (config_.verify_threads == 0) {
    // Inline (serial) ingestion has no workers to host the commit scan.
    config_.validator.parallel_commit = false;
  }
  // Metric handles first: the recovery path below already writes some of
  // them. Creation is the only locked step; every later touch is a relaxed
  // atomic on a stable object.
  committed_tx_ = &registry_.counter("mm_committed_transactions_total",
                                     "Transactions in committed sub-DAGs");
  committed_blocks_ =
      &registry_.counter("mm_committed_blocks_total", "Blocks in committed sub-DAGs");
  highest_round_ = &registry_.gauge("mm_highest_round", "Highest round in the local DAG");
  decode_errors_ = &registry_.counter("mm_decode_errors_total",
                                      "Block frames that failed to decode");
  verify_frames_dropped_ =
      &registry_.counter("mm_verify_frames_dropped_total",
                         "Frames shed because the verify queue was full");
  submit_rejected_ = &registry_.counter(
      "mm_submit_rejected_total", "Local submit() batches the mempool rejected");
  egress_frames_encoded_ = &registry_.counter(
      "mm_egress_frames_encoded_total", "Outbound block frames encoded once and fanned out");
  commit_scans_ =
      &registry_.counter("mm_commit_scans_total", "Off-loop commit-rule scans");
  commit_batches_applied_ = &registry_.counter("mm_commit_batches_applied_total",
                                               "Decision batches applied on the loop thread");
  commit_apply_micros_ = &registry_.counter(
      "mm_commit_apply_micros_total", "Loop-thread micros spent applying decision batches");
  checkpoints_written_ =
      &registry_.counter("mm_checkpoints_written_total", "Checkpoints cut and persisted");
  snapshot_catchups_ = &registry_.counter("mm_snapshot_catchups_total",
                                          "Peer checkpoints verified and installed");
  checkpoints_served_ = &registry_.counter("mm_checkpoints_served_total",
                                           "Checkpoint responses sent to catching-up peers");
  checkpoint_delta_cuts_ = &registry_.counter(
      "mm_checkpoint_delta_cuts_total", "Checkpoint cuts persisted as delta links");
  checkpoint_certs_ = &registry_.counter(
      "mm_checkpoint_certs_total", "Checkpoint certificates formed (2f+1 shares)");
  cert_shares_rejected_ = &registry_.counter(
      "mm_checkpoint_cert_shares_rejected_total",
      "Cut-certificate shares rejected (bad signature or payload mismatch)");
  certified_installs_ = &registry_.counter(
      "mm_checkpoint_certified_installs_total",
      "Snapshot catch-ups installed from a fully certified chain");
  uncertified_installs_ = &registry_.counter(
      "mm_checkpoint_uncertified_installs_total",
      "Snapshot catch-ups installed via the legacy uncertified trust path");
  worker_structurally_rejected_ =
      &registry_.counter("mm_ingest_worker_structural_rejects_total",
                         "Blocks failing structural validation on the verify workers");
  worker_crypto_rejected_ =
      &registry_.counter("mm_ingest_worker_crypto_rejects_total",
                         "Blocks failing crypto verification on the verify workers");
  core_structurally_rejected_ = &registry_.gauge(
      "mm_ingest_core_structural_rejects", "Core ingest stats mirror: structural rejects");
  core_crypto_rejected_ = &registry_.gauge("mm_ingest_core_crypto_rejects",
                                           "Core ingest stats mirror: crypto rejects");
  core_cache_hits_ = &registry_.gauge("mm_ingest_core_cache_hits",
                                      "Core ingest stats mirror: verifier-cache hits");
  core_verified_ =
      &registry_.gauge("mm_ingest_core_verified", "Core ingest stats mirror: verified blocks");
  core_preverified_ = &registry_.gauge("mm_ingest_core_preverified",
                                       "Core ingest stats mirror: preverified blocks");
  peer_rx_lag_ = &registry_.histogram(
      "mm_peer_rx_lag_micros",
      "Receive-side lag: author created_at to local receive stamp, clamped at 0");
  peer_rx_lag_by_peer_.reserve(committee_.size());
  for (ValidatorId author = 0; author < committee_.size(); ++author) {
    peer_rx_lag_by_peer_.push_back(&registry_.histogram(
        "mm_peer_rx_lag_micros_author" + std::to_string(author),
        "Receive-side lag for blocks authored by v" + std::to_string(author)));
  }
  peer_rx_lag_clamped_ = &registry_.counter(
      "mm_peer_rx_lag_clamped_total",
      "Lag samples clamped to 0 (author clock ahead of the local clock)");
  flightrec_stall_dumps_ = &registry_.counter(
      "mm_flightrec_stall_dumps_total",
      "Flight-recorder dump files written by the loop-stall watchdog");
  loop_.set_tick_observer(
      [this](TimeMicros busy, TimeMicros now) { watchdog_.observe_tick(busy, now); });
  core_ = std::make_unique<ValidatorCore>(committee_, key, config_.validator);
  // Share the core's pool (built or adopted by the ValidatorCore ctor):
  // clients and workers admit into it concurrently, the core drains it when
  // proposing.
  mempool_ = core_->mempool_handle();
  checkpointing_ = config_.validator.checkpoint_interval > 0 &&
                   config_.validator.committer.gc_depth > 0 &&
                   core_->checkpoint_capable();
  certifying_ = config_.validator.checkpoint_interval > 0 &&
                config_.validator.checkpoint_certify;
  if (config_.validator.execute_app) {
    // Before recovery: replayed commits must reach the state machine too.
    exec::ExecutionEngine::Options exec_options;
    exec_options.threads = config_.validator.execution_threads;
    exec_engine_ = std::make_unique<exec::ExecutionEngine>(
        exec_options,
        [this](const exec::WaveDelivery& wave) { on_wave_delivered(wave); });
  }
  if (!config_.wal_path.empty()) {
    // Recovery before the WAL is reopened for append. The segmented layout
    // (checkpointing active) prefers newest-valid-checkpoint + segment-
    // suffix replay; the monolithic layout replays the whole file.
    FileWal::Visitor visitor;
    visitor.on_block = [this](BlockPtr block, bool) {
      Actions actions = core_->recover_block(std::move(block));
      if (exec_engine_ != nullptr) {
        // Replay commits apply serially inline (ISSUE contract: the recovery
        // path never runs parallel waves) with no delivery callbacks — the
        // original run already stamped these batches' finality.
        for (const auto& sub_dag : actions.committed) exec_engine_->replay(sub_dag);
      }
    };
    std::unique_ptr<FramedWal> layout;
    if (checkpointing_) {
      // wal_path is a directory here: segments + checkpoints side by side.
      checkpoint_store_ = std::make_unique<CheckpointStore>(config_.wal_path);
      auto chain = checkpoint_store_->newest_valid_chain();
      if (!chain.empty()) {
        if (auto recovered = checkpoint_store_->load_newest_valid()) {
          auto data = std::move(*recovered);
          // load_newest_valid may have truncated a torn delta tail; keep only
          // the links that actually contributed to the recovered cut.
          while (!chain.empty() && chain.back().sequence > data.sequence) {
            chain.pop_back();
          }
          checkpoint_seq_ = data.sequence;
          last_checkpoint_horizon_ = data.horizon;
          chain_base_seq_ = chain.front().sequence;
          for (auto& link : chain) {
            ChainLinkRt rt;
            rt.sequence = link.sequence;
            rt.record = std::make_shared<const Bytes>(std::move(link.record));
            if (!link.cert.empty()) {
              // Sidecars already decode-gated by newest_valid_chain; the cut
              // index keys cert attachment after a restart.
              try {
                rt.cert = std::make_shared<const Bytes>(std::move(link.cert));
                rt.cut_index = decode_checkpoint_certificate(
                                   {rt.cert->data(), rt.cert->size()})
                                   .payload.cut_index;
              } catch (const serde::SerdeError&) {
                rt.cert.reset();
              }
            }
            chain_links_.push_back(std::move(rt));
          }
          latest_checkpoint_bytes_ = chain_links_.front().record;
          core_->install_checkpoint(data, 0);  // recovery: actions are moot
          if (exec_engine_ != nullptr && !data.app_state.empty()) {
            // The cut's app snapshot stands in for every sub-horizon commit;
            // the segment-suffix replay below lands the rest on top of it.
            exec_engine_->install_snapshot(
                {data.app_state.data(), data.app_state.size()});
          }
          MM_LOG(kInfo) << "v" << id() << " recovered checkpoint " << data.sequence
                        << " (horizon r" << data.horizon << ", "
                        << chain_links_.size() << "-link chain, "
                        << data.blocks.size() << " suffix blocks)";
          // The diff base for the next delta cut. The app snapshot travels
          // inside; the touched-key window restarts empty, which is exactly
          // the delta since this recovered state.
          last_cut_data_ = std::make_shared<const CheckpointData>(std::move(data));
        }
      }
      const auto replay = SegmentedWal::replay(config_.wal_path, visitor);
      if (replay.records > 0) {
        MM_LOG(kInfo) << "v" << id() << " replayed " << replay.records
                      << " records from " << replay.segments << " WAL segments"
                      << (replay.corrupt_tail ? " (torn tail dropped)" : "");
      }
      SegmentedWalOptions seg_options;
      seg_options.segment_bytes = config_.validator.wal_segment_bytes;
      seg_options.fsync_on_sync = config_.validator.wal_fsync;
      auto segmented = std::make_unique<SegmentedWal>(config_.wal_path, seg_options);
      seg_wal_ = segmented.get();
      layout = std::move(segmented);
    } else {
      const auto replay = FileWal::replay(config_.wal_path, visitor);
      if (replay.records > 0) {
        MM_LOG(kInfo) << "v" << id() << " recovered " << replay.records
                      << " WAL records"
                      << (replay.corrupt_tail ? " (torn tail dropped)" : "");
      }
      layout = std::make_unique<FileWal>(config_.wal_path, config_.validator.wal_fsync);
    }
    highest_round_->set(static_cast<std::int64_t>(core_->dag().highest_round()));
    if (config_.validator.wal_group_commit) {
      GroupCommitWalOptions wal_options;
      wal_options.flush_interval = config_.validator.wal_flush_interval;
      wal_options.log_context = "v" + std::to_string(id()) + "/wal";
      // One I/O plane: when the loop's data plane resolved to io_uring, the
      // WAL writer gets its own ring too (linked write→fsync per group).
      wal_options.use_io_uring = loop_.io_backend_kind() == IoBackendKind::kUring;
      // Durability acks run on the loop thread: they release gated proposal
      // broadcasts, which touch loop-owned connection state.
      auto group = std::make_unique<GroupCommitWal>(
          std::move(layout), wal_options,
          [this](std::function<void()> ack) { loop_.post(std::move(ack)); });
      group_wal_ = group.get();
      wal_ = std::move(group);
    } else {
      wal_ = std::move(layout);
    }
  } else {
    // No persistence: NullWal acks durability synchronously, so
    // wal_group_commit without a wal_path cannot wedge the proposal path.
    wal_ = std::make_unique<NullWal>();
  }
  if (checkpointing_ || certifying_) {
    // First boundary to cross: at or past the replayed consumption head (a
    // boundary the replay already passed cannot be cut — the execution
    // engine has been fed beyond it) and strictly past the recovered cut.
    const Round interval = config_.validator.checkpoint_interval;
    next_cut_index_ = first_cut_index_at_or_after(
        core_->committer().next_pending_slot(), interval,
        config_.validator.committer);
    while (last_cut_data_ != nullptr &&
           !(last_cut_data_->head < cut_boundary_slot(
                                        next_cut_index_, interval,
                                        config_.validator.committer))) {
      ++next_cut_index_;
    }
  }
  outgoing_.resize(committee_.size());
  if (config_.verify_threads > 0) {
    verify_pool_ = std::make_unique<WorkerPool>(config_.verify_threads,
                                                "v" + std::to_string(id()) + "/wk");
  }
  if (core_->parallel_commit_active()) {
    // Seed the scanner from the post-recovery DAG and consumption head; the
    // worker-pool queue orders this construction before the first scan.
    commit_scanner_ = std::make_unique<CommitScanner>(
        core_->dag(), core_->committer().next_pending_slot(), committee_,
        config_.validator.committer);
  }
  // Constructor tail: every bespoke-counter source (io backend, mempool,
  // group WAL) now exists, so the scrape-time bridges can bind to them.
  register_callback_metrics();
}

void NodeRuntime::register_callback_metrics() {
  // I/O plane: the backend's own atomics stay where they are; dump() reads
  // them through these thin callbacks. The io_plane_report() accessor keeps
  // reading the same sources directly, so benches see identical numbers.
  registry_.counter_fn(
      "mm_io_submit_syscalls_total",
      [this] { return loop_.io_backend().stats().submit_syscalls; },
      "Data-plane kernel entries (recv/sendmsg on epoll, io_uring_enter on uring)");
  registry_.counter_fn(
      "mm_io_send_ops_total", [this] { return loop_.io_backend().stats().send_ops; },
      "Data-plane send operations completed");
  registry_.counter_fn(
      "mm_io_recv_ops_total", [this] { return loop_.io_backend().stats().recv_ops; },
      "Data-plane receive operations completed");
  registry_.counter_fn(
      "mm_io_bytes_sent_total", [this] { return loop_.io_backend().stats().bytes_sent; },
      "Bytes sent on the consensus TCP plane");
  registry_.counter_fn(
      "mm_io_bytes_received_total",
      [this] { return loop_.io_backend().stats().bytes_received; },
      "Bytes received on the consensus TCP plane");
  registry_.counter_fn(
      "mm_loop_wait_syscalls_total", [this] { return loop_.wait_syscalls(); },
      "epoll_wait multiplexing calls made by the event loop");
  registry_.counter_fn(
      "mm_loop_busy_micros_total",
      [this] { return static_cast<std::uint64_t>(loop_.busy_micros()); },
      "Loop-thread micros spent outside the poll wait");
  registry_.gauge_fn(
      "mm_verify_cost_ewma_micros",
      [this] {
        return static_cast<std::int64_t>(verify_cost_ewma_.load(std::memory_order_relaxed));
      },
      "EWMA of per-block decode+verify cost driving the adaptive ingest batch");
  registry_.counter_fn(
      "mm_mempool_accepted_total", [this] { return mempool_->stats().accepted; },
      "Transaction batches admitted into the shared mempool");
  registry_.counter_fn(
      "mm_mempool_duplicate_total", [this] { return mempool_->stats().duplicate; },
      "Batches rejected as duplicates");
  registry_.counter_fn(
      "mm_mempool_client_quota_total", [this] { return mempool_->stats().client_quota; },
      "Batches rejected by the per-client byte quota");
  registry_.counter_fn(
      "mm_mempool_shard_full_total", [this] { return mempool_->stats().shard_full; },
      "Batches rejected because the client's shard was at its cap");
  registry_.counter_fn(
      "mm_mempool_pool_full_total", [this] { return mempool_->stats().pool_full; },
      "Batches rejected by the global byte cap");
  if (group_wal_ != nullptr) {
    registry_.counter_fn(
        "mm_wal_groups_flushed_total", [this] { return group_wal_->groups_flushed(); },
        "WAL write+sync groups landed by the writer thread");
    registry_.counter_fn(
        "mm_wal_records_appended_total", [this] { return group_wal_->records_appended(); },
        "Records staged into the group-commit WAL");
    registry_.counter_fn(
        "mm_wal_records_flushed_total", [this] { return group_wal_->records_flushed(); },
        "Records made durable by a group flush");
    registry_.counter_fn(
        "mm_wal_flush_micros_total", [this] { return group_wal_->flush_micros(); },
        "Micros the WAL writer spent inside group flushes");
    registry_.counter_fn(
        "mm_wal_flush_syscalls_total",
        [this] { return group_wal_->group_flush_syscalls(); },
        "Kernel entries for group flushes (write+fsync, or one linked uring submit)");
    registry_.gauge_fn(
        "mm_wal_ring_active",
        [this] { return static_cast<std::int64_t>(group_wal_->wal_ring_active() ? 1 : 0); },
        "1 when the WAL writer flushes through its own io_uring");
  }
  if (exec_engine_ != nullptr) {
    // Execution engine: stats() copies a mutex-guarded snapshot the merge
    // thread refreshes per wave, so scrapes never race the store.
    registry_.counter_fn(
        "mm_exec_subdags_total", [this] { return exec_engine_->stats().subdags; },
        "Committed sub-DAGs fully executed and retired");
    registry_.counter_fn(
        "mm_exec_waves_total", [this] { return exec_engine_->stats().waves; },
        "Dependency waves merged into the replicated state");
    registry_.counter_fn(
        "mm_exec_batches_executed_total",
        [this] { return exec_engine_->stats().batches_executed; },
        "Batches that applied state-machine commands");
    registry_.counter_fn(
        "mm_exec_commands_total",
        [this] { return exec_engine_->stats().commands_applied; },
        "KV commands applied to the replicated store");
    registry_.counter_fn(
        "mm_exec_parallel_batches_total",
        [this] { return exec_engine_->stats().parallel_batches; },
        "Batches executed in a wave alongside non-conflicting peers");
    registry_.counter_fn(
        "mm_exec_conflict_delayed_total",
        [this] { return exec_engine_->stats().conflict_delayed; },
        "Batches pushed past the earliest wave by declared conflicts");
    registry_.counter_fn(
        "mm_exec_early_deliveries_total",
        [this] { return exec_engine_->stats().early_deliveries; },
        "Batches delivered before their sub-DAG's last wave retired");
    registry_.counter_fn(
        "mm_exec_dedup_total", [this] { return exec_engine_->stats().deduplicated; },
        "Committed batches skipped as already-executed duplicates");
    registry_.counter_fn(
        "mm_exec_malformed_total", [this] { return exec_engine_->stats().malformed; },
        "Committed batches whose KV payload failed to decode");
    registry_.counter_fn(
        "mm_exec_opaque_total", [this] { return exec_engine_->stats().opaque; },
        "Batches executed under the conservative conflicts-with-all class");
    registry_.counter_fn(
        "mm_exec_access_violations_total",
        [this] { return exec_engine_->stats().access_violations; },
        "Batches whose payload escaped its declared access set (demoted to opaque)");
  }
}

NodeRuntime::~NodeRuntime() { stop(); }

void NodeRuntime::start() {
  thread_ = std::thread([this] { loop_main(); });
  while (listen_port_.load() == 0) std::this_thread::yield();
}

void NodeRuntime::stop() {
  // Workers first: after stop() they hold no reference to any member, so the
  // loop (and everything it owns) can tear down safely.
  if (verify_pool_) verify_pool_->stop();
  if (thread_.joinable()) {
    loop_.stop();
    thread_.join();
  }
  // WAL writer last: it may still be flushing a final group and posting acks
  // through loop_, so it must be joined while the loop object is alive (the
  // stopped loop queues the posts and never runs them — the sends they gate
  // have no live connections left anyway).
  if (group_wal_) group_wal_->shutdown();
}

void NodeRuntime::loop_main() {
  set_log_context("v" + std::to_string(id()));
  recorder_.label_thread("loop");
  if (config_.admin_port >= 0) {
    // Before the consensus listener: start() spins on listen_port_, so the
    // admin port must already be published when that gate opens.
    admin_ = std::make_unique<AdminServer>(
        loop_, static_cast<std::uint16_t>(config_.admin_port),
        [this](std::string_view path,
               std::string& content_type) -> std::optional<std::string> {
          if (path == "/metrics" || path == "/") {
            content_type = "text/plain; version=0.0.4; charset=utf-8";
            return obs::render_prometheus(registry_.dump());
          }
          if (path == "/metrics.json") {
            content_type = "application/json";
            return obs::render_json(registry_.dump());
          }
          if (path == "/status") {
            content_type = "application/json";
            return render_status_json();
          }
          if (path == "/trace/commits") {
            // The renderer runs on the loop thread, where forensics_ lives —
            // no lock needed.
            content_type = "application/json";
            return forensics_.to_json();
          }
          if (path == "/flightrec") {
            content_type = "application/octet-stream";
            recorder_.record_now(obs::FlightEventType::kSnapshot, /*reason=*/0);
            const Bytes dump = recorder_.snapshot_binary();
            return std::string(reinterpret_cast<const char*>(dump.data()),
                               dump.size());
          }
          return std::nullopt;
        });
    admin_port_.store(admin_->port(), std::memory_order_relaxed);
  }
  listener_ = std::make_unique<TcpListener>(
      loop_, config_.peers[id()].port,
      [this](TcpConnectionPtr connection) { on_unidentified_connection(connection); });
  listen_port_.store(listener_->port());

  for (ValidatorId peer = 0; peer < committee_.size(); ++peer) {
    if (peer != id()) dial_peer(peer);
  }
  loop_.run();

  // Teardown on the loop thread.
  for (auto& connection : outgoing_) {
    if (connection) connection->close();
  }
  for (auto& connection : pending_incoming_) {
    if (connection) connection->close();
  }
  admin_.reset();
  listener_.reset();
  wal_->sync();
}

void NodeRuntime::dial_peer(ValidatorId peer) {
  const auto& address = config_.peers[peer];
  tcp_connect(loop_, address.host, address.port, [this, peer](TcpConnectionPtr connection) {
    if (!loop_.running() && connection == nullptr) return;
    if (connection == nullptr) {
      loop_.schedule(config_.dial_retry, [this, peer] { dial_peer(peer); });
      return;
    }
    outgoing_[peer] = connection;
    connection->start(
        [](BytesView) {},  // outgoing connections are send-only
        [this, peer] {
          outgoing_[peer] = nullptr;
          loop_.schedule(config_.dial_retry, [this, peer] { dial_peer(peer); });
        });
    // Identify ourselves.
    serde::Writer w;
    w.u8(static_cast<std::uint8_t>(MessageType::kHandshake));
    w.u32(id());
    w.digest(committee_.epoch_seed());
    connection->send_frame({w.data().data(), w.data().size()});

    // Resynchronize the (re)connected peer: everything broadcast while this
    // link was down was dropped by TCP, and the protocol's liveness rests on
    // eventual delivery (Lemma 9). Offering our latest own block lets the
    // peer pull the rest of the missing history through its synchronizer.
    offer_latest_block(peer);

    // Start consensus once we can reach a quorum (counting ourselves).
    if (!ticking_) {
      std::uint32_t connected = 1;
      for (const auto& c : outgoing_) connected += c != nullptr;
      if (connected >= committee_.quorum_threshold()) {
        ticking_ = true;
        tick();
      }
    }
  });
}

void NodeRuntime::on_unidentified_connection(TcpConnectionPtr connection) {
  pending_incoming_.push_back(connection);
  auto weak = std::weak_ptr<TcpConnection>(connection);
  connection->start(
      [this, weak](BytesView frame) {
        // First frame must be a handshake; then the connection is re-bound
        // to the identified peer.
        auto connection = weak.lock();
        if (connection == nullptr) return;
        try {
          serde::Reader r(frame);
          if (static_cast<MessageType>(r.u8()) != MessageType::kHandshake) {
            connection->close();
            return;
          }
          const ValidatorId peer = r.u32();
          const Digest seed = r.digest();
          if (peer >= committee_.size() || seed != committee_.epoch_seed()) {
            connection->close();
            return;
          }
          std::erase(pending_incoming_, connection);
          connection->start(
              [this, peer](BytesView peer_frame) { on_peer_frame(peer, peer_frame); },
              [] {});
        } catch (const serde::SerdeError&) {
          connection->close();
        }
      },
      [this, weak] {
        if (auto connection = weak.lock()) std::erase(pending_incoming_, connection);
      });
}

void NodeRuntime::on_peer_frame(ValidatorId peer, BytesView frame) {
  recorder_.record_now(obs::FlightEventType::kFrameRx, peer, frame.size());
  try {
    serde::Reader r(frame);
    const auto type = static_cast<MessageType>(r.u8());
    switch (type) {
      case MessageType::kBlock: {
        const BytesView payload = r.raw(r.remaining());
        if (verify_pool_) {
          // Decode + crypto verification happen on the worker pool; the
          // loop thread only copies the frame out of the socket buffer.
          enqueue_block_frame(peer, Bytes(payload.begin(), payload.end()));
        } else {
          const TimeMicros received_at = steady_now_micros();
          auto block = std::make_shared<const Block>(Block::deserialize(payload));
          record_rx_lag(*block, received_at);
          recorder_.record(obs::FlightEventType::kBlockAdmit, received_at,
                           block->author(), block->round());
          perform(core_->on_block(std::move(block), peer, steady_now_micros()));
        }
        break;
      }
      case MessageType::kFetch: {
        const std::uint64_t count = r.varint();
        if (count > 10000) throw serde::SerdeError("absurd fetch count");
        std::vector<BlockRef> refs;
        refs.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          BlockRef ref;
          ref.round = r.varint();
          ref.author = r.u32();
          ref.digest = r.digest();
          refs.push_back(ref);
        }
        perform(core_->on_fetch_request(refs, peer, steady_now_micros()));
        break;
      }
      case MessageType::kHorizon: {
        perform(core_->on_peer_horizon(peer, r.varint(), steady_now_micros()));
        break;
      }
      case MessageType::kCheckpointRequest: {
        serve_checkpoint(peer);
        break;
      }
      case MessageType::kCheckpointResponse: {
        // Solicited-window gate: only the peer we asked, and only ONE
        // response per request — the window closes on receipt, not on
        // install, so a response that fails verification cannot hold it
        // open for an unlimited stream of multi-MB frames.
        if (!catchup_request_outstanding_ || peer != catchup_request_peer_) {
          break;  // unsolicited: drop unread
        }
        catchup_request_outstanding_ = false;
        const BytesView payload = r.raw(r.remaining());
        Bytes copy(payload.begin(), payload.end());
        if (verify_pool_) {
          // Decode + suffix crypto verification are the expensive parts;
          // they are pure functions of the bytes and the committee.
          verify_pool_->submit([this, peer, copy = std::move(copy)]() mutable {
            verify_checkpoint_response(peer, std::move(copy));
          });
        } else {
          verify_checkpoint_response(peer, std::move(copy));
        }
        break;
      }
      case MessageType::kCertShare: {
        if (!certifying_) break;
        on_cert_share(decode_cut_share(r.raw(r.remaining())));
        break;
      }
      case MessageType::kCheckpointChain: {
        // Same solicited-window gate as kCheckpointResponse: one chain per
        // request, only from the peer we asked.
        if (!catchup_request_outstanding_ || peer != catchup_request_peer_) {
          break;  // unsolicited: drop unread
        }
        catchup_request_outstanding_ = false;
        const BytesView payload = r.raw(r.remaining());
        Bytes copy(payload.begin(), payload.end());
        if (verify_pool_) {
          verify_pool_->submit([this, peer, copy = std::move(copy)]() mutable {
            verify_chain_response(peer, std::move(copy));
          });
        } else {
          verify_chain_response(peer, std::move(copy));
        }
        break;
      }
      default:
        break;  // late handshakes and unknown types are ignored
    }
  } catch (const serde::SerdeError& error) {
    MM_LOG(kWarn) << "v" << id() << " bad frame from v" << peer << ": " << error.what();
  }
}

void NodeRuntime::enqueue_block_frame(ValidatorId peer, Bytes payload) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(verify_mutex_);
    if (pending_frames_.size() >= config_.max_pending_verify_frames) {
      // Overload shedding: a peer outrunning verification throughput must
      // not grow the queue without bound. Anti-entropy and the fetch path
      // re-deliver dropped blocks once the backlog clears.
      verify_frames_dropped_->add();
      return;
    }
    pending_frames_.push_back(RawFrame{peer, std::move(payload), steady_now_micros()});
    if (!verify_scheduled_) {
      verify_scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) verify_pool_->submit([this] { verify_pending_frames(); });
}

void NodeRuntime::verify_pending_frames() {
  recorder_.label_thread("worker");
  // One drain loop at a time (verify_scheduled_ stays true until the queue
  // is empty): concurrent drains could post their batches to the loop out
  // of arrival order, parking children ahead of their in-flight parents and
  // broadcasting spurious fetch requests. Batching, not thread fan-out, is
  // where the verification win comes from anyway.
  for (;;) {
    std::vector<RawFrame> frames;
    {
      std::lock_guard<std::mutex> lock(verify_mutex_);
      if (pending_frames_.empty()) {
        verify_scheduled_ = false;
        return;
      }
      // Adaptive batching: bound how much of the backlog one pass takes so
      // a block arriving mid-burst reaches the core within roughly the
      // latency budget instead of waiting out the whole queue.
      const std::size_t cap =
          ingest_batch_cap(config_.validator.max_ingest_batch,
                           config_.validator.ingest_latency_budget,
                           verify_cost_ewma_.load(std::memory_order_relaxed));
      const std::size_t take = std::min(cap, pending_frames_.size());
      frames.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        frames.push_back(std::move(pending_frames_.front()));
        pending_frames_.pop_front();
      }
    }
    const TimeMicros start = steady_now_micros();
    const std::size_t verified = verify_frames(std::move(frames));
    // Update the cost estimate only from frames that reached the crypto
    // stage: floods of near-free drops (duplicate re-offers, decode
    // failures) must not drag the EWMA to zero and disable the latency
    // shaping right before a burst of genuine blocks.
    if (verified > 0) {
      const TimeMicros per_block =
          (steady_now_micros() - start) / static_cast<TimeMicros>(verified);
      const TimeMicros prev = verify_cost_ewma_.load(std::memory_order_relaxed);
      verify_cost_ewma_.store(prev == 0 ? per_block : (3 * prev + per_block) / 4,
                              std::memory_order_relaxed);
    }
  }
}

std::size_t NodeRuntime::verify_frames(std::vector<RawFrame> frames) {

  // Stage: decode + structural validation + dedup.
  std::vector<BlockPtr> blocks;
  std::vector<ValidatorId> senders;
  blocks.reserve(frames.size());
  senders.reserve(frames.size());
  std::unordered_set<Digest, DigestHasher> in_batch;
  for (const auto& frame : frames) {
    BlockPtr block;
    try {
      block = std::make_shared<const Block>(
          Block::deserialize({frame.payload.data(), frame.payload.size()}));
    } catch (const serde::SerdeError& error) {
      decode_errors_->add();
      MM_LOG(kWarn) << "v" << id() << " bad block frame from v" << frame.peer << ": "
                    << error.what();
      continue;
    }
    // Decode span starts at the loop thread's receive stamp, so it includes
    // the verify-queue wait — the number that grows first under overload.
    const TimeMicros decoded_at = steady_now_micros();
    tracer_.record_stage(obs::Stage::kDecode, decoded_at - frame.received_at);
    // Already retained by the core (anti-entropy re-offer) or duplicated
    // within this very batch: skip before the crypto stage.
    if (!in_batch.insert(block->digest()).second) continue;
    if (forwarded_digests_.contains(block->digest())) continue;
    const BlockValidity structural = validate_block_structure(*block, committee_);
    tracer_.record_stage(obs::Stage::kStructural, steady_now_micros() - decoded_at);
    if (structural != BlockValidity::kValid) {
      worker_structurally_rejected_->add();
      MM_LOG(kDebug) << "v" << id() << " rejected block from v" << frame.peer << ": "
                     << to_string(structural);
      continue;
    }
    // First sight of a structurally valid block: the receive-side lag stamp
    // (author's created_at against the loop thread's receive stamp) and the
    // admit event. Dedup above keeps re-deliveries from double-counting.
    record_rx_lag(*block, frame.received_at);
    recorder_.record(obs::FlightEventType::kBlockAdmit, frame.received_at,
                     block->author(), block->round());
    blocks.push_back(std::move(block));
    senders.push_back(frame.peer);
  }

  // Stage: the shared crypto stage (validator/crypto_stage.h) — verifier-
  // cache consult (a configured shared cache short-circuits signatures a
  // co-located runtime already verified), batched coin-share checks, one
  // RLC signature batch with bisecting fallback. Safe off-thread: the
  // committee is immutable and the cache internally locked.
  const TimeMicros crypto_start = steady_now_micros();
  const CryptoStageResult stage =
      run_crypto_stage(blocks, committee_, config_.validator.validation,
                       config_.validator.signature_cache.get());
  if (!blocks.empty()) {
    // Batch-amortized: record the per-block mean, weighted by the batch size.
    tracer_.record_stage(
        obs::Stage::kCryptoVerify,
        (steady_now_micros() - crypto_start) / static_cast<TimeMicros>(blocks.size()),
        blocks.size());
  }

  std::vector<IngestBlock> items;
  items.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (stage.verdicts[i] != BlockValidity::kValid) {
      worker_crypto_rejected_->add();
      MM_LOG(kDebug) << "v" << id() << " rejected block from v" << senders[i] << ": "
                     << to_string(stage.verdicts[i]);
      continue;
    }
    items.push_back(IngestBlock{std::move(blocks[i]), senders[i], true,
                                stage.cache_hit[i] != 0});
  }
  const std::size_t crypto_staged = blocks.size();
  if (items.empty()) return crypto_staged;

  // Hand the verified batch back to the loop thread; the core never runs
  // concurrently with itself. The forwarded-digest record is written there,
  // AFTER the core decides: a block the synchronizer drops under
  // back-pressure must stay re-deliverable through the fetch path.
  std::vector<Digest> digests;
  digests.reserve(items.size());
  for (const auto& item : items) digests.push_back(item.block->digest());
  const TimeMicros verified_at = steady_now_micros();
  loop_.post([this, items = std::move(items), digests = std::move(digests),
              verified_at]() mutable {
    const TimeMicros picked_up = steady_now_micros();
    tracer_.record_stage(obs::Stage::kInsertQueue, picked_up - verified_at,
                         digests.size());
    perform(core_->on_blocks(std::move(items), picked_up));
    tracer_.record_stage(obs::Stage::kDagInsert, steady_now_micros() - picked_up);
    for (const auto& digest : digests) {
      if (core_->knows_block(digest)) forwarded_digests_.insert(digest);
    }
  });
  return crypto_staged;
}

IngestStats NodeRuntime::ingest_stats() const {
  IngestStats stats;
  stats.structurally_rejected =
      static_cast<std::uint64_t>(core_structurally_rejected_->value()) +
      worker_structurally_rejected_->value();
  stats.crypto_rejected = static_cast<std::uint64_t>(core_crypto_rejected_->value()) +
                          worker_crypto_rejected_->value();
  stats.cache_hits = static_cast<std::uint64_t>(core_cache_hits_->value());
  stats.verified = static_cast<std::uint64_t>(core_verified_->value());
  stats.preverified = static_cast<std::uint64_t>(core_preverified_->value());
  return stats;
}

NodeRuntime::IoPlaneReport NodeRuntime::io_plane_report() const {
  IoPlaneReport report;
  const IoPlaneStats stats = loop_.io_backend().stats();
  report.backend = loop_.io_backend().name();
  report.submit_syscalls = stats.submit_syscalls;
  report.send_ops = stats.send_ops;
  report.recv_ops = stats.recv_ops;
  report.bytes_sent = stats.bytes_sent;
  report.bytes_received = stats.bytes_received;
  report.wait_syscalls = loop_.wait_syscalls();
  report.loop_busy_micros = static_cast<std::uint64_t>(loop_.busy_micros());
  if (group_wal_ != nullptr) {
    report.wal_flush_syscalls = group_wal_->group_flush_syscalls();
    report.wal_groups = group_wal_->groups_flushed();
    report.wal_ring_active = group_wal_->wal_ring_active();
  }
  return report;
}

Bytes NodeRuntime::encode_block(const Block& block) const {
  serde::Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::kBlock));
  const Bytes encoded = block.serialize();
  w.raw({encoded.data(), encoded.size()});
  return std::move(w).take();
}

void NodeRuntime::send_to_peer(ValidatorId peer, BytesView frame) {
  if (const auto& connection = outgoing_[peer]; connection && !connection->closed()) {
    recorder_.record_now(obs::FlightEventType::kFrameTx, peer, frame.size());
    connection->send_frame(frame);
  }
}

void NodeRuntime::send_shared(ValidatorId target, const SharedFrame& frame) {
  if (target == kAllPeers) {
    recorder_.record_now(obs::FlightEventType::kFrameTx, ~std::uint64_t{0},
                         frame->size());
    for (ValidatorId peer = 0; peer < committee_.size(); ++peer) {
      if (peer == id()) continue;
      if (const auto& connection = outgoing_[peer]; connection && !connection->closed()) {
        connection->send_frame(frame);
      }
    }
    return;
  }
  if (const auto& connection = outgoing_[target]; connection && !connection->closed()) {
    recorder_.record_now(obs::FlightEventType::kFrameTx, target, frame->size());
    connection->send_frame(frame);
  }
}

void NodeRuntime::dispatch_egress(std::vector<EgressItem> items) {
  if (items.empty()) return;
  if (egress_offload_active()) {
    enqueue_egress(std::move(items));
    return;
  }
  // Inline path (no worker pool, or offload disabled): still encode once per
  // block and fan the shared frame out.
  for (const auto& item : items) {
    const SharedFrame frame = make_shared_frame(encode_block(*item.block));
    egress_frames_encoded_->add();
    send_shared(item.target, frame);
  }
}

void NodeRuntime::enqueue_egress(std::vector<EgressItem> items) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(egress_mutex_);
    pending_egress_.insert(pending_egress_.end(),
                           std::make_move_iterator(items.begin()),
                           std::make_move_iterator(items.end()));
    if (!egress_scheduled_) {
      egress_scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) verify_pool_->submit([this] { encode_pending_egress(); });
}

void NodeRuntime::encode_pending_egress() {
  recorder_.label_thread("worker");
  // One drain loop at a time (egress_scheduled_ stays true until the queue
  // is empty), so encoded frames post back — and therefore hit the sockets —
  // in enqueue order; a peer then never sees our round r+1 proposal before
  // round r just because two drains raced.
  for (;;) {
    std::vector<EgressItem> items;
    {
      std::lock_guard<std::mutex> lock(egress_mutex_);
      if (pending_egress_.empty()) {
        egress_scheduled_ = false;
        return;
      }
      items.swap(pending_egress_);
    }
    std::vector<std::pair<ValidatorId, SharedFrame>> sends;
    sends.reserve(items.size());
    for (const auto& item : items) {
      // Pure CPU over immutable blocks: safe off-thread, exactly like the
      // verify stage's decode.
      sends.emplace_back(item.target, make_shared_frame(encode_block(*item.block)));
      egress_frames_encoded_->add();
    }
    loop_.post([this, sends = std::move(sends)] {
      for (const auto& [target, frame] : sends) send_shared(target, frame);
    });
  }
}

void NodeRuntime::perform(Actions&& actions) {
  // The sans-IO core and everything here run exclusively on the loop
  // thread; workers only decode/verify, scan commits, and encode egress.
  assert(loop_.in_loop_thread());
  const TimeMicros perform_now = steady_now_micros();
  for (const auto& block : actions.inserted) {
    wal_->append_block(*block, block->author() == id());
    // Insert stamp: opens the commit-wait span closed by sub_dag_committed.
    tracer_.block_inserted(block->digest(), perform_now);
    recorder_.record(obs::FlightEventType::kBlockInsert, perform_now,
                     block->author(), block->round());
    // Forensics arrival stamp: commit traces attribute wave closure to the
    // latest of these per sub-DAG.
    forensics_.block_arrived(block->digest(), perform_now);
  }
  if (!actions.inserted.empty()) {
    // Inline WAL: make the batch durable now, exactly as before. Group
    // commit skips this — records ride the writer's interval/budget flushes,
    // and the only send that must wait for durability (the own-proposal
    // broadcast below) is gated on the ack instead.
    if (group_wal_ == nullptr) {
      wal_->sync();
      // The whole batch became durable together: each block waited the full
      // sync duration.
      tracer_.record_stage(obs::Stage::kWalDurable, steady_now_micros() - perform_now,
                           actions.inserted.size());
      recorder_.record_now(obs::FlightEventType::kWalFlush, actions.inserted.size());
    } else {
      // Group path: the span closes when the writer's durability ack posts
      // back to the loop thread.
      wal_->on_durable([this, appended_at = perform_now,
                        count = actions.inserted.size()] {
        tracer_.record_stage(obs::Stage::kWalDurable,
                             steady_now_micros() - appended_at, count);
        recorder_.record_now(obs::FlightEventType::kWalFlush, count);
      });
    }
    // Parallel commit: the insertion stream feeds the worker-side replica;
    // the scan it triggers posts decisions back through
    // apply_commit_decisions.
    if (commit_scanner_ != nullptr) enqueue_commit_blocks(actions.inserted);
  }

  if (!actions.broadcast.empty()) {
    // Non-equivocation rests on never broadcasting an own block that a
    // restart could forget: the send waits for WAL durability. On the
    // inline path the batch sync above already covered these appends (own
    // proposals are always in actions.inserted), so dispatch directly
    // rather than paying on_durable's redundant second sync; the group WAL
    // posts the ack from its writer thread once the covering group is on
    // disk.
    std::vector<EgressItem> items;
    items.reserve(actions.broadcast.size());
    for (const auto& block : actions.broadcast) items.push_back({block, kAllPeers});
    if (group_wal_ == nullptr) {
      dispatch_egress(std::move(items));
    } else {
      wal_->on_durable([this, items = std::move(items)]() mutable {
        dispatch_egress(std::move(items));
      });
    }
  }

  for (const auto& request : actions.fetch_requests) {
    serde::Writer w;
    w.u8(static_cast<std::uint8_t>(MessageType::kFetch));
    w.varint(request.refs.size());
    for (const auto& ref : request.refs) {
      w.varint(ref.round);
      w.u32(ref.author);
      w.digest(ref.digest);
    }
    send_to_peer(request.peer, {w.data().data(), w.data().size()});
  }

  for (const auto& notice : actions.horizon_notices) {
    serde::Writer w;
    w.u8(static_cast<std::uint8_t>(MessageType::kHorizon));
    w.varint(notice.horizon);
    send_to_peer(notice.peer, {w.data().data(), w.data().size()});
  }

  for (const ValidatorId peer : actions.checkpoint_requests) {
    serde::Writer w;
    w.u8(static_cast<std::uint8_t>(MessageType::kCheckpointRequest));
    send_to_peer(peer, {w.data().data(), w.data().size()});
    catchup_request_outstanding_ = true;
    catchup_request_peer_ = peer;
  }

  for (const auto& response : actions.responses) {
    // Already-durable blocks (they are in the DAG): no gate, straight to the
    // egress encoder.
    std::vector<EgressItem> items;
    items.reserve(response.blocks.size());
    for (const auto& block : response.blocks) items.push_back({block, response.peer});
    dispatch_egress(std::move(items));
  }

  for (const auto& sub_dag : actions.committed) {
    // Boundary crossings fire BEFORE this sub-DAG reaches execution: at the
    // crossing of B_k the engine has been fed exactly the commits with
    // slot < B_k, which is what makes the cut's app digest canonical.
    handle_cut_boundaries(sub_dag.slot, actions);
    committed_blocks_->add(sub_dag.blocks.size());
    committed_tx_->add(sub_dag.transaction_count());
    // Closes the per-block commit-wait spans and records finality for every
    // client-stamped batch, weighted by transaction count — unless the
    // execution engine owns finality, in which case the stamps fire per
    // retired wave (on_wave_delivered) and only the commit-wait spans close
    // here.
    const TimeMicros committed_at = steady_now_micros();
    recorder_.record(obs::FlightEventType::kCommit, committed_at,
                     sub_dag.leader != nullptr ? sub_dag.leader->author() : 0,
                     sub_dag.slot.round);
    // The commit trace: arrival offsets were stamped at insert time; the
    // post-decision breakdown fills in below (apply inline, durable on the
    // WAL ack, execute at delivery).
    CommitTrace& trace = forensics_.on_committed(sub_dag, committed_at);
    trace.scan_micros = last_scan_micros_.load(std::memory_order_relaxed);
    trace.durable_pending = true;
    trace.execute_pending = exec_engine_ != nullptr;
    tracer_.sub_dag_committed(sub_dag, committed_at,
                              /*record_finality=*/exec_engine_ == nullptr);
    if (commit_handler_) {
      const TimeMicros execute_start = steady_now_micros();
      commit_handler_(sub_dag);
      if (exec_engine_ == nullptr) {
        // Without an engine the handler IS the execution stage; with one the
        // kExecute span is recorded at wave retirement instead.
        const TimeMicros handler_micros = steady_now_micros() - execute_start;
        tracer_.record_stage(obs::Stage::kExecute, handler_micros,
                             sub_dag.blocks.size());
        trace.execute_micros = handler_micros;
      }
    }
    if (exec_engine_ != nullptr) {
      // Single-drain handoff to the merge thread (inline apply when
      // execution_threads == 0); commit order is preserved by the queue.
      exec_engine_->execute(sub_dag, committed_at);
    }
    trace.apply_micros = steady_now_micros() - committed_at;
  }
  if (!actions.committed.empty()) {
    // Durable breakdown: the next group flush covers every commit above (the
    // decisions ride the same WAL); inline WALs are already durable here.
    if (group_wal_ != nullptr) {
      wal_->on_durable([this] { forensics_.durable_ack(steady_now_micros()); });
    } else {
      forensics_.durable_ack(steady_now_micros());
    }
  }
  highest_round_->set(static_cast<std::int64_t>(core_->dag().highest_round()));

  // The consumption head may have crossed boundaries past the last committed
  // sub-DAG's slot (skip decisions consume slots without delivering).
  handle_cut_boundaries(core_->committer().next_pending_slot(), actions);

  // Publish the core's pipeline counters for thread-safe reads.
  const IngestStats& stats = core_->ingest_stats();
  core_structurally_rejected_->set(static_cast<std::int64_t>(stats.structurally_rejected));
  core_crypto_rejected_->set(static_cast<std::int64_t>(stats.crypto_rejected));
  core_cache_hits_->set(static_cast<std::int64_t>(stats.cache_hits));
  core_verified_->set(static_cast<std::int64_t>(stats.verified));
  core_preverified_->set(static_cast<std::int64_t>(stats.preverified));
}

void NodeRuntime::on_wave_delivered(const exec::WaveDelivery& wave) {
  // Merge-thread context when execution_threads > 0 (loop thread otherwise):
  // only thread-safe tracer paths here — batch_delivered and record_stage
  // never touch the loop-owned insert-stamp table.
  const TimeMicros now = steady_now_micros();
  for (const exec::Delivery& delivery : wave.batches) {
    tracer_.batch_delivered(delivery.submitted_at, delivery.count, now);
  }
  if (wave.subdag_complete) {
    tracer_.record_stage(obs::Stage::kExecute, now - wave.enqueued_at,
                         std::max<std::uint32_t>(wave.block_count, 1));
    // Resolve the commit trace's execute breakdown on the loop thread, where
    // forensics_ lives (this callback may be on the merge thread).
    loop_.post([this, slot = wave.slot, now] { forensics_.execute_done(slot, now); });
  }
}

void NodeRuntime::enqueue_commit_blocks(const std::vector<BlockPtr>& blocks) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(commit_mutex_);
    pending_commit_blocks_.insert(pending_commit_blocks_.end(), blocks.begin(),
                                  blocks.end());
    if (!commit_scan_scheduled_) {
      commit_scan_scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) verify_pool_->submit([this] { scan_pending_commits(); });
}

void NodeRuntime::scan_pending_commits() {
  recorder_.label_thread("worker");
  // One drain loop at a time (commit_scan_scheduled_ stays true until the
  // queue is empty): the replica and its scanner are single-threaded state,
  // and decision batches must reach the loop thread in scan order — the
  // apply step consumes them head-first.
  for (;;) {
    std::vector<BlockPtr> blocks;
    {
      std::lock_guard<std::mutex> lock(commit_mutex_);
      if (commit_scanner_stale_) {
        // A checkpoint install invalidated the replica mid-drain. Stop
        // touching the scanner and hand the rebuild to the loop thread;
        // commit_scan_scheduled_ stays true so no second drain races the
        // swap (rebuild clears it).
        loop_.post([this] { rebuild_commit_scanner(); });
        return;
      }
      if (pending_commit_blocks_.empty()) {
        commit_scan_scheduled_ = false;
        return;
      }
      blocks.swap(pending_commit_blocks_);
    }
    const TimeMicros scan_start = steady_now_micros();
    commit_scanner_->ingest(blocks);
    std::vector<SlotDecision> decisions = commit_scanner_->scan();
    const TimeMicros scan_elapsed = steady_now_micros() - scan_start;
    tracer_.record_stage(obs::Stage::kCommitScan, scan_elapsed);
    // Commit traces read the latest scan duration when they are built on the
    // loop thread.
    last_scan_micros_.store(scan_elapsed, std::memory_order_relaxed);
    commit_scans_->add();
    if (decisions.empty()) continue;
    loop_.post([this, decisions = std::move(decisions)] {
      const TimeMicros start = steady_now_micros();
      perform(core_->apply_commit_decisions(decisions, start));
      const TimeMicros elapsed = steady_now_micros() - start;
      tracer_.record_stage(obs::Stage::kApply, elapsed);
      commit_apply_micros_->add(static_cast<std::uint64_t>(elapsed));
      commit_batches_applied_->add();
    });
  }
}

void NodeRuntime::handle_cut_boundaries(SlotId watermark, const Actions& actions) {
  if (!checkpointing_ && !certifying_) return;
  const Round interval = config_.validator.checkpoint_interval;
  for (;;) {
    const SlotId boundary =
        cut_boundary_slot(next_cut_index_, interval, config_.validator.committer);
    if (watermark < boundary) break;
    cross_cut_boundary(next_cut_index_, boundary, actions);
    ++next_cut_index_;
  }
  // Boundaries more than a window behind can no longer form or serve a
  // certificate here; drop their share state.
  while (!pending_cuts_.empty() &&
         pending_cuts_.begin()->first + kCertPastWindow < next_cut_index_) {
    pending_cuts_.erase(pending_cuts_.begin());
  }
}

void NodeRuntime::cross_cut_boundary(std::uint64_t cut_index, SlotId boundary,
                                     const Actions& actions) {
  // Fold the decided log up to the boundary. These entries are the agreed
  // sequence, so every honest validator folds the identical prefix here —
  // that is what makes the payload digest below aggregatable.
  const auto& log = core_->committer().decided_sequence();
  while (decided_folded_ < log.size() && log[decided_folded_].slot < boundary) {
    const SlotDecision& d = log[decided_folded_];
    decided_hasher_.fold(
        CheckpointData::DecidedSlot{d.slot, d.leader, d.kind, d.via, d.ref});
    ++decided_folded_;
  }
  CutPayload payload;
  payload.cut_index = cut_index;
  payload.head = boundary;
  payload.decided_digest = decided_hasher_.digest();
  // state_digest() drains: the engine has been fed exactly the commits with
  // slot < boundary (the crossing fires before this pass's sub-DAG at or
  // past it is enqueued), so this is the canonical digest at the cut.
  payload.app_digest =
      exec_engine_ != nullptr ? exec_engine_->state_digest() : Digest{};

  if (certifying_) {
    auto [it, inserted] =
        pending_cuts_.try_emplace(cut_index, committee_.quorum_threshold());
    PendingCut& pending = it->second;
    pending.have_payload = true;
    pending.payload = payload;
    const CutShare own = sign_cut(payload, id(), key_);
    const Bytes wire = encode_cut_share(own);
    serde::Writer w(1 + wire.size());
    w.u8(static_cast<std::uint8_t>(MessageType::kCertShare));
    w.raw({wire.data(), wire.size()});
    for (ValidatorId peer = 0; peer < committee_.size(); ++peer) {
      if (peer != id()) send_to_peer(peer, {w.data().data(), w.data().size()});
    }
    collect_cut_share(cut_index, pending, own);
    // Shares that arrived before we crossed: already signature-checked, now
    // checkable against our own payload.
    const std::vector<CutShare> early = std::move(pending.early);
    pending.early.clear();
    for (const CutShare& share : early) collect_cut_share(cut_index, pending, share);
  }

  if (checkpointing_ && !checkpoint_in_flight_ &&
      (last_cut_data_ == nullptr || last_cut_data_->head < boundary)) {
    // The head guard skips duplicate cuts when several cut indices map to
    // one boundary slot (interval shorter than the wave stride) — shares
    // are signed for each k, the cut lands once.
    start_cut(cut_index, boundary, payload.app_digest, actions);
  }
}

void NodeRuntime::start_cut(std::uint64_t cut_index, SlotId boundary,
                            const Digest& app_digest, const Actions& actions) {
  // The consistent cut: captured here, on the loop thread, where the core is
  // quiescent — committed head, decided log, delivered marks, live DAG
  // suffix — then truncated back to the canonical boundary so the persisted
  // cut matches the certified payload exactly.
  CheckpointData data = core_->capture_checkpoint();
  if (data.horizon > boundary.round) return;  // GC already pruned past it
  std::vector<Digest> delivered_after;
  for (const auto& sub_dag : actions.committed) {
    if (sub_dag.slot < boundary) continue;
    for (const auto& block : sub_dag.blocks) {
      delivered_after.push_back(block->digest());
    }
  }
  truncate_checkpoint(data, boundary, delivered_after);
  data.sequence = ++checkpoint_seq_;
  data.app_digest = app_digest;

  // Delta while the chain has room; re-base otherwise (or when the diff
  // base does not extend — e.g. the previous cut was an installed peer
  // snapshot with a different author).
  bool is_base = true;
  CheckpointDelta delta;
  if (last_cut_data_ != nullptr && !chain_links_.empty() &&
      config_.validator.checkpoint_max_deltas > 0 &&
      data.sequence - chain_base_seq_ <= config_.validator.checkpoint_max_deltas) {
    try {
      Bytes app_delta =
          exec_engine_ != nullptr ? exec_engine_->app_delta_snapshot() : Bytes{};
      delta = make_checkpoint_delta(*last_cut_data_, data, chain_base_seq_,
                                    std::move(app_delta));
      is_base = false;
    } catch (const std::invalid_argument&) {
      is_base = true;
    }
  }
  if (is_base && exec_engine_ != nullptr) {
    // The full snapshot subsumes the touched-key window; restart it so the
    // next delta carries exactly the keys touched after this base.
    data.app_state = exec_engine_->app_snapshot();
    exec_engine_->clear_app_delta_window();
  }

  // Rolling the segment at a base cut gives the retire boundary: every
  // record of the whole previous chain is now in a sealed segment. Delta
  // cuts do not roll — recovery replays the segment suffix from the chain
  // base's boundary, and re-inserting blocks the deltas already cover is
  // idempotent.
  const std::uint64_t keep_from =
      is_base && seg_wal_ != nullptr ? seg_wal_->roll_segment() : 0;
  checkpoint_in_flight_ = true;
  auto data_ptr = std::make_shared<const CheckpointData>(std::move(data));
  auto task = [this, data_ptr, delta = std::move(delta), is_base, cut_index,
               keep_from, epoch = chain_epoch_]() {
    // Worker side: serialization + the crash-atomic file write. The blocks
    // are immutable and the store touches only its own files.
    std::shared_ptr<const Bytes> encoded;
    try {
      encoded = std::make_shared<const Bytes>(
          is_base ? encode_checkpoint(*data_ptr) : encode_checkpoint_delta(delta));
      if (checkpoint_store_ != nullptr) {
        if (is_base) {
          checkpoint_store_->write(data_ptr->sequence,
                                   {encoded->data(), encoded->size()});
        } else {
          checkpoint_store_->write_delta(data_ptr->sequence,
                                         {encoded->data(), encoded->size()});
        }
      }
    } catch (const std::exception& error) {
      MM_LOG(kWarn) << "v" << id() << " checkpoint write failed: " << error.what();
      loop_.post([this, epoch] {
        if (epoch != chain_epoch_) return;
        checkpoint_in_flight_ = false;
        // The sequence numbering now has a gap the store's chain walk would
        // stop at; dropping the diff base forces the next cut to re-base.
        last_cut_data_.reset();
      });
      return;  // keep the old serving state; segments stay until a write lands
    }
    loop_.post([this, epoch, cut_index, is_base, keep_from, encoded, data_ptr] {
      finish_checkpoint(epoch, cut_index, is_base, data_ptr->horizon, keep_from,
                        encoded, data_ptr);
    });
  };
  if (verify_pool_) {
    verify_pool_->submit(std::move(task));
  } else {
    task();
  }
}

void NodeRuntime::finish_checkpoint(std::uint64_t epoch, std::uint64_t cut_index,
                                    bool is_base, Round horizon,
                                    std::uint64_t keep_from,
                                    std::shared_ptr<const Bytes> encoded,
                                    std::shared_ptr<const CheckpointData> data) {
  if (epoch != chain_epoch_) return;  // a snapshot install replaced the chain
  checkpoint_in_flight_ = false;
  if (horizon > last_checkpoint_horizon_) last_checkpoint_horizon_ = horizon;
  checkpoints_written_->add();
  recorder_.record_now(obs::FlightEventType::kCheckpointCut, data->head.round,
                       cut_index);
  if (is_base) {
    chain_links_.clear();
    chain_base_seq_ = data->sequence;
    latest_checkpoint_bytes_ = encoded;
    // Only now — with the new base durable — can the chain before the
    // PREVIOUS one retire, segments and checkpoint files alike: recovery may
    // fall back past a torn newest chain, which needs the previous chain's
    // records and the segments from its base boundary.
    if (seg_wal_ != nullptr) seg_wal_->retire_segments_below(chain_keep_from_);
    chain_keep_from_ = keep_from;
    if (checkpoint_store_ != nullptr) checkpoint_store_->retire(2);
  } else {
    checkpoint_delta_cuts_->add();
  }
  ChainLinkRt link;
  link.sequence = data->sequence;
  link.cut_index = cut_index;
  link.record = std::move(encoded);
  chain_links_.push_back(std::move(link));
  last_cut_data_ = std::move(data);
  // A certificate that formed while the write was in flight attaches now.
  const auto it = pending_cuts_.find(cut_index);
  if (it != pending_cuts_.end() && it->second.cert != nullptr) {
    attach_cert(cut_index, it->second.cert);
  }
}

void NodeRuntime::on_cert_share(CutShare share) {
  const std::uint64_t k = share.payload.cut_index;
  // Window: boundaries long past cannot form a useful certificate anymore,
  // and far-future indices would let a hostile peer grow pending_cuts_
  // without bound.
  if (k + kCertPastWindow < next_cut_index_ ||
      k > next_cut_index_ + kCertFutureWindow) {
    return;
  }
  if (!verify_cut_share(share, committee_)) {
    cert_shares_rejected_->add();
    return;
  }
  auto [it, inserted] =
      pending_cuts_.try_emplace(k, committee_.quorum_threshold());
  PendingCut& pending = it->second;
  if (!pending.have_payload) {
    // We have not crossed this boundary yet, so there is no own payload to
    // check against. Buffer (bounded, per-author deduped) until we do.
    for (const CutShare& buffered : pending.early) {
      if (buffered.author == share.author) return;
    }
    if (pending.early.size() < committee_.size()) {
      pending.early.push_back(std::move(share));
    }
    return;
  }
  collect_cut_share(k, pending, share);
}

void NodeRuntime::collect_cut_share(std::uint64_t cut_index, PendingCut& pending,
                                    const CutShare& share) {
  // Only shares over OUR OWN payload enter the collector: a forged payload
  // can gather any number of signatures over itself without ever producing
  // a certificate we would serve.
  if (!(share.payload == pending.payload)) {
    cert_shares_rejected_->add();
    return;
  }
  if (!pending.collector.add(share.author, share.signature)) return;
  CheckpointCertificate cert{pending.payload, pending.collector.certificate()};
  pending.cert = std::make_shared<const Bytes>(encode_checkpoint_certificate(cert));
  checkpoint_certs_->add();
  attach_cert(cut_index, pending.cert);
}

void NodeRuntime::attach_cert(std::uint64_t cut_index,
                              std::shared_ptr<const Bytes> cert) {
  for (auto& link : chain_links_) {
    if (link.cut_index != cut_index) continue;
    link.cert = cert;
    if (checkpoint_store_ != nullptr) {
      auto task = [this, sequence = link.sequence, cert] {
        try {
          checkpoint_store_->write_cert(sequence, {cert->data(), cert->size()});
        } catch (const std::exception& error) {
          MM_LOG(kWarn) << "v" << id()
                        << " certificate write failed: " << error.what();
        }
      };
      if (verify_pool_) {
        verify_pool_->submit(std::move(task));
      } else {
        task();
      }
    }
    return;
  }
}

void NodeRuntime::serve_checkpoint(ValidatorId peer) {
  if (!chain_links_.empty()) {
    // Prefer the certified trust root: serve the longest chain prefix whose
    // every link carries an aggregated certificate, so the receiver installs
    // without trusting this peer. Only when NOT EVEN THE BASE is certified
    // yet (certification disabled, or its collection still in flight) does
    // the whole chain go out uncertified via the legacy stuck-requester
    // trust path — a slightly stale certified cut beats a fresher one the
    // receiver has to take on faith, and live sync replays the gap anyway.
    std::size_t certified_prefix = 0;
    while (certified_prefix < chain_links_.size() &&
           chain_links_[certified_prefix].cert != nullptr) {
      ++certified_prefix;
    }
    const std::size_t count =
        certified_prefix > 0 ? certified_prefix : chain_links_.size();
    std::vector<std::pair<BytesView, BytesView>> links;
    links.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto& link = chain_links_[i];
      links.emplace_back(
          BytesView{link.record->data(), link.record->size()},
          link.cert != nullptr ? BytesView{link.cert->data(), link.cert->size()}
                               : BytesView{});
    }
    const Bytes frame = encode_checkpoint_chain_frame(links);
    serde::Writer w(1 + frame.size());
    w.u8(static_cast<std::uint8_t>(MessageType::kCheckpointChain));
    w.raw({frame.data(), frame.size()});
    send_to_peer(peer, {w.data().data(), w.data().size()});
    checkpoints_served_->add();
    return;
  }
  if (latest_checkpoint_bytes_ == nullptr) return;  // nothing to offer yet
  serde::Writer w(1 + latest_checkpoint_bytes_->size());
  w.u8(static_cast<std::uint8_t>(MessageType::kCheckpointResponse));
  w.raw({latest_checkpoint_bytes_->data(), latest_checkpoint_bytes_->size()});
  send_to_peer(peer, {w.data().data(), w.data().size()});
  checkpoints_served_->add();
}

void NodeRuntime::verify_checkpoint_response(ValidatorId peer, Bytes payload) {
  try {
    CheckpointData data = decode_checkpoint({payload.data(), payload.size()});
    const std::string error =
        verify_checkpoint(data, committee_, config_.validator.committer,
                          config_.validator.validation,
                          config_.validator.signature_cache.get());
    if (!error.empty()) {
      MM_LOG(kWarn) << "v" << id() << " rejected checkpoint from v" << peer << ": "
                    << error;
      return;
    }
    loop_.post([this, data = std::move(data)]() mutable {
      // The single-record response carries no certificates: legacy trust.
      install_peer_checkpoint(std::move(data), /*certified=*/false, nullptr);
    });
  } catch (const std::exception& error) {
    // std::exception, not just SerdeError: a hostile frame can also surface
    // as e.g. std::length_error from an allocation, and an uncaught throw on
    // a verify-pool worker would terminate the process — a remote crash.
    MM_LOG(kWarn) << "v" << id() << " bad checkpoint frame from v" << peer << ": "
                  << error.what();
  }
}

void NodeRuntime::verify_chain_response(ValidatorId peer, Bytes payload) {
  try {
    const CheckpointChainFrame frame =
        decode_checkpoint_chain_frame({payload.data(), payload.size()});
    std::shared_ptr<const Bytes> final_cert;
    if (!frame.links.empty() && !frame.links.back().cert.empty()) {
      final_cert = std::make_shared<const Bytes>(frame.links.back().cert);
    }
    ChainVerifyResult result = verify_checkpoint_chain(
        frame, committee_, config_.validator.committer,
        config_.validator.checkpoint_interval, config_.validator.validation,
        config_.validator.signature_cache.get());
    if (!result.error.empty()) {
      MM_LOG(kWarn) << "v" << id() << " rejected checkpoint chain from v" << peer
                    << ": " << result.error;
      return;
    }
    if (!result.certified) final_cert.reset();
    loop_.post([this, data = std::move(result.data), certified = result.certified,
                final_cert = std::move(final_cert)]() mutable {
      install_peer_checkpoint(std::move(data), certified, std::move(final_cert));
    });
  } catch (const std::exception& error) {
    MM_LOG(kWarn) << "v" << id() << " bad checkpoint chain frame from v" << peer
                  << ": " << error.what();
  }
}

void NodeRuntime::install_peer_checkpoint(CheckpointData data, bool certified,
                                          std::shared_ptr<const Bytes> final_cert) {
  const SlotId before = core_->committer().next_pending_slot();
  Actions actions = core_->install_checkpoint(data, steady_now_micros());
  if (core_->committer().next_pending_slot() <= before) return;  // stale snapshot
  snapshot_catchups_->add();
  (certified ? certified_installs_ : uncertified_installs_)->add();
  if (exec_engine_ != nullptr && !data.app_state.empty()) {
    // State jump: replace the replica's app state with the cut's snapshot.
    // Commits the install emits below resume execution from this point.
    exec_engine_->install_snapshot({data.app_state.data(), data.app_state.size()});
  }
  MM_LOG(kInfo) << "v" << id() << " installed snapshot from v" << data.author
                << " (horizon r" << data.horizon << ", head r" << data.head.round
                << ")";
  // Persist the snapshot as our own recovery point: a crash from here on
  // must not land us back below everyone's horizon. The sequence continues
  // our local numbering.
  data.sequence = ++checkpoint_seq_;
  last_checkpoint_horizon_ = data.horizon;
  // The installed cut replaces the local chain: in-flight cut completions
  // for the old one are dropped by the epoch guard, and the writer is free
  // again (its task may still land a stale file; retirement collects it).
  ++chain_epoch_;
  checkpoint_in_flight_ = false;
  pending_cuts_.clear();
  // The decided log was replaced wholesale; refold from its start at the
  // next boundary crossing.
  decided_hasher_ = DecidedLogHasher{};
  decided_folded_ = 0;
  // Re-encoded rather than stored verbatim so the local sequence stamp keeps
  // our file numbering monotonic (rare path; the cost is one serialization).
  auto restamped = std::make_shared<const Bytes>(encode_checkpoint(data));
  latest_checkpoint_bytes_ = restamped;
  chain_links_.clear();
  chain_base_seq_ = data.sequence;
  ChainLinkRt base_link;
  base_link.sequence = data.sequence;
  base_link.record = restamped;
  if (final_cert != nullptr) {
    // The payload a certificate signs is author- and sequence-independent,
    // so the received chain's final certificate binds the restamped merged
    // base just as well — a certified install stays a certified serve.
    try {
      base_link.cut_index =
          decode_checkpoint_certificate({final_cert->data(), final_cert->size()})
              .payload.cut_index;
      base_link.cert = final_cert;
    } catch (const serde::SerdeError&) {
      base_link.cert = nullptr;
    }
  }
  chain_links_.push_back(base_link);
  if (checkpoint_store_ != nullptr) {
    try {
      checkpoint_store_->write(data.sequence, {restamped->data(), restamped->size()});
      if (base_link.cert != nullptr) {
        checkpoint_store_->write_cert(
            data.sequence, {base_link.cert->data(), base_link.cert->size()});
      }
      checkpoint_store_->retire(2);
    } catch (const std::exception& error) {
      MM_LOG(kWarn) << "v" << id() << " failed to persist snapshot: " << error.what();
    }
  }
  if (config_.validator.checkpoint_interval > 0) {
    // Resume boundary crossing strictly past the installed head.
    const Round interval = config_.validator.checkpoint_interval;
    next_cut_index_ = first_cut_index_at_or_after(data.head, interval,
                                                  config_.validator.committer);
    while (!(data.head < cut_boundary_slot(next_cut_index_, interval,
                                           config_.validator.committer))) {
      ++next_cut_index_;
    }
  }
  last_cut_data_ = std::make_shared<const CheckpointData>(std::move(data));
  // The scanner's replica predates the install; rebuild it before any
  // further scan. Then perform() logs the installed suffix to our WAL and
  // lets consensus resume.
  if (commit_scanner_ != nullptr) {
    bool defer = false;
    {
      std::lock_guard<std::mutex> lock(commit_mutex_);
      pending_commit_blocks_.clear();
      if (commit_scan_scheduled_) {
        // A drain may be touching the scanner right now: flag it and let the
        // drain hand control back (rebuild_commit_scanner via loop post).
        commit_scanner_stale_ = true;
        defer = true;
      }
    }
    if (!defer) rebuild_commit_scanner();
  }
  perform(std::move(actions));
}

void NodeRuntime::rebuild_commit_scanner() {
  // Loop thread, with no scan drain alive: reseed the replica from the
  // post-install DAG and head.
  commit_scanner_ = std::make_unique<CommitScanner>(
      core_->dag(), core_->committer().next_pending_slot(), committee_,
      config_.validator.committer);
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(commit_mutex_);
    commit_scanner_stale_ = false;
    // Blocks that queued while the rebuild was pending are already inside
    // the seed DAG or genuinely new; either way the drain dedups via the
    // replica's own insert.
    commit_scan_scheduled_ = !pending_commit_blocks_.empty();
    schedule = commit_scan_scheduled_;
  }
  if (schedule) verify_pool_->submit([this] { scan_pending_commits(); });
}

void NodeRuntime::offer_latest_block(ValidatorId peer) {
  const Round round = core_->last_proposed_round();
  if (round == 0) return;  // nothing proposed yet
  const auto& cell = core_->dag().slot(round, id());
  if (cell.empty()) return;
  // Offers carry an own block, so under group commit they obey the same
  // durability gate as the original broadcast: a tick can fire between a
  // proposal's insertion and its group flush, and offering the block in
  // that window would leak a potentially-forgettable proposal. (Usually the
  // block is long durable and the ack completes at once.) On the inline
  // path the block was synced when it was inserted — dispatch directly.
  std::vector<EgressItem> items{EgressItem{cell.front(), peer}};
  if (group_wal_ == nullptr) {
    dispatch_egress(std::move(items));
    return;
  }
  wal_->on_durable([this, items = std::move(items)]() mutable {
    dispatch_egress(std::move(items));
  });
}

void NodeRuntime::tick() {
  perform(core_->on_tick(steady_now_micros()));
  // Periodic anti-entropy: re-offer our tip so peers that missed broadcasts
  // (connection races, drops mid-flight) converge. Receipt is idempotent.
  const TimeMicros now = steady_now_micros();
  if (now - last_resync_ >= config_.resync_interval) {
    last_resync_ = now;
    offer_latest_block(kAllPeers);
  }
  loop_.schedule(config_.tick_interval, [this] { tick(); });
}

void NodeRuntime::submit(std::vector<TxBatch> batches) {
  // Admission runs off the loop thread: the sharded pool is thread-safe, so
  // client submission no longer serializes behind consensus I/O. With a
  // worker pool the batches go through a single-drain queue (one admission
  // loop at a time, like verify_pending_frames) so two back-to-back
  // submit() calls cannot race each other on the worker pool and invert the
  // pool's per-client FIFO order. Without workers, admission happens inline
  // on the calling thread.
  if (batches.empty()) {
    // Poke path for clients that admitted via mempool_handle() directly.
    nudge_proposal();
    return;
  }
  if (!verify_pool_) {
    admit_batches(std::move(batches));
    return;
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    for (auto& batch : batches) pending_submissions_.push_back(std::move(batch));
    if (!submit_scheduled_) {
      submit_scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) verify_pool_->submit([this] { admit_pending_submissions(); });
}

void NodeRuntime::admit_pending_submissions() {
  for (;;) {
    std::vector<TxBatch> batches;
    {
      std::lock_guard<std::mutex> lock(submit_mutex_);
      if (pending_submissions_.empty()) {
        submit_scheduled_ = false;
        return;
      }
      batches.swap(pending_submissions_);
    }
    admit_batches(std::move(batches));
  }
}

void NodeRuntime::admit_batches(std::vector<TxBatch> batches) {
  const std::size_t submitted = batches.size();
  std::uint64_t rejected = 0;
  for (const AdmitResult verdict : mempool_->submit_all(std::move(batches))) {
    if (!admitted(verdict)) ++rejected;
  }
  if (rejected > 0) {
    submit_rejected_->add(rejected);
    MM_LOG(kWarn) << "v" << id() << " mempool rejected " << rejected << "/"
                  << submitted << " submitted batches (backpressure)";
  }
  nudge_proposal();
}

void NodeRuntime::record_rx_lag(const Block& block, TimeMicros received_at) {
  const TimeMicros created_at = block.created_at();
  if (created_at == 0) return;  // unstamped (genesis, old tooling)
  TimeMicros lag = received_at - created_at;
  if (lag < 0) {
    // Author's clock runs ahead of ours: clamp, like the tracer, and count
    // the clamp so skewed clusters are visible.
    lag = 0;
    peer_rx_lag_clamped_->add();
  }
  peer_rx_lag_->record(lag);
  if (block.author() < peer_rx_lag_by_peer_.size()) {
    peer_rx_lag_by_peer_[block.author()]->record(lag);
  }
}

void NodeRuntime::on_loop_stall(TimeMicros busy_micros, TimeMicros now) {
  // Loop thread (the watchdog is fed by the loop's tick observer), rate-
  // limited to one call per warn interval by the watchdog itself.
  recorder_.record(obs::FlightEventType::kStall, now,
                   static_cast<std::uint64_t>(busy_micros),
                   static_cast<std::uint64_t>(config_.loop_stall_budget));
  if (config_.flightrec_dir.empty()) return;
  recorder_.record(obs::FlightEventType::kSnapshot, now, /*reason=*/1);
  const std::string path = config_.flightrec_dir + "/flightrec-v" +
                           std::to_string(id()) + "-" +
                           std::to_string(flightrec_dump_seq_++) + ".bin";
  if (recorder_.dump_to_file(path)) {
    flightrec_stall_dumps_->add();
    MM_LOG(kWarn) << "v" << id() << " flight recorder dumped to " << path;
  } else {
    MM_LOG(kWarn) << "v" << id() << " flight recorder dump failed: " << path;
  }
}

std::string NodeRuntime::render_status_json() {
  // Loop thread only: reads core/committer/chain state the loop owns.
  const auto append_u64 = [](std::string& out, std::uint64_t v) {
    out += std::to_string(v);
  };
  const SlotId head = core_->committer().next_pending_slot();
  std::string out = "{\"validator\":";
  append_u64(out, id());
  out += ",\"ticking\":";
  out += ticking_ ? "true" : "false";
  out += ",\"highest_round\":";
  append_u64(out, core_->dag().highest_round());
  out += ",\"head\":{\"round\":";
  append_u64(out, head.round);
  out += ",\"leader_offset\":";
  append_u64(out, head.leader_offset);
  out += "},\"committed_blocks\":";
  append_u64(out, committed_blocks_->value());
  out += ",\"committed_transactions\":";
  append_u64(out, committed_tx_->value());
  out += ",\"peers\":[";
  for (ValidatorId peer = 0; peer < committee_.size(); ++peer) {
    if (peer > 0) out.push_back(',');
    out += "{\"id\":";
    append_u64(out, peer);
    out += ",\"connected\":";
    if (peer == id()) {
      out += "true";  // ourselves
    } else {
      out += outgoing_[peer] != nullptr && !outgoing_[peer]->closed() ? "true"
                                                                      : "false";
    }
    out += "}";
  }
  out += "],\"mempool\":{\"batches\":";
  append_u64(out, mempool_->size());
  out += ",\"bytes\":";
  append_u64(out, mempool_->bytes());
  out += "},\"checkpoint\":{\"active\":";
  out += checkpointing_ ? "true" : "false";
  out += ",\"sequence\":";
  append_u64(out, checkpoint_seq_);
  out += ",\"horizon\":";
  append_u64(out, last_checkpoint_horizon_);
  out += ",\"chain_links\":";
  append_u64(out, chain_links_.size());
  std::size_t certified = 0;
  for (const auto& link : chain_links_) certified += link.cert != nullptr;
  out += ",\"certified_links\":";
  append_u64(out, certified);
  out += "},\"flightrec\":{\"rings\":";
  append_u64(out, recorder_.ring_count());
  out += ",\"stall_dumps\":";
  append_u64(out, flightrec_stall_dumps_->value());
  out += "},\"commit_traces\":";
  append_u64(out, forensics_.traces().size());
  out += "}";
  return out;
}

void NodeRuntime::nudge_proposal() {
  // At most one pending nudge at a time; reentry into perform() is
  // impossible because the nudge always goes through loop_.post.
  if (!propose_nudge_pending_.exchange(true, std::memory_order_acq_rel)) {
    loop_.post([this] {
      propose_nudge_pending_.store(false, std::memory_order_release);
      perform(core_->on_mempool_ready(steady_now_micros()));
    });
  }
}

}  // namespace mahimahi::net
