#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/log.h"

namespace mahimahi::net {

namespace {

void set_non_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_no_delay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// --- TcpConnection -----------------------------------------------------------

TcpConnection::TcpConnection(EventLoop& loop, int fd) : loop_(loop), fd_(fd) {
  set_non_blocking(fd_);
  set_no_delay(fd_);
}

TcpConnection::~TcpConnection() {
  // Destructor path: no handlers may fire (the owner is already going away,
  // and shared_from_this is unavailable here).
  on_frame_ = nullptr;
  on_close_ = nullptr;
  close();
}

void TcpConnection::start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  if (registered_) return;  // re-binding handlers (e.g. after a handshake)
  registered_ = true;
  auto self = shared_from_this();
  loop_.add_fd(fd_, EPOLLIN, [self](std::uint32_t events) { self->handle_events(events); });
}

void TcpConnection::handle_events(std::uint32_t events) {
  if (closed()) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close();
    return;
  }
  if (events & EPOLLIN) handle_readable();
  if (closed()) return;
  if (events & EPOLLOUT) handle_writable();
}

void TcpConnection::handle_readable() {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t received = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (received > 0) {
      bytes_received_ += static_cast<std::uint64_t>(received);
      read_buffer_.insert(read_buffer_.end(), chunk, chunk + received);
      continue;
    }
    if (received == 0) {  // orderly shutdown
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();
    return;
  }

  // Parse complete frames.
  std::size_t offset = 0;
  while (read_buffer_.size() - offset >= 4) {
    std::uint32_t length;
    std::memcpy(&length, read_buffer_.data() + offset, 4);
    if (length > kMaxFrameBytes) {
      MM_LOG(kWarn) << "oversized frame (" << length << " bytes); closing connection";
      close();
      return;
    }
    if (read_buffer_.size() - offset - 4 < length) break;
    if (on_frame_) {
      // Copy before invoking: the handler may rebind on_frame_ (handshake
      // identification), which would otherwise destroy the closure that is
      // currently executing.
      const FrameHandler handler = on_frame_;
      handler({read_buffer_.data() + offset + 4, length});
    }
    if (closed()) return;  // handler may close
    offset += 4 + length;
  }
  if (offset > 0) read_buffer_.erase(read_buffer_.begin(), read_buffer_.begin() + offset);
}

void TcpConnection::send_frame(BytesView payload) {
  send_frame(make_shared_frame(Bytes(payload.begin(), payload.end())));
}

void TcpConnection::send_frame(SharedFrame payload) {
  if (closed() || payload == nullptr) return;
  PendingWrite pending;
  const std::uint32_t length = static_cast<std::uint32_t>(payload->size());
  std::memcpy(pending.header.data(), &length, 4);
  pending.payload = std::move(payload);
  write_queue_.push_back(std::move(pending));
  handle_writable();  // opportunistic immediate flush
}

void TcpConnection::handle_writable() {
  while (!write_queue_.empty()) {
    // Gather the queue head into one writev: each pending frame contributes
    // its unsent header and payload slices, so a burst of small frames costs
    // one syscall instead of one per frame, and no frame is ever copied into
    // a connection-private buffer.
    std::array<iovec, 16> iov;
    std::size_t iov_count = 0;
    for (const PendingWrite& pending : write_queue_) {
      if (iov_count + 2 > iov.size()) break;
      std::size_t skip = pending.sent;
      if (skip < pending.header.size()) {
        iov[iov_count++] = {
            const_cast<std::uint8_t*>(pending.header.data() + skip),
            pending.header.size() - skip};
        skip = 0;
      } else {
        skip -= pending.header.size();
      }
      if (skip < pending.payload->size()) {
        iov[iov_count++] = {
            const_cast<std::uint8_t*>(pending.payload->data() + skip),
            pending.payload->size() - skip};
      }
    }
    if (iov_count == 0) {  // fully-sent head (empty payload edge case)
      write_queue_.pop_front();
      continue;
    }

    msghdr message{};
    message.msg_iov = iov.data();
    message.msg_iovlen = iov_count;
    const ssize_t sent = ::sendmsg(fd_, &message, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close();
      return;
    }
    if (sent == 0) break;  // defensive: never spin on a zero-byte send
    bytes_sent_ += static_cast<std::uint64_t>(sent);

    // Retire fully-sent frames from the head.
    std::size_t remaining = static_cast<std::size_t>(sent);
    while (remaining > 0) {
      PendingWrite& head = write_queue_.front();
      const std::size_t total = head.header.size() + head.payload->size();
      const std::size_t take = std::min(remaining, total - head.sent);
      head.sent += take;
      remaining -= take;
      if (head.sent == total) write_queue_.pop_front();
    }
  }
  if (write_queue_.empty()) {
    if (want_write_) {
      want_write_ = false;
      update_interest();
    }
  } else if (!want_write_) {
    want_write_ = true;
    update_interest();
  }
}

void TcpConnection::update_interest() {
  loop_.modify_fd(fd_, want_write_ ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void TcpConnection::close() {
  if (closed()) return;
  // The close handler may drop the owner's last shared_ptr to this object
  // (e.g. a peer table resetting its slot); keep the object alive until this
  // function returns. In the destructor path the lock yields nullptr, but
  // handlers are already cleared there.
  const TcpConnectionPtr guard = weak_from_this().lock();
  loop_.remove_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    CloseHandler handler = std::move(on_close_);
    on_close_ = nullptr;
    handler();
  }
}

// --- TcpListener ---------------------------------------------------------------

TcpListener::TcpListener(EventLoop& loop, std::uint16_t port, AcceptHandler on_accept)
    : loop_(loop), port_(port), on_accept_(std::move(on_accept)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd_);
    throw std::runtime_error("bind() failed on port " + std::to_string(port));
  }
  if (port == 0) {
    socklen_t len = sizeof(address);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &len);
    port_ = ntohs(address.sin_port);
  }
  if (::listen(fd_, 128) != 0) {
    ::close(fd_);
    throw std::runtime_error("listen() failed");
  }
  set_non_blocking(fd_);
  loop_.add_fd(fd_, EPOLLIN, [this](std::uint32_t) { handle_accept(); });
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) {
    loop_.remove_fd(fd_);
    ::close(fd_);
  }
}

void TcpListener::handle_accept() {
  for (;;) {
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) return;  // EAGAIN or transient error
    on_accept_(std::make_shared<TcpConnection>(loop_, client));
  }
}

// --- tcp_connect ---------------------------------------------------------------

void tcp_connect(EventLoop& loop, const std::string& host, std::uint16_t port,
                 std::function<void(TcpConnectionPtr)> on_done) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    on_done(nullptr);
    return;
  }
  set_non_blocking(fd);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    on_done(nullptr);
    return;
  }

  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address));
  if (rc == 0) {
    on_done(std::make_shared<TcpConnection>(loop, fd));
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    on_done(nullptr);
    return;
  }

  // Wait for writability, then check SO_ERROR.
  auto callback = std::make_shared<std::function<void(std::uint32_t)>>();
  *callback = [&loop, fd, on_done = std::move(on_done)](std::uint32_t) {
    loop.remove_fd(fd);
    int error = 0;
    socklen_t len = sizeof(error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0) {
      ::close(fd);
      on_done(nullptr);
      return;
    }
    on_done(std::make_shared<TcpConnection>(loop, fd));
  };
  loop.add_fd(fd, EPOLLOUT, [callback](std::uint32_t events) { (*callback)(events); });
}

}  // namespace mahimahi::net
