#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/log.h"

namespace mahimahi::net {

namespace {

// Recv chunk size for the readiness path, and the threshold past which the
// partial-frame buffer compacts its consumed prefix (large enough that a
// compaction amortizes over many frames, small enough to bound slack).
constexpr std::size_t kIngressChunkBytes = 64 * 1024;

void set_non_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_no_delay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// --- TcpConnection -----------------------------------------------------------

TcpConnection::TcpConnection(EventLoop& loop, int fd)
    : loop_(loop),
      backend_(loop.io_backend()),
      completion_driven_(backend_.completion_driven()),
      fd_(fd) {
  set_non_blocking(fd_);
  set_no_delay(fd_);
}

TcpConnection::~TcpConnection() {
  // Destructor path: no handlers may fire (the owner is already going away,
  // and shared_from_this is unavailable here).
  on_frame_ = nullptr;
  on_close_ = nullptr;
  close();
}

void TcpConnection::start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  if (registered_) return;  // re-binding handlers (e.g. after a handshake)
  registered_ = true;
  if (completion_driven_) {
    // No epoll registration: the backend arms a multishot recv and delivers
    // bytes via ingress_bytes(); egress goes through conn_flush().
    backend_.conn_register(*this);
    return;
  }
  auto self = shared_from_this();
  loop_.add_fd(fd_, EPOLLIN, [self](std::uint32_t events) { self->handle_events(events); });
}

void TcpConnection::start_raw(RawHandler on_bytes, CloseHandler on_close) {
  raw_ = true;
  on_raw_ = std::move(on_bytes);
  // Registration and close handling are identical to framed mode; only the
  // parse/dispatch step differs.
  start(nullptr, std::move(on_close));
}

void TcpConnection::handle_events(std::uint32_t events) {
  if (closed()) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close();
    return;
  }
  if (events & EPOLLIN) handle_readable();
  if (closed()) return;
  if (events & EPOLLOUT) handle_writable();
}

void TcpConnection::handle_readable() {
  // Reusable per-connection scratch: one 64 KiB heap chunk for the life of
  // the connection instead of a per-call stack buffer.
  if (ingress_scratch_.empty()) ingress_scratch_.resize(kIngressChunkBytes);
  for (;;) {
    const ssize_t received =
        ::recv(fd_, ingress_scratch_.data(), ingress_scratch_.size(), 0);
    backend_.note_submit_syscalls();
    if (received > 0) {
      bytes_received_ += static_cast<std::uint64_t>(received);
      backend_.note_recv_op(static_cast<std::uint64_t>(received));
      read_buffer_.insert(read_buffer_.end(), ingress_scratch_.data(),
                          ingress_scratch_.data() + received);
      continue;
    }
    if (received == 0) {  // orderly shutdown
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();
    return;
  }
  parse_buffered();
}

bool TcpConnection::parse_frames(const std::uint8_t* data, std::size_t size,
                                 std::size_t& offset) {
  while (size - offset >= 4) {
    std::uint32_t length;
    std::memcpy(&length, data + offset, 4);
    if (length > kMaxFrameBytes) {
      MM_LOG(kWarn) << "oversized frame (" << length << " bytes); closing connection";
      close();
      return false;
    }
    if (size - offset - 4 < length) break;
    if (on_frame_) {
      // Copy before invoking: the handler may rebind on_frame_ (handshake
      // identification), which would otherwise destroy the closure that is
      // currently executing.
      const FrameHandler handler = on_frame_;
      handler({data + offset + 4, length});
    }
    if (closed()) return false;  // handler may close
    offset += 4 + length;
  }
  return true;
}

void TcpConnection::parse_buffered() {
  if (raw_) {
    if (read_buffer_.size() == read_consumed_) return;
    // Hand the whole unconsumed buffer to the raw handler. Detach it first:
    // the handler may send_raw or close, and must not observe a buffer it is
    // currently being handed a view into.
    Bytes chunk;
    chunk.swap(read_buffer_);
    const std::size_t offset = read_consumed_;
    read_consumed_ = 0;
    if (on_raw_) {
      const RawHandler handler = on_raw_;
      handler({chunk.data() + offset, chunk.size() - offset});
    }
    return;
  }
  std::size_t offset = read_consumed_;
  if (!parse_frames(read_buffer_.data(), read_buffer_.size(), offset)) return;
  read_consumed_ = offset;
  if (read_consumed_ == read_buffer_.size()) {
    read_buffer_.clear();  // O(1), keeps capacity for the next burst
    read_consumed_ = 0;
  } else if (read_consumed_ >= kIngressChunkBytes) {
    read_buffer_.erase(read_buffer_.begin(),
                       read_buffer_.begin() + static_cast<std::ptrdiff_t>(read_consumed_));
    read_consumed_ = 0;
  }
}

void TcpConnection::ingress_bytes(const std::uint8_t* data, std::size_t size) {
  bytes_received_ += size;
  if (raw_) {
    if (on_raw_) {
      const RawHandler handler = on_raw_;
      handler({data, size});
    }
    return;
  }
  if (read_buffer_.size() == read_consumed_) {
    // Fast path: no partial frame buffered — parse straight out of the
    // backend's buffer and copy only a trailing fragment, if any.
    read_buffer_.clear();
    read_consumed_ = 0;
    std::size_t offset = 0;
    if (!parse_frames(data, size, offset)) return;
    if (offset < size) read_buffer_.assign(data + offset, data + size);
    return;
  }
  read_buffer_.insert(read_buffer_.end(), data, data + size);
  parse_buffered();
}

void TcpConnection::send_frame(BytesView payload) {
  send_frame(make_shared_frame(Bytes(payload.begin(), payload.end())));
}

void TcpConnection::send_frame(SharedFrame payload) {
  if (closed() || payload == nullptr) return;
  PendingWrite pending;
  const std::uint32_t length = static_cast<std::uint32_t>(payload->size());
  std::memcpy(pending.header.data(), &length, 4);
  pending.payload = std::move(payload);
  write_queue_.push_back(std::move(pending));
  if (completion_driven_) {
    backend_.conn_flush(*this);  // arm a send SQE unless one is in flight
    return;
  }
  handle_writable();  // opportunistic immediate flush
}

void TcpConnection::send_raw(SharedFrame payload) {
  if (closed() || payload == nullptr || payload->empty()) return;
  PendingWrite pending;
  pending.header_len = 0;  // no length prefix: bytes go out exactly as given
  pending.payload = std::move(payload);
  write_queue_.push_back(std::move(pending));
  if (completion_driven_) {
    backend_.conn_flush(*this);
    return;
  }
  handle_writable();
}

std::size_t TcpConnection::gather_unsent(iovec* iov, std::size_t max) const {
  std::size_t count = 0;
  for (const PendingWrite& pending : write_queue_) {
    if (count + 2 > max) break;
    std::size_t skip = pending.sent;
    if (skip < pending.header_len) {
      iov[count++] = {const_cast<std::uint8_t*>(pending.header.data() + skip),
                      pending.header_len - skip};
      skip = 0;
    } else {
      skip -= pending.header_len;
    }
    if (skip < pending.payload->size()) {
      iov[count++] = {const_cast<std::uint8_t*>(pending.payload->data() + skip),
                      pending.payload->size() - skip};
    }
  }
  return count;
}

void TcpConnection::retire_sent(std::size_t count) {
  bytes_sent_ += count;
  while (count > 0 && !write_queue_.empty()) {
    PendingWrite& head = write_queue_.front();
    const std::size_t total = head.header_len + head.payload->size();
    const std::size_t take = std::min(count, total - head.sent);
    head.sent += take;
    count -= take;
    if (head.sent == total) write_queue_.pop_front();
  }
  // Zero-payload edge case: a fully-sent head contributes no iovecs, so pop
  // it even when no bytes were attributed to it.
  while (!write_queue_.empty()) {
    const PendingWrite& head = write_queue_.front();
    if (head.sent < head.header_len + head.payload->size()) break;
    write_queue_.pop_front();
  }
}

void TcpConnection::handle_writable() {
  while (!write_queue_.empty()) {
    // Gather the queue head into one sendmsg: each pending frame contributes
    // its unsent header and payload slices, so a burst of small frames costs
    // one syscall instead of one per frame, and no frame is ever copied into
    // a connection-private buffer. Capped by the same constant that sizes
    // the uring backend's send batches.
    std::array<iovec, kMaxGatherIovecs> iov;
    const std::size_t iov_count = gather_unsent(iov.data(), iov.size());
    if (iov_count == 0) {  // fully-sent head (empty payload edge case)
      write_queue_.pop_front();
      continue;
    }

    msghdr message{};
    message.msg_iov = iov.data();
    message.msg_iovlen = iov_count;
    const ssize_t sent = ::sendmsg(fd_, &message, MSG_NOSIGNAL);
    backend_.note_submit_syscalls();
    if (sent < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close();
      return;
    }
    if (sent == 0) break;  // defensive: never spin on a zero-byte send
    backend_.note_send_op(static_cast<std::uint64_t>(sent));
    retire_sent(static_cast<std::size_t>(sent));
  }
  if (write_queue_.empty()) {
    if (want_write_) {
      want_write_ = false;
      update_interest();
    }
  } else if (!want_write_) {
    want_write_ = true;
    update_interest();
  }
}

void TcpConnection::update_interest() {
  loop_.modify_fd(fd_, want_write_ ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void TcpConnection::close() {
  if (closed()) return;
  // The close handler may drop the owner's last shared_ptr to this object
  // (e.g. a peer table resetting its slot); keep the object alive until this
  // function returns. In the destructor path the lock yields nullptr, but
  // handlers are already cleared there.
  const TcpConnectionPtr guard = weak_from_this().lock();
  if (completion_driven_ && registered_) {
    // Before the fd goes away: cancels the multishot recv and, if a send is
    // still in flight, adopts the write queue until its completion lands.
    backend_.conn_unregister(*this);
  } else if (!completion_driven_ && registered_) {
    loop_.remove_fd(fd_);
  }
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    CloseHandler handler = std::move(on_close_);
    on_close_ = nullptr;
    handler();
  }
}

// --- TcpListener ---------------------------------------------------------------

TcpListener::TcpListener(EventLoop& loop, std::uint16_t port, AcceptHandler on_accept)
    : loop_(loop), port_(port), on_accept_(std::move(on_accept)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd_);
    throw std::runtime_error("bind() failed on port " + std::to_string(port));
  }
  if (port == 0) {
    socklen_t len = sizeof(address);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &len);
    port_ = ntohs(address.sin_port);
  }
  if (::listen(fd_, 128) != 0) {
    ::close(fd_);
    throw std::runtime_error("listen() failed");
  }
  set_non_blocking(fd_);
  loop_.add_fd(fd_, EPOLLIN, [this](std::uint32_t) { handle_accept(); });
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) {
    loop_.remove_fd(fd_);
    ::close(fd_);
  }
}

void TcpListener::handle_accept() {
  for (;;) {
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) return;  // EAGAIN or transient error
    on_accept_(std::make_shared<TcpConnection>(loop_, client));
  }
}

// --- tcp_connect ---------------------------------------------------------------

void tcp_connect(EventLoop& loop, const std::string& host, std::uint16_t port,
                 std::function<void(TcpConnectionPtr)> on_done) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    on_done(nullptr);
    return;
  }
  set_non_blocking(fd);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    on_done(nullptr);
    return;
  }

  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address));
  if (rc == 0) {
    on_done(std::make_shared<TcpConnection>(loop, fd));
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    on_done(nullptr);
    return;
  }

  // Wait for writability, then check SO_ERROR.
  auto callback = std::make_shared<std::function<void(std::uint32_t)>>();
  *callback = [&loop, fd, on_done = std::move(on_done)](std::uint32_t) {
    loop.remove_fd(fd);
    int error = 0;
    socklen_t len = sizeof(error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0) {
      ::close(fd);
      on_done(nullptr);
      return;
    }
    on_done(std::make_shared<TcpConnection>(loop, fd));
  };
  loop.add_fd(fd, EPOLLOUT, [callback](std::uint32_t events) { (*callback)(events); });
}

}  // namespace mahimahi::net
