#include "analysis/commit_probability.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mahimahi::analysis {

double binomial_coefficient(double n, double k) {
  if (k < 0 || k > n) return 0;
  // Multiplicative form keeps intermediate values near the final magnitude.
  double result = 1;
  for (int i = 0; i < static_cast<int>(k); ++i) {
    result *= (n - i) / (k - i);
  }
  return result;
}

double hypergeometric_zero_probability(std::uint32_t population,
                                       std::uint32_t successes,
                                       std::uint32_t draws) {
  if (draws > population) return 0;
  if (successes >= population) return draws == 0 ? 1 : 0;
  const double misses = population - successes;
  if (draws > misses) return 0;  // forced to draw a success
  return binomial_coefficient(misses, draws) /
         binomial_coefficient(population, draws);
}

double direct_commit_probability_w5(std::uint32_t f, std::uint32_t leaders) {
  const std::uint32_t n = 3 * f + 1;
  if (leaders > f) return 1.0;
  // 2f+1 of the n blocks are committable (Lemma 12); failure = all l slot
  // draws land in the f-element remainder.
  return 1.0 - hypergeometric_zero_probability(n, 2 * f + 1, leaders);
}

double direct_commit_probability_w4(std::uint32_t f, std::uint32_t leaders) {
  const std::uint32_t n = 3 * f + 1;
  if (leaders >= n) return 1.0;
  return static_cast<double>(leaders) / static_cast<double>(n);
}

double direct_commit_probability(std::uint32_t wave_length, std::uint32_t f,
                                 std::uint32_t leaders) {
  if (wave_length >= 5) return direct_commit_probability_w5(f, leaders);
  if (wave_length == 4) return direct_commit_probability_w4(f, leaders);
  return 0.0;  // w == 3: no common-core guarantee (Appendix C note)
}

double random_model_unreachable_bound(std::uint32_t f) {
  const double n = 3.0 * f + 1;
  const double p = (2.0 * f + 1) / n;
  const double bound = n * n * std::pow(1.0 - p, 2.0 * f + 1);
  return std::min(bound, 1.0);
}

double undecided_tail_probability(double p_star, std::uint32_t waves) {
  return std::pow(1.0 - std::clamp(p_star, 0.0, 1.0), waves);
}

double expected_waves_to_direct_commit(double p_star) {
  if (p_star <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / std::min(p_star, 1.0);
}

}  // namespace mahimahi::analysis
