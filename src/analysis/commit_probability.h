// Closed-form latency/commit-probability analysis (Appendix C).
//
// The paper's liveness argument is quantitative: each wave directly commits
// at least one leader slot with probability p*, where p* depends on the
// wave length, the fault budget f, and the number of leader slots l
// (Lemmas 13 and 16). This module implements those closed forms — plus the
// random-network reachability bound of Lemma 17 and the geometric
// undecided-tail bound behind Lemma 14 — so tests and benches can check the
// Monte-Carlo simulators against the paper's analytical claims.
//
// All probabilities are exact up to double rounding; committee sizes are
// far below where C(3f+1, l) overflows a double's mantissa for the l <= 3f+1
// range used here.
#pragma once

#include <cstdint>

namespace mahimahi::analysis {

// C(n, k) as a double; 0 when k < 0 or k > n.
double binomial_coefficient(double n, double k);

// Probability that a hypergeometric draw — `draws` from a population of
// `population` items of which `successes` are marked — contains zero marked
// items: C(population - successes, draws) / C(population, draws).
double hypergeometric_zero_probability(std::uint32_t population,
                                       std::uint32_t successes,
                                       std::uint32_t draws);

// Lemma 13 (wave length >= 5, asynchronous model): at least 2f+1 of the
// 3f+1 round-r blocks can be directly committed, and the coin draws
// `leaders` slots uniformly. p* = 1 - C(f, l)/C(3f+1, l); certainty when
// l > f.
double direct_commit_probability_w5(std::uint32_t f, std::uint32_t leaders);

// Lemma 16 (wave length 4, asynchronous model): only one block is
// guaranteed committable, so p* = l / (3f+1); certainty when l = 3f+1.
double direct_commit_probability_w4(std::uint32_t f, std::uint32_t leaders);

// Dispatch on wave length: w >= 5 uses Lemma 13, w == 4 uses Lemma 16.
// w == 3 returns 0 (safe but not live under asynchrony, Appendix C note).
double direct_commit_probability(std::uint32_t wave_length, std::uint32_t f,
                                 std::uint32_t leaders);

// Lemma 17 (wave length 4, random network model): Markov bound on the
// probability that some round-r block is unreachable from some round-(r+2)
// block, E = (3f+1)^2 * (1 - p)^(2f+1) with p = (2f+1)/(3f+1). Approaches 0
// exponentially in f; values above 1 are vacuous (clamped).
double random_model_unreachable_bound(std::uint32_t f);

// Lemma 14 / 19 tail: probability that a slot is still undecided after
// `waves` further waves, at most (1 - p*)^waves for per-wave direct-commit
// probability p_star.
double undecided_tail_probability(double p_star, std::uint32_t waves);

// Expected number of waves until some slot directly commits (geometric with
// success probability p_star); infinity when p_star == 0.
double expected_waves_to_direct_commit(double p_star);

// Message delays on the commit critical path (§1, §6): the paper's
// comparative latency table. Mahi-Mahi commits in `wave_length` delays;
// the baselines pay broadcast rounds.
constexpr std::uint32_t kTuskMessageDelays = 9;        // 3 certified rounds x 3
constexpr std::uint32_t kDagRiderMessageDelays = 12;   // 4 certified rounds x 3
constexpr std::uint32_t kCordialMinersMessageDelays = 5;
constexpr std::uint32_t mahi_mahi_message_delays(std::uint32_t wave_length) {
  return wave_length;
}

}  // namespace mahimahi::analysis
