#include "dag/dag.h"

#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace mahimahi {

Dag::Dag(const Committee& committee) : n_(committee.size()) {
  for (ValidatorId v = 0; v < n_; ++v) {
    insert(std::make_shared<const Block>(Block::genesis(v, committee.coin())));
  }
}

BlockPtr Dag::get(const Digest& digest) const {
  const auto it = by_digest_.find(digest);
  return it == by_digest_.end() ? nullptr : it->second;
}

const std::vector<BlockPtr>& Dag::slot(Round round, ValidatorId author) const {
  const auto it = rounds_.find(round);
  if (it == rounds_.end() || author >= n_) return empty_;
  return it->second.by_author[author];
}

std::vector<BlockPtr> Dag::blocks_at(Round round) const {
  std::vector<BlockPtr> out;
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) return out;
  for (const auto& cell : it->second.by_author) {
    out.insert(out.end(), cell.begin(), cell.end());
  }
  return out;
}

void Dag::for_each_at(Round round,
                      const std::function<bool(const BlockPtr&)>& visit) const {
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) return;
  for (const auto& cell : it->second.by_author) {
    for (const auto& block : cell) {
      if (!visit(block)) return;
    }
  }
}

std::uint32_t Dag::distinct_authors_at(Round round) const {
  const auto it = rounds_.find(round);
  return it == rounds_.end() ? 0 : it->second.distinct_authors;
}

bool Dag::parents_present(const Block& block) const {
  for (const auto& parent : block.parents()) {
    // References below the GC horizon count as satisfied: the deterministic
    // delivery cut (CommitterOptions::gc_depth) guarantees no future leader
    // will deliver them, so their absence cannot affect the commit sequence.
    if (parent.round < pruned_below_) continue;
    if (!contains(parent.digest)) return false;
  }
  return true;
}

bool Dag::insert(BlockPtr block) {
  if (by_digest_.contains(block->digest())) return false;
  if (!parents_present(*block)) {
    throw std::logic_error("Dag::insert: missing parent (synchronizer bug)");
  }
  auto [it, created] = rounds_.try_emplace(block->round());
  if (created) it->second.by_author.resize(n_);
  auto& cell = it->second.by_author.at(block->author());
  if (cell.empty()) ++it->second.distinct_authors;
  cell.push_back(block);
  if (block->round() > highest_round_) highest_round_ = block->round();
  by_digest_.emplace(block->digest(), std::move(block));
  return true;
}

bool Dag::is_link(const BlockRef& old_ref, const Block& from) const {
  if (from.round() < old_ref.round) return false;
  if (from.digest() == old_ref.digest) return true;
  std::unordered_set<Digest, DigestHasher> visited;
  std::deque<const Block*> frontier;
  frontier.push_back(&from);
  while (!frontier.empty()) {
    const Block* current = frontier.front();
    frontier.pop_front();
    for (const auto& parent : current->parents()) {
      if (parent.round < old_ref.round) continue;
      if (parent.digest == old_ref.digest) return true;
      if (!visited.insert(parent.digest).second) continue;
      if (const BlockPtr next = get(parent.digest)) frontier.push_back(next.get());
    }
  }
  return false;
}

void Dag::prune_below(Round round) {
  if (round <= pruned_below_) return;
  for (auto it = rounds_.begin(); it != rounds_.end() && it->first < round;) {
    for (const auto& cell : it->second.by_author) {
      for (const auto& block : cell) by_digest_.erase(block->digest());
    }
    it = rounds_.erase(it);
  }
  pruned_below_ = round;
}

}  // namespace mahimahi
